//! The water-water interaction kernels, one per StreamMD variant.
//!
//! All four share the same molecule-pair interaction subgraph, which is
//! constructed to match the paper's operation budget exactly: **234
//! programmer-visible flops per interaction, including 9 divides and 9
//! square roots** (Section 3). The budget decomposes as
//!
//! ```text
//!   9 atom pairs × 23  (displacement, r², √, ÷, Coulomb, force, accum)   207
//!   Lennard-Jones terms on the O-O pair                                  +12
//!   periodic shift applied to the centre molecule                         +9
//!   virial (shift-force) accumulation, 3 fused multiply-adds              +6
//!                                                                       = 234
//! ```
//!
//! Kernel launch parameters (same order for every variant): the 9
//! Coulomb charge products `qq[a][b]` pre-scaled by 1/4πɛ₀, then `C6`
//! and `C12`.

use md_sim::atomic::AtomForceField;
use md_sim::force::ForceField;
use md_sim::water::WaterModel;
use merrimac_kernel::builder::{KernelBuilder, Val, V3};
use merrimac_kernel::ir::StreamMode;
use merrimac_kernel::Kernel;

use crate::variant::Variant;
use crate::workload::Workload;

/// Number of launch parameters: 9 qq products + C6 + C12.
pub const NUM_PARAMS: usize = 11;

/// Pack force-field parameters in kernel launch order.
pub fn kernel_params(ff: &ForceField) -> Vec<f64> {
    let mut p = Vec::with_capacity(NUM_PARAMS);
    for a in 0..3 {
        for b in 0..3 {
            p.push(ff.qq[a][b]);
        }
    }
    p.push(ff.c6);
    p.push(ff.c12);
    p
}

/// Shared per-kernel constants and parameter handles.
struct Ctx {
    qq: [[Val; 3]; 3],
    c6: Val,
    c12: Val,
    six: Val,
    twelve: Val,
    one: Val,
}

impl Ctx {
    fn new(b: &mut KernelBuilder) -> Self {
        let mut qq = [[Val(0); 3]; 3];
        for row in qq.iter_mut() {
            for cell in row.iter_mut() {
                *cell = b.param();
            }
        }
        let c6 = b.param();
        let c12 = b.param();
        Self {
            qq,
            c6,
            c12,
            six: b.constant(6.0),
            twelve: b.constant(12.0),
            one: b.constant(1.0),
        }
    }
}

/// Accumulators threaded through interactions.
#[derive(Clone, Copy)]
struct Accum {
    e_coul: Val,
    e_lj: Val,
    virial: Val,
}

/// Per-interaction energy/virial contributions, reduced by the caller.
///
/// Keeping the accumulation *outside* the pair loop (a balanced tree per
/// iteration plus one register add) keeps the loop-carried recurrence a
/// single add deep, which is what lets the modulo scheduler reach a
/// resource-bound initiation interval.
struct Contribution {
    /// Coulomb energy of each of the 9 atom pairs.
    vc: Vec<Val>,
    /// Lennard-Jones energy of the O-O pair.
    de_lj: Val,
    /// Virial (shift-force) term of the O-O pair: a 3-deep madd chain
    /// seeded by a multiply (5 flops).
    vir: Val,
}

/// Balanced pairwise summation: `n − 1` adds.
fn tree_sum(b: &mut KernelBuilder, vals: &[Val]) -> Val {
    assert!(!vals.is_empty());
    let mut level: Vec<Val> = vals.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for chunk in level.chunks(2) {
            next.push(if chunk.len() == 2 {
                b.add(chunk[0], chunk[1])
            } else {
                chunk[0]
            });
        }
        level = next;
    }
    level[0]
}

/// Site positions of one molecule as three 3-vectors.
#[derive(Clone, Copy)]
struct Mol([V3; 3]);

fn read_molecule(b: &mut KernelBuilder, stream: u32, base_field: u32) -> Mol {
    Mol([
        b.read_v3(stream, base_field),
        b.read_v3(stream, base_field + 3),
        b.read_v3(stream, base_field + 6),
    ])
}

/// Apply the periodic shift to the centre molecule: 9 adds.
fn apply_shift(b: &mut KernelBuilder, c: Mol, shift: Mol) -> Mol {
    Mol([
        b.v3_add(c.0[0], shift.0[0]),
        b.v3_add(c.0[1], shift.0[1]),
        b.v3_add(c.0[2], shift.0[2]),
    ])
}

/// One molecule-pair interaction: returns (forces on centre sites,
/// forces on neighbour sites, energy/virial contributions). Together
/// with the caller-side reduction and the shift this totals exactly 234
/// solution flops per interaction (tested in this module).
fn interaction(
    b: &mut KernelBuilder,
    ctx: &Ctx,
    c_shifted: Mol,
    n: Mol,
) -> ([V3; 3], [V3; 3], Contribution) {
    let zero = b.constant(0.0);
    let zv = V3 {
        x: zero,
        y: zero,
        z: zero,
    };
    let mut fc = [zv; 3];
    let mut fn_ = [zv; 3];
    let mut vc_all = Vec::with_capacity(9);
    let mut de_lj = zero;
    let mut d_oo = zv;
    let mut f_oo = zv;

    // `a`/`n_site` are site indices into several parallel per-site
    // arrays (fc, fn_, qq), so plain index loops read best here.
    #[allow(clippy::needless_range_loop)]
    for a in 0..3 {
        for n_site in 0..3 {
            // Displacement and squared distance: 3 + 5 flops.
            let d = b.v3_sub(c_shifted.0[a], n.0[n_site]);
            let r2 = b.v3_norm2(d);
            // r = √r², 1/r = 1 ÷ r: the divide and square root of the
            // paper's accounting (one of each per atom pair).
            let r = b.sqrt(r2);
            let rinv = b.div(ctx.one, r);
            let rinv2 = b.mul(rinv, rinv);
            // Coulomb: V = qq/r, f/r = V/r².
            let vc = b.mul(ctx.qq[a][n_site], rinv);
            vc_all.push(vc);
            let mut fs = b.mul(vc, rinv2);
            if a == 0 && n_site == 0 {
                // Lennard-Jones on the oxygen pair: 11 flops here, the
                // 12th is the caller's accumulation of `de_lj`.
                let rinv4 = b.mul(rinv2, rinv2);
                let rinv6 = b.mul(rinv4, rinv2);
                let v6 = b.mul(ctx.c6, rinv6);
                let rinv12 = b.mul(rinv6, rinv6);
                let v12 = b.mul(ctx.c12, rinv12);
                de_lj = b.sub(v12, v6);
                let t12 = b.mul(ctx.twelve, v12);
                let u = b.nmsub(ctx.six, v6, t12); // 12·v12 − 6·v6
                let fs_lj = b.mul(u, rinv2);
                fs = b.add(fs, fs_lj);
            }
            let f = b.v3_scale(d, fs);
            fc[a] = b.v3_add(fc[a], f);
            fn_[n_site] = b.v3_sub(fn_[n_site], f);
            if a == 0 && n_site == 0 {
                d_oo = d;
                f_oo = f;
            }
        }
    }
    // Virial contribution of the O-O pair: mul + 2 madds (5 flops).
    let vx = b.mul(d_oo.x, f_oo.x);
    let vxy = b.madd(d_oo.y, f_oo.y, vx);
    let vir = b.madd(d_oo.z, f_oo.z, vxy);

    (
        fc,
        fn_,
        Contribution {
            vc: vc_all,
            de_lj,
            vir,
        },
    )
}

/// Reduce a set of per-interaction contributions into the accumulator
/// registers: a balanced tree per class plus one register add each.
fn reduce_contributions(b: &mut KernelBuilder, acc: Accum, contribs: &[Contribution]) -> Accum {
    let vcs: Vec<Val> = contribs.iter().flat_map(|c| c.vc.iter().copied()).collect();
    let des: Vec<Val> = contribs.iter().map(|c| c.de_lj).collect();
    let virs: Vec<Val> = contribs.iter().map(|c| c.vir).collect();
    let vc_sum = tree_sum(b, &vcs);
    let de_sum = tree_sum(b, &des);
    let vir_sum = tree_sum(b, &virs);
    Accum {
        e_coul: b.add(acc.e_coul, vc_sum),
        e_lj: b.add(acc.e_lj, de_sum),
        virial: b.add(acc.virial, vir_sum),
    }
}

/// Declare the three energy/virial accumulator registers and their
/// update chain for a kernel whose body computes `n_interactions`.
fn accum_regs(b: &mut KernelBuilder) -> (Accum, [u32; 3]) {
    let r_ec = b.reg(0.0);
    let r_el = b.reg(0.0);
    let r_vir = b.reg(0.0);
    let acc = Accum {
        e_coul: b.read_reg(r_ec),
        e_lj: b.read_reg(r_el),
        virial: b.read_reg(r_vir),
    };
    (acc, [r_ec, r_el, r_vir])
}

fn finish_accum(b: &mut KernelBuilder, regs: [u32; 3], acc: Accum) {
    b.set_reg(regs[0], acc.e_coul);
    b.set_reg(regs[1], acc.e_lj);
    b.set_reg(regs[2], acc.virial);
}

fn flatten(m: &[V3; 3]) -> Vec<Val> {
    m.iter().flat_map(|v| [v.x, v.y, v.z]).collect()
}

/// `expanded`: inputs c_pos(9) + c_shift(9) + n_pos(9); outputs both
/// partial-force records every iteration.
pub fn expanded_kernel() -> Kernel {
    let mut b = KernelBuilder::new("streammd_expanded");
    let s_cpos = b.input("c_positions", 9, StreamMode::EveryIteration);
    let s_shift = b.input("c_shifts", 9, StreamMode::EveryIteration);
    let s_npos = b.input("n_positions", 9, StreamMode::EveryIteration);
    let o_cf = b.output("c_partial_forces", 9);
    let o_nf = b.output("n_partial_forces", 9);
    let ctx = Ctx::new(&mut b);
    let (acc0, regs) = accum_regs(&mut b);

    let c = read_molecule(&mut b, s_cpos, 0);
    let shift = read_molecule(&mut b, s_shift, 0);
    let n = read_molecule(&mut b, s_npos, 0);
    let cs = apply_shift(&mut b, c, shift);
    let (fc, fn_, contrib) = interaction(&mut b, &ctx, cs, n);
    let acc = reduce_contributions(&mut b, acc0, &[contrib]);
    let fc_flat = flatten(&fc);
    let fn_flat = flatten(&fn_);
    b.write(o_cf, &fc_flat);
    b.write(o_nf, &fn_flat);
    finish_accum(&mut b, regs, acc);
    b.build()
}

/// `fixed` / `duplicated` block kernel: one iteration processes a centre
/// with `l` (padded) neighbours. `write_neighbor_partials = false` gives
/// the `duplicated` kernel.
pub fn block_kernel(l: usize, write_neighbor_partials: bool) -> Kernel {
    assert!(l >= 1);
    let name = if write_neighbor_partials {
        format!("streammd_fixed_l{l}")
    } else {
        format!("streammd_duplicated_l{l}")
    };
    let mut b = KernelBuilder::new(name);
    let s_cpos = b.input("c_positions", 9, StreamMode::EveryIteration);
    let s_shift = b.input("c_shifts", 9, StreamMode::EveryIteration);
    let s_npos = b.input("n_positions", (9 * l) as u32, StreamMode::EveryIteration);
    let o_cf = b.output("c_forces", 9);
    let o_nf = if write_neighbor_partials {
        Some(b.output("n_partial_forces", 9))
    } else {
        None
    };
    let ctx = Ctx::new(&mut b);
    let (acc0, regs) = accum_regs(&mut b);

    let c = read_molecule(&mut b, s_cpos, 0);
    let shift = read_molecule(&mut b, s_shift, 0);
    let cs = apply_shift(&mut b, c, shift);

    // Accumulate the centre force across the block in-LRF (the
    // "reduced within the cluster to save on output bandwidth" of
    // Section 3.3).
    let zero = b.constant(0.0);
    let zv = V3 {
        x: zero,
        y: zero,
        z: zero,
    };
    let mut fc_total = [zv; 3];
    let mut contribs = Vec::with_capacity(l);
    for nb in 0..l {
        let n = read_molecule(&mut b, s_npos, (9 * nb) as u32);
        let (fc, fn_, contrib) = interaction(&mut b, &ctx, cs, n);
        contribs.push(contrib);
        for site in 0..3 {
            fc_total[site] = b.v3_add(fc_total[site], fc[site]);
        }
        if let Some(o) = o_nf {
            let flat = flatten(&fn_);
            b.write(o, &flat);
        }
    }
    let acc = reduce_contributions(&mut b, acc0, &contribs);
    let flat = flatten(&fc_total);
    b.write(o_cf, &flat);
    finish_accum(&mut b, regs, acc);
    b.build()
}

/// `variable`: conditional-stream kernel. Inputs: `n_positions` (9,
/// every iteration), `new_center_flags` (1, every iteration), and the
/// conditional `center_records` stream (18 = 9 pos + 9 shift). Whenever
/// the flag fires, the previous centre's accumulated force is emitted
/// (conditional write) and a new centre record is popped.
pub fn variable_kernel() -> Kernel {
    let mut b = KernelBuilder::new("streammd_variable");
    let s_npos = b.input("n_positions", 9, StreamMode::EveryIteration);
    let s_flag = b.input("new_center_flags", 1, StreamMode::EveryIteration);
    let s_center = b.input("center_records", 18, StreamMode::Conditional);
    let o_cf = b.output("c_forces", 9);
    let o_nf = b.output("n_partial_forces", 9);
    let ctx = Ctx::new(&mut b);
    let (acc0, acc_regs) = accum_regs(&mut b);

    // Loop-carried centre state: 18 position/shift words (pre-shifted
    // below and stored shifted: 9 regs suffice per site set? We store the
    // *shifted* centre, 9 values, plus 9 accumulated force components).
    let zero = b.constant(0.0);
    let flag = b.read(s_flag, 0);
    let is_new = b.cmp_lt(zero, flag);

    // Previous accumulated centre force (flushed on a new centre).
    let fc_regs: Vec<u32> = (0..9).map(|_| b.reg(0.0)).collect();
    let fc_prev: Vec<Val> = fc_regs.iter().map(|&r| b.read_reg(r)).collect();
    // The conditional write occupies issue slots like any conditional
    // stream instruction ("issued on every iteration with a condition");
    // model that with one guard op per written word.
    let guarded: Vec<Val> = fc_prev.iter().map(|v| b.mov(*v)).collect();
    b.write_if(o_cf, is_new, &guarded);

    // Shifted-centre registers with conditional refresh.
    let cs_regs: Vec<u32> = (0..9).map(|_| b.reg(0.0)).collect();
    let mut cs_vals = Vec::with_capacity(9);
    for (k, &r) in cs_regs.iter().enumerate() {
        let prev = b.read_reg(r);
        let pos = b.cond_read(s_center, k as u32, is_new, zero);
        let shift = b.cond_read(s_center, (k + 9) as u32, is_new, zero);
        let fresh = b.add(pos, shift); // shift applied on refresh: 9 adds
        let v = b.sel(is_new, fresh, prev);
        b.set_reg(r, v);
        cs_vals.push(v);
    }
    let cs = Mol([
        V3 {
            x: cs_vals[0],
            y: cs_vals[1],
            z: cs_vals[2],
        },
        V3 {
            x: cs_vals[3],
            y: cs_vals[4],
            z: cs_vals[5],
        },
        V3 {
            x: cs_vals[6],
            y: cs_vals[7],
            z: cs_vals[8],
        },
    ]);

    let n = read_molecule(&mut b, s_npos, 0);
    let (fc, fn_, contrib) = interaction(&mut b, &ctx, cs, n);
    let acc = reduce_contributions(&mut b, acc0, &[contrib]);
    let fn_flat = flatten(&fn_);
    b.write(o_nf, &fn_flat);

    // Centre force accumulation with conditional reset.
    let fc_new = flatten(&fc);
    for (k, &r) in fc_regs.iter().enumerate() {
        let base = b.sel(is_new, zero, fc_prev[k]);
        let updated = b.add(fc_new[k], base);
        b.set_reg(r, updated);
    }
    finish_accum(&mut b, acc_regs, acc);
    b.build()
}

// ---------------------------------------------------------------------------
// Single-site atomic kernels (LJ fluid and charged particle)
// ---------------------------------------------------------------------------
//
// Same four variants, 3-word records instead of 9. The LJ kernel costs 35
// flops per interaction (1 divide, no square root): shift 3, displacement 3,
// r² 5, 1/r² 1, LJ chain 10, force 3, neighbour partial 3, virial 5, energy
// + virial accumulation 2. The charged kernel replaces the 1/r² divide with
// √r² · (1/r) · (1/r·1/r) and adds the Coulomb energy/force terms: 41 flops
// (1 divide *and* 1 square root per pair).

/// Launch parameters of the plain LJ kernel: C6, C12.
pub const NUM_ATOM_PARAMS_LJ: usize = 2;
/// Launch parameters of the charged kernel: qq, C6, C12.
pub const NUM_ATOM_PARAMS_CHARGED: usize = 3;

/// Pack atomic force-field parameters in kernel launch order.
pub fn atom_kernel_params(ff: &AtomForceField, coulomb: bool) -> Vec<f64> {
    assert_eq!(
        ff.coulomb(),
        coulomb,
        "force field charge does not match the requested kernel"
    );
    if coulomb {
        vec![ff.qq, ff.c6, ff.c12]
    } else {
        vec![ff.c6, ff.c12]
    }
}

/// Parameter handles of an atomic kernel. `qq` exists only when the
/// kernel carries a Coulomb term, so the LJ kernel's parameter list
/// stays minimal (2 words in the microcontroller broadcast).
struct AtomCtx {
    qq: Option<Val>,
    c6: Val,
    c12: Val,
    six: Val,
    twelve: Val,
    one: Val,
}

impl AtomCtx {
    fn new(b: &mut KernelBuilder, coulomb: bool) -> Self {
        let qq = if coulomb { Some(b.param()) } else { None };
        let c6 = b.param();
        let c12 = b.param();
        Self {
            qq,
            c6,
            c12,
            six: b.constant(6.0),
            twelve: b.constant(12.0),
            one: b.constant(1.0),
        }
    }
}

/// Energy/virial contribution of one atom pair.
struct AtomContribution {
    /// Coulomb energy (charged kernel only).
    vc: Option<Val>,
    de_lj: Val,
    vir: Val,
}

/// One atom-pair interaction: returns (force on centre, force on
/// neighbour, contributions). The operation DAG matches
/// `md_sim::atomic::pair_force_atomic` op for op, which is what the
/// bitwise differential tests rely on.
fn atom_interaction(
    b: &mut KernelBuilder,
    ctx: &AtomCtx,
    cs: V3,
    n: V3,
) -> (V3, V3, AtomContribution) {
    let d = b.v3_sub(cs, n);
    let r2 = b.v3_norm2(d);
    let (fs_c, rinv2, vc) = if let Some(qq) = ctx.qq {
        // Charged: r = √r², 1/r, then r⁻² rebuilt from 1/r so the
        // Coulomb force term V/r² reuses it.
        let r = b.sqrt(r2);
        let rinv = b.div(ctx.one, r);
        let rinv2 = b.mul(rinv, rinv);
        let vc = b.mul(qq, rinv);
        let fs_c = b.mul(vc, rinv2);
        (Some(fs_c), rinv2, Some(vc))
    } else {
        // Plain LJ needs only even powers: a single divide, no root.
        (None, b.div(ctx.one, r2), None)
    };
    let rinv4 = b.mul(rinv2, rinv2);
    let rinv6 = b.mul(rinv4, rinv2);
    let v6 = b.mul(ctx.c6, rinv6);
    let rinv12 = b.mul(rinv6, rinv6);
    let v12 = b.mul(ctx.c12, rinv12);
    let de_lj = b.sub(v12, v6);
    let t12 = b.mul(ctx.twelve, v12);
    let u = b.nmsub(ctx.six, v6, t12); // 12·v12 − 6·v6
    let fs_lj = b.mul(u, rinv2);
    let fs = match fs_c {
        Some(c) => b.add(c, fs_lj),
        None => fs_lj,
    };
    let f = b.v3_scale(d, fs);
    let zero = b.constant(0.0);
    let zv = V3 {
        x: zero,
        y: zero,
        z: zero,
    };
    let fn_ = b.v3_sub(zv, f);
    let vx = b.mul(d.x, f.x);
    let vxy = b.madd(d.y, f.y, vx);
    let vir = b.madd(d.z, f.z, vxy);
    (f, fn_, AtomContribution { vc, de_lj, vir })
}

/// Reduce atomic contributions into the accumulator registers. The
/// Coulomb accumulator is left untouched by the LJ kernel (it stays at
/// its initial 0.0; no flops are spent on it).
fn reduce_atom_contributions(
    b: &mut KernelBuilder,
    acc: Accum,
    contribs: &[AtomContribution],
) -> Accum {
    let vcs: Vec<Val> = contribs.iter().filter_map(|c| c.vc).collect();
    let des: Vec<Val> = contribs.iter().map(|c| c.de_lj).collect();
    let virs: Vec<Val> = contribs.iter().map(|c| c.vir).collect();
    let e_coul = if vcs.is_empty() {
        acc.e_coul
    } else {
        let s = tree_sum(b, &vcs);
        b.add(acc.e_coul, s)
    };
    let de_sum = tree_sum(b, &des);
    let vir_sum = tree_sum(b, &virs);
    Accum {
        e_coul,
        e_lj: b.add(acc.e_lj, de_sum),
        virial: b.add(acc.virial, vir_sum),
    }
}

fn atom_kernel_name(coulomb: bool, variant: &str) -> String {
    if coulomb {
        format!("streammd_charged_{variant}")
    } else {
        format!("streammd_lj_{variant}")
    }
}

/// Atomic `expanded`: inputs c_pos(3) + c_shift(3) + n_pos(3); outputs
/// both 3-word partial-force records every iteration.
pub fn atom_expanded_kernel(coulomb: bool) -> Kernel {
    let mut b = KernelBuilder::new(atom_kernel_name(coulomb, "expanded"));
    let s_cpos = b.input("c_positions", 3, StreamMode::EveryIteration);
    let s_shift = b.input("c_shifts", 3, StreamMode::EveryIteration);
    let s_npos = b.input("n_positions", 3, StreamMode::EveryIteration);
    let o_cf = b.output("c_partial_forces", 3);
    let o_nf = b.output("n_partial_forces", 3);
    let ctx = AtomCtx::new(&mut b, coulomb);
    let (acc0, regs) = accum_regs(&mut b);

    let c = b.read_v3(s_cpos, 0);
    let shift = b.read_v3(s_shift, 0);
    let n = b.read_v3(s_npos, 0);
    let cs = b.v3_add(c, shift);
    let (fc, fn_, contrib) = atom_interaction(&mut b, &ctx, cs, n);
    let acc = reduce_atom_contributions(&mut b, acc0, &[contrib]);
    b.write(o_cf, &[fc.x, fc.y, fc.z]);
    b.write(o_nf, &[fn_.x, fn_.y, fn_.z]);
    finish_accum(&mut b, regs, acc);
    b.build()
}

/// Atomic `fixed` / `duplicated` block kernel: one centre with `l`
/// (padded) neighbours per iteration; centre force reduced in-LRF.
pub fn atom_block_kernel(coulomb: bool, l: usize, write_neighbor_partials: bool) -> Kernel {
    assert!(l >= 1);
    let variant = if write_neighbor_partials {
        format!("fixed_l{l}")
    } else {
        format!("duplicated_l{l}")
    };
    let mut b = KernelBuilder::new(atom_kernel_name(coulomb, &variant));
    let s_cpos = b.input("c_positions", 3, StreamMode::EveryIteration);
    let s_shift = b.input("c_shifts", 3, StreamMode::EveryIteration);
    let s_npos = b.input("n_positions", (3 * l) as u32, StreamMode::EveryIteration);
    let o_cf = b.output("c_forces", 3);
    let o_nf = if write_neighbor_partials {
        Some(b.output("n_partial_forces", 3))
    } else {
        None
    };
    let ctx = AtomCtx::new(&mut b, coulomb);
    let (acc0, regs) = accum_regs(&mut b);

    let c = b.read_v3(s_cpos, 0);
    let shift = b.read_v3(s_shift, 0);
    let cs = b.v3_add(c, shift);

    let zero = b.constant(0.0);
    let zv = V3 {
        x: zero,
        y: zero,
        z: zero,
    };
    let mut fc_total = zv;
    let mut contribs = Vec::with_capacity(l);
    for nb in 0..l {
        let n = b.read_v3(s_npos, (3 * nb) as u32);
        let (fc, fn_, contrib) = atom_interaction(&mut b, &ctx, cs, n);
        contribs.push(contrib);
        fc_total = b.v3_add(fc_total, fc);
        if let Some(o) = o_nf {
            b.write(o, &[fn_.x, fn_.y, fn_.z]);
        }
    }
    let acc = reduce_atom_contributions(&mut b, acc0, &contribs);
    b.write(o_cf, &[fc_total.x, fc_total.y, fc_total.z]);
    finish_accum(&mut b, regs, acc);
    b.build()
}

/// Atomic `variable`: conditional-stream kernel with 6-word centre
/// records (3 position + 3 shift) and 3-word loop-carried force state.
pub fn atom_variable_kernel(coulomb: bool) -> Kernel {
    let mut b = KernelBuilder::new(atom_kernel_name(coulomb, "variable"));
    let s_npos = b.input("n_positions", 3, StreamMode::EveryIteration);
    let s_flag = b.input("new_center_flags", 1, StreamMode::EveryIteration);
    let s_center = b.input("center_records", 6, StreamMode::Conditional);
    let o_cf = b.output("c_forces", 3);
    let o_nf = b.output("n_partial_forces", 3);
    let ctx = AtomCtx::new(&mut b, coulomb);
    let (acc0, acc_regs) = accum_regs(&mut b);

    let zero = b.constant(0.0);
    let flag = b.read(s_flag, 0);
    let is_new = b.cmp_lt(zero, flag);

    // Previous accumulated centre force (flushed on a new centre).
    let fc_regs: Vec<u32> = (0..3).map(|_| b.reg(0.0)).collect();
    let fc_prev: Vec<Val> = fc_regs.iter().map(|&r| b.read_reg(r)).collect();
    let guarded: Vec<Val> = fc_prev.iter().map(|v| b.mov(*v)).collect();
    b.write_if(o_cf, is_new, &guarded);

    // Shifted-centre registers with conditional refresh.
    let cs_regs: Vec<u32> = (0..3).map(|_| b.reg(0.0)).collect();
    let mut cs_vals = Vec::with_capacity(3);
    for (k, &r) in cs_regs.iter().enumerate() {
        let prev = b.read_reg(r);
        let pos = b.cond_read(s_center, k as u32, is_new, zero);
        let shift = b.cond_read(s_center, (k + 3) as u32, is_new, zero);
        let fresh = b.add(pos, shift); // shift applied on refresh: 3 adds
        let v = b.sel(is_new, fresh, prev);
        b.set_reg(r, v);
        cs_vals.push(v);
    }
    let cs = V3 {
        x: cs_vals[0],
        y: cs_vals[1],
        z: cs_vals[2],
    };

    let n = b.read_v3(s_npos, 0);
    let (fc, fn_, contrib) = atom_interaction(&mut b, &ctx, cs, n);
    let acc = reduce_atom_contributions(&mut b, acc0, &[contrib]);
    b.write(o_nf, &[fn_.x, fn_.y, fn_.z]);

    // Centre force accumulation with conditional reset.
    let fc_new = [fc.x, fc.y, fc.z];
    for (k, &r) in fc_regs.iter().enumerate() {
        let base = b.sel(is_new, zero, fc_prev[k]);
        let updated = b.add(fc_new[k], base);
        b.set_reg(r, updated);
    }
    finish_accum(&mut b, acc_regs, acc);
    b.build()
}

// ---------------------------------------------------------------------------
// Workload dispatch
// ---------------------------------------------------------------------------

/// Generate the kernel for a (workload, variant) pair. `block_l` is the
/// neighbour-block length used by the `Fixed`/`Duplicated` variants.
pub fn workload_kernel(workload: Workload, variant: Variant, block_l: usize) -> Kernel {
    match workload {
        Workload::Water => match variant {
            Variant::Expanded => expanded_kernel(),
            Variant::Fixed => block_kernel(block_l, true),
            Variant::Duplicated => block_kernel(block_l, false),
            Variant::Variable => variable_kernel(),
        },
        Workload::LjFluid | Workload::Charged => {
            let coulomb = workload.coulomb();
            match variant {
                Variant::Expanded => atom_expanded_kernel(coulomb),
                Variant::Fixed => atom_block_kernel(coulomb, block_l, true),
                Variant::Duplicated => atom_block_kernel(coulomb, block_l, false),
                Variant::Variable => atom_variable_kernel(coulomb),
            }
        }
    }
}

/// Pack launch parameters for any workload's kernels from its model.
pub fn workload_params(workload: Workload, model: &WaterModel) -> Vec<f64> {
    match workload {
        Workload::Water => kernel_params(&ForceField::from_model(model)),
        Workload::LjFluid | Workload::Charged => {
            atom_kernel_params(&AtomForceField::from_model(model), workload.coulomb())
        }
    }
}

/// Number of launch parameters per workload.
pub fn workload_num_params(workload: Workload) -> usize {
    match workload {
        Workload::Water => NUM_PARAMS,
        Workload::LjFluid => NUM_ATOM_PARAMS_LJ,
        Workload::Charged => NUM_ATOM_PARAMS_CHARGED,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_sim::force::{DIVS_PER_INTERACTION, FLOPS_PER_INTERACTION, SQRTS_PER_INTERACTION};
    use merrimac_arch::OpCosts;
    use merrimac_kernel::lower::lower_kernel;
    use merrimac_kernel::KernelStats;

    fn stats(k: &Kernel) -> KernelStats {
        let l = lower_kernel(k, &OpCosts::default());
        KernelStats::analyze(k, &l)
    }

    #[test]
    fn expanded_kernel_hits_paper_flop_budget() {
        let st = stats(&expanded_kernel());
        assert_eq!(st.solution_flops, FLOPS_PER_INTERACTION, "expanded flops");
        assert_eq!(st.divides, DIVS_PER_INTERACTION);
        assert_eq!(st.square_roots, SQRTS_PER_INTERACTION);
    }

    #[test]
    fn block_kernel_scales_with_l() {
        for l in [1usize, 4, 8] {
            let st = stats(&block_kernel(l, true));
            // Shift is applied once per block; per-interaction flops are
            // 234 − 9 + 9/L plus the cross-block centre-total reduction
            // (9 adds per interaction).
            let expected = 9 + l as u64 * (FLOPS_PER_INTERACTION - 9 + 9);
            assert_eq!(st.solution_flops, expected, "L = {l}");
            assert_eq!(st.divides, 9 * l as u64);
            assert_eq!(st.square_roots, 9 * l as u64);
        }
    }

    #[test]
    fn duplicated_kernel_drops_neighbor_output() {
        let with = block_kernel(8, true);
        let without = block_kernel(8, false);
        assert_eq!(with.outputs.len(), 2);
        assert_eq!(without.outputs.len(), 1);
        // Neighbour forces become dead code in duplicated: fewer live ops.
        let sw = stats(&with);
        let so = stats(&without);
        assert!(so.solution_flops < sw.solution_flops);
    }

    #[test]
    fn variable_kernel_word_traffic_matches_paper_minimum() {
        let k = variable_kernel();
        let st = stats(&k);
        // Paper: "as a minimum 10 words of input are consumed and 9 words
        // are produced for every iteration".
        assert_eq!(st.words_in_unconditional, 10);
        assert_eq!(st.words_out_unconditional, 9);
        assert_eq!(st.words_in_conditional, 18);
        assert_eq!(st.words_out_conditional, 9);
    }

    #[test]
    fn variable_kernel_flops_near_expanded() {
        // The variable kernel does the same physics plus the conditional
        // select/guard plumbing (which adds no solution flops beyond the
        // refresh adds replacing the shift adds).
        let sv = stats(&variable_kernel());
        let se = stats(&expanded_kernel());
        assert_eq!(sv.divides, se.divides);
        assert_eq!(sv.square_roots, se.square_roots);
        // Same interaction core (225) + 9 refresh adds + 9 accumulate adds.
        assert_eq!(sv.solution_flops, se.solution_flops + 9);
    }

    #[test]
    fn kernels_validate_and_lower() {
        for k in [
            expanded_kernel(),
            block_kernel(8, true),
            block_kernel(8, false),
            variable_kernel(),
        ] {
            k.validate_ssa();
            let l = lower_kernel(&k, &OpCosts::default());
            assert!(l.is_lowered());
        }
    }

    #[test]
    fn params_order_stable() {
        let ff = ForceField::from_model(&md_sim::water::WaterModel::spc());
        let p = kernel_params(&ff);
        assert_eq!(p.len(), NUM_PARAMS);
        assert_eq!(p[0], ff.qq[0][0]);
        assert_eq!(p[8], ff.qq[2][2]);
        assert_eq!(p[9], ff.c6);
        assert_eq!(p[10], ff.c12);
    }

    #[test]
    fn atom_expanded_kernels_hit_workload_flop_budgets() {
        let lj = stats(&atom_expanded_kernel(false));
        assert_eq!(
            lj.solution_flops,
            Workload::LjFluid.flops_per_interaction(),
            "lj expanded flops"
        );
        assert_eq!(lj.divides, 1);
        assert_eq!(lj.square_roots, 0);

        let ch = stats(&atom_expanded_kernel(true));
        assert_eq!(
            ch.solution_flops,
            Workload::Charged.flops_per_interaction(),
            "charged expanded flops"
        );
        assert_eq!(ch.divides, 1);
        assert_eq!(ch.square_roots, 1);
    }

    #[test]
    fn atom_block_kernels_scale_with_l() {
        for l in [1usize, 4, 8] {
            // Fixed: shift 3 + per-neighbour interaction + centre-total
            // reduction + per-class accumulation.
            let lj = stats(&atom_block_kernel(false, l, true));
            assert_eq!(lj.solution_flops, 3 + 35 * l as u64, "lj fixed L={l}");
            assert_eq!(lj.divides, l as u64);
            assert_eq!(lj.square_roots, 0);
            let ch = stats(&atom_block_kernel(true, l, true));
            assert_eq!(ch.solution_flops, 3 + 41 * l as u64, "charged fixed L={l}");
            assert_eq!(ch.square_roots, l as u64);

            // Duplicated drops the 3-word neighbour partial per pair.
            let ljd = stats(&atom_block_kernel(false, l, false));
            assert_eq!(ljd.solution_flops, 3 + 32 * l as u64, "lj dup L={l}");
            let chd = stats(&atom_block_kernel(true, l, false));
            assert_eq!(chd.solution_flops, 3 + 38 * l as u64, "charged dup L={l}");
        }
    }

    #[test]
    fn atom_variable_kernel_word_traffic() {
        for coulomb in [false, true] {
            let st = stats(&atom_variable_kernel(coulomb));
            // 3 neighbour words + 1 flag in, 3 partial-force words out,
            // unconditionally; 6-word centre record in and 3-word centre
            // force out under condition.
            assert_eq!(st.words_in_unconditional, 4);
            assert_eq!(st.words_out_unconditional, 3);
            assert_eq!(st.words_in_conditional, 6);
            assert_eq!(st.words_out_conditional, 3);
        }
    }

    #[test]
    fn atom_variable_kernel_flops_near_expanded() {
        // Variable = expanded − shift(3) + refresh adds(3) + centre
        // accumulation adds(3) = expanded + 3, for both atomic workloads.
        for coulomb in [false, true] {
            let sv = stats(&atom_variable_kernel(coulomb));
            let se = stats(&atom_expanded_kernel(coulomb));
            assert_eq!(sv.solution_flops, se.solution_flops + 3);
            assert_eq!(sv.divides, se.divides);
            assert_eq!(sv.square_roots, se.square_roots);
        }
    }

    #[test]
    fn atom_kernels_validate_and_lower() {
        for coulomb in [false, true] {
            for k in [
                atom_expanded_kernel(coulomb),
                atom_block_kernel(coulomb, 8, true),
                atom_block_kernel(coulomb, 8, false),
                atom_variable_kernel(coulomb),
            ] {
                k.validate_ssa();
                let l = lower_kernel(&k, &OpCosts::default());
                assert!(l.is_lowered());
            }
        }
    }

    #[test]
    fn atom_params_order_stable() {
        let lj = AtomForceField::from_model(&WaterModel::lj_atom());
        let p = atom_kernel_params(&lj, false);
        assert_eq!(p, vec![lj.c6, lj.c12]);
        assert_eq!(p.len(), NUM_ATOM_PARAMS_LJ);

        let ch = AtomForceField::from_model(&WaterModel::charged_atom());
        let p = atom_kernel_params(&ch, true);
        assert_eq!(p, vec![ch.qq, ch.c6, ch.c12]);
        assert_eq!(p.len(), NUM_ATOM_PARAMS_CHARGED);
    }

    #[test]
    fn workload_dispatch_covers_every_pair() {
        for w in Workload::ALL {
            for v in Variant::ALL {
                let k = workload_kernel(w, v, 8);
                k.validate_ssa();
                assert_eq!(
                    workload_params(w, &w.default_model()).len(),
                    workload_num_params(w),
                    "{w}/{v} param count"
                );
            }
        }
    }
}

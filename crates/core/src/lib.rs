//! StreamMD — the paper's primary contribution.
//!
//! StreamMD performs the water-water non-bonded force calculation of
//! GROMACS as a stream program on the Merrimac node: positions are
//! gathered into the SRF by neighbour-list index streams, a single
//! interaction kernel computes the 9 atom-pair forces of every molecule
//! pair on the 16 SIMD clusters, and the partial forces are reduced into
//! the force array by the hardware scatter-add. The interface to the
//! rest of GROMACS (our `md-sim` substrate) is exactly the paper's: the
//! molecule position array, the neighbour-list index streams, and the
//! force array.
//!
//! Four implementation variants trade bandwidth against computation and
//! SIMD regularity (paper Table 3):
//!
//! | variant      | mechanism                                            |
//! |--------------|------------------------------------------------------|
//! | `expanded`   | fully expanded interaction list, one molecule pair per iteration |
//! | `fixed`      | fixed-length (L = 8) neighbour blocks, centres replicated, dummy padding |
//! | `variable`   | conditional streams: variable-length per-centre lists |
//! | `duplicated` | fixed blocks with every interaction computed twice, no neighbour partials |
//!
//! [`StreamMdApp::run_step`] runs one force step of any variant on the
//! `merrimac-sim` node and returns both the forces (validated against
//! the reference engine in tests) and the performance/locality metrics
//! behind the paper's Table 4 and Figures 8–9.

pub mod app;
pub mod config;
pub mod driver;
pub mod kernels;
pub mod layout;
pub mod metrics;
pub mod models;
pub mod multinode;
pub mod variant;
pub mod workload;

pub use app::{PerfSummary, StepOutcome, StepProgram, StreamMdApp};
pub use config::SimConfigBuilder;
pub use driver::{DriverReport, MerrimacDriver};
pub use merrimac_sim::machine::SimError;
pub use merrimac_sim::{AccessIntent, BatchWidth, FallbackKind, KernelEngine, PartitionSummary};
pub use metrics::{AnalyticModel, MultiNodeBreakdown, PhaseBreakdown};
pub use multinode::{run_multinode, run_multinode_program, MultiNodeOutcome, NodeRun};
pub use variant::{DatasetStats, Variant};
pub use workload::Workload;

//! Validated construction of [`StreamMdApp`] — the front door of the
//! experiment API.
//!
//! [`SimConfigBuilder`] replaces the grab-bag of `with_*` knobs on
//! [`StreamMdApp`]: every knob is set on the builder and checked once,
//! together, in [`SimConfigBuilder::build`], which returns
//! `Err(SimError)` instead of panicking or — worse — handing back a
//! configuration that wedges the simulated scoreboard mid-run. The
//! canonical example of the latter is an over-sized strip: a fixed-L
//! strip of 997 blocks needs more SRF space for its live streams than
//! the machine owns, so the old API deadlocked after the functional
//! work was done. `build()` rejects it up front, naming the strip size.
//!
//! ```
//! use streammd::{SimConfigBuilder, Variant};
//!
//! let app = SimConfigBuilder::new()
//!     .block_l(8)
//!     .threads(4)
//!     .build()
//!     .expect("valid configuration");
//! # let _ = app;
//!
//! // An un-runnable strip is caught at build time:
//! let err = SimConfigBuilder::new()
//!     .strip_iterations(997)
//!     .build()
//!     .unwrap_err();
//! assert!(err.to_string().contains("997"));
//!
//! // ...unless the run is scoped to variants whose footprint fits:
//! SimConfigBuilder::new()
//!     .strip_iterations(997)
//!     .variants(&[Variant::Variable, Variant::Expanded])
//!     .build()
//!     .expect("997-iteration strips fit for the compact variants");
//! ```

use md_sim::neighbor::NeighborListParams;
use merrimac_arch::{MachineConfig, NetworkConfig, OpCosts};
use merrimac_net::topology::{NetError, Topology};
use merrimac_sim::machine::SimError;
use merrimac_sim::{BatchWidth, KernelEngine, KernelOpt, SdrPolicy};

use crate::app::StreamMdApp;
use crate::variant::Variant;
use crate::workload::Workload;

/// Builder for a validated [`StreamMdApp`]. Construct with
/// [`SimConfigBuilder::new`] or [`StreamMdApp::builder`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: MachineConfig,
    costs: OpCosts,
    policy: SdrPolicy,
    kernel_opt: KernelOpt,
    neighbor: NeighborListParams,
    block_l: usize,
    strip_iterations: Option<usize>,
    threads: Option<usize>,
    variants: Vec<Variant>,
    workloads: Vec<Workload>,
    analyze: bool,
    network: NetworkConfig,
    nodes: usize,
    engine: Option<KernelEngine>,
    tape_batch: Option<BatchWidth>,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimConfigBuilder {
    pub fn new() -> Self {
        Self {
            cfg: MachineConfig::default(),
            costs: OpCosts::default(),
            policy: SdrPolicy::Eager,
            kernel_opt: KernelOpt {
                unroll: 1,
                software_pipeline: true,
            },
            neighbor: NeighborListParams {
                cutoff: 1.0,
                skin: 0.0,
                rebuild_interval: 10,
            },
            block_l: 8,
            strip_iterations: None,
            threads: None,
            variants: Variant::ALL.to_vec(),
            workloads: Workload::ALL.to_vec(),
            analyze: false,
            network: NetworkConfig::default(),
            nodes: 1,
            engine: None,
            tape_batch: None,
        }
    }

    /// Machine parameters (Table 1 defaults).
    pub fn machine(mut self, cfg: MachineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Per-op cycle cost overrides.
    pub fn costs(mut self, costs: OpCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Stream-descriptor-register retirement policy (Figure 7).
    pub fn policy(mut self, policy: SdrPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Kernel compilation options (unroll, software pipelining).
    pub fn kernel_opt(mut self, opt: KernelOpt) -> Self {
        self.kernel_opt = opt;
        self
    }

    /// Neighbour-list policy.
    pub fn neighbor(mut self, params: NeighborListParams) -> Self {
        self.neighbor = params;
        self
    }

    /// Fixed-list block length L (paper: 8).
    pub fn block_l(mut self, l: usize) -> Self {
        self.block_l = l;
        self
    }

    /// Strip size override (kernel iterations per strip). Validated at
    /// build time against the SRF footprint of every variant in scope.
    pub fn strip_iterations(mut self, iters: usize) -> Self {
        self.strip_iterations = Some(iters);
        self
    }

    /// Host worker threads for the functional phase of the execution
    /// engine (simulated results are identical at any count).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Restrict the variants this configuration is expected to run.
    /// Strip-size validation only covers the variants in scope, so a
    /// strip too large for `fixed` can still be built for `variable`.
    pub fn variants(mut self, variants: &[Variant]) -> Self {
        self.variants = variants.to_vec();
        self
    }

    /// Restrict the workloads this configuration is expected to run.
    /// Strip-size validation uses the widest record in scope, so a
    /// strip too large for 9-word water records can still be built for
    /// the 3-word atomic workloads.
    pub fn workloads(mut self, workloads: &[Workload]) -> Self {
        self.workloads = workloads.to_vec();
        self
    }

    /// The interconnection network multi-node steps are priced over
    /// (paper Section 2.3; Table defaults give the 8,192-node system).
    pub fn network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Simulated node count for the multi-node runner
    /// (`streammd::multinode`). Validated at build time against the
    /// network size — an out-of-range count is a typed preflight error,
    /// not a mid-run panic.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Functional kernel-execution engine (batched SoA tape, scalar
    /// tape, or the reference interpreter). Unset, the legacy
    /// `MERRIMAC_KERNEL_ENGINE` default applies; prefer setting it here
    /// (or via `RunSpec::from_env_overrides` in `merrimac_bench`, which
    /// rejects malformed values with a typed error).
    pub fn engine(mut self, engine: KernelEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Lane width of the batched engine ([`KernelEngine::Batch`]): 8 or
    /// 16 iterations per SoA batch. Unset, the legacy
    /// `MERRIMAC_TAPE_BATCH` default applies (8). Results are
    /// bitwise-identical at either width; only host wall-clock differs.
    pub fn tape_batch(mut self, width: BatchWidth) -> Self {
        self.tape_batch = Some(width);
        self
    }

    /// Run the Error-severity static analysis passes
    /// (`merrimac_analysis`) over every built step program before
    /// executing it. Knob-level validation still happens in
    /// [`SimConfigBuilder::build`]; the program-level passes need the
    /// dataset and so run per step, refusing programs with Error
    /// diagnostics before a single simulated cycle.
    pub fn analyze(mut self) -> Self {
        self.analyze = true;
        self
    }

    /// Validate every knob and produce the application.
    pub fn build(self) -> Result<StreamMdApp, SimError> {
        if self.block_l == 0 {
            return Err(SimError::Config("block_l must be at least 1".into()));
        }
        if self.kernel_opt.unroll == 0 {
            return Err(SimError::Config("kernel unroll must be at least 1".into()));
        }
        if self.threads == Some(0) {
            return Err(SimError::Config("threads must be at least 1".into()));
        }
        if self.strip_iterations == Some(0) {
            return Err(SimError::Config(
                "strip_iterations must be at least 1".into(),
            ));
        }
        if self.cfg.clusters == 0 || self.cfg.srf_words_per_cluster == 0 {
            return Err(SimError::Config(
                "machine needs at least one cluster and a non-empty SRF".into(),
            ));
        }
        if !self.neighbor.cutoff.is_finite() || self.neighbor.cutoff <= 0.0 {
            return Err(SimError::Config(format!(
                "neighbour cutoff must be positive and finite, got {}",
                self.neighbor.cutoff
            )));
        }
        if !self.neighbor.skin.is_finite() || self.neighbor.skin < 0.0 {
            return Err(SimError::Config(format!(
                "neighbour skin must be non-negative and finite, got {}",
                self.neighbor.skin
            )));
        }
        if self.neighbor.rebuild_interval == 0 {
            return Err(SimError::Config(
                "neighbour rebuild_interval must be at least 1".into(),
            ));
        }
        if self.workloads.is_empty() {
            return Err(SimError::Config(
                "workload scope must name at least one workload".into(),
            ));
        }
        if let Some(strip) = self.strip_iterations {
            // Validate at the widest record in scope: any strip that
            // fits the widest workload fits the narrower ones too.
            let width = self
                .workloads
                .iter()
                .map(|w| w.width())
                .max()
                .expect("non-empty workload scope");
            for &variant in &self.variants {
                let needed = strip_working_set_per_cluster(
                    variant,
                    self.block_l,
                    strip,
                    self.cfg.clusters.max(1),
                    width,
                );
                if needed > self.cfg.srf_words_per_cluster {
                    return Err(SimError::StripSrfOverflow {
                        label: format!("variant {variant}, L = {}", self.block_l),
                        strip_iterations: strip as u64,
                        needed_words_per_cluster: needed,
                        capacity_words_per_cluster: self.cfg.srf_words_per_cluster,
                    });
                }
            }
        }
        if self.network.nodes_per_board == 0
            || self.network.boards_per_backplane == 0
            || self.network.backplanes == 0
        {
            return Err(SimError::Config(
                "network needs at least one node per board, board and backplane".into(),
            ));
        }
        // The multi-node preflight: reject node counts the modeled
        // network cannot hold, via the same `Topology::worst_level`
        // helper the runner and the analytic estimator use.
        let topo = Topology::new(self.network.clone());
        topo.worst_level(self.nodes).map_err(|e| match e {
            NetError::NodeCountOutOfRange { nodes, total } => {
                SimError::NodesOutOfRange { nodes, total }
            }
            other => SimError::Config(other.to_string()),
        })?;
        let threads = self.threads.unwrap_or(self.cfg.host_threads.max(1));
        Ok(StreamMdApp {
            threads,
            cfg: self.cfg,
            costs: self.costs,
            policy: self.policy,
            kernel_opt: self.kernel_opt,
            neighbor: self.neighbor,
            block_l: self.block_l,
            strip_iterations: self.strip_iterations,
            analyze: self.analyze,
            network: self.network,
            nodes: self.nodes,
            engine: self.engine.unwrap_or_else(KernelEngine::from_env),
            tape_batch: self.tape_batch.unwrap_or_else(BatchWidth::from_env),
        })
    }
}

/// SRF words per cluster a *full* strip's kernel working set needs —
/// the same accounting the scoreboard preflight
/// (`StreamProcessor::validate_program`) applies to the real program,
/// evaluated on the buffers each variant's emitter creates. The kernel
/// can only issue with all input streams live and all output streams
/// allocated, so this is a hard floor; a strip whose floor exceeds the
/// per-cluster SRF capacity can never run once the dataset is large
/// enough to fill the strip.
///
/// The `variable` variant's centre-record stream is dataset-dependent
/// (one 2·width-word record per centre run); the estimate uses the
/// minimum (a single centre plus the sentinel), so it only rejects
/// strips that are infeasible for *every* dataset. `width` is the
/// molecule record width (9 for water, 3 for atomic workloads).
pub(crate) fn strip_working_set_per_cluster(
    variant: Variant,
    block_l: usize,
    strip_iterations: usize,
    clusters: usize,
    width: usize,
) -> usize {
    let s = strip_iterations;
    let l = block_l;
    let w = width;
    let buffers: Vec<usize> = match variant {
        // c_pos, shift, n_pos in; c_partial, n_partial out.
        Variant::Expanded => vec![w * s; 5],
        // c_pos, shift, n_pos(L per block) in; c_force, n_partial out.
        Variant::Fixed => vec![w * s, w * s, w * l * s, w * s, w * l * s],
        // As fixed but no neighbour partials.
        Variant::Duplicated => vec![w * s, w * s, w * l * s, w * s],
        // n_pos, flags, centre records in; c_force, n_partial out.
        Variant::Variable => vec![w * s, s, 2 * w * 2, w * s, w * s],
    };
    buffers.iter().map(|b| b.div_ceil(clusters)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let app = SimConfigBuilder::new().build().expect("defaults are valid");
        assert_eq!(app.block_l, 8);
        // `host_threads` honours MERRIMAC_HOST_THREADS (the CI thread
        // matrix), so compare against the machine default, not 1.
        assert_eq!(
            app.threads,
            merrimac_arch::MachineConfig::default().host_threads.max(1)
        );
        assert!(app.strip_iterations.is_none());
    }

    #[test]
    fn rejects_degenerate_knobs() {
        for (b, what) in [
            (SimConfigBuilder::new().block_l(0), "block_l"),
            (SimConfigBuilder::new().threads(0), "threads"),
            (SimConfigBuilder::new().strip_iterations(0), "strip"),
            (
                SimConfigBuilder::new().kernel_opt(KernelOpt {
                    unroll: 0,
                    software_pipeline: false,
                }),
                "unroll",
            ),
            (
                SimConfigBuilder::new().neighbor(NeighborListParams {
                    cutoff: -1.0,
                    skin: 0.0,
                    rebuild_interval: 1,
                }),
                "cutoff",
            ),
            (
                SimConfigBuilder::new().neighbor(NeighborListParams {
                    cutoff: 1.0,
                    skin: f64::NAN,
                    rebuild_interval: 1,
                }),
                "skin",
            ),
            (
                SimConfigBuilder::new().neighbor(NeighborListParams {
                    cutoff: 1.0,
                    skin: 0.0,
                    rebuild_interval: 0,
                }),
                "rebuild",
            ),
        ] {
            let err = b.build().expect_err(what);
            assert!(matches!(err, SimError::Config(_)), "{what}: {err}");
        }
    }

    #[test]
    fn unrunnable_strip_is_rejected_naming_the_size() {
        // The ROADMAP deadlock configuration: fixed variant, strip 997.
        let err = SimConfigBuilder::new()
            .strip_iterations(997)
            .build()
            .expect_err("997-block fixed strips cannot be double-buffered");
        let msg = err.to_string();
        assert!(msg.contains("997"), "{msg}");
        assert!(msg.contains("fixed"), "{msg}");
    }

    #[test]
    fn variant_scope_limits_strip_validation() {
        // The same strip is fine for the compact per-interaction
        // variants.
        SimConfigBuilder::new()
            .strip_iterations(997)
            .variants(&[Variant::Variable, Variant::Expanded])
            .build()
            .expect("fits for variable/expanded");
        // And the variable variant tolerates very large strips (the
        // ablation sweep uses 4096).
        SimConfigBuilder::new()
            .strip_iterations(4096)
            .variants(&[Variant::Variable])
            .build()
            .expect("ablation-sized variable strips fit");
    }

    #[test]
    fn working_set_matches_scoreboard_floor_for_fixed_997() {
        // 997 blocks at L = 8: five buffers of 8973/8973/71784/8973/71784
        // words → 561+561+4487+561+4487 = 10657 words/cluster, over the
        // 8192-word bank.
        let w = strip_working_set_per_cluster(Variant::Fixed, 8, 997, 16, 9);
        assert_eq!(w, 10657);
        assert!(w > MachineConfig::default().srf_words_per_cluster);
    }

    #[test]
    fn workload_scope_limits_strip_validation() {
        // 997-block fixed strips overflow the SRF with 9-word water
        // records but fit the 3-word atomic records.
        let atomic = strip_working_set_per_cluster(Variant::Fixed, 8, 997, 16, 3);
        assert!(atomic <= MachineConfig::default().srf_words_per_cluster);
        SimConfigBuilder::new()
            .strip_iterations(997)
            .workloads(&[Workload::LjFluid, Workload::Charged])
            .build()
            .expect("atomic records keep the strip within the SRF");
        // Unscoped, water is in scope and the strip is rejected.
        SimConfigBuilder::new()
            .strip_iterations(997)
            .build()
            .expect_err("water in scope rejects the strip");
        // An empty scope is a config error, not a silent pass.
        let err = SimConfigBuilder::new()
            .workloads(&[])
            .build()
            .expect_err("empty workload scope");
        assert!(matches!(err, SimError::Config(_)));
    }

    #[test]
    fn node_count_validated_against_the_network() {
        // In range: the default network holds 8192 nodes.
        SimConfigBuilder::new().nodes(8192).build().unwrap();
        // Out of range is the typed multi-node preflight error.
        for nodes in [0usize, 8193] {
            let err = SimConfigBuilder::new().nodes(nodes).build().unwrap_err();
            match err {
                SimError::NodesOutOfRange { nodes: n, total } => {
                    assert_eq!(n, nodes);
                    assert_eq!(total, 8192);
                }
                other => panic!("expected NodesOutOfRange, got {other}"),
            }
        }
        // A degenerate network is rejected before building a topology.
        let err = SimConfigBuilder::new()
            .network(NetworkConfig {
                backplanes: 0,
                ..NetworkConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::Config(_)), "{err}");
    }

    #[test]
    fn threads_default_to_machine_host_threads() {
        let cfg = MachineConfig {
            host_threads: 6,
            ..MachineConfig::default()
        };
        let app = SimConfigBuilder::new().machine(cfg).build().unwrap();
        assert_eq!(app.threads, 6);
        let app = SimConfigBuilder::new().threads(3).build().unwrap();
        assert_eq!(app.threads, 3);
    }
}

//! Extension X2: StreamMD for multi-site water models.
//!
//! Section 5.4 of the paper: "more advanced models use up to 6 charges…
//! In all those models the location of the charges is considered to be
//! fixed relative to the molecule and thus does not require any
//! additional memory bandwidth… They also lead to a significant increase
//! in arithmetic intensity. Consequently, Merrimac will provide better
//! performance for those more accurate models."
//!
//! This module generalizes the `expanded` stream pipeline to any
//! fixed-charge N-site model and measures that claim end to end: TIP5P
//! computes ~1.8× the flops of SPC while moving 1.57× the words, a
//! measured ~14% intensity gain. (The paper's stronger version of the
//! claim — *no* additional bandwidth — assumes virtual charge sites are
//! derived in-kernel from the three atom positions rather than gathered;
//! with that optimization the intensity gain would be the full 1.8×.
//! Deriving sites requires in-kernel virtual-site force redistribution
//! and is left as the documented next step.) Shift records here are a
//! single 3-vector per interaction — the per-atom replication of the
//! 3-site layout is a layout convention, not a requirement.

use std::sync::Arc;

use md_sim::multisite::MultiSiteField;
use md_sim::neighbor::NeighborList;
use md_sim::pbc::Pbc;
use md_sim::system::WaterBox;
use md_sim::vec3::Vec3;
use merrimac_arch::{MachineConfig, OpCosts};
use merrimac_kernel::builder::{KernelBuilder, V3};
use merrimac_kernel::ir::StreamMode;
use merrimac_kernel::Kernel;
use merrimac_sim::machine::SimError;
use merrimac_sim::program::Memory;
use merrimac_sim::{CompiledKernel, KernelOpt, ProgramBuilder, StreamProcessor};

/// Outcome of a multi-site force step.
#[derive(Debug, Clone)]
pub struct MultiSiteOutcome {
    pub forces: Vec<Vec3>,
    pub cycles: u64,
    pub solution_flops: u64,
    pub solution_gflops: f64,
    pub mem_refs: u64,
    /// Measured arithmetic intensity (interaction flops / memory word).
    pub intensity: f64,
    /// Flops per interaction for this model.
    pub flops_per_interaction: u64,
}

/// Build the expanded-style interaction kernel for an N-site model.
/// Launch parameters: the `sites²` qq table (row-major), then C6, C12.
pub fn multisite_expanded_kernel(ff: &MultiSiteField) -> Kernel {
    let ns = ff.sites;
    let rec = (3 * ns) as u32;
    let mut b = KernelBuilder::new(format!("streammd_multisite_{ns}"));
    let s_cpos = b.input("c_positions", rec, StreamMode::EveryIteration);
    let s_shift = b.input("shift", 3, StreamMode::EveryIteration);
    let s_npos = b.input("n_positions", rec, StreamMode::EveryIteration);
    let o_cf = b.output("c_partial", rec);
    let o_nf = b.output("n_partial", rec);

    // Parameters.
    let mut qq = Vec::with_capacity(ns * ns);
    for _ in 0..ns * ns {
        qq.push(b.param());
    }
    let c6 = b.param();
    let c12 = b.param();
    let one = b.constant(1.0);
    let six = b.constant(6.0);
    let twelve = b.constant(12.0);
    let zero = b.constant(0.0);
    let zv = V3 {
        x: zero,
        y: zero,
        z: zero,
    };

    // Accumulator registers keep the energies live.
    let r_ec = b.reg(0.0);
    let r_el = b.reg(0.0);
    let r_vir = b.reg(0.0);
    let ec0 = b.read_reg(r_ec);
    let el0 = b.read_reg(r_el);
    let vir0 = b.read_reg(r_vir);

    let shift = b.read_v3(s_shift, 0);
    let mut c_sites = Vec::with_capacity(ns);
    let mut n_sites = Vec::with_capacity(ns);
    for s in 0..ns {
        let c = b.read_v3(s_cpos, (3 * s) as u32);
        c_sites.push(b.v3_add(c, shift));
        n_sites.push(b.read_v3(s_npos, (3 * s) as u32));
    }

    let mut fc = vec![zv; ns];
    let mut fn_ = vec![zv; ns];
    let mut vcs = Vec::new();
    let mut de_lj = zero;
    let mut vir_term = zero;
    for a in 0..ns {
        for nb in 0..ns {
            let charged = ff.qq[a * ns + nb] != 0.0;
            let lj = a == 0 && nb == 0;
            if !charged && !lj {
                continue;
            }
            let d = b.v3_sub(c_sites[a], n_sites[nb]);
            let r2 = b.v3_norm2(d);
            let r = b.sqrt(r2);
            let rinv = b.div(one, r);
            let rinv2 = b.mul(rinv, rinv);
            let mut fs = zero;
            if charged {
                let vc = b.mul(qq[a * ns + nb], rinv);
                vcs.push(vc);
                fs = b.mul(vc, rinv2);
            }
            if lj {
                let rinv4 = b.mul(rinv2, rinv2);
                let rinv6 = b.mul(rinv4, rinv2);
                let v6 = b.mul(c6, rinv6);
                let rinv12 = b.mul(rinv6, rinv6);
                let v12 = b.mul(c12, rinv12);
                de_lj = b.sub(v12, v6);
                let t12 = b.mul(twelve, v12);
                let u = b.nmsub(six, v6, t12);
                let fs_lj = b.mul(u, rinv2);
                fs = if charged { b.add(fs, fs_lj) } else { fs_lj };
            }
            let f = b.v3_scale(d, fs);
            fc[a] = b.v3_add(fc[a], f);
            fn_[nb] = b.v3_sub(fn_[nb], f);
            if lj {
                let vx = b.mul(d.x, f.x);
                let vxy = b.madd(d.y, f.y, vx);
                vir_term = b.madd(d.z, f.z, vxy);
            }
        }
    }
    // Reductions into the registers (balanced tree, as in `kernels`).
    let mut vc_sum = zero;
    if !vcs.is_empty() {
        let mut level = vcs.clone();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                next.push(if pair.len() == 2 {
                    b.add(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            level = next;
        }
        vc_sum = level[0];
    }
    let ec = b.add(ec0, vc_sum);
    let el = b.add(el0, de_lj);
    let vir = b.add(vir0, vir_term);
    b.set_reg(r_ec, ec);
    b.set_reg(r_el, el);
    b.set_reg(r_vir, vir);

    let fc_flat: Vec<_> = fc.iter().flat_map(|v| [v.x, v.y, v.z]).collect();
    let fn_flat: Vec<_> = fn_.iter().flat_map(|v| [v.x, v.y, v.z]).collect();
    b.write(o_cf, &fc_flat);
    b.write(o_nf, &fn_flat);
    b.build()
}

/// Canonical positions for an N-site model (plus one far dummy record).
fn canonical_positions_multi(system: &WaterBox) -> Vec<f64> {
    let pbc = system.pbc();
    let ns = system.num_sites();
    let n = system.num_molecules();
    let mut out = Vec::with_capacity((n + 1) * ns * 3);
    for m in 0..n {
        let mol = system.molecule(m);
        let o = pbc.wrap(mol[0]);
        for s in 0..ns {
            let p = if s == 0 {
                o
            } else {
                o + pbc.min_image(mol[s], mol[0])
            };
            out.extend_from_slice(&[p.x, p.y, p.z]);
        }
    }
    for s in 0..ns {
        let _ = s;
        out.extend_from_slice(&[-2.0e12, 0.0, 0.0]);
    }
    out
}

/// Run one expanded-layout force step for any N-site model on the
/// simulated machine.
pub fn run_multisite_step(
    cfg: &MachineConfig,
    system: &WaterBox,
    list: &NeighborList,
) -> Result<MultiSiteOutcome, SimError> {
    let ff = MultiSiteField::from_model(system.model());
    let ns = ff.sites;
    let rec = 3 * ns;
    let kernel = Arc::new(CompiledKernel::compile(
        multisite_expanded_kernel(&ff),
        cfg,
        &OpCosts::default(),
        KernelOpt::default(),
    ));
    let mut params = ff.qq.clone();
    params.push(ff.c6);
    params.push(ff.c12);

    let n = system.num_molecules();
    let pairs = list.flat_pairs();
    let mut mem = Memory::new();
    let positions = mem.region("positions", canonical_positions_multi(system));
    let pbc: Pbc = system.pbc();
    let shift_table: Vec<f64> = (0..Pbc::NUM_SHIFTS)
        .flat_map(|i| {
            let v = pbc.shift_vector(i);
            [v.x, v.y, v.z]
        })
        .collect();
    let shifts = mem.region("shift_table", shift_table);
    let forces = mem.region("forces", vec![0.0; (n + 1) * rec]);

    let mut pb = ProgramBuilder::new();
    let strip_iters =
        (cfg.srf_words_per_cluster * cfg.clusters / 3 / (4 * rec + 5)).clamp(16, 4096);
    for (sid, chunk) in pairs.chunks(strip_iters).enumerate() {
        pb.strip(sid);
        let i_central: Vec<u32> = chunk.iter().map(|(c, _, _)| *c).collect();
        let i_neighbor: Vec<u32> = chunk.iter().map(|(_, j, _)| *j).collect();
        let i_shift: Vec<u32> = chunk.iter().map(|(_, _, s)| *s as u32).collect();
        for (name, idx) in [
            ("i_central", &i_central),
            ("i_neighbor", &i_neighbor),
            ("i_shift", &i_shift),
        ] {
            let r = mem.region(
                &format!("{name}[{sid}]"),
                idx.iter().map(|&i| i as f64).collect(),
            );
            let buf = pb.buffer(&format!("{name}.{sid}"), 1);
            pb.load(format!("load {name} {sid}"), r, 1, 0, idx.len(), buf);
        }
        let b_cpos = pb.buffer(&format!("c_pos.{sid}"), rec);
        let b_shift = pb.buffer(&format!("shift.{sid}"), 3);
        let b_npos = pb.buffer(&format!("n_pos.{sid}"), rec);
        let b_cf = pb.buffer(&format!("c_partial.{sid}"), rec);
        let b_nf = pb.buffer(&format!("n_partial.{sid}"), rec);
        pb.gather(
            format!("gather c {sid}"),
            positions,
            rec,
            Arc::new(i_central.clone()),
            b_cpos,
        );
        pb.gather(
            format!("gather s {sid}"),
            shifts,
            3,
            Arc::new(i_shift.clone()),
            b_shift,
        );
        pb.gather(
            format!("gather n {sid}"),
            positions,
            rec,
            Arc::new(i_neighbor.clone()),
            b_npos,
        );
        pb.kernel(
            format!("interact {sid}"),
            kernel.clone(),
            vec![b_cpos, b_shift, b_npos],
            vec![b_cf, b_nf],
            params.clone(),
            chunk.len() as u64,
            (chunk.len() as u64).div_ceil(cfg.clusters as u64),
        );
        pb.scatter_add(
            format!("scatter c {sid}"),
            b_cf,
            forces,
            rec,
            Arc::new(i_central),
        );
        pb.scatter_add(
            format!("scatter n {sid}"),
            b_nf,
            forces,
            rec,
            Arc::new(i_neighbor),
        );
    }
    let program = pb.build();
    let report = StreamProcessor::new(cfg.clone()).run(&mut mem, &program)?;

    let raw = mem.data(forces);
    let out_forces: Vec<Vec3> = (0..n * ns)
        .map(|site| Vec3::new(raw[site * 3], raw[site * 3 + 1], raw[site * 3 + 2]))
        .collect();
    let flops_per = ff.flops_per_interaction();
    let solution_flops = pairs.len() as u64 * flops_per;
    Ok(MultiSiteOutcome {
        forces: out_forces,
        cycles: report.cycles,
        solution_flops,
        solution_gflops: cfg.gflops(solution_flops, report.cycles),
        mem_refs: report.counters.mem_refs,
        intensity: solution_flops as f64 / report.counters.mem_refs.max(1) as f64,
        flops_per_interaction: flops_per,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_sim::multisite::compute_forces_multisite;
    use md_sim::neighbor::NeighborListParams;
    use md_sim::water::WaterModel;

    fn setup(model: WaterModel) -> (WaterBox, NeighborList) {
        let s = WaterBox::builder()
            .molecules(64)
            .model(model)
            .seed(91)
            .build();
        let params = NeighborListParams {
            cutoff: (0.45 * s.pbc().side()).min(1.0),
            skin: 0.0,
            rebuild_interval: 1,
        };
        let nl = NeighborList::build(&s, params);
        (s, nl)
    }

    fn check_against_reference(model: WaterModel) {
        let (s, nl) = setup(model);
        let out = run_multisite_step(&MachineConfig::default(), &s, &nl).expect("run");
        let reference = compute_forces_multisite(&s, &nl);
        let scale = reference
            .forces
            .iter()
            .map(|f| f.norm())
            .fold(1.0f64, f64::max);
        for (i, (got, want)) in out.forces.iter().zip(&reference.forces).enumerate() {
            let err = (*got - *want).max_abs();
            assert!(err < 1e-8 * scale, "site {i}: err {err:.2e}");
        }
    }

    #[test]
    fn spc_through_the_generalized_path() {
        check_against_reference(WaterModel::spc());
    }

    #[test]
    fn tip5p_through_the_machine() {
        check_against_reference(WaterModel::tip5p());
    }

    #[test]
    fn tip5p_has_higher_intensity_than_spc() {
        // The paper's Section 5.4 claim, measured end to end.
        let (s3, nl3) = setup(WaterModel::spc());
        let (s5, nl5) = setup(WaterModel::tip5p());
        let cfg = MachineConfig::default();
        let spc = run_multisite_step(&cfg, &s3, &nl3).unwrap();
        let tip5p = run_multisite_step(&cfg, &s5, &nl5).unwrap();
        assert!(
            tip5p.intensity > spc.intensity * 1.08,
            "TIP5P AI {:.2} vs SPC {:.2}",
            tip5p.intensity,
            spc.intensity
        );
        assert!(tip5p.flops_per_interaction > spc.flops_per_interaction);
    }
}

//! StreamMD variant inventory (paper Table 3) and dataset statistics
//! (paper Table 2).

use serde::{Deserialize, Serialize};

/// The four StreamMD implementations evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Fully expanded interaction list: one molecule pair per kernel
    /// iteration, both partial forces written out.
    Expanded,
    /// Fixed-length neighbour lists of length L: centres replicated,
    /// dummy neighbours pad the tail; centre force reduced in-cluster.
    Fixed,
    /// Variable-length neighbour lists via Merrimac's conditional
    /// streams: the fastest variant in the paper.
    Variable,
    /// Fixed-length lists with every interaction computed twice (once for
    /// each molecule acting as centre); no neighbour partial forces are
    /// written, maximizing arithmetic intensity.
    Duplicated,
}

impl Variant {
    pub const ALL: [Variant; 4] = [
        Variant::Expanded,
        Variant::Fixed,
        Variant::Variable,
        Variant::Duplicated,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Variant::Expanded => "expanded",
            Variant::Fixed => "fixed",
            Variant::Variable => "variable",
            Variant::Duplicated => "duplicated",
        }
    }

    /// Table 3 description.
    pub fn description(self) -> &'static str {
        match self {
            Variant::Expanded => "fully expanded interaction list",
            Variant::Fixed => "fixed length neighbor list of 8 neighbors",
            Variant::Variable => "reduction with variable length list",
            Variant::Duplicated => "fixed length lists with duplicated computation",
        }
    }

    /// Does the variant use fixed-length neighbour blocks?
    pub fn uses_blocks(self) -> bool {
        matches!(self, Variant::Fixed | Variant::Duplicated)
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Dataset statistics in the shape of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Water molecules in the system.
    pub molecules: usize,
    /// Real molecule-pair interactions (half list).
    pub interactions: usize,
    /// Centre-occurrence count after replication for fixed-L blocks
    /// (Table 2's "repeated molecules for fixed").
    pub repeated_molecules_fixed: usize,
    /// Padded neighbour slots for fixed-L (Table 2's "total neighbors
    /// for fixed").
    pub total_neighbors_fixed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_variants() {
        assert_eq!(Variant::ALL.len(), 4);
        let names: Vec<&str> = Variant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names, vec!["expanded", "fixed", "variable", "duplicated"]);
    }

    #[test]
    fn block_classification() {
        assert!(Variant::Fixed.uses_blocks());
        assert!(Variant::Duplicated.uses_blocks());
        assert!(!Variant::Expanded.uses_blocks());
        assert!(!Variant::Variable.uses_blocks());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Variant::Variable.to_string(), "variable");
    }
}

//! End-to-end StreamMD: neighbour list → stream layout → stream program
//! → Merrimac simulation → forces + performance report.

use std::sync::Arc;

use md_sim::neighbor::{NeighborList, NeighborListParams};
use md_sim::system::WaterBox;
use md_sim::vec3::Vec3;
use merrimac_analysis::{Diagnostic, ProgramContext};
use merrimac_arch::{MachineConfig, NetworkConfig, OpCosts};
use merrimac_sim::machine::SimError;
use merrimac_sim::program::Memory;
use merrimac_sim::{
    AccessIntent, BatchWidth, CompiledKernel, KernelEngine, KernelOpt, ProgramBuilder, RegionId,
    RunReport, SdrPolicy, StreamProcessor, StreamProgram,
};

use crate::kernels;
use crate::layout::{build_layout, Layout, Strip};
use crate::metrics::PhaseBreakdown;
use crate::variant::{DatasetStats, Variant};
use crate::workload::Workload;

/// Figure 9-style performance summary of one force step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfSummary {
    pub cycles: u64,
    pub seconds: f64,
    /// Useful flops (workload flops/interaction × real interactions;
    /// 234 for water, 35 for the LJ fluid, 41 for charged particles).
    pub solution_flops: u64,
    pub solution_gflops: f64,
    /// All executed hardware flops (including dummies/duplicates).
    pub all_gflops: f64,
    /// Words moved by stream memory operations.
    pub mem_refs: u64,
    /// Measured arithmetic intensity: computed interaction flops per
    /// memory word (the Table 4 "measured" column).
    pub intensity_measured: f64,
    /// Figure 8 locality split (LRF, SRF, MEM fractions).
    pub locality: (f64, f64, f64),
    /// Fraction of the cheaper unit's busy time overlapped (Figure 7).
    pub overlap: f64,
    /// Per-phase cycle breakdown (gather/load/kernel/scatter-add/store
    /// plus scoreboard stalls) — the trend harness's structured view.
    pub phases: PhaseBreakdown,
}

/// Output of one StreamMD force step.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Per-site forces (kJ·mol⁻¹·nm⁻¹), `sites × molecules` entries
    /// (3 per molecule for water, 1 for atomic workloads).
    pub forces: Vec<Vec3>,
    pub perf: PerfSummary,
    pub report: RunReport,
    pub dataset: DatasetStats,
    /// Kernel iterations executed (incl. padding/sentinels).
    pub iterations: u64,
}

/// StreamMD application configuration.
#[derive(Debug, Clone)]
pub struct StreamMdApp {
    pub cfg: MachineConfig,
    pub costs: OpCosts,
    pub policy: SdrPolicy,
    pub kernel_opt: KernelOpt,
    pub neighbor: NeighborListParams,
    /// Fixed-list length L (paper: 8).
    pub block_l: usize,
    /// Strip size override (kernel iterations per strip).
    pub strip_iterations: Option<usize>,
    /// Host worker threads for the functional phase of the execution
    /// engine. Forces, cycles and counters are bitwise-identical at any
    /// thread count (see `merrimac_sim::parallel`).
    pub threads: usize,
    /// Run the Error-severity static analysis passes
    /// (`merrimac_analysis`) over every built step program before
    /// executing it, refusing programs with Error diagnostics. Enabled
    /// via `SimConfigBuilder::analyze`.
    pub analyze: bool,
    /// The interconnection network the multi-node runner prices
    /// messages over (paper Section 2.3 folded Clos).
    pub network: NetworkConfig,
    /// Simulated node count for [`crate::multinode::run_multinode`]
    /// (validated against `network` at build time; 1 = single node).
    pub nodes: usize,
    /// Functional kernel-execution engine (batched SoA tape, scalar
    /// tape, or the reference interpreter). Simulated results are
    /// bitwise-identical under all three; only host wall-clock differs.
    /// First-class configuration state: set it via
    /// [`crate::SimConfigBuilder::engine`] (or the checked
    /// `RunSpec::from_env_overrides` in `merrimac_bench`) instead of
    /// exporting `MERRIMAC_KERNEL_ENGINE` ad hoc.
    pub engine: KernelEngine,
    /// Lane width of the batched engine (8 or 16 iterations per SoA
    /// batch); irrelevant to results, which are bitwise-identical at
    /// either width.
    pub tape_batch: BatchWidth,
}

/// A built (but not yet executed) StreamMD step: the stream program,
/// its memory image, and the layout that produced them. This is the
/// input the static analysis pipeline (`merrimac_analysis`) consumes;
/// [`StreamMdApp::run_step_with_list`] builds one and runs it.
pub struct StepProgram {
    pub memory: Memory,
    pub program: StreamProgram,
    pub layout: Layout,
    /// The force-array region (scatter-add reduction target).
    pub forces: RegionId,
}

impl StreamMdApp {
    /// Validated construction — the preferred entry point. See
    /// [`crate::config::SimConfigBuilder`].
    pub fn builder() -> crate::config::SimConfigBuilder {
        crate::config::SimConfigBuilder::new()
    }

    pub fn new(cfg: MachineConfig) -> Self {
        Self {
            threads: cfg.host_threads.max(1),
            cfg,
            costs: OpCosts::default(),
            policy: SdrPolicy::Eager,
            kernel_opt: KernelOpt {
                unroll: 1,
                software_pipeline: true,
            },
            neighbor: NeighborListParams {
                cutoff: 1.0,
                skin: 0.0,
                rebuild_interval: 10,
            },
            block_l: 8,
            strip_iterations: None,
            analyze: false,
            network: NetworkConfig::default(),
            nodes: 1,
            engine: KernelEngine::from_env(),
            tape_batch: BatchWidth::from_env(),
        }
    }

    /// Default strip size: fill roughly a third of the SRF with live
    /// strip state so double buffering fits. `width` is the molecule
    /// record width in words (9 for water, 3 for atomic workloads).
    fn default_strip(&self, variant: Variant, width: usize) -> usize {
        let budget = self.cfg.srf_words_per_cluster * self.cfg.clusters / 3;
        let w = width;
        // Live SRF words per kernel iteration: position/shift/force
        // records plus index and flag words (width 9 reproduces the
        // water sizes 48, 29+19L, 29+10L, 20).
        let words_per_iter = match variant {
            Variant::Expanded => 5 * w + 3,
            Variant::Fixed => (3 * w + 2) + (2 * w + 1) * self.block_l,
            Variant::Duplicated => (3 * w + 2) + (w + 1) * self.block_l,
            Variant::Variable => 2 * w + 2,
        };
        (budget / words_per_iter).clamp(16, 4096)
    }

    fn compile(&self, workload: Workload, variant: Variant) -> Arc<CompiledKernel> {
        let k = kernels::workload_kernel(workload, variant, self.block_l);
        Arc::new(CompiledKernel::compile(
            k,
            &self.cfg,
            &self.costs,
            self.kernel_opt,
        ))
    }

    /// Run one force step of `variant` over `system`.
    pub fn run_step(&self, system: &WaterBox, variant: Variant) -> Result<StepOutcome, SimError> {
        let list = NeighborList::build(system, self.neighbor);
        self.run_step_with_list(system, &list, variant)
    }

    /// Build one force step's stream program without executing it —
    /// the layout, memory image, access intents and op sequence exactly
    /// as [`StreamMdApp::run_step_with_list`] would run them. This is
    /// the entry point for static analysis (`merrimac-lint`).
    pub fn build_step_program(
        &self,
        system: &WaterBox,
        list: &NeighborList,
        variant: Variant,
    ) -> StepProgram {
        let workload = Workload::of_model(system.model());
        let w = workload.width();
        let strip = self
            .strip_iterations
            .unwrap_or_else(|| self.default_strip(variant, w));
        let layout = build_layout(system, list, variant, self.block_l, strip);
        let kernel = self.compile(workload, variant);
        let params = kernels::workload_params(workload, system.model());

        let mut mem = Memory::new();
        let positions = mem.region("positions", layout.positions.clone());
        let shifts = mem.region("shift_table", layout.shift_table.clone());
        let forces = mem.region("forces", vec![0.0; layout.force_records * w]);

        let mut pb = ProgramBuilder::new();
        // Access intents: the positions table and shift table are
        // read-shared across every strip; the force array is a
        // cross-strip scatter-add reduction target. Declaring them lets
        // the partitioner run strips (and their memory timing) in
        // parallel.
        pb.intent(positions, AccessIntent::ReadOnly)
            .intent(shifts, AccessIntent::ReadOnly)
            .intent(forces, AccessIntent::ReduceAdd);
        for (sid, s) in layout.strips.iter().enumerate() {
            pb.strip(sid);
            match variant {
                Variant::Expanded => self.emit_expanded(
                    &mut pb, &mut mem, sid, s, w, &kernel, &params, positions, shifts, forces,
                ),
                Variant::Fixed | Variant::Duplicated => self.emit_blocks(
                    &mut pb,
                    &mut mem,
                    sid,
                    s,
                    w,
                    &kernel,
                    &params,
                    positions,
                    shifts,
                    forces,
                    variant == Variant::Fixed,
                ),
                Variant::Variable => self.emit_variable(
                    &mut pb, &mut mem, sid, s, w, &kernel, &params, positions, forces,
                ),
            }
        }
        // Stamp static underrun proofs so the functional engines run
        // their check-elided fast paths wherever safety is provable.
        let mut program = pb.build();
        program.underrun_proofs = program.prove_underruns();
        StepProgram {
            program,
            memory: mem,
            layout,
            forces,
        }
    }

    /// Run the full analysis pipeline over one variant's step program
    /// (see `merrimac_analysis`): SRF capacity preflight, SDR pressure,
    /// per-strip ordering, and the kernel dataflow lints.
    pub fn analyze_step(
        &self,
        system: &WaterBox,
        list: &NeighborList,
        variant: Variant,
    ) -> Vec<Diagnostic> {
        let step = self.build_step_program(system, list, variant);
        self.analyze_built(&step)
    }

    /// Run the full analysis pipeline over an already-built step
    /// program. Compile-once callers (the campaign service's artifact
    /// cache) use this so one `build_step_program` serves both the
    /// admission verdict and every execution of the same key.
    pub fn analyze_built(&self, step: &StepProgram) -> Vec<Diagnostic> {
        merrimac_analysis::analyze_program(&ProgramContext {
            cfg: &self.cfg,
            policy: self.policy,
            strip_lookahead: StreamProcessor::new(self.cfg.clone()).strip_lookahead,
            program: &step.program,
            memory: &step.memory,
        })
    }

    /// Run with a pre-built neighbour list.
    pub fn run_step_with_list(
        &self,
        system: &WaterBox,
        list: &NeighborList,
        variant: Variant,
    ) -> Result<StepOutcome, SimError> {
        let step = self.build_step_program(system, list, variant);
        if self.analyze {
            self.admit_built(&step)?;
        }
        self.run_step_program(system, &step)
    }

    /// Admission gate over an already-built step program: run the static
    /// analysis pipeline and reject on any `Error`-severity diagnostic.
    pub fn admit_built(&self, step: &StepProgram) -> Result<(), SimError> {
        let diags = self.analyze_built(step);
        let errors: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.severity == merrimac_analysis::Severity::Error)
            .collect();
        if let Some(first) = errors.first() {
            return Err(SimError::Program(format!(
                "static analysis rejected the program ({} error(s)):\n{}",
                errors.len(),
                first.render()
            )));
        }
        Ok(())
    }

    /// Execute an already-built step program — the per-run half of the
    /// compile-once / run-many split. The cached [`StepProgram`] stays
    /// pristine: execution works on a clone of its memory image, so the
    /// same build can be run any number of times (across jobs, threads
    /// or engines) with bitwise-identical results to a fresh
    /// [`StreamMdApp::run_step_with_list`] build.
    pub fn run_step_program(
        &self,
        system: &WaterBox,
        step: &StepProgram,
    ) -> Result<StepOutcome, SimError> {
        let mut mem = step.memory.clone();
        let proc = StreamProcessor::new(self.cfg.clone())
            .with_costs(self.costs.clone())
            .with_policy(self.policy)
            .with_engine(self.engine)
            .with_batch_width(self.tape_batch);
        let report = proc.run_parallel(&mut mem, &step.program, self.threads)?;

        // Extract forces for the real molecules (one Vec3 per site).
        let layout = &step.layout;
        let n = system.num_molecules();
        let sites = layout.width / 3;
        let raw = mem.data(step.forces);
        let mut out = Vec::with_capacity(n * sites);
        for site in 0..n * sites {
            out.push(Vec3::new(
                raw[site * 3],
                raw[site * 3 + 1],
                raw[site * 3 + 2],
            ));
        }

        let flops_per = layout.workload.flops_per_interaction();
        let real = layout.total_real_interactions();
        let computed = computed_interactions(layout);
        let solution_flops = real * flops_per;
        let seconds = report.seconds(&self.cfg);
        let perf = PerfSummary {
            cycles: report.cycles,
            seconds,
            solution_flops,
            solution_gflops: self.cfg.gflops(solution_flops, report.cycles),
            all_gflops: self
                .cfg
                .gflops(report.counters.hardware_flops, report.cycles),
            mem_refs: report.counters.mem_refs,
            intensity_measured: report.counters.arithmetic_intensity(computed * flops_per),
            locality: report.counters.locality_split(),
            overlap: report.timeline.overlap_fraction(),
            phases: PhaseBreakdown::from_report(&report),
        };
        Ok(StepOutcome {
            forces: out,
            perf,
            report,
            dataset: layout.stats,
            iterations: layout.total_iterations(),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_expanded(
        &self,
        pb: &mut ProgramBuilder,
        mem: &mut Memory,
        sid: usize,
        s: &Strip,
        w: usize,
        kernel: &Arc<CompiledKernel>,
        params: &[f64],
        positions: merrimac_sim::RegionId,
        shifts: merrimac_sim::RegionId,
        forces: merrimac_sim::RegionId,
    ) {
        let iters = s.iterations;
        // Index streams live in memory and are loaded through the SRF
        // before the address generators can use them.
        for (name, idx) in [
            ("i_central", &s.i_central),
            ("i_neighbor", &s.i_neighbor),
            ("i_shift", &s.i_shift),
        ] {
            let r = mem.region(
                &format!("{name}[{sid}]"),
                idx.iter().map(|&i| i as f64).collect(),
            );
            pb.intent(r, AccessIntent::ReadOnly);
            let buf = pb.buffer(&format!("{name}.{sid}"), 1);
            pb.load(format!("load {name} {sid}"), r, 1, 0, idx.len(), buf);
        }
        let b_cpos = pb.buffer(&format!("c_pos.{sid}"), w);
        let b_shift = pb.buffer(&format!("c_shift.{sid}"), w);
        let b_npos = pb.buffer(&format!("n_pos.{sid}"), w);
        let b_cf = pb.buffer(&format!("c_partial.{sid}"), w);
        let b_nf = pb.buffer(&format!("n_partial.{sid}"), w);
        pb.gather(
            format!("gather c_pos {sid}"),
            positions,
            w,
            Arc::new(s.i_central.clone()),
            b_cpos,
        );
        pb.gather(
            format!("gather shift {sid}"),
            shifts,
            w,
            Arc::new(s.i_shift.clone()),
            b_shift,
        );
        pb.gather(
            format!("gather n_pos {sid}"),
            positions,
            w,
            Arc::new(s.i_neighbor.clone()),
            b_npos,
        );
        pb.kernel(
            format!("interact {sid}"),
            kernel.clone(),
            vec![b_cpos, b_shift, b_npos],
            vec![b_cf, b_nf],
            params.to_vec(),
            iters,
            s.max_cluster_iterations,
        );
        pb.scatter_add(
            format!("scatter+ c {sid}"),
            b_cf,
            forces,
            w,
            Arc::new(s.c_scatter.clone()),
        );
        pb.scatter_add(
            format!("scatter+ n {sid}"),
            b_nf,
            forces,
            w,
            Arc::new(s.n_scatter.clone()),
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_blocks(
        &self,
        pb: &mut ProgramBuilder,
        mem: &mut Memory,
        sid: usize,
        s: &Strip,
        w: usize,
        kernel: &Arc<CompiledKernel>,
        params: &[f64],
        positions: merrimac_sim::RegionId,
        shifts: merrimac_sim::RegionId,
        forces: merrimac_sim::RegionId,
        neighbor_partials: bool,
    ) {
        for (name, idx) in [
            ("i_central", &s.i_central),
            ("i_neighbor", &s.i_neighbor),
            ("i_shift", &s.i_shift),
        ] {
            let r = mem.region(
                &format!("{name}[{sid}]"),
                idx.iter().map(|&i| i as f64).collect(),
            );
            pb.intent(r, AccessIntent::ReadOnly);
            let buf = pb.buffer(&format!("{name}.{sid}"), 1);
            pb.load(format!("load {name} {sid}"), r, 1, 0, idx.len(), buf);
        }
        let b_cpos = pb.buffer(&format!("c_pos.{sid}"), w);
        let b_shift = pb.buffer(&format!("c_shift.{sid}"), w);
        let b_npos = pb.buffer(&format!("n_pos.{sid}"), w);
        let b_cf = pb.buffer(&format!("c_force.{sid}"), w);
        pb.gather(
            format!("gather c_pos {sid}"),
            positions,
            w,
            Arc::new(s.i_central.clone()),
            b_cpos,
        );
        pb.gather(
            format!("gather shift {sid}"),
            shifts,
            w,
            Arc::new(s.i_shift.clone()),
            b_shift,
        );
        pb.gather(
            format!("gather n_pos {sid}"),
            positions,
            w,
            Arc::new(s.i_neighbor.clone()),
            b_npos,
        );
        let mut outputs = vec![b_cf];
        let mut b_nf = None;
        if neighbor_partials {
            let b = pb.buffer(&format!("n_partial.{sid}"), w);
            outputs.push(b);
            b_nf = Some(b);
        }
        pb.kernel(
            format!("interact {sid}"),
            kernel.clone(),
            vec![b_cpos, b_shift, b_npos],
            outputs,
            params.to_vec(),
            s.iterations,
            s.max_cluster_iterations,
        );
        pb.scatter_add(
            format!("scatter+ c {sid}"),
            b_cf,
            forces,
            w,
            Arc::new(s.c_scatter.clone()),
        );
        if let Some(b) = b_nf {
            pb.scatter_add(
                format!("scatter+ n {sid}"),
                b,
                forces,
                w,
                Arc::new(s.n_scatter.clone()),
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_variable(
        &self,
        pb: &mut ProgramBuilder,
        mem: &mut Memory,
        sid: usize,
        s: &Strip,
        w: usize,
        kernel: &Arc<CompiledKernel>,
        params: &[f64],
        positions: merrimac_sim::RegionId,
        forces: merrimac_sim::RegionId,
    ) {
        let iters = s.iterations;
        // Neighbour index stream.
        let r_idx = mem.region(
            &format!("i_neighbor[{sid}]"),
            s.i_neighbor.iter().map(|&i| i as f64).collect(),
        );
        pb.intent(r_idx, AccessIntent::ReadOnly);
        let b_idx = pb.buffer(&format!("i_neighbor.{sid}"), 1);
        pb.load(
            format!("load i_neighbor {sid}"),
            r_idx,
            1,
            0,
            s.i_neighbor.len(),
            b_idx,
        );
        // Flag stream.
        let r_flags = mem.region(&format!("flags[{sid}]"), s.flags.clone());
        pb.intent(r_flags, AccessIntent::ReadOnly);
        let b_flags = pb.buffer(&format!("flags.{sid}"), 1);
        pb.load(
            format!("load flags {sid}"),
            r_flags,
            1,
            0,
            s.flags.len(),
            b_flags,
        );
        // Centre records (sequential: prepared in list order by the
        // scalar core). Records are 2·width words: positions + shift.
        let rec = 2 * w;
        let n_centers = s.center_records.len() / rec;
        let r_centers = mem.region(&format!("center_recs[{sid}]"), s.center_records.clone());
        pb.intent(r_centers, AccessIntent::ReadOnly);
        let b_centers = pb.buffer(&format!("centers.{sid}"), rec);
        pb.load(
            format!("load centers {sid}"),
            r_centers,
            rec,
            0,
            n_centers,
            b_centers,
        );
        // Neighbour positions.
        let b_npos = pb.buffer(&format!("n_pos.{sid}"), w);
        pb.gather(
            format!("gather n_pos {sid}"),
            positions,
            w,
            Arc::new(s.i_neighbor.clone()),
            b_npos,
        );
        let b_cf = pb.buffer(&format!("c_force.{sid}"), w);
        let b_nf = pb.buffer(&format!("n_partial.{sid}"), w);
        pb.kernel(
            format!("interact {sid}"),
            kernel.clone(),
            vec![b_npos, b_flags, b_centers],
            vec![b_cf, b_nf],
            params.to_vec(),
            iters,
            s.max_cluster_iterations,
        );
        pb.scatter_add(
            format!("scatter+ c {sid}"),
            b_cf,
            forces,
            w,
            Arc::new(s.c_scatter.clone()),
        );
        pb.scatter_add(
            format!("scatter+ n {sid}"),
            b_nf,
            forces,
            w,
            Arc::new(s.n_scatter.clone()),
        );
    }
}

/// Interactions evaluated by the hardware (incl. dummies/duplicates).
fn computed_interactions(layout: &Layout) -> u64 {
    match layout.variant {
        Variant::Expanded => layout.total_iterations(),
        Variant::Fixed | Variant::Duplicated => layout.total_iterations() * layout.block_l as u64,
        Variant::Variable => layout.total_iterations(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_sim::force::compute_forces;

    fn small_system() -> (WaterBox, NeighborList, StreamMdApp) {
        let system = WaterBox::builder().molecules(64).seed(99).build();
        let params = NeighborListParams {
            cutoff: (0.45 * system.pbc().side()).min(1.0),
            skin: 0.0,
            rebuild_interval: 1,
        };
        let list = NeighborList::build(&system, params);
        let app = StreamMdApp::builder().neighbor(params).build().unwrap();
        (system, list, app)
    }

    fn assert_forces_match(system: &WaterBox, list: &NeighborList, outcome: &StepOutcome) {
        let reference = compute_forces(system, list);
        let scale = reference
            .forces
            .iter()
            .map(|f| f.norm())
            .fold(0.0f64, f64::max)
            .max(1.0);
        for (i, (got, want)) in outcome.forces.iter().zip(&reference.forces).enumerate() {
            let err = (*got - *want).max_abs();
            assert!(
                err < 1e-8 * scale,
                "site {i}: got {got:?} want {want:?} (err {err:.3e}, scale {scale:.3e})"
            );
        }
    }

    #[test]
    fn expanded_matches_reference() {
        let (system, list, app) = small_system();
        let out = app
            .run_step_with_list(&system, &list, Variant::Expanded)
            .unwrap();
        assert_forces_match(&system, &list, &out);
        assert!(out.perf.solution_gflops > 0.0);
    }

    #[test]
    fn fixed_matches_reference() {
        let (system, list, app) = small_system();
        let out = app
            .run_step_with_list(&system, &list, Variant::Fixed)
            .unwrap();
        assert_forces_match(&system, &list, &out);
    }

    #[test]
    fn duplicated_matches_reference() {
        let (system, list, app) = small_system();
        let out = app
            .run_step_with_list(&system, &list, Variant::Duplicated)
            .unwrap();
        assert_forces_match(&system, &list, &out);
    }

    #[test]
    fn variable_matches_reference() {
        let (system, list, app) = small_system();
        let out = app
            .run_step_with_list(&system, &list, Variant::Variable)
            .unwrap();
        assert_forces_match(&system, &list, &out);
    }

    fn atomic_system(model: md_sim::water::WaterModel) -> (WaterBox, NeighborList, StreamMdApp) {
        let system = WaterBox::builder()
            .molecules(64)
            .model(model)
            .density(21.0)
            .seed(99)
            .build();
        let params = NeighborListParams {
            cutoff: (0.45 * system.pbc().side()).min(1.0),
            skin: 0.0,
            rebuild_interval: 1,
        };
        let list = NeighborList::build(&system, params);
        let app = StreamMdApp::builder().neighbor(params).build().unwrap();
        (system, list, app)
    }

    #[test]
    fn atomic_workloads_match_reference_for_all_variants() {
        use md_sim::atomic::compute_forces_atomic;
        use md_sim::water::WaterModel;
        for model in [WaterModel::lj_atom(), WaterModel::charged_atom()] {
            let (system, list, app) = atomic_system(model.clone());
            let reference = compute_forces_atomic(&system, &list);
            let scale = reference
                .forces
                .iter()
                .map(|f| f.norm())
                .fold(0.0f64, f64::max)
                .max(1.0);
            for variant in Variant::ALL {
                let out = app.run_step_with_list(&system, &list, variant).unwrap();
                assert_eq!(out.forces.len(), system.num_molecules());
                for (i, (got, want)) in out.forces.iter().zip(&reference.forces).enumerate() {
                    let err = (*got - *want).max_abs();
                    assert!(
                        err < 1e-8 * scale,
                        "{}/{variant} atom {i}: got {got:?} want {want:?} (err {err:.3e})",
                        model.name
                    );
                }
                // Flop accounting follows the workload, not water's 234.
                let w = crate::workload::Workload::of_model(&model);
                assert_eq!(
                    out.perf.solution_flops,
                    reference.interactions * w.flops_per_interaction(),
                    "{}/{variant} solution flops",
                    model.name
                );
                assert!(out.perf.intensity_measured > 0.0);
            }
        }
    }

    #[test]
    fn atomic_intensity_orders_charged_above_lj() {
        use md_sim::water::WaterModel;
        // Same variant, same dataset shape: the charged kernel does more
        // arithmetic per word moved than the plain LJ kernel.
        let (lj_sys, lj_list, app) = atomic_system(WaterModel::lj_atom());
        let (ch_sys, ch_list, _) = atomic_system(WaterModel::charged_atom());
        let lj = app
            .run_step_with_list(&lj_sys, &lj_list, Variant::Variable)
            .unwrap();
        let ch = app
            .run_step_with_list(&ch_sys, &ch_list, Variant::Variable)
            .unwrap();
        assert!(
            ch.perf.intensity_measured > lj.perf.intensity_measured,
            "charged {} <= lj {}",
            ch.perf.intensity_measured,
            lj.perf.intensity_measured
        );
    }

    #[test]
    fn locality_is_lrf_dominated() {
        let (system, list, app) = small_system();
        let out = app
            .run_step_with_list(&system, &list, Variant::Variable)
            .unwrap();
        let (lrf, srf, mem) = out.perf.locality;
        assert!(lrf > 0.85, "LRF fraction {lrf}");
        // Paper Figure 8: "the relatively small difference between the
        // number of references made to the SRF and to memory indicates
        // the use of the SRF as a staging area for memory".
        let rel = (srf - mem).abs() / mem.max(1e-12);
        assert!(rel < 0.25, "SRF {srf} and MEM {mem} should be close");
    }

    #[test]
    fn thread_count_is_invisible_in_results() {
        let (system, list, app) = small_system();
        let base = StreamMdApp::builder()
            .neighbor(app.neighbor)
            .strip_iterations(200);
        for variant in Variant::ALL {
            let serial = base
                .clone()
                .threads(1)
                .build()
                .unwrap()
                .run_step_with_list(&system, &list, variant)
                .unwrap();
            let parallel = base
                .clone()
                .threads(4)
                .build()
                .unwrap()
                .run_step_with_list(&system, &list, variant)
                .unwrap();
            assert_eq!(
                serial.forces, parallel.forces,
                "{variant}: forces must be bitwise-identical"
            );
            assert_eq!(serial.perf.cycles, parallel.perf.cycles);
            assert_eq!(serial.report.counters, parallel.report.counters);
            assert_eq!(serial.perf.locality, parallel.perf.locality);
        }
    }

    #[test]
    fn stream_md_programs_partition_across_strips() {
        // All four paper variants read-share positions/shifts and
        // reduce into forces: the declared intents must admit them to
        // the parallel engine, strips and memory timing included.
        let (system, list, app) = small_system();
        // Small enough that even the block variants (whose iteration
        // count is pairs/L, not pairs) mine more than one strip.
        let app = StreamMdApp::builder()
            .neighbor(app.neighbor)
            .strip_iterations(40)
            .build()
            .unwrap();
        for variant in Variant::ALL {
            let out = app.run_step_with_list(&system, &list, variant).unwrap();
            assert!(
                out.perf.phases.partition_parallelized,
                "{variant}: fell back with {:?}",
                out.perf.phases.partition_fallback
            );
            assert!(
                out.perf.phases.partition_strips >= 2,
                "{variant}: only {} strip(s)",
                out.perf.phases.partition_strips
            );
        }
    }

    #[test]
    fn strip_mining_produces_multiple_strips() {
        let (system, list, app) = small_system();
        let app = StreamMdApp::builder()
            .neighbor(app.neighbor)
            .strip_iterations(200)
            .build()
            .unwrap();
        let out = app
            .run_step_with_list(&system, &list, Variant::Expanded)
            .unwrap();
        assert!(out.report.timeline.intervals.len() > 10);
        assert_forces_match(&system, &list, &out);
    }
}

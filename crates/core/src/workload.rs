//! Workload catalogue: which interaction model a stream program computes.
//!
//! Every layer of StreamMD — kernel generation, strip layout, SRF
//! sizing, the parallel engine, lints, reporting — used to assume the
//! 9-atom-pair SPC water kernel. [`Workload`] makes that choice
//! explicit so the same builder → intent → `analyze()` → parallel-engine
//! pipeline runs a catalogue of kernels with different flop/word ratios
//! (the MD-Bench observation): three-site water (234 flops/interaction),
//! a plain single-site Lennard-Jones fluid (35), and a charged
//! LJ+Coulomb particle (41).
//!
//! The workload is *derived from the model*, never passed separately —
//! a `WaterBox` built from [`WaterModel::lj_atom`] is an LJ-fluid
//! workload wherever it flows, so datasets, cache keys, and reports stay
//! consistent by construction.

use md_sim::water::WaterModel;
use serde::{Deserialize, Serialize};

/// Interaction model of a stream program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Three-site rigid water: 9 Coulomb atom pairs + O–O Lennard-Jones
    /// per molecule pair (the paper's kernel).
    Water,
    /// Single-site Lennard-Jones fluid: one LJ term per pair, no
    /// Coulomb — the low arithmetic-intensity end of the catalogue.
    LjFluid,
    /// Single-site charged particle: LJ + Coulomb per pair (adds a
    /// square root and keeps the divide) — higher intensity than LjFluid
    /// at the same record width.
    Charged,
}

impl Workload {
    pub const ALL: [Workload; 3] = [Workload::Water, Workload::LjFluid, Workload::Charged];

    /// Classify a particle model. Multi-site models are water-class
    /// (3-site kernels; ≥4-site models are rejected where the force
    /// field is built); single-site models split on charge.
    pub fn of_model(model: &WaterModel) -> Self {
        if model.num_sites() >= 3 {
            Workload::Water
        } else if model.sites[0].charge != 0.0 {
            Workload::Charged
        } else {
            Workload::LjFluid
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Workload::Water => "water",
            Workload::LjFluid => "lj",
            Workload::Charged => "charged",
        }
    }

    /// Interaction sites per molecule record.
    pub fn sites(self) -> usize {
        match self {
            Workload::Water => 3,
            Workload::LjFluid | Workload::Charged => 1,
        }
    }

    /// Words per molecule record (3 coordinates per site). Water's 9 is
    /// the paper's record width; atomic workloads use 3.
    pub fn width(self) -> usize {
        self.sites() * 3
    }

    /// Does the kernel evaluate a Coulomb term?
    pub fn coulomb(self) -> bool {
        !matches!(self, Workload::LjFluid)
    }

    /// Programmer-visible flops per interaction in the expanded-kernel
    /// accounting (water: the paper's 234; atomic values are tested
    /// against the generated kernels).
    pub fn flops_per_interaction(self) -> u64 {
        match self {
            Workload::Water => md_sim::force::FLOPS_PER_INTERACTION,
            Workload::LjFluid => md_sim::atomic::LJ_FLOPS_PER_INTERACTION,
            Workload::Charged => md_sim::atomic::CHARGED_FLOPS_PER_INTERACTION,
        }
    }

    /// Divides per interaction.
    pub fn divs_per_interaction(self) -> u64 {
        match self {
            Workload::Water => md_sim::force::DIVS_PER_INTERACTION,
            Workload::LjFluid => md_sim::atomic::LJ_DIVS_PER_INTERACTION,
            Workload::Charged => md_sim::atomic::CHARGED_DIVS_PER_INTERACTION,
        }
    }

    /// Square roots per interaction.
    pub fn sqrts_per_interaction(self) -> u64 {
        match self {
            Workload::Water => md_sim::force::SQRTS_PER_INTERACTION,
            Workload::LjFluid => md_sim::atomic::LJ_SQRTS_PER_INTERACTION,
            Workload::Charged => md_sim::atomic::CHARGED_SQRTS_PER_INTERACTION,
        }
    }

    /// Canonical particle model for this workload (SPC for water).
    pub fn default_model(self) -> WaterModel {
        match self {
            Workload::Water => WaterModel::spc(),
            Workload::LjFluid => WaterModel::lj_atom(),
            Workload::Charged => WaterModel::charged_atom(),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_from_models() {
        assert_eq!(Workload::of_model(&WaterModel::spc()), Workload::Water);
        assert_eq!(Workload::of_model(&WaterModel::tip5p()), Workload::Water);
        assert_eq!(
            Workload::of_model(&WaterModel::lj_atom()),
            Workload::LjFluid
        );
        assert_eq!(
            Workload::of_model(&WaterModel::charged_atom()),
            Workload::Charged
        );
    }

    #[test]
    fn default_models_round_trip() {
        for w in Workload::ALL {
            assert_eq!(Workload::of_model(&w.default_model()), w);
        }
    }

    #[test]
    fn record_widths() {
        assert_eq!(Workload::Water.width(), 9);
        assert_eq!(Workload::LjFluid.width(), 3);
        assert_eq!(Workload::Charged.width(), 3);
    }

    #[test]
    fn intensity_ordering_water_above_charged_above_lj() {
        // Flop/word at equal record width: charged > LJ; water tops both.
        let per_word = |w: Workload| w.flops_per_interaction() as f64 / w.width() as f64;
        assert!(per_word(Workload::Water) > per_word(Workload::Charged));
        assert!(per_word(Workload::Charged) > per_word(Workload::LjFluid));
    }

    #[test]
    fn op_mix() {
        assert_eq!(Workload::Water.divs_per_interaction(), 9);
        assert_eq!(Workload::LjFluid.sqrts_per_interaction(), 0);
        assert_eq!(Workload::Charged.sqrts_per_interaction(), 1);
        assert!(!Workload::LjFluid.coulomb());
        assert!(Workload::Charged.coulomb());
    }
}

//! Stream layout: turning the GROMACS neighbour list into the index and
//! data streams each StreamMD variant feeds the hardware.
//!
//! This is the "scalar code" half of the paper's Section 3: the neighbour
//! list is produced on the scalar core every few time-steps and passed to
//! the stream program through memory. The four variants differ only in
//! how the list is laid out:
//!
//! * `expanded` — one entry per interaction, centres repeated per pair;
//! * `fixed`/`duplicated` — fixed-L blocks with centre replication and
//!   dummy-neighbour padding (Figure 6 of the paper);
//! * `variable` — per-centre runs with a new-centre flag stream and a
//!   conditional centre-record stream.
//!
//! Dummy molecules are placed ~10¹² nm away so their force contribution
//! underflows to a physically negligible value while exercising exactly
//! the same arithmetic (the paper's dummies likewise "do not contribute
//! to the solution but consume resources").

use md_sim::neighbor::NeighborList;
use md_sim::pbc::Pbc;
use md_sim::system::WaterBox;

use crate::variant::{DatasetStats, Variant};
use crate::workload::Workload;

/// Distance scale of dummy molecules (nm).
const DUMMY_FAR: f64 = 2.0e12;

/// One strip of work (the unit of strip-mining, Section 3.2).
#[derive(Debug, Clone, Default)]
pub struct Strip {
    /// Kernel loop iterations in this strip.
    pub iterations: u64,
    /// Iterations of the busiest cluster under the round-robin
    /// distribution.
    pub max_cluster_iterations: u64,
    /// Real (non-dummy, non-duplicate-discounted) interactions.
    pub real_interactions: u64,
    /// Gather indices into the position region for centre molecules
    /// (one per iteration for `expanded`, one per block for fixed-L).
    pub i_central: Vec<u32>,
    /// Gather indices into the 27-entry shift table, parallel to
    /// `i_central`.
    pub i_shift: Vec<u32>,
    /// Gather indices for neighbour positions (padded for blocks).
    pub i_neighbor: Vec<u32>,
    /// Scatter-add record indices for centre forces.
    pub c_scatter: Vec<u32>,
    /// Scatter-add record indices for neighbour partial forces (empty
    /// for `duplicated`).
    pub n_scatter: Vec<u32>,
    /// `variable` only: one flag word per iteration (1.0 = new centre).
    pub flags: Vec<f64>,
    /// `variable` only: 2·width-word centre records (positions + shift,
    /// 18 words for water, 6 for atomic workloads), including the
    /// trailing sentinel.
    pub center_records: Vec<f64>,
}

/// Complete layout for one variant over one system + neighbour list.
#[derive(Debug, Clone)]
pub struct Layout {
    pub variant: Variant,
    /// Interaction model the records describe (derived from the system's
    /// particle model).
    pub workload: Workload,
    /// Words per molecule record (9 for 3-site water, 3 for atomic).
    pub width: usize,
    /// Canonical molecule position records: `molecules + 2` records of
    /// `width` words (two dummies at the end: neighbour dummy, centre
    /// dummy).
    pub positions: Vec<f64>,
    /// 27 shift records of `width` words (the shift vector replicated
    /// per site).
    pub shift_table: Vec<f64>,
    /// Force region record count (`molecules + 2`).
    pub force_records: usize,
    /// Index of the dummy record used for neighbour padding.
    pub dummy_neighbor: u32,
    /// Index of the dummy record absorbing sentinel/flush writes.
    pub dummy_center: u32,
    pub strips: Vec<Strip>,
    pub stats: DatasetStats,
    /// Fixed-L block length used (for block variants).
    pub block_l: usize,
}

/// Canonical position records: each molecule reconstructed rigidly about
/// its wrapped first site, exactly as the reference force engines do.
/// Records are `num_sites · 3` words wide (9 for water, 3 for atomic).
pub fn canonical_positions(system: &WaterBox) -> Vec<f64> {
    let pbc = system.pbc();
    let n = system.num_molecules();
    let ns = system.num_sites();
    let w = ns * 3;
    let mut out = Vec::with_capacity((n + 2) * w);
    for m in 0..n {
        let mol = system.molecule(m);
        let o = pbc.wrap(mol[0]);
        out.extend_from_slice(&[o.x, o.y, o.z]);
        for s in mol.iter().skip(1) {
            let p = o + pbc.min_image(*s, mol[0]);
            out.extend_from_slice(&[p.x, p.y, p.z]);
        }
    }
    // Dummy neighbour at −FAR, dummy centre at +FAR: mutual distance and
    // distance to every real molecule are enormous.
    for k in 0..w {
        out.push(if k % 3 == 0 { -DUMMY_FAR } else { 0.0 });
    }
    for k in 0..w {
        out.push(if k % 3 == 0 { DUMMY_FAR } else { 0.0 });
    }
    out
}

/// The 27-record shift table (record = shift vector replicated once per
/// site).
pub fn shift_table(pbc: Pbc, sites: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(27 * sites * 3);
    for idx in 0..Pbc::NUM_SHIFTS {
        let v = pbc.shift_vector(idx);
        for _ in 0..sites {
            out.extend_from_slice(&[v.x, v.y, v.z]);
        }
    }
    out
}

/// GROMACS shift-index inversion: negating the shift vector mirrors the
/// index about the centre of the 3×3×3 cube.
fn invert_shift(idx: u8) -> u8 {
    (26 - idx as usize) as u8
}

/// Build the layout for `variant`.
pub fn build_layout(
    system: &WaterBox,
    list: &NeighborList,
    variant: Variant,
    block_l: usize,
    strip_iterations: usize,
) -> Layout {
    assert!(block_l >= 1 && strip_iterations >= 1);
    let n = system.num_molecules();
    let dummy_neighbor = n as u32;
    let dummy_center = n as u32 + 1;
    let positions = canonical_positions(system);
    let table = shift_table(system.pbc(), system.num_sites());
    let workload = Workload::of_model(system.model());

    let mut layout = Layout {
        variant,
        workload,
        width: system.num_sites() * 3,
        positions,
        shift_table: table,
        force_records: n + 2,
        dummy_neighbor,
        dummy_center,
        strips: Vec::new(),
        stats: DatasetStats {
            molecules: n,
            interactions: list.num_pairs(),
            repeated_molecules_fixed: 0,
            total_neighbors_fixed: 0,
        },
        block_l,
    };

    // Fixed-layout statistics are reported for every variant (Table 2).
    let blocks_half: usize = list
        .lists
        .iter()
        .map(|l| l.neighbors.len().div_ceil(block_l))
        .sum();
    layout.stats.repeated_molecules_fixed = blocks_half;
    layout.stats.total_neighbors_fixed = blocks_half * block_l;

    match variant {
        Variant::Expanded => build_expanded(&mut layout, list, strip_iterations),
        Variant::Fixed => build_blocks(&mut layout, half_groups(list), strip_iterations, true),
        Variant::Duplicated => {
            build_blocks(&mut layout, full_groups(list, n), strip_iterations, false)
        }
        Variant::Variable => build_variable(&mut layout, list, strip_iterations, system),
    }
    layout
}

/// (centre, shift, neighbours) groups of the half list.
fn half_groups(list: &NeighborList) -> Vec<(u32, u8, Vec<u32>)> {
    list.lists
        .iter()
        .map(|l| (l.center, l.shift_index, l.neighbors.clone()))
        .collect()
}

/// Full-list groups: every pair appears under both molecules, with the
/// shift inverted for the reversed direction.
fn full_groups(list: &NeighborList, n: usize) -> Vec<(u32, u8, Vec<u32>)> {
    let mut per_center: Vec<std::collections::BTreeMap<u8, Vec<u32>>> = vec![Default::default(); n];
    for l in &list.lists {
        for &j in &l.neighbors {
            per_center[l.center as usize]
                .entry(l.shift_index)
                .or_default()
                .push(j);
            per_center[j as usize]
                .entry(invert_shift(l.shift_index))
                .or_default()
                .push(l.center);
        }
    }
    let mut out = Vec::new();
    for (c, by_shift) in per_center.into_iter().enumerate() {
        for (shift, neighbors) in by_shift {
            out.push((c as u32, shift, neighbors));
        }
    }
    out
}

fn build_expanded(layout: &mut Layout, list: &NeighborList, strip_iterations: usize) {
    let pairs = list.flat_pairs();
    for chunk in pairs.chunks(strip_iterations.max(1)) {
        let mut s = Strip {
            iterations: chunk.len() as u64,
            real_interactions: chunk.len() as u64,
            ..Default::default()
        };
        for &(c, j, shift) in chunk {
            s.i_central.push(c);
            s.i_shift.push(shift as u32);
            s.i_neighbor.push(j);
            s.c_scatter.push(c);
            s.n_scatter.push(j);
        }
        s.max_cluster_iterations = s.iterations.div_ceil(16);
        layout.strips.push(s);
    }
}

fn build_blocks(
    layout: &mut Layout,
    groups: Vec<(u32, u8, Vec<u32>)>,
    strip_iterations: usize,
    neighbor_partials: bool,
) {
    let l = layout.block_l;
    let dummy = layout.dummy_neighbor;
    // Emit blocks; strip = `strip_iterations` blocks.
    let mut blocks: Vec<(u32, u8, Vec<u32>)> = Vec::new();
    for (c, shift, neighbors) in groups {
        for chunk in neighbors.chunks(l) {
            let mut padded = chunk.to_vec();
            padded.resize(l, dummy);
            blocks.push((c, shift, padded));
        }
    }
    for chunk in blocks.chunks(strip_iterations.max(1)) {
        let mut s = Strip {
            iterations: chunk.len() as u64,
            ..Default::default()
        };
        for (c, shift, padded) in chunk {
            s.i_central.push(*c);
            s.i_shift.push(*shift as u32);
            s.c_scatter.push(*c);
            for &j in padded {
                s.i_neighbor.push(j);
                if neighbor_partials {
                    s.n_scatter.push(j);
                }
                if j != dummy {
                    s.real_interactions += 1;
                }
            }
        }
        s.max_cluster_iterations = s.iterations.div_ceil(16);
        layout.strips.push(s);
    }
    // For `duplicated` every real pair appears twice; the halving is done
    // globally in `Layout::total_real_interactions` so per-strip odd
    // counts do not lose remainders.
    let _ = neighbor_partials;
}

fn build_variable(
    layout: &mut Layout,
    list: &NeighborList,
    strip_iterations: usize,
    system: &WaterBox,
) {
    let pbc = system.pbc();
    let w = layout.width;
    let sites = w / 3;
    let dummy_n = layout.dummy_neighbor;
    let dummy_c = layout.dummy_center;
    // Partition centre lists into strips of roughly `strip_iterations`
    // interactions.
    let mut groups = half_groups(list);
    groups.retain(|(_, _, n)| !n.is_empty());
    let mut start = 0usize;
    while start < groups.len() {
        let mut end = start;
        let mut iters = 0usize;
        while end < groups.len() && (iters == 0 || iters + groups[end].2.len() <= strip_iterations)
        {
            iters += groups[end].2.len();
            end += 1;
        }
        let slice = &groups[start..end];
        let mut s = Strip::default();
        // Leading flush lands in the dummy-centre force slot.
        s.c_scatter.push(dummy_c);
        let mut run_lengths: Vec<u64> = Vec::with_capacity(slice.len());
        for (c, shift, neighbors) in slice.iter() {
            // Centre record: canonical positions + replicated shift.
            let base = *c as usize * w;
            s.center_records
                .extend_from_slice(&layout.positions[base..base + w]);
            let v = pbc.shift_vector(*shift as usize);
            for _ in 0..sites {
                s.center_records.extend_from_slice(&[v.x, v.y, v.z]);
            }
            for (k, &j) in neighbors.iter().enumerate() {
                s.flags.push(if k == 0 { 1.0 } else { 0.0 });
                s.i_neighbor.push(j);
                s.n_scatter.push(j);
            }
            s.c_scatter.push(*c);
            run_lengths.push(neighbors.len() as u64);
            s.real_interactions += neighbors.len() as u64;
        }
        // Sentinel: flush the last centre, consume the dummy centre
        // record, interact with the dummy neighbour.
        s.flags.push(1.0);
        s.i_neighbor.push(dummy_n);
        s.n_scatter.push(dummy_n);
        let base = dummy_c as usize * w;
        s.center_records
            .extend_from_slice(&layout.positions[base..base + w]);
        s.center_records.extend(std::iter::repeat_n(0.0, w));

        s.iterations = s.i_neighbor.len() as u64;
        // Conditional streams let every cluster pull whole centre runs at
        // its own rate; the scalar code orders the runs longest-first, so
        // the distribution behaves like LPT scheduling onto 16 machines.
        // Simulate that assignment to bound the busiest cluster (plus the
        // sentinel-like fill iteration).
        run_lengths.sort_unstable_by(|a, b| b.cmp(a));
        let mut load = [0u64; 16];
        for r in run_lengths {
            let min = load.iter_mut().min().expect("16 clusters");
            *min += r;
        }
        s.max_cluster_iterations = load.iter().copied().max().unwrap_or(0) + 1;
        layout.strips.push(s);
        start = end;
    }
}

impl Layout {
    /// Total kernel iterations across strips.
    pub fn total_iterations(&self) -> u64 {
        self.strips.iter().map(|s| s.iterations).sum()
    }

    /// Total real interactions (each physical pair counted once; the
    /// `duplicated` variant's two evaluations per pair are discounted).
    pub fn total_real_interactions(&self) -> u64 {
        let sum: u64 = self.strips.iter().map(|s| s.real_interactions).sum();
        if self.variant == Variant::Duplicated {
            sum / 2
        } else {
            sum
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_sim::neighbor::NeighborListParams;

    fn setup(n: usize) -> (WaterBox, NeighborList) {
        let s = WaterBox::builder().molecules(n).seed(77).build();
        let params = NeighborListParams {
            cutoff: (0.45 * s.pbc().side()).min(1.0),
            skin: 0.0,
            rebuild_interval: 1,
        };
        let nl = NeighborList::build(&s, params);
        (s, nl)
    }

    #[test]
    fn expanded_counts() {
        let (s, nl) = setup(64);
        let lay = build_layout(&s, &nl, Variant::Expanded, 8, 500);
        assert_eq!(lay.total_iterations() as usize, nl.num_pairs());
        assert_eq!(lay.total_real_interactions() as usize, nl.num_pairs());
        for strip in &lay.strips {
            assert_eq!(strip.i_central.len(), strip.iterations as usize);
            assert_eq!(strip.i_neighbor.len(), strip.iterations as usize);
        }
    }

    #[test]
    fn fixed_blocks_are_padded() {
        let (s, nl) = setup(64);
        let lay = build_layout(&s, &nl, Variant::Fixed, 8, 100);
        let blocks: u64 = lay.strips.iter().map(|s| s.iterations).sum();
        assert_eq!(blocks as usize, lay.stats.repeated_molecules_fixed);
        for strip in &lay.strips {
            assert_eq!(strip.i_neighbor.len(), strip.iterations as usize * 8);
        }
        assert_eq!(lay.total_real_interactions() as usize, nl.num_pairs());
        // Padding exists.
        let dummies: usize = lay
            .strips
            .iter()
            .flat_map(|s| &s.i_neighbor)
            .filter(|&&j| j == lay.dummy_neighbor)
            .count();
        assert_eq!(dummies, lay.stats.total_neighbors_fixed - nl.num_pairs(),);
    }

    #[test]
    fn duplicated_visits_each_pair_twice() {
        let (s, nl) = setup(64);
        let lay = build_layout(&s, &nl, Variant::Duplicated, 8, 100);
        let real_neighbor_slots: usize = lay
            .strips
            .iter()
            .flat_map(|s| &s.i_neighbor)
            .filter(|&&j| j != lay.dummy_neighbor)
            .count();
        assert_eq!(real_neighbor_slots, 2 * nl.num_pairs());
        assert_eq!(lay.total_real_interactions() as usize, nl.num_pairs());
        // No neighbour scatter.
        assert!(lay.strips.iter().all(|s| s.n_scatter.is_empty()));
    }

    #[test]
    fn variable_flags_and_sentinels() {
        let (s, nl) = setup(64);
        let lay = build_layout(&s, &nl, Variant::Variable, 8, 300);
        for strip in &lay.strips {
            assert_eq!(strip.flags.len(), strip.iterations as usize);
            // Flag count = centre lists + sentinel = c_scatter entries.
            let flags: usize = strip.flags.iter().filter(|&&f| f != 0.0).count();
            assert_eq!(flags, strip.c_scatter.len() - 1 + 1);
            assert_eq!(strip.center_records.len() % 18, 0);
            assert_eq!(strip.center_records.len() / 18, flags);
            // First flag always fires.
            assert_eq!(strip.flags[0], 1.0);
        }
        // All real interactions covered (sentinels excluded).
        assert_eq!(lay.total_real_interactions() as usize, nl.num_pairs());
    }

    #[test]
    fn invert_shift_round_trips() {
        for i in 0..27u8 {
            assert_eq!(invert_shift(invert_shift(i)), i);
        }
        assert_eq!(invert_shift(13), 13); // central shift is its own inverse
    }

    #[test]
    fn canonical_positions_have_dummies() {
        let (s, _) = setup(27);
        let p = canonical_positions(&s);
        assert_eq!(p.len(), (27 + 2) * 9);
        assert_eq!(p[27 * 9], -DUMMY_FAR);
        assert_eq!(p[28 * 9], DUMMY_FAR);
    }

    #[test]
    fn shift_table_matches_pbc() {
        let pbc = Pbc::cubic(3.0);
        let t = shift_table(pbc, 3);
        assert_eq!(t.len(), 27 * 9);
        // Central shift record is all zeros.
        assert!(t[13 * 9..14 * 9].iter().all(|&x| x == 0.0));
        // Atomic table: same shifts, one replica per record.
        let ta = shift_table(pbc, 1);
        assert_eq!(ta.len(), 27 * 3);
        for idx in 0..27 {
            assert_eq!(ta[idx * 3..idx * 3 + 3], t[idx * 9..idx * 9 + 3]);
        }
    }

    #[test]
    fn atomic_layouts_use_3_word_records() {
        use md_sim::water::WaterModel;
        let s = WaterBox::builder()
            .molecules(64)
            .model(WaterModel::lj_atom())
            .density(21.0)
            .seed(78)
            .build();
        let params = NeighborListParams {
            cutoff: (0.45 * s.pbc().side()).min(1.0),
            skin: 0.0,
            rebuild_interval: 1,
        };
        let nl = NeighborList::build(&s, params);
        for v in Variant::ALL {
            let lay = build_layout(&s, &nl, v, 8, 100);
            assert_eq!(lay.width, 3);
            assert_eq!(lay.workload, Workload::LjFluid);
            assert_eq!(lay.positions.len(), (64 + 2) * 3);
            assert_eq!(lay.shift_table.len(), 27 * 3);
            assert_eq!(lay.total_real_interactions() as usize, nl.num_pairs());
            if v == Variant::Variable {
                for strip in &lay.strips {
                    // 6-word centre records: 3 position + 3 shift.
                    assert_eq!(strip.center_records.len() % 6, 0);
                }
            }
        }
        // Dummies follow the width-3 pattern.
        let p = canonical_positions(&s);
        assert_eq!(p[64 * 3], -2.0e12);
        assert_eq!(p[65 * 3], 2.0e12);
    }

    #[test]
    fn strips_respect_size_target() {
        let (s, nl) = setup(125);
        let lay = build_layout(&s, &nl, Variant::Expanded, 8, 64);
        for strip in &lay.strips {
            assert!(strip.iterations <= 64);
        }
        assert!(lay.strips.len() > 1);
    }
}

//! Multi-timestep MD driven by the simulated Merrimac node.
//!
//! This is the full integration loop the paper describes: "Most of the
//! application can initially be run on the scalar processor and only the
//! time consuming computations are streamed... We are currently
//! concentrating on the force interaction of water molecules and
//! interface with the rest of GROMACS directly through Merrimac's shared
//! memory system." Here the "scalar processor" work — integration,
//! constraints, neighbour-list construction — runs in plain Rust
//! (`md-sim`), while every force evaluation goes through the stream
//! program on the simulated machine.
//!
//! The driver also accumulates the machine-level cost of the whole
//! trajectory, which is what a capability-machine user would care about:
//! simulated Merrimac cycles per MD step, amortizing the scalar-side
//! neighbour list rebuilds exactly as GROMACS does ("the overhead of the
//! neighbor list is kept to a minimum by only generating it once every
//! several time-steps").

use md_sim::integrate::Integrator;
use md_sim::neighbor::NeighborList;
use md_sim::system::WaterBox;
use md_sim::units::KB;
use md_sim::vec3::Vec3;
use merrimac_sim::machine::SimError;
use merrimac_sim::Counters;
use rayon::prelude::*;

use crate::app::StreamMdApp;
use crate::variant::Variant;

/// The three rigid-water distance constraints (site pair, squared rest
/// length) plus the site masses — shared by SHAKE and RATTLE.
#[derive(Debug, Clone, Copy)]
struct RigidWater {
    constraints: [(usize, usize, f64); 3],
    masses: [f64; 3],
}

impl RigidWater {
    fn of(system: &WaterBox) -> Self {
        let model = system.model();
        let d01 = (model.sites[1].offset - model.sites[0].offset).norm2();
        let d02 = (model.sites[2].offset - model.sites[0].offset).norm2();
        let d12 = (model.sites[2].offset - model.sites[1].offset).norm2();
        Self {
            constraints: [(0, 1, d01), (0, 2, d02), (1, 2, d12)],
            masses: [
                model.sites[0].mass,
                model.sites[1].mass,
                model.sites[2].mass,
            ],
        }
    }
}

/// Per-step record of a driven trajectory.
#[derive(Debug, Clone, Copy)]
pub struct DriverStep {
    /// Simulated machine cycles spent on this step's force evaluation.
    pub force_cycles: u64,
    /// Whether the neighbour list was rebuilt before this step.
    pub rebuilt_list: bool,
    /// Kinetic energy after the step (kJ/mol).
    pub kinetic: f64,
    /// Instantaneous temperature (K).
    pub temperature: f64,
}

/// Result of a driven trajectory.
#[derive(Debug, Clone)]
pub struct DriverReport {
    pub steps: Vec<DriverStep>,
    /// Total simulated Merrimac cycles across all force evaluations.
    pub total_force_cycles: u64,
    /// Neighbour-list rebuilds performed.
    pub rebuilds: usize,
    /// Machine counters summed over every force evaluation. All fields
    /// are `u64` event counts, so the aggregation is lossless and
    /// independent of execution order or thread count.
    pub total_counters: Counters,
}

impl DriverReport {
    /// Mean simulated cycles per MD step.
    pub fn cycles_per_step(&self) -> f64 {
        if self.steps.is_empty() {
            0.0
        } else {
            self.total_force_cycles as f64 / self.steps.len() as f64
        }
    }

    /// Wall-clock seconds per step at the machine clock.
    pub fn seconds_per_step(&self, clock_hz: f64) -> f64 {
        self.cycles_per_step() / clock_hz
    }
}

/// MD driver: velocity Verlet + SHAKE on the scalar side, forces from
/// the stream unit.
#[derive(Debug, Clone)]
pub struct MerrimacDriver {
    pub app: StreamMdApp,
    pub variant: Variant,
    /// Time step (ps).
    pub dt: f64,
    /// SHAKE tolerance.
    pub shake_tol: f64,
}

impl MerrimacDriver {
    pub fn new(app: StreamMdApp, variant: Variant) -> Self {
        Self {
            app,
            variant,
            dt: 0.002,
            shake_tol: 1e-10,
        }
    }

    /// Evaluate forces on the simulated machine.
    fn forces(
        &self,
        system: &WaterBox,
        list: &NeighborList,
    ) -> Result<(Vec<Vec3>, u64, Counters), SimError> {
        let out = self.app.run_step_with_list(system, list, self.variant)?;
        Ok((out.forces, out.perf.cycles, out.report.counters))
    }

    /// Run `steps` MD steps, returning the trajectory report. The system
    /// is advanced in place.
    pub fn run(&self, system: &mut WaterBox, steps: usize) -> Result<DriverReport, SimError> {
        // Reuse the scalar-side integrator mechanics for constraints by
        // delegating the position/velocity updates to a private Verlet
        // implementation mirroring `md_sim::integrate`.
        let integ = Integrator {
            dt: self.dt,
            neighbor: self.app.neighbor,
            shake_tol: self.shake_tol,
            max_iter: 100,
        };
        let masses: Vec<f64> = system.model().sites.iter().map(|s| s.mass).collect();
        let inv_m: Vec<f64> = masses.iter().map(|m| 1.0 / m).collect();
        let ns = system.num_sites();
        // Rigid 3-site molecules keep 6 DoF each (translation + rotation);
        // point particles keep 3. Both lose 3 to momentum conservation.
        let constrained = ns == 3;
        let dof = if constrained {
            (6 * system.num_molecules()) as f64 - 3.0
        } else {
            (3 * ns * system.num_molecules()) as f64 - 3.0
        };

        let mut list = NeighborList::build(system, self.app.neighbor);
        let mut rebuilds = 1usize;
        let (mut forces, mut cycles, counters) = self.forces(system, &list)?;
        let mut drift = 0.0f64;
        let mut report = DriverReport {
            steps: Vec::with_capacity(steps),
            total_force_cycles: 0,
            rebuilds: 0,
            total_counters: Counters::default(),
        };
        report.total_force_cycles += cycles;
        report.total_counters.add(&counters);

        for step in 0..steps {
            // Half kick.
            for (i, v) in system.velocities_mut().iter_mut().enumerate() {
                *v += forces[i] * (inv_m[i % ns] * self.dt * 0.5);
            }
            // Drift + constraints (reuse the integrator's SHAKE by doing
            // a zero-force half step through its public surface is not
            // possible; replicate the update here).
            let old_pos = system.positions().to_vec();
            let mut new_pos = old_pos.clone();
            for i in 0..new_pos.len() {
                new_pos[i] = old_pos[i] + system.velocities()[i] * self.dt;
            }
            if constrained {
                shake_rigid_water(
                    system,
                    &old_pos,
                    &mut new_pos,
                    self.shake_tol,
                    self.app.threads,
                );
            }
            let mut max_disp = 0.0f64;
            {
                let vel = system.velocities_mut();
                for i in 0..new_pos.len() {
                    vel[i] = (new_pos[i] - old_pos[i]) / self.dt;
                }
            }
            for i in 0..new_pos.len() {
                max_disp = max_disp.max((new_pos[i] - old_pos[i]).norm());
            }
            system.positions_mut().copy_from_slice(&new_pos);
            drift += max_disp;

            // Neighbour list policy: scheduled rebuild or exhausted skin.
            let scheduled = (step + 1) % self.app.neighbor.rebuild_interval == 0;
            let rebuilt = scheduled || drift * 2.0 > self.app.neighbor.skin;
            if rebuilt {
                list = NeighborList::build(system, self.app.neighbor);
                rebuilds += 1;
                drift = 0.0;
            }
            let (f, c, counters) = self.forces(system, &list)?;
            forces = f;
            cycles = c;
            report.total_force_cycles += cycles;
            report.total_counters.add(&counters);

            // Second half kick + velocity constraint projection.
            for (i, v) in system.velocities_mut().iter_mut().enumerate() {
                *v += forces[i] * (inv_m[i % ns] * self.dt * 0.5);
            }
            if constrained {
                let pos_snapshot = system.positions().to_vec();
                rattle_rigid_water(
                    system,
                    &pos_snapshot,
                    self.shake_tol,
                    self.dt,
                    self.app.threads,
                );
            }

            let ke: f64 = system
                .velocities()
                .iter()
                .enumerate()
                .map(|(i, v)| 0.5 * masses[i % ns] * v.norm2())
                .sum();
            report.steps.push(DriverStep {
                force_cycles: cycles,
                rebuilt_list: rebuilt,
                kinetic: ke,
                temperature: 2.0 * ke / (dof * KB),
            });
        }
        report.rebuilds = rebuilds;
        let _ = integ; // parameters documented above; scalar mechanics inlined
        Ok(report)
    }
}

/// Fan a pure per-molecule constraint solve across `threads` workers.
/// Molecules are independent and the map is order-preserving, so the
/// result is bitwise-identical at every thread count.
fn per_molecule(n: usize, threads: usize, f: impl Fn(usize) -> [Vec3; 3] + Sync) -> Vec<[Vec3; 3]> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("thread pool");
    pool.install(|| (0..n).into_par_iter().map(f).collect())
}

/// SHAKE for rigid 3-site water (shared with the reference integrator's
/// constraint topology), parallel over molecules.
fn shake_rigid_water(
    system: &WaterBox,
    old_pos: &[Vec3],
    new_pos: &mut [Vec3],
    tol: f64,
    threads: usize,
) {
    let w = RigidWater::of(system);
    let solved = per_molecule(system.num_molecules(), threads, |m| {
        let base = m * 3;
        let mut cur = [new_pos[base], new_pos[base + 1], new_pos[base + 2]];
        for _ in 0..100 {
            let mut converged = true;
            for &(a, b, d2) in &w.constraints {
                let d = cur[a] - cur[b];
                let diff = d.norm2() - d2;
                if diff.abs() > tol * d2 {
                    converged = false;
                    let ref_d = old_pos[base + a] - old_pos[base + b];
                    let g = diff / (2.0 * ref_d.dot(d) * (1.0 / w.masses[a] + 1.0 / w.masses[b]));
                    cur[a] -= ref_d * (g / w.masses[a]);
                    cur[b] += ref_d * (g / w.masses[b]);
                }
            }
            if converged {
                break;
            }
        }
        cur
    });
    for (m, mol) in solved.iter().enumerate() {
        new_pos[m * 3..m * 3 + 3].copy_from_slice(mol);
    }
}

/// RATTLE velocity projection for rigid 3-site water, parallel over
/// molecules.
fn rattle_rigid_water(system: &mut WaterBox, pos: &[Vec3], tol: f64, dt: f64, threads: usize) {
    let w = RigidWater::of(system);
    let n = system.num_molecules();
    let vel = system.velocities_mut();
    let solved = per_molecule(n, threads, |m| {
        let base = m * 3;
        let mut v = [vel[base], vel[base + 1], vel[base + 2]];
        for _ in 0..100 {
            let mut converged = true;
            for &(a, b, d2) in &w.constraints {
                let d = pos[base + a] - pos[base + b];
                let vrel = v[a] - v[b];
                let dv = d.dot(vrel);
                if dv.abs() > tol * d2 / dt {
                    converged = false;
                    let k = dv / (d.norm2() * (1.0 / w.masses[a] + 1.0 / w.masses[b]));
                    v[a] -= d * (k / w.masses[a]);
                    v[b] += d * (k / w.masses[b]);
                }
            }
            if converged {
                break;
            }
        }
        v
    });
    for (m, mol) in solved.iter().enumerate() {
        vel[m * 3..m * 3 + 3].copy_from_slice(mol);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_sim::neighbor::NeighborListParams;

    fn driver(system: &WaterBox, variant: Variant) -> MerrimacDriver {
        let params = NeighborListParams {
            cutoff: (0.40 * system.pbc().side()).min(1.0),
            skin: 0.08,
            rebuild_interval: 3,
        };
        let app = StreamMdApp::builder().neighbor(params).build().unwrap();
        MerrimacDriver::new(app, variant)
    }

    #[test]
    fn driven_trajectory_matches_reference_integrator() {
        // Forces from the simulated machine ≈ reference forces, so short
        // trajectories must agree closely.
        let mut a = WaterBox::builder().molecules(27).seed(55).build();
        let mut b = a.clone();
        let drv = driver(&a, Variant::Variable);
        let integ = Integrator {
            dt: drv.dt,
            neighbor: drv.app.neighbor,
            shake_tol: drv.shake_tol,
            max_iter: 100,
        };
        drv.run(&mut a, 5).expect("driven run");
        integ.run(&mut b, 5);
        let mut worst = 0.0f64;
        for (pa, pb) in a.positions().iter().zip(b.positions()) {
            worst = worst.max((*pa - *pb).max_abs());
        }
        assert!(worst < 1e-7, "trajectories diverged by {worst}");
    }

    #[test]
    fn constraints_hold_in_driven_run() {
        let mut s = WaterBox::builder().molecules(27).seed(56).build();
        let drv = driver(&s, Variant::Fixed);
        drv.run(&mut s, 6).expect("run");
        for m in 0..s.num_molecules() {
            let mol = s.molecule(m);
            assert!(((mol[1] - mol[0]).norm() - 0.1).abs() < 1e-6);
        }
    }

    #[test]
    fn rebuild_policy_amortizes() {
        let mut s = WaterBox::builder().molecules(27).seed(57).build();
        let drv = driver(&s, Variant::Variable);
        let r = drv.run(&mut s, 9).expect("run");
        assert_eq!(r.steps.len(), 9);
        assert!(r.rebuilds < 9 + 1, "list must not rebuild every step");
        assert!(r.total_force_cycles > 0);
        assert!(r.cycles_per_step() > 0.0);
    }

    #[test]
    fn parallel_trajectory_is_bitwise_identical() {
        let mut a = WaterBox::builder().molecules(27).seed(60).build();
        let mut b = a.clone();
        let serial = driver(&a, Variant::Expanded);
        let mut parallel = driver(&b, Variant::Expanded);
        parallel.app.threads = 4;
        let ra = serial.run(&mut a, 4).expect("serial run");
        let rb = parallel.run(&mut b, 4).expect("parallel run");
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.velocities(), b.velocities());
        assert_eq!(ra.total_force_cycles, rb.total_force_cycles);
        assert_eq!(ra.total_counters, rb.total_counters);
    }

    #[test]
    fn atomic_trajectory_runs_without_constraints() {
        use md_sim::water::WaterModel;
        for model in [WaterModel::lj_atom(), WaterModel::charged_atom()] {
            let mut s = WaterBox::builder()
                .molecules(32)
                .model(model)
                .density(21.0)
                .seed(61)
                .build();
            let drv = driver(&s, Variant::Variable);
            let r = drv.run(&mut s, 4).expect("run");
            assert_eq!(r.steps.len(), 4);
            assert!(r.total_force_cycles > 0);
            for st in &r.steps {
                assert!(st.temperature.is_finite() && st.temperature > 0.0);
            }
        }
    }

    #[test]
    fn atomic_parallel_trajectory_is_bitwise_identical() {
        use md_sim::water::WaterModel;
        let mut a = WaterBox::builder()
            .molecules(32)
            .model(WaterModel::charged_atom())
            .density(21.0)
            .seed(62)
            .build();
        let mut b = a.clone();
        let serial = driver(&a, Variant::Fixed);
        let mut parallel = driver(&b, Variant::Fixed);
        parallel.app.threads = 4;
        serial.run(&mut a, 3).expect("serial run");
        parallel.run(&mut b, 3).expect("parallel run");
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.velocities(), b.velocities());
    }

    #[test]
    fn temperatures_stay_physical() {
        let mut s = WaterBox::builder().molecules(27).seed(58).build();
        let drv = driver(&s, Variant::Expanded);
        let r = drv.run(&mut s, 5).expect("run");
        for st in &r.steps {
            assert!(st.temperature > 1.0 && st.temperature < 3000.0);
        }
    }
}

//! Analytic ("calculated") arithmetic-intensity models — the left column
//! of the paper's Table 4 — plus the per-variant word-traffic formulas of
//! Section 3.3.
//!
//! Conventions match the paper: arithmetic intensity is the ratio of
//! *computed* interaction flops (234 per evaluated molecule pair,
//! including dummy and duplicated evaluations — they occupy the machine
//! just the same) to words moved between the SRF and memory.

use serde::{Deserialize, Serialize};

use md_sim::force::FLOPS_PER_INTERACTION;
use merrimac_sim::{FallbackKind, RunReport};

use crate::variant::Variant;

/// Per-phase cycle breakdown of one simulated step — the structured
/// counters the perf-trend harness tracks across commits. Wraps the
/// simulator's raw [`merrimac_sim::PhaseCycles`] with the
/// scoreboard-stall count and fraction helpers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Memory-unit cycles spent on index gathers.
    pub gather_cycles: u64,
    /// Memory-unit cycles spent on sequential stream loads.
    pub load_cycles: u64,
    /// Cluster-array cycles spent running interaction kernels.
    pub kernel_cycles: u64,
    /// Memory-unit cycles spent on scatter-add force reductions.
    pub scatter_add_cycles: u64,
    /// Memory-unit cycles spent on sequential stores.
    pub store_cycles: u64,
    /// Cycles the memory unit idled with work ready but no stream
    /// descriptor register free (the Figure 7 pathology).
    pub sdr_stall_cycles: u64,
    /// Did the strip partitioner admit the step's program to the
    /// parallel (per-strip sharded) execution engine?
    pub partition_parallelized: bool,
    /// Strip groups the partitioner formed.
    pub partition_strips: u32,
    /// Why the program fell back to the serial scoreboard, if it did.
    pub partition_fallback: Option<FallbackKind>,
    /// Multi-node step breakdown, when the step ran through the
    /// multi-node runner (`streammd::multinode`). `None` for plain
    /// single-processor steps; serialized additively (schema-lenient,
    /// like the lints block) so old baselines stay readable.
    pub multinode: Option<MultiNodeBreakdown>,
}

/// Per-step summary of a simulated multi-node execution: compute on the
/// busiest and average node, halo-exchange communication, and the
/// resulting barrier-to-barrier step. All fields are integer cycle /
/// word counts so [`PhaseBreakdown`] stays `Copy + Eq`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiNodeBreakdown {
    /// Simulated node count.
    pub nodes: u32,
    /// Compute cycles on the busiest node (critical path).
    pub compute_cycles_max: u64,
    /// Mean per-node compute cycles (rounded).
    pub compute_cycles_mean: u64,
    /// Worst per-node communication cycles (halo import + force
    /// return, two dependent phases).
    pub comm_cycles_max: u64,
    /// Barrier-to-barrier step cycles: max over nodes of
    /// import + compute + return.
    pub step_cycles: u64,
    /// Total halo position words imported across all nodes.
    pub halo_in_words: u64,
    /// Total remote partial-force words returned across all nodes.
    pub force_out_words: u64,
}

impl MultiNodeBreakdown {
    /// Compute load imbalance: busiest node over the mean, minus one
    /// (0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        if self.compute_cycles_mean == 0 {
            return 0.0;
        }
        self.compute_cycles_max as f64 / self.compute_cycles_mean as f64 - 1.0
    }
}

impl PhaseBreakdown {
    pub fn from_report(report: &RunReport) -> Self {
        Self {
            gather_cycles: report.phases.gather,
            load_cycles: report.phases.load,
            kernel_cycles: report.phases.kernel,
            scatter_add_cycles: report.phases.scatter_add,
            store_cycles: report.phases.store,
            sdr_stall_cycles: report.sdr_stall_cycles,
            partition_parallelized: report.partition.parallelized,
            partition_strips: report.partition.strips,
            partition_fallback: report.partition.fallback,
            multinode: None,
        }
    }

    /// Total memory-unit busy cycles.
    pub fn memory_cycles(&self) -> u64 {
        self.gather_cycles + self.load_cycles + self.scatter_add_cycles + self.store_cycles
    }

    /// Fraction of `makespan` each phase occupied (gather, load, kernel,
    /// scatter-add, store). Phases overlap across units, so the
    /// fractions can legitimately sum past 1.
    pub fn fractions(&self, makespan: u64) -> (f64, f64, f64, f64, f64) {
        let t = (makespan as f64).max(1.0);
        (
            self.gather_cycles as f64 / t,
            self.load_cycles as f64 / t,
            self.kernel_cycles as f64 / t,
            self.scatter_add_cycles as f64 / t,
            self.store_cycles as f64 / t,
        )
    }
}

/// Closed-form per-iteration word traffic and intensity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyticModel {
    pub variant: Variant,
    /// Memory words per computed interaction.
    pub words_per_interaction: f64,
    /// Flops per computed interaction (always 234 + small per-block
    /// amortized terms).
    pub flops_per_interaction: f64,
    /// Calculated arithmetic intensity.
    pub intensity: f64,
}

impl AnalyticModel {
    /// Idealized model (infinite dataset, mean neighbour count `nbar`
    /// for the `variable` variant, block length `l` for block variants).
    pub fn ideal(variant: Variant, l: usize, nbar: f64) -> Self {
        let l = l as f64;
        // Word budgets per computed interaction, from the stream layout
        // this crate actually builds (see `layout`):
        //   expanded:   c_pos 9 + shift 9 + n_pos 9 + 3 index = 30 in,
        //               c+n partials 18 out                   = 48 total
        //   fixed(L):   per block: c_pos 9 + shift 9 + 2 idx + L·(9+1) in,
        //               9 + 9L out → (29 + 19L)/L per interaction
        //   variable:   n_pos 9 + flag 1 + idx 1 + partial 9 = 20 per
        //               iteration, plus (18 + 9 + 1)/n̄ per centre
        //   duplicated: per block: 29 + 10L → (29 + 10L)/L
        let words = match variant {
            Variant::Expanded => 48.0,
            Variant::Fixed => (29.0 + 19.0 * l) / l,
            Variant::Variable => 20.0 + 28.0 / nbar.max(1.0),
            Variant::Duplicated => (29.0 + 10.0 * l) / l,
        };
        let flops = match variant {
            // Shift amortizes over the block; the cross-block centre
            // accumulation adds 9 adds per interaction.
            Variant::Fixed | Variant::Duplicated => FLOPS_PER_INTERACTION as f64 + 9.0 / l,
            Variant::Variable => FLOPS_PER_INTERACTION as f64 + 9.0,
            Variant::Expanded => FLOPS_PER_INTERACTION as f64,
        };
        Self {
            variant,
            words_per_interaction: words,
            flops_per_interaction: flops,
            intensity: flops / words,
        }
    }

    /// Dataset-aware model (the parenthesized Table 4 numbers): accounts
    /// for dummy padding and centre replication using the actual counts.
    pub fn for_dataset(
        variant: Variant,
        l: usize,
        real_pairs: u64,
        padded_slots: u64,
        blocks: u64,
        centers: u64,
    ) -> Self {
        let ideal = Self::ideal(variant, l, real_pairs as f64 / centers.max(1) as f64);
        let (computed, words) = match variant {
            Variant::Expanded => (real_pairs as f64, real_pairs as f64 * 48.0),
            Variant::Fixed => {
                let w = blocks as f64 * (29.0 + 19.0 * l as f64);
                (padded_slots as f64, w)
            }
            Variant::Duplicated => {
                let w = blocks as f64 * (29.0 + 10.0 * l as f64);
                (padded_slots as f64, w)
            }
            Variant::Variable => {
                // 20 words per kernel iteration plus the 28-word centre
                // budget (18-word centre record + 9-word accumulated
                // force + 1 flag sentinel), matching `ideal`.
                let iters = real_pairs as f64;
                let w = iters * 20.0 + centers as f64 * 28.0;
                (iters, w)
            }
        };
        let flops = computed * ideal.flops_per_interaction;
        Self {
            variant,
            words_per_interaction: words / computed.max(1.0),
            flops_per_interaction: ideal.flops_per_interaction,
            intensity: flops / words.max(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expanded_matches_paper_48_words() {
        let m = AnalyticModel::ideal(Variant::Expanded, 8, 70.0);
        assert_eq!(m.words_per_interaction, 48.0);
        assert!((m.intensity - 234.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_l8_words_near_paper() {
        // Paper Section 3.3 reports ~23.6 words/iteration at L = 8 (our
        // layout books 22.625 — same accounting structure, one fewer
        // index stream).
        let m = AnalyticModel::ideal(Variant::Fixed, 8, 70.0);
        assert!((m.words_per_interaction - 22.625).abs() < 1e-12);
        assert!(m.intensity > 10.0 && m.intensity < 11.0);
    }

    #[test]
    fn duplicated_has_highest_intensity() {
        let e = AnalyticModel::ideal(Variant::Expanded, 8, 70.0).intensity;
        let f = AnalyticModel::ideal(Variant::Fixed, 8, 70.0).intensity;
        let v = AnalyticModel::ideal(Variant::Variable, 8, 70.0).intensity;
        let d = AnalyticModel::ideal(Variant::Duplicated, 8, 70.0).intensity;
        assert!(d > v && d > f && d > e, "d={d} v={v} f={f} e={e}");
        assert!(v > e && f > e);
    }

    #[test]
    fn intensity_ordering_matches_table4() {
        // Table 4: expanded ~4.9 < fixed ~10-12 ≈ variable ~12 < duplicated ~17-18.
        let e = AnalyticModel::ideal(Variant::Expanded, 8, 70.0).intensity;
        let d = AnalyticModel::ideal(Variant::Duplicated, 8, 70.0).intensity;
        assert!((4.0..6.0).contains(&e));
        assert!((15.0..20.0).contains(&d));
    }

    #[test]
    fn dataset_model_degrades_with_padding() {
        let ideal = AnalyticModel::ideal(Variant::Fixed, 8, 70.0);
        // 10% dummy slots: measured intensity in useful-flop terms drops,
        // but computed-flop intensity stays identical; the dataset model
        // reports computed-flop intensity, so equal here.
        let ds = AnalyticModel::for_dataset(Variant::Fixed, 8, 900, 1000, 125, 900);
        assert!((ds.intensity - ideal.intensity).abs() < 1e-9);
    }

    #[test]
    fn variable_dataset_model_counts_centres() {
        let ds = AnalyticModel::for_dataset(Variant::Variable, 8, 6168, 0, 0, 90);
        assert!(ds.words_per_interaction > 20.0);
        assert!(ds.words_per_interaction < 21.0);
    }

    #[test]
    fn variable_dataset_model_matches_centre_budget_exactly() {
        // Each centre costs exactly 28 words (18-word record + 9-word
        // force + 1 flag) amortized over its real pairs; iterations are
        // the real pairs alone.
        let (real_pairs, centers) = (6168u64, 90u64);
        let ds = AnalyticModel::for_dataset(Variant::Variable, 8, real_pairs, 0, 0, centers);
        let expect = 20.0 + 28.0 * centers as f64 / real_pairs as f64;
        assert!((ds.words_per_interaction - expect).abs() < 1e-12);
        // And it agrees with the ideal model evaluated at the dataset's
        // mean neighbour count n̄ = pairs/centres.
        let ideal = AnalyticModel::ideal(Variant::Variable, 8, real_pairs as f64 / centers as f64);
        assert!((ds.words_per_interaction - ideal.words_per_interaction).abs() < 1e-12);
        assert!((ds.intensity - ideal.intensity).abs() < 1e-12);
    }
}

//! End-to-end simulated multi-node execution (paper Section 2.2).
//!
//! The water box is spatially decomposed over N simulated Merrimac
//! nodes ([`merrimac_net::NodeGrid`]); every strip of the canonical
//! step program runs on the node that owns its first centre molecule,
//! and the step is timed as three dependent phases over the folded-Clos
//! [`Topology`]:
//!
//! 1. **halo import** — each node pulls the position records (10 words:
//!    9 coordinates + index) of every remote molecule its strips
//!    reference, one message per owning peer, priced at the
//!    peer-pair's [`Topology::level`] bandwidth/latency;
//! 2. **local compute** — the node's strips run through the existing
//!    deterministic parallel engine (`merrimac_sim::parallel`) on a
//!    private memory shard;
//! 3. **force return** — accumulated partial forces for remote
//!    molecules (9 words each) return to their owners as network
//!    scatter-add messages.
//!
//! ## Deterministic cross-node reduction
//!
//! Forces are **bitwise-identical at any node count and any host
//! thread count**. The strip structure is canonical — built once from
//! the global system, independent of N — and the cross-node force
//! reduction merges per-strip scatter overlays in canonical global
//! strip order with the engine's fixed-shape pairwise tree (whose shape
//! depends only on the strip count). A hierarchical per-node merge
//! would re-associate the floating-point sums and make the result drift
//! with N; replaying the reduction in canonical order makes the strip →
//! node assignment invisible to the arithmetic, exactly like the thread
//! count already is. The per-node runs produce the *timing* (and their
//! partial forces are checked against the canonical total in tests).

use std::collections::BTreeMap;

use md_sim::neighbor::NeighborList;
use md_sim::system::WaterBox;
use merrimac_net::multinode::{
    halo_force_words, halo_position_words, phase_cycles, MultiNodeTiming, NodeGrid, NodeLoad,
    PhaseMessage,
};
use merrimac_net::topology::{NetError, Topology};
use merrimac_sim::machine::SimError;
use merrimac_sim::{StreamProcessor, StreamProgram};

use crate::app::{StepOutcome, StepProgram, StreamMdApp};
use crate::layout::Strip;
use crate::metrics::MultiNodeBreakdown;
use crate::variant::Variant;

/// One node's share of the step: its strips, its simulated run, and the
/// traffic it exchanged.
#[derive(Debug, Clone)]
pub struct NodeRun {
    pub node: usize,
    /// Canonical strip ids this node executed.
    pub strips: Vec<usize>,
    /// Molecules whose force records this node owns.
    pub owned_molecules: usize,
    /// Cycles the node's sub-program took on its stream processor.
    pub compute_cycles: u64,
    /// This node's force-region image after running its strips — its
    /// partial contribution to the global reduction (`(n + 2) × width`
    /// words). Summed over nodes this matches the canonical forces up
    /// to floating-point association.
    pub forces: Vec<f64>,
}

/// Result of one simulated multi-node force step.
#[derive(Debug, Clone)]
pub struct MultiNodeOutcome {
    pub nodes: usize,
    /// The canonical step outcome. `forces` come from the canonical
    /// global reduction (bitwise N-independent); `perf` is rewritten to
    /// the multi-node step: `cycles`/`seconds` are barrier-to-barrier,
    /// `solution_gflops` is the aggregate rate, and
    /// `perf.phases.multinode` carries the breakdown.
    pub outcome: StepOutcome,
    /// Per-node three-phase timing over the topology.
    pub timing: MultiNodeTiming,
    pub per_node: Vec<NodeRun>,
    pub breakdown: MultiNodeBreakdown,
}

impl MultiNodeOutcome {
    /// Parallel efficiency vs running the whole step on one node:
    /// `t₁ / (N · t_N)` in cycles. The single-node step equals the
    /// canonical run by construction.
    pub fn efficiency(&self) -> f64 {
        self.outcome.report.cycles as f64
            / (self.nodes as f64 * self.breakdown.step_cycles.max(1) as f64)
    }
}

fn net_err(e: NetError) -> SimError {
    match e {
        NetError::NodeCountOutOfRange { nodes, total } => {
            SimError::NodesOutOfRange { nodes, total }
        }
        other => SimError::Config(other.to_string()),
    }
}

/// The node that executes a strip: the owner of its first real centre
/// molecule (`i_central` for the gather variants, the first real
/// `c_scatter` target for `variable`, whose centres travel embedded in
/// the strip's centre records).
fn strip_owner(s: &Strip, owner: &[usize], n_real: usize) -> usize {
    if let Some(&c) = s.i_central.iter().find(|&&c| (c as usize) < n_real) {
        return owner[c as usize];
    }
    s.c_scatter
        .iter()
        .find(|&&c| (c as usize) < n_real)
        .map(|&c| owner[c as usize])
        .unwrap_or(0)
}

impl StreamMdApp {
    /// Run one force step of `variant` spatially decomposed over
    /// `self.nodes` simulated nodes (set via
    /// [`crate::SimConfigBuilder::nodes`], validated at build time).
    pub fn run_step_multinode(
        &self,
        system: &WaterBox,
        list: &NeighborList,
        variant: Variant,
    ) -> Result<MultiNodeOutcome, SimError> {
        run_multinode(self, system, list, variant, self.nodes)
    }
}

/// Run one force step decomposed over `nodes` simulated nodes. See the
/// module docs for the execution and timing model. Builds the canonical
/// step program once and delegates to [`run_multinode_program`].
pub fn run_multinode(
    app: &StreamMdApp,
    system: &WaterBox,
    list: &NeighborList,
    variant: Variant,
    nodes: usize,
) -> Result<MultiNodeOutcome, SimError> {
    let step = app.build_step_program(system, list, variant);
    if app.analyze {
        app.admit_built(&step)?;
    }
    run_multinode_program(app, system, &step, nodes)
}

/// Run one force step decomposed over `nodes` simulated nodes from an
/// already-built canonical step program — the multi-node half of the
/// compile-once / run-many split. The cached [`StepProgram`] is shared
/// untouched: the canonical single-node run and every node's sub-program
/// execute on clones of its memory image, so the same build serves any
/// node count (the strip structure is canonical and N-independent).
pub fn run_multinode_program(
    app: &StreamMdApp,
    system: &WaterBox,
    step: &StepProgram,
    nodes: usize,
) -> Result<MultiNodeOutcome, SimError> {
    let topo = Topology::new(app.network.clone());
    topo.worst_level(nodes).map_err(net_err)?;
    let variant = step.layout.variant;
    let w = step.layout.width;

    // Canonical run: the N-independent strip structure and the global
    // fixed-shape reduction. This *is* the deterministic cross-node
    // force merge (module docs); it also prices the single-node step.
    let canonical = app.run_step_program(system, step)?;
    let n_real = system.num_molecules();

    // Spatial decomposition: molecules → nodes by the wrapped position
    // of each record's first site (word 0..3 of the canonical record).
    let grid = NodeGrid::new(nodes, system.pbc().side()).map_err(net_err)?;
    let owner: Vec<usize> = (0..n_real)
        .map(|m| {
            grid.node_of([
                step.layout.positions[m * w],
                step.layout.positions[m * w + 1],
                step.layout.positions[m * w + 2],
            ])
        })
        .collect();
    let strip_node: Vec<usize> = step
        .layout
        .strips
        .iter()
        .map(|s| strip_owner(s, &owner, n_real))
        .collect();

    let proc = StreamProcessor::new(app.cfg.clone())
        .with_costs(app.costs.clone())
        .with_policy(app.policy)
        .with_engine(app.engine)
        .with_batch_width(app.tape_batch);

    let mut per_node = Vec::with_capacity(nodes);
    let mut loads = Vec::with_capacity(nodes);
    for node in 0..nodes {
        let strips: Vec<usize> = (0..step.layout.strips.len())
            .filter(|&sid| strip_node[sid] == node)
            .collect();

        // The node's sub-program: the canonical ops of its strips over
        // the shared buffer/intent declarations, run on a private
        // memory shard (its halo arrives by message, so the shard
        // simply starts with the imported positions in place).
        let (compute_cycles, forces) = if strips.is_empty() {
            (0, vec![0.0; step.layout.force_records * w])
        } else {
            let mut sub = StreamProgram {
                buffers: step.program.buffers.clone(),
                ops: step
                    .program
                    .ops
                    .iter()
                    .filter(|op| strip_node[op.strip] == node)
                    .cloned()
                    .collect(),
                intents: step.program.intents.clone(),
                underrun_proofs: Default::default(),
            };
            // Filtering renumbers ops, so the parent's proofs (keyed by
            // op index) do not transfer; re-prove the sub-program.
            sub.underrun_proofs = sub.prove_underruns();
            let mut mem = step.memory.clone();
            let report = proc.run_parallel(&mut mem, &sub, app.threads)?;
            (report.cycles, mem.data(step.forces).to_vec())
        };

        // Halo traffic: positions referenced but not owned come in;
        // scatter targets not owned go back out. Distinct molecules per
        // peer — the node accumulates locally and exchanges one record
        // per remote molecule, as Section 2.2's network scatter-add.
        let mut referenced = vec![false; n_real];
        let mut scattered = vec![false; n_real];
        let mark = |v: &mut Vec<bool>, idx: u32| {
            if (idx as usize) < n_real {
                v[idx as usize] = true;
            }
        };
        for &sid in &strips {
            let s = &step.layout.strips[sid];
            for &i in s.i_central.iter().chain(&s.i_neighbor) {
                mark(&mut referenced, i);
            }
            if variant == Variant::Variable {
                // Centre positions travel inside the strip's centre
                // records rather than through a gather, but they are
                // remote data all the same.
                for &c in &s.c_scatter {
                    mark(&mut referenced, c);
                }
            }
            for &t in s.c_scatter.iter().chain(&s.n_scatter) {
                mark(&mut scattered, t);
            }
        }
        let mut halo_by_peer: BTreeMap<usize, u64> = BTreeMap::new();
        let mut force_by_peer: BTreeMap<usize, u64> = BTreeMap::new();
        for m in 0..n_real {
            if owner[m] != node {
                if referenced[m] {
                    *halo_by_peer.entry(owner[m]).or_default() += 1;
                }
                if scattered[m] {
                    *force_by_peer.entry(owner[m]).or_default() += 1;
                }
            }
        }
        let imports: Vec<PhaseMessage> = halo_by_peer
            .iter()
            .map(|(&peer, &count)| PhaseMessage {
                src: peer,
                dst: node,
                words: count * halo_position_words(w as u64),
            })
            .collect();
        let returns: Vec<PhaseMessage> = force_by_peer
            .iter()
            .map(|(&peer, &count)| PhaseMessage {
                src: node,
                dst: peer,
                words: count * halo_force_words(w as u64),
            })
            .collect();
        let import_cycles = phase_cycles(&topo, &app.cfg, &imports).map_err(net_err)?;
        let return_cycles = phase_cycles(&topo, &app.cfg, &returns).map_err(net_err)?;

        loads.push(NodeLoad {
            node,
            compute_cycles,
            import_cycles,
            return_cycles,
            halo_in_words: imports.iter().map(|m| m.words).sum(),
            force_out_words: returns.iter().map(|m| m.words).sum(),
        });
        per_node.push(NodeRun {
            node,
            strips,
            owned_molecules: owner.iter().filter(|&&o| o == node).count(),
            compute_cycles,
            forces,
        });
    }

    let timing = MultiNodeTiming { nodes: loads };
    let breakdown = MultiNodeBreakdown {
        nodes: nodes as u32,
        compute_cycles_max: timing.compute_cycles_max(),
        compute_cycles_mean: timing.compute_cycles_mean().round() as u64,
        comm_cycles_max: timing.comm_cycles_max(),
        step_cycles: timing.step_cycles(),
        halo_in_words: timing.total_halo_in_words(),
        force_out_words: timing.total_force_out_words(),
    };

    // Rewrite the summary to the multi-node step: barrier-to-barrier
    // cycles and the aggregate solution rate over them.
    let mut outcome = canonical;
    let step_cycles = breakdown.step_cycles;
    outcome.perf.cycles = step_cycles;
    outcome.perf.seconds = app.cfg.cycles_to_seconds(step_cycles);
    outcome.perf.solution_gflops =
        outcome.perf.solution_flops as f64 / outcome.perf.seconds.max(f64::MIN_POSITIVE) / 1e9;
    outcome.perf.phases.multinode = Some(breakdown);

    Ok(MultiNodeOutcome {
        nodes,
        outcome,
        timing,
        per_node,
        breakdown,
    })
}

//! BATCH_PLAN_SPLIT: audit every launched kernel's three-phase batch
//! plan against the invariants the SoA engine's correctness rests on.
//!
//! `BatchPlan::analyze` splits a tape into `vec_pre` (lane-independent,
//! vectorized before lane state exists), `seq` (the per-lane scalar
//! core: register chains and conditional pops in iteration order) and
//! `vec_post` (lane-coupled but state-free consumers). The batch engine
//! is bitwise-identical to the scalar tape *only if* every op lands in
//! exactly one phase, conditional reads stay sequential, no phase-1 op
//! reads lane-coupled state, nothing the next lane needs resolves in
//! phase 3, and each phase preserves tape (SSA) order.
//!
//! `CompiledTape::audit_batch_plan` re-derives those invariants from
//! the tape — independently of the analysis that built the plan — and
//! this pass renders each kernel's violations as one Error diagnostic.
//! A clean audit is the expected (and, for every shipped kernel,
//! asserted) outcome; any finding means the cached plan is unsound and
//! the batch engine must not be trusted with the kernel.

use std::collections::BTreeSet;

use merrimac_sim::program::StreamOp;

use crate::diag::Diagnostic;
use crate::lints::Lint;
use crate::ProgramContext;

/// One Error per distinct kernel whose cached batch plan violates the
/// split invariants, listing every violation as a note.
pub fn check(ctx: &ProgramContext) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut seen: BTreeSet<*const u8> = BTreeSet::new();
    for lop in &ctx.program.ops {
        let StreamOp::Kernel { kernel, .. } = &lop.op else {
            continue;
        };
        if !seen.insert(std::sync::Arc::as_ptr(kernel) as *const u8) {
            continue;
        }
        let violations = kernel.tape.audit_batch_plan();
        if violations.is_empty() {
            continue;
        }
        let mut d = Diagnostic::new(
            Lint::BatchPlanSplit,
            format!("kernel '{}' (op '{}')", kernel.source.name, lop.label),
            format!(
                "batch plan violates {} split invariant{}; the SoA engine is not \
                 bitwise-equivalent to the scalar tape for this kernel",
                violations.len(),
                if violations.len() == 1 { "" } else { "s" }
            ),
        );
        for v in &violations {
            d = d.note(v.to_string());
        }
        diags.push(d.help(
            "the cached BatchPlan is unsound — recompile the kernel (BatchPlan::analyze) \
             or run it on the tape/interp engines until the plan is fixed",
        ));
    }
    diags
}

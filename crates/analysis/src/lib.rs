//! Static analysis over Kernel IR and StreamPrograms.
//!
//! The paper's Section 5 bug — a stream-descriptor-register allocation
//! flaw that silently degraded perfect memory/kernel overlap into the
//! partial overlap of Figure 7 — is exactly the class of defect a
//! static pass over the stream program can catch before a single
//! simulated cycle runs. This crate runs a pipeline of such passes and
//! returns structured [`Diagnostic`]s:
//!
//! * [`sdr_pressure`] — walk the program's stream ops against the SDR
//!   register-file model and flag op windows where descriptor demand
//!   exceeds capacity, reporting the predicted overlap loss;
//! * [`ordering`] — the per-strip read/write ordering analysis
//!   (`merrimac_sim::parallel::read_write_hazards`, which the strip
//!   partitioner itself consumes for `WriteOwned` admission) rendered
//!   as diagnostics;
//! * [`srf_preflight`] — the SRF capacity floor check, naming which
//!   buffers and how many words over capacity;
//! * [`kernel_lints`] — dataflow lints over each kernel's IR:
//!   uninitialized register reads, dead values, stream consumption
//!   imbalance, unused outputs;
//! * [`intent`] — proves declared region access intents against the
//!   actual footprint the strip partitioner admits on
//!   (INTENT_MISMATCH / INTENT_UNDECLARED);
//! * [`underrun`] — statically proves underrun-freedom for every
//!   kernel launch, or pinpoints the first offending iteration
//!   (STREAM_UNDERRUN);
//! * [`batch_split`] — audits each kernel's cached three-phase batch
//!   plan against the SoA engine's invariants (BATCH_PLAN_SPLIT).
//!
//! The last three share the [`dataflow`] abstract-interpretation
//! framework: per-stream consumption intervals and per-region
//! word-range summaries.
//!
//! Entry points: [`analyze_program`] for a built [`StreamProgram`] (all
//! four passes), [`analyze_kernel`] for one [`Kernel`] in isolation.
//! Only [`Severity::Error`] diagnostics describe programs the simulator
//! will reject; warnings flag performance hazards that still execute
//! correctly.

pub mod batch_split;
pub mod dataflow;
pub mod diag;
pub mod intent;
pub mod kernel_lints;
pub mod lints;
pub mod ordering;
pub mod sdr_pressure;
pub mod srf_preflight;
pub mod underrun;

use std::collections::BTreeSet;

use merrimac_arch::MachineConfig;
use merrimac_kernel::Kernel;
use merrimac_sim::program::{Memory, StreamOp, StreamProgram};
use merrimac_sim::SdrPolicy;

pub use diag::{Diagnostic, Severity};
pub use lints::{Lint, ALL_LINTS};
pub use sdr_pressure::SdrWindow;

/// Everything the program-level passes need to know about how a
/// [`StreamProgram`] will run.
pub struct ProgramContext<'a> {
    pub cfg: &'a MachineConfig,
    /// SDR retirement policy ([`SdrPolicy::Naive`] reproduces the
    /// paper's Section 5 flaw).
    pub policy: SdrPolicy,
    /// Strips the memory unit may prefetch ahead of the oldest
    /// incomplete strip (`StreamProcessor::strip_lookahead`).
    pub strip_lookahead: usize,
    pub program: &'a StreamProgram,
    /// For region names in diagnostics.
    pub memory: &'a Memory,
}

/// Run the full pipeline over a built program: the three program-level
/// passes plus the kernel lints over every distinct kernel the program
/// launches.
pub fn analyze_program(ctx: &ProgramContext) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    diags.extend(srf_preflight::check(ctx));
    diags.extend(sdr_pressure::check(ctx));
    diags.extend(ordering::check(ctx));
    diags.extend(intent::check(ctx));
    diags.extend(underrun::check(ctx));
    diags.extend(batch_split::check(ctx));
    // Each distinct kernel once, however many strips launch it.
    let mut seen: BTreeSet<*const u8> = BTreeSet::new();
    for lop in &ctx.program.ops {
        if let StreamOp::Kernel { kernel, .. } = &lop.op {
            if seen.insert(std::sync::Arc::as_ptr(kernel) as *const u8) {
                diags.extend(analyze_kernel(&kernel.source));
            }
        }
    }
    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
    diags
}

/// Run the kernel dataflow lints over one kernel in isolation.
pub fn analyze_kernel(kernel: &Kernel) -> Vec<Diagnostic> {
    kernel_lints::check(kernel)
}

/// Does any diagnostic block execution?
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Counts by severity: `(errors, warnings, infos)`.
pub fn severity_counts(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut c = (0, 0, 0);
    for d in diags {
        match d.severity {
            Severity::Error => c.0 += 1,
            Severity::Warn => c.1 += 1,
            Severity::Info => c.2 += 1,
        }
    }
    c
}

/// Render every diagnostic, blank-line separated, rustc-style.
pub fn render_all(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(Diagnostic::render)
        .collect::<Vec<_>>()
        .join("\n\n")
}

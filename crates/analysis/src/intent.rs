//! INTENT_MISMATCH / INTENT_UNDECLARED: prove declared region access
//! intents against the actual access footprint.
//!
//! The strip partitioner (`merrimac_sim::parallel::partition_program`)
//! admits parallel execution *on trust* in the declared
//! `ReadOnly`/`WriteOwned`/`ReduceAdd` intents; the simulator's
//! `validate_program` rejects intent-violating ops only at run time.
//! This pass closes the gap statically, from the
//! [`region_accesses`](crate::dataflow::region_accesses) summaries:
//!
//! * **INTENT_MISMATCH** (Error) — a region's declared intent does not
//!   permit an access the program actually performs (e.g. a store to a
//!   `ReadOnly` region). Exactly what `validate_program` will reject,
//!   diagnosed before a single simulated cycle, with the op and word
//!   range named.
//! * **INTENT_UNDECLARED** (Warn) — a region is accessed but carries no
//!   declaration. The partitioner handles such regions conservatively:
//!   read-only, store-only and reduce-only footprints are still
//!   admitted, but a mixed read+write footprint forces the whole
//!   program into serial fallback. The warning names the intent the
//!   footprint implies.

use std::collections::BTreeSet;

use merrimac_sim::program::{AccessIntent, AccessKind, RegionId};

use crate::dataflow::region_accesses;
use crate::diag::Diagnostic;
use crate::lints::Lint;
use crate::ProgramContext;

/// The narrowest intent a set of access kinds admits, if any single
/// intent covers them all.
fn inferred_intent(kinds: &BTreeSet<AccessKind>) -> Option<AccessIntent> {
    for intent in [
        AccessIntent::ReadOnly,
        AccessIntent::WriteOwned,
        AccessIntent::ReduceAdd,
    ] {
        if kinds.iter().all(|&k| intent.permits(k)) {
            return Some(intent);
        }
    }
    None
}

/// One Error per `(region, access kind)` the declared intent forbids;
/// one Warn per accessed-but-undeclared region.
pub fn check(ctx: &ProgramContext) -> Vec<Diagnostic> {
    let program = ctx.program;
    let mut diags = Vec::new();
    for (rid, accs) in region_accesses(program) {
        let region = RegionId(rid);
        let name = ctx.memory.name(region);
        let kinds: BTreeSet<AccessKind> = accs.iter().map(|a| a.kind).collect();
        match program.declared_intent(region) {
            Some(intent) => {
                // One diagnostic per offending kind, anchored at the
                // first op performing it — mirroring the simulator's
                // dynamic rejection, which blames the first such op.
                for &kind in &kinds {
                    if intent.permits(kind) {
                        continue;
                    }
                    let a = accs
                        .iter()
                        .find(|a| a.kind == kind)
                        .expect("kind collected from accesses");
                    let lop = &program.ops[a.op_index];
                    let mut d = Diagnostic::new(
                        Lint::IntentMismatch,
                        format!("op '{}' (strip {})", lop.label, lop.strip),
                        format!(
                            "region '{name}' is declared {intent} but op performs a {kind} \
                             over words {}..{}",
                            a.start, a.end
                        ),
                    )
                    .note(format!(
                        "the simulator's validate_program will reject this program at run \
                         time; the strip partitioner admits parallelism on the {intent} \
                         declaration it cannot honor"
                    ));
                    if let Some(fix) = inferred_intent(&kinds) {
                        d = d.help(format!(
                            "the region's actual footprint ({}) fits {fix}; declare that \
                             intent, or drop the offending op",
                            render_kinds(&kinds)
                        ));
                    } else {
                        d = d.help(format!(
                            "no single intent covers this footprint ({}); split the region \
                             or restructure the accesses",
                            render_kinds(&kinds)
                        ));
                    }
                    diags.push(d);
                }
            }
            None => {
                let a = &accs[0];
                let lop = &program.ops[a.op_index];
                let mut d = Diagnostic::new(
                    Lint::IntentUndeclared,
                    format!("op '{}' (strip {})", lop.label, lop.strip),
                    format!(
                        "region '{name}' is accessed ({}) but declares no intent",
                        render_kinds(&kinds)
                    ),
                );
                match inferred_intent(&kinds) {
                    Some(fix) => {
                        d = d
                            .note(format!(
                                "the partitioner handles undeclared regions conservatively; \
                                 a declared intent documents the contract it admits on"
                            ))
                            .help(format!(
                                "the footprint fits {fix}; declare it with \
                                 ProgramBuilder::intent"
                            ));
                    }
                    None => {
                        d = d
                            .note(
                                "a mixed footprint with no declaration forces the whole \
                                 program into serial fallback"
                                    .to_string(),
                            )
                            .help(
                                "declare WriteOwned if strips own disjoint slices, or \
                                 restructure so one intent covers the region",
                            );
                    }
                }
                diags.push(d);
            }
        }
    }
    diags
}

fn render_kinds(kinds: &BTreeSet<AccessKind>) -> String {
    kinds
        .iter()
        .map(|k| k.to_string())
        .collect::<Vec<_>>()
        .join("+")
}

//! STREAM_UNDERRUN: statically prove underrun-freedom for every kernel
//! launch, or pinpoint the first offending iteration.
//!
//! Consumes the [`buffer_flow`](crate::dataflow::buffer_flow) fixpoint:
//! an interval of words available in each SRF buffer at every launch.
//! A launch pops each every-iteration input once per unrolled
//! iteration; when even the *upper bound* of availability cannot cover
//! that, the underrun is certain and the pass errors with the first
//! iteration the engines will blame. Conditional streams (pop interval
//! `[0, k]`) can never be proven to underrun — their shortfall stays a
//! runtime possibility the checked engine path handles — so this pass
//! stays silent about them, exactly mirroring which launches
//! [`StreamProgram::prove_underruns`] leaves unproven.
//!
//! The positive side of the same analysis is the [`UnderrunProof`]
//! object the app layer stamps on the program: launches this pass finds
//! clean and unconditional run the engines' check-elided fast path.
//!
//! [`StreamProgram::prove_underruns`]: merrimac_sim::program::StreamProgram::prove_underruns
//! [`UnderrunProof`]: merrimac_kernel::UnderrunProof

use merrimac_sim::program::StreamOp;

use crate::dataflow::{buffer_flow, kernel_flow};
use crate::diag::Diagnostic;
use crate::lints::Lint;
use crate::ProgramContext;

/// One Error per `(kernel launch, input stream)` that provably
/// underruns.
pub fn check(ctx: &ProgramContext) -> Vec<Diagnostic> {
    let program = ctx.program;
    let states = buffer_flow(program);
    let mut diags = Vec::new();
    for (i, lop) in program.ops.iter().enumerate() {
        let StreamOp::Kernel {
            kernel,
            inputs,
            iterations,
            ..
        } = &lop.op
        else {
            continue;
        };
        let unroll = kernel.opt.unroll as u64;
        if unroll == 0 || *iterations % unroll != 0 {
            // A different rejection (iteration/unroll mismatch) the
            // simulator reports on its own; not an underrun.
            continue;
        }
        let unrolled = (*iterations / unroll) as usize;
        let Some(state) = states.get(&i) else {
            continue;
        };
        let flow = kernel_flow(kernel);
        for (s, b) in inputs.iter().enumerate() {
            if !flow.every_iter.get(s).copied().unwrap_or(false) {
                continue;
            }
            let Some(words) = state.words.get(&b.0) else {
                // Never-produced inputs are a program error the
                // executors report as such, not an underrun.
                continue;
            };
            let rl = kernel.ir.inputs[s].record_len as usize;
            if rl == 0 {
                continue;
            }
            // Upper bound on records after the unroll reshape: if even
            // that cannot cover every iteration, the pop at iteration
            // `available` must fail.
            let available = words.hi / rl;
            if available >= unrolled {
                continue;
            }
            let sig = &kernel.ir.inputs[s];
            diags.push(
                Diagnostic::new(
                    Lint::StreamUnderrun,
                    format!("op '{}' (strip {})", lop.label, lop.strip),
                    format!(
                        "every-iteration stream '{}' holds at most {available} records but \
                         the launch pops one per iteration for {unrolled} iterations",
                        sig.name
                    ),
                )
                .note(format!(
                    "first underrun at iteration {available}: the engines will fail with \
                     StreamUnderrun {{ stream: {s}, iteration: {available} }}"
                ))
                .note(format!(
                    "buffer '{}' provably holds at most {} words ({} per record after \
                     unroll x{})",
                    program.buffers[b.0].name, words.hi, rl, kernel.opt.unroll
                ))
                .help(
                    "stage enough records for the full launch, or reduce the launch's \
                     iteration count to the staged record count",
                ),
            );
        }
    }
    diags
}

//! Kernel dataflow lints over the (pre-unroll) Kernel IR: uninitialized
//! register reads, dead values, stream consumption imbalance, and
//! unused outputs.

use std::collections::BTreeSet;

use merrimac_kernel::ir::Node;
use merrimac_kernel::schedule::live_set;
use merrimac_kernel::Kernel;

use crate::diag::Diagnostic;
use crate::lints::Lint;

/// Run every kernel lint over one kernel.
pub fn check(kernel: &Kernel) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let at = |node: usize| format!("kernel '{}', node {}", kernel.name, node);

    // UNINIT_REG_READ: registers read but never updated keep their
    // initial value forever — the read is a disguised constant.
    let updated: BTreeSet<u32> = kernel.reg_updates.iter().map(|(r, _)| *r).collect();
    for (i, n) in kernel.nodes.iter().enumerate() {
        if let Node::ReadReg(r) = n {
            if !updated.contains(r) {
                diags.push(
                    Diagnostic::new(
                        Lint::UninitRegRead,
                        at(i),
                        format!("register r{r} is read but never updated"),
                    )
                    .note(format!(
                        "r{r} keeps its initial value {} for every iteration",
                        kernel.reg_init[*r as usize]
                    ))
                    .help(format!(
                        "add the missing reg_updates entry for r{r}, or replace the read \
                         with a Const node if the frozen value is intended"
                    )),
                );
            }
        }
    }

    // DEAD_VALUE: issuing (arithmetic) nodes outside the live set burn
    // a VLIW slot on an unobservable result. Real kernels can carry
    // hundreds of dead nodes (e.g. the duplicated variant discards the
    // neighbour partial force), so report one aggregate diagnostic per
    // kernel rather than one per node.
    let live = live_set(kernel);
    let dead: Vec<usize> = kernel
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, n)| n.issues() && !live[*i])
        .map(|(i, _)| i)
        .collect();
    if !dead.is_empty() {
        let sample: Vec<String> = dead.iter().take(5).map(|i| i.to_string()).collect();
        let suffix = if dead.len() > sample.len() {
            ", …"
        } else {
            ""
        };
        diags.push(
            Diagnostic::new(
                Lint::DeadValue,
                format!("kernel '{}'", kernel.name),
                format!(
                    "{} value(s) are computed but never written out or consumed",
                    dead.len()
                ),
            )
            .note(format!(
                "dead nodes feed no output write, register update, or live node \
                 (nodes {}{suffix})",
                sample.join(", ")
            ))
            .help(
                "remove the dead computations, or wire their results into a write or \
                 register update",
            ),
        );
    }

    // STREAM_IMBALANCE: an input stream pops a full record per
    // iteration; unread fields are wasted memory and SRF traffic.
    let mut fields_read: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); kernel.inputs.len()];
    for n in &kernel.nodes {
        match n {
            Node::Read { stream, field } | Node::CondRead { stream, field, .. } => {
                fields_read[*stream as usize].insert(*field);
            }
            _ => {}
        }
    }
    for (s, sig) in kernel.inputs.iter().enumerate() {
        let read = fields_read[s].len() as u32;
        if read < sig.record_len {
            diags.push(
                Diagnostic::new(
                    Lint::StreamImbalance,
                    format!("kernel '{}', input stream '{}'", kernel.name, sig.name),
                    format!(
                        "only {read} of {} record words are read each iteration",
                        sig.record_len
                    ),
                )
                .note(format!(
                    "the stream pops one {}-word record per iteration regardless; \
                     unread words still cross the memory system and occupy SRF space",
                    sig.record_len
                ))
                .help("narrow the stream's record to the fields the kernel uses"),
            );
        }
    }

    // UNUSED_OUTPUT: a declared output stream with no write allocates
    // SRF space that stays empty.
    let written: BTreeSet<u32> = kernel.writes.iter().map(|w| w.stream).collect();
    for (s, sig) in kernel.outputs.iter().enumerate() {
        if !written.contains(&(s as u32)) {
            diags.push(
                Diagnostic::new(
                    Lint::UnusedOutput,
                    format!("kernel '{}', output stream '{}'", kernel.name, sig.name),
                    "output stream is declared but never written".to_string(),
                )
                .note("the launch allocates SRF space for a stream that stays empty".to_string())
                .help("drop the unused output from the kernel signature, or add the write"),
            );
        }
    }

    diags
}

//! SDR/MAR pressure pass: predict where stream-descriptor-register
//! demand exceeds the register file and memory/kernel overlap
//! serializes (the paper's Section 5 allocation flaw, Figure 7).
//!
//! The model mirrors the scoreboard in `merrimac_sim::machine`: under
//! [`SdrPolicy::Naive`] every memory op that produces an SRF stream
//! parks its descriptor on that stream until the consuming kernel
//! retires it, so during software-pipelined execution the descriptors
//! of the current strip *and* every strip inside the prefetch lookahead
//! window are held simultaneously. Ops that release at completion
//! (stores, scatter-adds) never add steady-state demand: they become
//! ready exactly when their strip's kernel retires, which is also the
//! instant the kernel's input descriptors free up. Under
//! [`SdrPolicy::Eager`] descriptors are released at op completion and
//! the single memory pipeline can never hold more than one — the pass
//! is silent by construction.

use std::collections::BTreeMap;

use merrimac_sim::machine::produced_buffers;
use merrimac_sim::program::StreamOp;
use merrimac_sim::SdrPolicy;

use crate::diag::Diagnostic;
use crate::lints::Lint;
use crate::ProgramContext;

/// Per-window descriptor accounting, exposed so callers (and tests) can
/// see the prediction behind a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdrWindow {
    /// First and last strip id of the window (inclusive).
    pub strips: (usize, usize),
    /// Descriptors parked simultaneously across the window.
    pub demand: usize,
    /// Descriptors available.
    pub capacity: usize,
}

impl SdrWindow {
    /// Registers the window is short by.
    pub fn deficit(&self) -> usize {
        self.demand.saturating_sub(self.capacity)
    }

    /// Predicted fraction of the prefetch window that serializes
    /// (0.0..1.0): the share of demanded descriptors that cannot be
    /// held, each of which stalls its memory op until a stream dies.
    pub fn predicted_overlap_loss(&self) -> f64 {
        if self.demand == 0 {
            0.0
        } else {
            self.deficit() as f64 / self.demand as f64
        }
    }
}

/// Descriptor demand of every lookahead window, in strip order. Empty
/// under [`SdrPolicy::Eager`].
pub fn sdr_windows(ctx: &ProgramContext) -> Vec<SdrWindow> {
    if ctx.policy == SdrPolicy::Eager {
        return Vec::new();
    }
    // Descriptors each strip parks: one per memory op producing an SRF
    // stream (gathers and loads; stores and scatter-adds produce
    // nothing and release at completion even under the naive policy).
    let mut parked: BTreeMap<usize, usize> = BTreeMap::new();
    for lop in &ctx.program.ops {
        let is_mem = !matches!(lop.op, StreamOp::Kernel { .. });
        if is_mem && !produced_buffers(&lop.op).is_empty() {
            *parked.entry(lop.strip).or_insert(0) += 1;
        }
    }
    let strips: Vec<usize> = parked.keys().copied().collect();
    let capacity = ctx.cfg.stream_descriptor_registers;
    let mut windows = Vec::new();
    for (i, &s) in strips.iter().enumerate() {
        // While strip `s` computes, the memory unit prefetches up to
        // `strip_lookahead` strips ahead; all their descriptors are
        // parked at once (transient-release ops add no steady-state
        // demand — they become ready exactly when a parked descriptor
        // frees).
        let end = (i + ctx.strip_lookahead).min(strips.len() - 1);
        let demand: usize = strips[i..=end].iter().map(|t| parked[t]).sum::<usize>();
        windows.push(SdrWindow {
            strips: (s, strips[end]),
            demand,
            capacity,
        });
    }
    windows
}

/// Emit one diagnostic per contiguous run of over-capacity windows.
pub fn check(ctx: &ProgramContext) -> Vec<Diagnostic> {
    let windows = sdr_windows(ctx);
    let mut diags = Vec::new();
    let mut run: Option<(SdrWindow, SdrWindow)> = None; // (first, worst)
    let flush = |run: &mut Option<(SdrWindow, SdrWindow)>, diags: &mut Vec<Diagnostic>| {
        let Some((first, worst)) = run.take() else {
            return;
        };
        let loss_pct = worst.predicted_overlap_loss() * 100.0;
        let label = ctx
            .program
            .ops
            .iter()
            .find(|lop| lop.strip == first.strips.0 && !matches!(lop.op, StreamOp::Kernel { .. }))
            .map(|lop| lop.label.clone())
            .unwrap_or_else(|| format!("strip {}", first.strips.0));
        diags.push(
            Diagnostic::new(
                Lint::SdrPressure,
                format!("op '{}' (strip {})", label, first.strips.0),
                format!(
                    "stream-descriptor demand {} exceeds the {}-register SDR file; \
                     memory/kernel overlap serializes (predicted overlap loss \u{2248} {:.0}%)",
                    worst.demand, worst.capacity, loss_pct
                ),
            )
            .note(format!(
                "strips {}..={} park descriptors on their SRF streams until the \
                 consuming kernels retire them (naive allocation policy)",
                worst.strips.0, worst.strips.1
            ))
            .note(format!(
                "the prefetch window holds {} descriptors but only {} exist; \
                 {} memory op(s) stall per window waiting for a stream to die",
                worst.demand,
                worst.capacity,
                worst.deficit()
            ))
            .help(
                "release descriptors at op completion (SdrPolicy::Eager — the paper's \
                 Section 5 fix), reduce concurrent streams per strip, or shrink \
                 strip_lookahead",
            ),
        );
    };
    for w in windows {
        if w.deficit() > 0 {
            run = match run {
                None => Some((w, w)),
                Some((first, worst)) => {
                    Some((first, if w.demand > worst.demand { w } else { worst }))
                }
            };
        } else {
            flush(&mut run, &mut diags);
        }
    }
    flush(&mut run, &mut diags);
    diags
}

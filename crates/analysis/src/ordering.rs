//! Per-strip read/write ordering pass: surface every read that overlaps
//! an earlier store of the same region in program order.
//!
//! The analysis itself lives in `merrimac_sim::parallel::read_write_hazards`
//! — the partitioner consumes it directly for `WriteOwned` admission, so
//! this pass and the engine can never disagree about what falls back.
//! Here each hazard becomes a diagnostic naming both ops, their strips
//! and the overlapping word ranges.

use merrimac_sim::parallel::read_write_hazards;

use crate::diag::Diagnostic;
use crate::lints::Lint;
use crate::ProgramContext;

/// One diagnostic per (store, later overlapping read) pair.
pub fn check(ctx: &ProgramContext) -> Vec<Diagnostic> {
    read_write_hazards(ctx.program)
        .into_iter()
        .map(|h| {
            let region = if h.region.0 < ctx.memory.num_regions() {
                format!("'{}'", ctx.memory.name(h.region))
            } else {
                format!("#{}", h.region.0)
            };
            let read = &ctx.program.ops[h.read_op];
            let write = &ctx.program.ops[h.write_op];
            Diagnostic::new(
                Lint::StripOrdering,
                format!("op '{}' (strip {})", read.label, h.read_strip),
                format!(
                    "read of region {region} words {}..{} overlaps the earlier store \
                     '{}' (strip {}, words {}..{}); the parallel engine falls back to serial",
                    h.read_range.0,
                    h.read_range.1,
                    write.label,
                    h.write_strip,
                    h.write_range.0,
                    h.write_range.1
                ),
            )
            .note(
                "phase A of the parallel engine reads pre-state (stores apply after all \
                 strips finish), so this read would observe stale data in parallel"
                    .to_string(),
            )
            .note(format!(
                "reads of ranges disjoint from every earlier store are admitted; only the \
                 overlap {}..{} forces the fallback",
                h.read_range.0.max(h.write_range.0),
                h.read_range.1.min(h.write_range.1)
            ))
            .help(
                "reorder the read before the store, or restructure the strip so it reads \
                 only ranges no earlier op stores",
            )
        })
        .collect()
}

//! SRF capacity preflight pass: the `StripSrfOverflow` floor check of
//! `StreamProcessor::validate_program`, upgraded from a single opaque
//! error to a diagnostic naming *which* buffers and how many words over
//! capacity each offending kernel launch lands.
//!
//! The accounting is identical to the simulator's (per-buffer share =
//! worst-case capacity spread across clusters; a kernel needs the sum
//! of its distinct input/output shares at issue time), so this pass
//! errors exactly when the simulator would refuse to run the program.

use merrimac_sim::machine::{buffer_capacity_words, produced_buffers};
use merrimac_sim::program::StreamOp;

use crate::diag::Diagnostic;
use crate::lints::Lint;
use crate::ProgramContext;

/// One Error diagnostic per kernel launch whose SRF working-set floor
/// exceeds per-cluster capacity.
pub fn check(ctx: &ProgramContext) -> Vec<Diagnostic> {
    let program = ctx.program;
    // Per-buffer words and per-cluster shares, from each producer op.
    let mut words = vec![0usize; program.buffers.len()];
    let mut share = vec![0usize; program.buffers.len()];
    for lop in &program.ops {
        for b in produced_buffers(&lop.op) {
            words[b.0] = buffer_capacity_words(program, &lop.op, b);
            share[b.0] = words[b.0].div_ceil(ctx.cfg.clusters);
        }
    }
    let mut diags = Vec::new();
    for lop in &program.ops {
        let StreamOp::Kernel {
            inputs,
            outputs,
            iterations,
            ..
        } = &lop.op
        else {
            continue;
        };
        let mut seen: Vec<usize> = Vec::new();
        for b in inputs.iter().chain(outputs) {
            if !seen.contains(&b.0) {
                seen.push(b.0);
            }
        }
        let needed: usize = seen.iter().map(|&b| share[b]).sum();
        let capacity = ctx.cfg.srf_words_per_cluster;
        if needed <= capacity {
            continue;
        }
        let mut d = Diagnostic::new(
            Lint::SrfCapacity,
            format!("op '{}' (strip {})", lop.label, lop.strip),
            format!(
                "kernel working set needs {needed} SRF words/cluster but the machine \
                 has {capacity} ({} words over); the scoreboard can never issue it",
                needed - capacity
            ),
        );
        for &b in &seen {
            d = d.note(format!(
                "buffer '{}': {} words total, {} words/cluster at issue time",
                program.buffers[b].name, words[b], share[b]
            ));
        }
        diags.push(
            d.note(format!(
                "this launch stages {iterations} iterations; the floor scales with strip size"
            ))
            .help(
                "reduce strip_iterations so the strip's streams double-buffer within the SRF, \
             or split the kernel's working set across more strips",
            ),
        );
    }
    diags
}

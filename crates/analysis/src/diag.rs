//! Structured diagnostics: what a pass found, where, and what to do
//! about it. Rendered rustc-style by [`Diagnostic::render`].

use std::fmt;

use crate::lints::Lint;

/// How serious a diagnostic is.
///
/// Ordered so `max()` picks the worst: `Info < Warn < Error`. Only
/// `Error` diagnostics describe programs the simulator will reject
/// (or deadlock on); `Warn` flags performance hazards — serialized
/// overlap, serial-fallback partitions, wasted SRF traffic — that
/// still execute correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Info,
    Warn,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of a static analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which lint produced this diagnostic.
    pub lint: Lint,
    pub severity: Severity,
    /// Where in the program/kernel the finding anchors (an op label and
    /// strip, or a kernel name and node index).
    pub location: String,
    /// One-line statement of the problem.
    pub message: String,
    /// Supporting facts (one `= note:` line each).
    pub notes: Vec<String>,
    /// Suggested fix (`= help:` line), when the pass has one.
    pub help: Option<String>,
}

impl Diagnostic {
    /// New diagnostic at the lint's default severity.
    pub fn new(lint: Lint, location: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            lint,
            severity: lint.default_severity(),
            location: location.into(),
            message: message.into(),
            notes: Vec::new(),
            help: None,
        }
    }

    /// Append a `= note:` line.
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Set the `= help:` line.
    pub fn help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Render rustc-style:
    ///
    /// ```text
    /// warning[SDR_PRESSURE]: descriptor demand 3 exceeds the 2-register SDR file
    ///   --> op 'gather 1' (strip 1)
    ///    = note: ...
    ///    = help: ...
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}[{}]: {}\n  --> {}",
            self.severity,
            self.lint.code(),
            self.message,
            self.location
        );
        for n in &self.notes {
            out.push_str("\n   = note: ");
            out.push_str(n);
        }
        if let Some(h) = &self.help {
            out.push_str("\n   = help: ");
            out.push_str(h);
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

//! The lint registry: every diagnostic the analysis pipeline can emit,
//! with stable codes, one-line summaries, and rustc-style long-form
//! explanations (`merrimac-lint --explain <CODE>`).

use crate::diag::Severity;

/// Every lint the analysis pipeline knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// Stream-descriptor-register demand exceeds the SDR file in some
    /// strip window, serializing memory/kernel overlap (paper Figure 7).
    SdrPressure,
    /// A read overlaps an earlier store of the same region in program
    /// order, forcing the parallel engine into a serial fallback.
    StripOrdering,
    /// A kernel's SRF working set exceeds per-cluster capacity; the
    /// scoreboard can never issue it.
    SrfCapacity,
    /// A loop-carried register is read but never updated.
    UninitRegRead,
    /// A computed value is never written out or consumed.
    DeadValue,
    /// A kernel reads fewer record fields than the input stream's
    /// declared record length.
    StreamImbalance,
    /// A declared kernel output stream is never written.
    UnusedOutput,
    /// An op performs an access kind the region's declared intent
    /// forbids (e.g. a store to a `ReadOnly` region); the simulator
    /// rejects the program.
    IntentMismatch,
    /// A region is accessed but carries no declared access intent, so
    /// the partitioner must treat it conservatively.
    IntentUndeclared,
    /// The whole-program dataflow prover found a kernel launch whose
    /// guaranteed consumption exceeds the records its input buffers can
    /// ever hold — a certain stream underrun at run time.
    StreamUnderrun,
    /// A compiled tape's three-phase batch plan violates the
    /// compress/expand split invariants (missing/duplicated ops or an
    /// illegal cross-phase dependence).
    BatchPlanSplit,
}

/// All registered lints, in report order.
pub const ALL_LINTS: [Lint; 11] = [
    Lint::SdrPressure,
    Lint::StripOrdering,
    Lint::SrfCapacity,
    Lint::UninitRegRead,
    Lint::DeadValue,
    Lint::StreamImbalance,
    Lint::UnusedOutput,
    Lint::IntentMismatch,
    Lint::IntentUndeclared,
    Lint::StreamUnderrun,
    Lint::BatchPlanSplit,
];

impl Lint {
    /// Stable identifier, used in rendered diagnostics and `--explain`.
    pub fn code(&self) -> &'static str {
        match self {
            Lint::SdrPressure => "SDR_PRESSURE",
            Lint::StripOrdering => "STRIP_ORDERING",
            Lint::SrfCapacity => "SRF_CAPACITY",
            Lint::UninitRegRead => "UNINIT_REG_READ",
            Lint::DeadValue => "DEAD_VALUE",
            Lint::StreamImbalance => "STREAM_IMBALANCE",
            Lint::UnusedOutput => "UNUSED_OUTPUT",
            Lint::IntentMismatch => "INTENT_MISMATCH",
            Lint::IntentUndeclared => "INTENT_UNDECLARED",
            Lint::StreamUnderrun => "STREAM_UNDERRUN",
            Lint::BatchPlanSplit => "BATCH_PLAN_SPLIT",
        }
    }

    /// Inverse of [`Lint::code`] (case-insensitive).
    pub fn from_code(code: &str) -> Option<Self> {
        ALL_LINTS
            .into_iter()
            .find(|l| l.code().eq_ignore_ascii_case(code))
    }

    /// Severity the pass assigns unless it has a reason to deviate.
    /// Errors name programs the simulator rejects outright (or whose
    /// runtime machinery is provably broken): SRF overflow, intent
    /// contract violations, certain stream underruns, and corrupted
    /// batch plans. Everything else is a performance or hygiene warning
    /// on programs that still execute correctly.
    pub fn default_severity(&self) -> Severity {
        match self {
            Lint::SrfCapacity
            | Lint::IntentMismatch
            | Lint::StreamUnderrun
            | Lint::BatchPlanSplit => Severity::Error,
            _ => Severity::Warn,
        }
    }

    /// One-line summary for lint listings.
    pub fn summary(&self) -> &'static str {
        match self {
            Lint::SdrPressure => {
                "stream-descriptor demand exceeds the SDR file; memory/kernel overlap serializes"
            }
            Lint::StripOrdering => {
                "a read overlaps an earlier store in program order; the parallel engine falls back to serial"
            }
            Lint::SrfCapacity => {
                "a kernel's SRF working set exceeds per-cluster capacity; it can never issue"
            }
            Lint::UninitRegRead => "a loop-carried register is read but never updated",
            Lint::DeadValue => "a computed value is never written out or consumed",
            Lint::StreamImbalance => {
                "a kernel reads fewer record fields than the stream's declared record length"
            }
            Lint::UnusedOutput => "a declared kernel output stream is never written",
            Lint::IntentMismatch => {
                "an op's access kind violates the region's declared intent; the simulator rejects the program"
            }
            Lint::IntentUndeclared => {
                "a region is accessed without a declared intent; the partitioner treats it conservatively"
            }
            Lint::StreamUnderrun => {
                "a kernel launch is statically proven to underrun one of its input streams"
            }
            Lint::BatchPlanSplit => {
                "a compiled tape's three-phase batch plan violates the compress/expand split invariants"
            }
        }
    }

    /// Long-form explanation, shown by `merrimac-lint --explain`.
    pub fn explain(&self) -> &'static str {
        match self {
            Lint::SdrPressure => {
                "The Merrimac memory unit needs a free stream descriptor register (SDR,\n\
                 called MAR in the paper) to issue any stream memory operation. Under\n\
                 the naive allocation policy the descriptor stays parked on the produced\n\
                 SRF stream until that stream dies — i.e. until the consuming kernel has\n\
                 finished with it — so during software-pipelined execution the registers\n\
                 of the current strip AND every prefetched strip are held at once.\n\
                 \n\
                 When that demand exceeds the SDR file size, the memory unit stalls with\n\
                 work ready: the next strip's gathers cannot start while the current\n\
                 strip's kernel runs, and the perfect memory/kernel overlap of the\n\
                 stream schedule degrades to partial overlap. This is precisely the\n\
                 allocation flaw of the paper's Section 5, visible as the gap between\n\
                 the 'original' and 'fixed' bars of Figure 7.\n\
                 \n\
                 The diagnostic reports the strip window where demand peaks and the\n\
                 predicted overlap loss (the fraction of the prefetch window that\n\
                 serializes). Fix it by releasing descriptors eagerly at operation\n\
                 completion (SdrPolicy::Eager), by reducing the number of concurrent\n\
                 streams per strip, or by shrinking the prefetch lookahead."
            }
            Lint::StripOrdering => {
                "The parallel strip engine executes every strip's functional work\n\
                 against pre-state: stores are buffered and applied only after all\n\
                 strips finish. A read that follows an overlapping store in program\n\
                 order would therefore observe stale data under parallel execution,\n\
                 so the partitioner refuses the program and runs it on the serial\n\
                 scoreboard (fallback reason `read_after_write`).\n\
                 \n\
                 The per-strip ordering analysis only flags reads whose word ranges\n\
                 actually overlap an earlier store's range. Reads of disjoint ranges\n\
                 compose freely — the software-pipelined in-place update pattern, where\n\
                 strip k loads, transforms and stores back its own slice before strip\n\
                 k+1 starts, is admitted to the parallel path.\n\
                 \n\
                 Fix a flagged program by reordering the read before the store, or by\n\
                 restructuring the access so each strip reads only ranges no earlier\n\
                 strip stores."
            }
            Lint::SrfCapacity => {
                "A kernel operation can only issue once every input stream is live in\n\
                 the stream register file and every output stream has been allocated,\n\
                 so the sum of the per-cluster shares of its inputs and outputs is a\n\
                 hard floor on SRF occupancy at issue time. If that floor exceeds the\n\
                 per-cluster capacity the kernel can never issue and the scoreboard\n\
                 deadlocks — the classic symptom of a strip sized past what the SRF\n\
                 can double-buffer.\n\
                 \n\
                 This diagnostic names the offending kernel launch, each buffer in its\n\
                 working set with its per-cluster share, and how many words over\n\
                 capacity the total lands. Fix it by reducing the strip size\n\
                 (fewer iterations staged per strip) or by splitting the kernel's\n\
                 working set across more, smaller strips."
            }
            Lint::UninitRegRead => {
                "A kernel reads a loop-carried register that no register update ever\n\
                 writes. The register keeps its initial value for every iteration, so\n\
                 the read is equivalent to a constant — almost always a sign that a\n\
                 register update was forgotten (e.g. a force accumulator that never\n\
                 accumulates).\n\
                 \n\
                 If the constant value is intended, replace the register read with a\n\
                 Const node; otherwise add the missing entry to the kernel's\n\
                 reg_updates."
            }
            Lint::DeadValue => {
                "A kernel computes a value that is never written to an output stream,\n\
                 never feeds a register update, and is not a side-effecting\n\
                 conditional-stream read. The cluster burns a VLIW issue slot (and\n\
                 schedule length) on arithmetic whose result is unobservable.\n\
                 \n\
                 Remove the dead computation, or wire its result into a write or\n\
                 register update if it was meant to be observable."
            }
            Lint::StreamImbalance => {
                "An input stream pops one full record per iteration regardless of how\n\
                 many of its fields the kernel actually reads. When a kernel reads\n\
                 fewer distinct fields than the stream's declared record length, the\n\
                 unread words still cross the memory system and occupy SRF space —\n\
                 pure wasted bandwidth every iteration.\n\
                 \n\
                 Narrow the stream's record (gather only the fields the kernel uses)\n\
                 or read the remaining fields if they were meant to be consumed."
            }
            Lint::UnusedOutput => {
                "A kernel declares an output stream but has no write targeting it.\n\
                 The launch allocates SRF space for a stream that stays empty, and\n\
                 downstream ops consuming it will see no records.\n\
                 \n\
                 Drop the unused output from the kernel signature, or add the missing\n\
                 write."
            }
            Lint::IntentMismatch => {
                "Every memory region may declare an access intent — `ReadOnly`,\n\
                 `WriteOwned` or `ReduceAdd` — and the strip partitioner admits\n\
                 parallel execution on the strength of that declaration: read-only\n\
                 regions are shared freely, write-owned regions parallelize when the\n\
                 stored ranges are disjoint, reduce-add regions merge through the\n\
                 deterministic tree reduction. An op whose access kind the declared\n\
                 intent forbids (a store to a `ReadOnly` region, a gather from a\n\
                 `ReduceAdd` target, a scatter-add into a `WriteOwned` slice) breaks\n\
                 the contract the partitioner trusted; depending on the direction of\n\
                 the lie it either unsoundly parallelizes racing accesses or silently\n\
                 forces a serial fallback. The simulator's `validate_program` rejects\n\
                 such programs at run time; this pass proves the same violation\n\
                 statically from the whole-program access footprint, naming the op,\n\
                 the access kind and the word range it touches.\n\
                 \n\
                 Fix it by declaring the intent the ops actually need (e.g. promote\n\
                 the region to `WriteOwned`) or by removing the offending access."
            }
            Lint::IntentUndeclared => {
                "A memory region is gathered, loaded, stored or scatter-added but no\n\
                 access intent was declared for it at `ProgramBuilder` level. The\n\
                 partitioner then has no contract to admit the region on, so it falls\n\
                 back to conservative rules: mixed reads and writes serialize the\n\
                 whole program even when every strip touches a disjoint slice, and\n\
                 the analysis passes cannot prove cross-strip disjointness claims on\n\
                 the region's behalf.\n\
                 \n\
                 The diagnostic reports the access kinds the program actually\n\
                 performs and the intent they imply. Declare that intent with\n\
                 `ProgramBuilder::intent` so the partitioner can admit the region\n\
                 deliberately instead of conservatively."
            }
            Lint::StreamUnderrun => {
                "The whole-program dataflow prover tracks how many records each SRF\n\
                 buffer can ever hold (gathers produce exactly `indices.len()`\n\
                 records, loads exactly `records`, kernels at least their guaranteed\n\
                 unconditional writes per iteration) and how many records each kernel\n\
                 launch is guaranteed to consume: one per iteration for\n\
                 every-iteration streams, and a `[0, pop-slots]` interval per\n\
                 iteration for conditional streams. When the guaranteed consumption\n\
                 of an every-iteration stream exceeds what its buffer can hold, the\n\
                 launch will underrun no matter what data flows at run time — the\n\
                 engines would stop at the reported iteration with a\n\
                 `StreamUnderrun` error.\n\
                 \n\
                 The same analysis, run in the other direction, produces a static\n\
                 underrun-freedom proof: when every stream's worst-case demand is\n\
                 covered, the proof object is stamped on the program and the tape and\n\
                 batch engines skip their runtime underrun checks for that launch.\n\
                 \n\
                 Fix a flagged launch by sizing the producer (gather index list or\n\
                 load record count) to at least the iteration count, or by reducing\n\
                 the launch's iterations to what the buffer holds."
            }
            Lint::BatchPlanSplit => {
                "The batched SoA engine executes each compiled tape in three\n\
                 dataflow-ordered phases: `vec_pre` (lane-independent ops,\n\
                 vectorized), `seq` (conditional reads plus the lane-coupled slice\n\
                 feeding register updates and pop predicates, scalar in iteration\n\
                 order) and `vec_post` (lane-coupled but state-free consumers,\n\
                 vectorized after the sequential core resolves). Bitwise identity\n\
                 with the scalar engines holds only while the split satisfies its\n\
                 invariants: every tape op lands in exactly one phase, conditional\n\
                 reads stay sequential, no pre-phase op reads a register slot or a\n\
                 later phase's result, no sequential op reads a post-phase result,\n\
                 and each phase preserves tape (SSA) order.\n\
                 \n\
                 This pass audits the plan cached on every compiled kernel against\n\
                 those invariants and reports each violation with the offending op\n\
                 and phase. A violation means the batch engine would compute wrong\n\
                 values or pop streams out of order — the program must not run under\n\
                 the batched engine until the plan is rebuilt."
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for lint in ALL_LINTS {
            assert_eq!(Lint::from_code(lint.code()), Some(lint));
            assert_eq!(Lint::from_code(&lint.code().to_lowercase()), Some(lint));
        }
        assert_eq!(Lint::from_code("NOT_A_LINT"), None);
    }

    #[test]
    fn every_lint_documented() {
        for lint in ALL_LINTS {
            assert!(!lint.summary().is_empty(), "{:?} summary", lint);
            assert!(
                lint.explain().len() > lint.summary().len(),
                "{:?} explanation should be long-form",
                lint
            );
        }
    }

    #[test]
    fn error_lints_name_programs_the_machine_rejects() {
        // Errors are reserved for contract violations the simulator (or
        // the batch engine's own invariants) would refuse to run.
        for lint in ALL_LINTS {
            let expect = matches!(
                lint,
                Lint::SrfCapacity
                    | Lint::IntentMismatch
                    | Lint::StreamUnderrun
                    | Lint::BatchPlanSplit
            );
            assert_eq!(
                lint.default_severity() == Severity::Error,
                expect,
                "{:?}",
                lint
            );
        }
    }
}

//! Shared dataflow facts for the whole-program verification passes.
//!
//! The paper's thesis (Sections 4–5) is that a stream program's
//! behaviour is *statically analyzable* from its kernel/stream
//! structure. This module computes the two families of facts the
//! verifier passes share, by abstract interpretation rather than
//! execution:
//!
//! * **Per-stream consumption/production intervals** ([`KernelFlow`]) —
//!   for each kernel input stream, the interval of records popped per
//!   unrolled iteration (`[1,1]` for every-iteration streams, `[0,k]`
//!   for conditional streams with `k` distinct pop predicates — the
//!   tape pops once per distinct `(stream, predicate)` slot per
//!   iteration), and for each output stream the interval of words
//!   appended per iteration (conditional writes contribute only to the
//!   upper bound). Iteration counts are unroll-aware: flows are
//!   computed over the *unrolled* IR, the form the engines execute.
//!
//! * **Per-region word-range access summaries** ([`RegionAccess`],
//!   [`region_accesses`]) — for every stream-level op touching node
//!   memory, the access kind plus a word-range bounding box: exact for
//!   sequential loads/stores, an index bounding box for gathers and
//!   scatter-adds. Store extents use the producer buffer's capacity,
//!   the same accounting `partition_program` admits on, so the passes
//!   and the partitioner cannot disagree about footprints.
//!
//! A forward walk ([`BufferState`], [`buffer_flow`]) propagates these
//! per-op facts through the SRF buffers in program order, yielding an
//! interval of words available in each buffer at every kernel launch —
//! the fixpoint the STREAM_UNDERRUN pass consumes. (Programs are
//! straight-line per strip, so one forward pass *is* the fixpoint; the
//! interval join is still here for re-produced buffers.)

use std::collections::BTreeMap;

use merrimac_sim::kernelc::CompiledKernel;
use merrimac_sim::program::{AccessKind, StreamOp, StreamProgram};

/// Closed interval `[lo, hi]` over word/record counts — the lattice
/// element of every flow fact. `lo` is a guaranteed minimum, `hi` a
/// worst-case maximum; both saturate rather than wrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub lo: usize,
    pub hi: usize,
}

impl Interval {
    pub fn new(lo: usize, hi: usize) -> Self {
        debug_assert!(lo <= hi);
        Interval { lo, hi }
    }

    /// The interval `[n, n]`.
    pub fn exact(n: usize) -> Self {
        Interval { lo: n, hi: n }
    }

    /// Lattice join: the smallest interval containing both.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Pointwise sum (saturating).
    pub fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.saturating_add(other.hi),
        }
    }

    /// Scale by an iteration count (saturating).
    pub fn scale(self, k: usize) -> Interval {
        Interval {
            lo: self.lo.saturating_mul(k),
            hi: self.hi.saturating_mul(k),
        }
    }
}

/// Per-iteration stream consumption/production bounds for one compiled
/// kernel, over its *unrolled* IR.
#[derive(Debug, Clone)]
pub struct KernelFlow {
    /// Records popped per unrolled iteration, per input stream.
    pub pops_per_iter: Vec<Interval>,
    /// Words appended per unrolled iteration, per output stream.
    pub out_words_per_iter: Vec<Interval>,
    /// Is each input stream consumed every iteration (vs conditionally)?
    pub every_iter: Vec<bool>,
}

/// Compute [`KernelFlow`] from a compiled kernel's tape. Every-iteration
/// streams pop exactly one record; a conditional stream pops at most
/// once per distinct `(stream, predicate)` pop slot and possibly not at
/// all, hence `[0, k]`. Output words come from the write plan:
/// unconditional writes are exact, conditional writes raise only the
/// upper bound.
pub fn kernel_flow(kernel: &CompiledKernel) -> KernelFlow {
    let tape = &kernel.tape;
    let num_inputs = kernel.ir.inputs.len();
    let mut pops = Vec::with_capacity(num_inputs);
    let mut every = Vec::with_capacity(num_inputs);
    for s in 0..num_inputs {
        let max = tape.max_pops_per_iter(s);
        let is_every = max == 1 && {
            use merrimac_kernel::StreamMode;
            kernel.ir.inputs[s].mode == StreamMode::EveryIteration
        };
        every.push(is_every);
        if is_every {
            pops.push(Interval::exact(1));
        } else {
            pops.push(Interval::new(0, max));
        }
    }
    let mins = tape.min_out_words_per_iter();
    let maxs = tape.max_out_words_per_iter();
    let out_words = mins
        .into_iter()
        .zip(maxs)
        .map(|(lo, hi)| Interval::new(lo, hi))
        .collect();
    KernelFlow {
        pops_per_iter: pops,
        out_words_per_iter: out_words,
        every_iter: every,
    }
}

/// One stream-level op's touch on a memory region: the kind plus a
/// word-range bounding box `[start, end)`.
#[derive(Debug, Clone)]
pub struct RegionAccess {
    /// Index of the op in `program.ops`.
    pub op_index: usize,
    pub kind: AccessKind,
    /// First word possibly touched.
    pub start: usize,
    /// One past the last word possibly touched.
    pub end: usize,
}

/// Word-range access summaries per region (keyed by `RegionId.0`), in
/// op order. Gather/scatter-add footprints are index bounding boxes;
/// loads are exact; store extents use the producer buffer's capacity —
/// the identical accounting the strip partitioner ranges stores with.
pub fn region_accesses(program: &StreamProgram) -> BTreeMap<usize, Vec<RegionAccess>> {
    // Producer op of each buffer bounds store ranges, as in
    // `partition_program`.
    let mut producer: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, lop) in program.ops.iter().enumerate() {
        for b in merrimac_sim::machine::produced_buffers(&lop.op) {
            producer.entry(b.0).or_insert(i);
        }
    }
    let mut map: BTreeMap<usize, Vec<RegionAccess>> = BTreeMap::new();
    for (i, lop) in program.ops.iter().enumerate() {
        let Some((region, kind)) = lop.op.region_use() else {
            continue;
        };
        let (start, end) = match &lop.op {
            StreamOp::Gather {
                record_len,
                indices,
                ..
            }
            | StreamOp::ScatterAdd {
                record_len,
                indices,
                ..
            } => match (indices.iter().min(), indices.iter().max()) {
                (Some(&lo), Some(&hi)) => (
                    lo as usize * record_len,
                    (hi as usize + 1) * record_len,
                ),
                _ => (0, 0),
            },
            StreamOp::Load {
                record_len,
                start,
                records,
                ..
            } => (start * record_len, (start + records) * record_len),
            StreamOp::Store {
                src,
                record_len,
                start,
                ..
            } => {
                let cap = producer
                    .get(&src.0)
                    .map(|&p| {
                        merrimac_sim::machine::buffer_capacity_words(
                            program,
                            &program.ops[p].op,
                            *src,
                        )
                    })
                    .unwrap_or(0);
                let s = start * record_len;
                (s, s + cap)
            }
            StreamOp::Kernel { .. } => unreachable!("kernels have no region use"),
        };
        map.entry(region.0).or_default().push(RegionAccess {
            op_index: i,
            kind,
            start,
            end,
        });
    }
    map
}

/// Interval of words available in each SRF buffer immediately before
/// each op, from a forward abstract interpretation in program order.
#[derive(Debug, Clone, Default)]
pub struct BufferState {
    /// `buffer id -> [lo, hi]` words. Absent means never produced (or
    /// bounds unknown after a rejected launch).
    pub words: BTreeMap<usize, Interval>,
}

/// Forward-propagate buffer availability through the program. Returns,
/// for each kernel op index, the buffer state *at launch* — what the
/// STREAM_UNDERRUN pass judges pops against. Transfer functions:
/// gathers and loads produce exact word counts (availability is
/// replaced — the executors overwrite re-produced buffers); kernel
/// outputs produce `unrolled_iters × out_words_per_iter`; launches
/// whose iteration count the unroll factor does not divide poison
/// their outputs (the simulator rejects them before any words move).
pub fn buffer_flow(program: &StreamProgram) -> BTreeMap<usize, BufferState> {
    let mut state = BufferState::default();
    let mut at_launch = BTreeMap::new();
    for (i, lop) in program.ops.iter().enumerate() {
        match &lop.op {
            StreamOp::Gather {
                record_len,
                indices,
                dst,
                ..
            } => {
                state
                    .words
                    .insert(dst.0, Interval::exact(indices.len() * record_len));
            }
            StreamOp::Load {
                record_len,
                records,
                dst,
                ..
            } => {
                state
                    .words
                    .insert(dst.0, Interval::exact(records * record_len));
            }
            StreamOp::Kernel {
                kernel,
                outputs,
                iterations,
                ..
            } => {
                at_launch.insert(i, state.clone());
                let unroll = kernel.opt.unroll as u64;
                if unroll == 0 || *iterations % unroll != 0 {
                    for b in outputs {
                        state.words.remove(&b.0);
                    }
                    continue;
                }
                let unrolled = (*iterations / unroll) as usize;
                let flow = kernel_flow(kernel);
                for (o, b) in outputs.iter().enumerate() {
                    let per_iter = flow
                        .out_words_per_iter
                        .get(o)
                        .copied()
                        .unwrap_or(Interval::exact(0));
                    state.words.insert(b.0, per_iter.scale(unrolled));
                }
            }
            StreamOp::ScatterAdd { .. } | StreamOp::Store { .. } => {}
        }
    }
    at_launch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_lattice_ops() {
        let a = Interval::new(1, 3);
        let b = Interval::exact(5);
        assert_eq!(a.join(b), Interval::new(1, 5));
        assert_eq!(a.add(b), Interval::new(6, 8));
        assert_eq!(a.scale(4), Interval::new(4, 12));
        assert_eq!(Interval::exact(usize::MAX).scale(2).hi, usize::MAX);
    }
}

//! Cost model of the paper's baseline: a 2.4 GHz Intel Pentium 4
//! (Northwood, 90 nm-equivalent process) running the hand-optimized
//! GROMACS water-water inner loop with single-precision SSE.
//!
//! The paper estimates the P4 result from wall-clock time of the same
//! dataset, assuming the force loop accounts for most of the run. We model
//! cycles per molecule-pair interaction from the published structure of
//! the GROMACS 3.x `inl1130` water-water loop (9 Coulomb pairs + 1 LJ
//! pair, SSE packed single, software `rsqrtps` + one Newton iteration) and
//! expose the same "solution GFLOPS" metric Figure 9 reports.

use serde::{Deserialize, Serialize};

/// Pentium 4 baseline parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P4Config {
    /// Core frequency in Hz (2.4 GHz).
    pub clock_hz: f64,
    /// Cycles per molecule-pair interaction achieved by the hand-tuned SSE
    /// loop, including neighbour-list traversal overhead and the memory
    /// stalls measured in GROMACS benchmark reports (~130 cycles/pair).
    pub cycles_per_interaction: f64,
    /// Fraction of total MD step time spent in the water-water force loop
    /// for a pure-water system (the paper assumes the force calculation
    /// dominates; GROMACS reports ~90% for water boxes).
    pub force_fraction: f64,
}

impl Default for P4Config {
    fn default() -> Self {
        Self {
            clock_hz: 2.4e9,
            cycles_per_interaction: 130.0,
            force_fraction: 0.90,
        }
    }
}

impl P4Config {
    /// Seconds the P4 needs for the force phase of one time step with
    /// `interactions` molecule-pair interactions.
    pub fn force_time_seconds(&self, interactions: u64) -> f64 {
        interactions as f64 * self.cycles_per_interaction / self.clock_hz
    }

    /// Seconds for a full time step (force phase scaled by the measured
    /// force fraction).
    pub fn step_time_seconds(&self, interactions: u64) -> f64 {
        self.force_time_seconds(interactions) / self.force_fraction
    }

    /// Solution GFLOPS: programmer-visible flops (234 per interaction, the
    /// same accounting as Merrimac) divided by force-phase time.
    pub fn solution_gflops(&self, interactions: u64, flops_per_interaction: u64) -> f64 {
        let t = self.force_time_seconds(interactions);
        if t == 0.0 {
            return 0.0;
        }
        interactions as f64 * flops_per_interaction as f64 / t / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_a_2_4_ghz_part() {
        let p = P4Config::default();
        assert!((p.clock_hz - 2.4e9).abs() < 1.0);
        assert!(p.cycles_per_interaction > 50.0 && p.cycles_per_interaction < 500.0);
    }

    #[test]
    fn solution_gflops_sane_for_paper_dataset() {
        let p = P4Config::default();
        // ~62k interactions, 234 flops each: the paper's Figure 9 P4 bar is
        // a handful of GFLOPS; our model must land in the single digits.
        let g = p.solution_gflops(61_680, 234);
        assert!(g > 1.0 && g < 10.0, "P4 solution GFLOPS = {g}");
    }

    #[test]
    fn step_time_exceeds_force_time() {
        let p = P4Config::default();
        assert!(p.step_time_seconds(1000) > p.force_time_seconds(1000));
    }

    #[test]
    fn zero_interactions() {
        let p = P4Config::default();
        assert_eq!(p.solution_gflops(0, 234), 0.0);
        assert_eq!(p.force_time_seconds(0), 0.0);
    }
}

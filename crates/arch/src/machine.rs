//! Merrimac node and system parameters (paper Table 1 and Section 2).
//!
//! All rates are expressed per core clock cycle so the simulator never has
//! to convert units mid-flight; helper methods derive the GB/s figures the
//! paper quotes.

use serde::{Deserialize, Serialize};

use crate::WORD_BYTES;

/// Configuration of a single Merrimac node (stream processor + DRAM).
///
/// Defaults reproduce Table 1 of the paper:
///
/// ```text
/// Number of stream cache banks          8
/// Number of scatter-add units per bank  1
/// Latency of scatter-add functional unit 4
/// Number of combining store entries     8
/// Number of DRAM interface channels     2
/// Number of address generators          2
/// Operating frequency                   1 GHz
/// Peak DRAM bandwidth                   38.4 GB/s
/// Stream cache bandwidth                64 GB/s
/// Number of clusters                    16
/// Peak floating point operations/cycle  128
/// SRF bandwidth                         512 GB/s
/// SRF size                              1 MB
/// Stream cache size                     0.5 MB
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Core clock frequency in Hz (1 GHz in the 90 nm design sketch).
    pub clock_hz: f64,
    /// Number of arithmetic clusters operated in SIMD (16).
    pub clusters: usize,
    /// 64-bit multiply-add FPUs per cluster (4).
    pub fpus_per_cluster: usize,
    /// Local register file words per cluster (768 words).
    pub lrf_words_per_cluster: usize,
    /// LRF read ports per FPU per cycle (3 operand reads sustained).
    pub lrf_reads_per_fpu: usize,
    /// Stream register file bank size per cluster, in words (8 KWords).
    pub srf_words_per_cluster: usize,
    /// SRF words readable per cluster per cycle (4).
    pub srf_words_per_cluster_cycle: usize,
    /// Stream cache capacity in words (64 KWords = 512 KB).
    pub cache_words: usize,
    /// Stream cache banks, line interleaved (8).
    pub cache_banks: usize,
    /// Cache line length in words.
    pub cache_line_words: usize,
    /// Cache associativity (ways per set).
    pub cache_ways: usize,
    /// Words per cycle the stream cache sustains across all banks (8).
    pub cache_words_per_cycle: usize,
    /// Stream address generators per node (2).
    pub address_generators: usize,
    /// Single-word addresses all generators produce per cycle (8).
    pub addresses_per_cycle: usize,
    /// External DRAM interface channels (2 Rambus DRDRAM groups).
    pub dram_channels: usize,
    /// Peak (streaming) DRAM bandwidth in words per cycle (4.8 w/c = 38.4 GB/s).
    pub dram_peak_words_per_cycle: f64,
    /// Random-access DRAM bandwidth in words per cycle (2 w/c = 16 GB/s).
    pub dram_random_words_per_cycle: f64,
    /// Scatter-add functional units per cache bank (1).
    pub scatter_add_units_per_bank: usize,
    /// Pipeline latency of a scatter-add functional unit in cycles (4).
    pub scatter_add_latency: u64,
    /// Combining-store entries in front of each scatter-add unit (8).
    pub combining_store_entries: usize,
    /// Hardware stream descriptor registers (MARs) available to the stream
    /// unit. Figure 7 of the paper hinges on how these are allocated.
    pub stream_descriptor_registers: usize,
    /// Fixed start-up overhead of a stream memory operation in cycles
    /// (descriptor issue + pipeline fill to DRAM and back).
    pub memory_op_startup: u64,
    /// Fixed overhead of launching a kernel in cycles (microcode dispatch
    /// plus pipeline priming; Section 5.1 lists kernel start-up among the
    /// reasons sustained rate is below optimal).
    pub kernel_startup: u64,
    /// Node DRAM capacity in bytes (2 GB).
    pub dram_capacity_bytes: u64,
    /// Whether bulk gathers allocate in the stream cache. Default false:
    /// gathers stream past the cache at DRDRAM random-access bandwidth,
    /// matching the paper's near-equal SRF/MEM reference counts
    /// (Figure 8). Enabling it is the cache ablation of the benches.
    pub cache_allocates_gathers: bool,
    /// Host worker threads the execution engine uses for the functional
    /// and memory-timing phases of a simulated step (not a property of
    /// the modeled machine). Results and cycle counts are
    /// bitwise-identical at any value; 1 runs serially. The default
    /// honours the `MERRIMAC_HOST_THREADS` environment variable (CI
    /// runs the tier-1 suite across a thread matrix this way).
    pub host_threads: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            clock_hz: 1.0e9,
            clusters: 16,
            fpus_per_cluster: 4,
            lrf_words_per_cluster: 768,
            lrf_reads_per_fpu: 3,
            srf_words_per_cluster: 8 * 1024,
            srf_words_per_cluster_cycle: 4,
            cache_words: 64 * 1024,
            cache_banks: 8,
            cache_line_words: 8,
            cache_ways: 4,
            cache_words_per_cycle: 8,
            address_generators: 2,
            addresses_per_cycle: 8,
            dram_channels: 2,
            dram_peak_words_per_cycle: 4.8,
            dram_random_words_per_cycle: 2.0,
            scatter_add_units_per_bank: 1,
            scatter_add_latency: 4,
            combining_store_entries: 8,
            stream_descriptor_registers: 16,
            memory_op_startup: 200,
            kernel_startup: 150,
            dram_capacity_bytes: 2 * 1024 * 1024 * 1024,
            cache_allocates_gathers: false,
            host_threads: std::env::var("MERRIMAC_HOST_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&t| t >= 1)
                .unwrap_or(1),
        }
    }
}

impl MachineConfig {
    /// Total MADD FPUs on the chip (64 for the default configuration).
    pub fn total_fpus(&self) -> usize {
        self.clusters * self.fpus_per_cluster
    }

    /// Peak floating-point operations per cycle (128: one multiply-add per
    /// FPU per cycle counts as two flops).
    pub fn peak_flops_per_cycle(&self) -> usize {
        self.total_fpus() * 2
    }

    /// Peak performance in GFLOPS (128 GFLOPS at 1 GHz).
    pub fn peak_gflops(&self) -> f64 {
        self.peak_flops_per_cycle() as f64 * self.clock_hz / 1e9
    }

    /// Total SRF capacity in bytes (1 MB).
    pub fn srf_bytes(&self) -> u64 {
        (self.srf_words_per_cluster * self.clusters) as u64 * WORD_BYTES
    }

    /// Total SRF bandwidth in GB/s (512 GB/s: 4 words/cluster/cycle).
    pub fn srf_gbps(&self) -> f64 {
        (self.srf_words_per_cluster_cycle * self.clusters) as u64 as f64
            * WORD_BYTES as f64
            * self.clock_hz
            / 1e9
    }

    /// Stream cache bandwidth in GB/s (64 GB/s).
    pub fn cache_gbps(&self) -> f64 {
        self.cache_words_per_cycle as f64 * WORD_BYTES as f64 * self.clock_hz / 1e9
    }

    /// Stream cache capacity in bytes (512 KB).
    pub fn cache_bytes(&self) -> u64 {
        self.cache_words as u64 * WORD_BYTES
    }

    /// Peak DRAM bandwidth in GB/s (38.4 GB/s).
    pub fn dram_peak_gbps(&self) -> f64 {
        self.dram_peak_words_per_cycle * WORD_BYTES as f64 * self.clock_hz / 1e9
    }

    /// Random-access DRAM bandwidth in GB/s (16 GB/s).
    pub fn dram_random_gbps(&self) -> f64 {
        self.dram_random_words_per_cycle * WORD_BYTES as f64 * self.clock_hz / 1e9
    }

    /// Cache sets implied by capacity, line length, associativity and
    /// banking. Lines are interleaved across banks.
    pub fn cache_sets(&self) -> usize {
        self.cache_words / (self.cache_line_words * self.cache_ways)
    }

    /// Convert a cycle count at the node clock into seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }

    /// GFLOPS achieved by `flops` useful operations in `cycles` cycles.
    pub fn gflops(&self, flops: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        flops as f64 / self.cycles_to_seconds(cycles) / 1e9
    }
}

/// Parameters of the Merrimac interconnection network (paper Section 2.3).
///
/// The network is a five-stage folded Clos: on-board routers form the first
/// and last stage, backplane routers the second and fourth, and the
/// system-level switch the middle stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Nodes (stream processors) per board (16).
    pub nodes_per_board: usize,
    /// Router chips per board (4).
    pub routers_per_board: usize,
    /// Channels from each on-board router to each processor (2).
    pub channels_per_node_per_router: usize,
    /// Payload bandwidth of one channel in GB/s (2.5 GB/s).
    pub channel_gbps: f64,
    /// Channels from each board router up to the backplane (8).
    pub uplinks_per_router: usize,
    /// Boards per backplane (cabinet) (32).
    pub boards_per_backplane: usize,
    /// Backplanes connected by the system-level switch (up to 16 for the
    /// 2 PFLOPS configuration; the topology admits 48).
    pub backplanes: usize,
    /// Per-hop router latency in core cycles.
    pub hop_latency_cycles: u64,
    /// One-way wire/serialization latency between boards in core cycles
    /// (includes the optical OE/EO crossing at the system level).
    pub board_wire_latency_cycles: u64,
    pub system_wire_latency_cycles: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            nodes_per_board: 16,
            routers_per_board: 4,
            channels_per_node_per_router: 2,
            channel_gbps: 2.5,
            uplinks_per_router: 8,
            boards_per_backplane: 32,
            backplanes: 16,
            hop_latency_cycles: 20,
            board_wire_latency_cycles: 50,
            system_wire_latency_cycles: 500,
        }
    }
}

impl NetworkConfig {
    /// Flat on-board memory bandwidth available to each node in GB/s
    /// (paper: 20 GB/s per node — 2 channels to each of 4 routers).
    pub fn node_injection_gbps(&self) -> f64 {
        self.routers_per_board as f64 * self.channels_per_node_per_router as f64 * self.channel_gbps
    }

    /// Total nodes in the configured system.
    pub fn total_nodes(&self) -> usize {
        self.nodes_per_board * self.boards_per_backplane * self.backplanes
    }

    /// Aggregate uplink bandwidth leaving one board, GB/s.
    pub fn board_uplink_gbps(&self) -> f64 {
        self.routers_per_board as f64 * self.uplinks_per_router as f64 * self.channel_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let m = MachineConfig::default();
        assert_eq!(m.clusters, 16);
        assert_eq!(m.total_fpus(), 64);
        assert_eq!(m.peak_flops_per_cycle(), 128);
        assert!((m.peak_gflops() - 128.0).abs() < 1e-9);
        assert_eq!(m.cache_banks, 8);
        assert_eq!(m.address_generators, 2);
        assert_eq!(m.addresses_per_cycle, 8);
        assert_eq!(m.scatter_add_latency, 4);
        assert_eq!(m.combining_store_entries, 8);
        assert_eq!(m.dram_channels, 2);
    }

    #[test]
    fn derived_bandwidths_match_section2() {
        let m = MachineConfig::default();
        assert!(
            (m.srf_gbps() - 512.0).abs() < 1e-9,
            "SRF bw {}",
            m.srf_gbps()
        );
        assert!((m.cache_gbps() - 64.0).abs() < 1e-9);
        assert!((m.dram_peak_gbps() - 38.4).abs() < 1e-9);
        assert!((m.dram_random_gbps() - 16.0).abs() < 1e-9);
        assert_eq!(m.srf_bytes(), 1024 * 1024);
        assert_eq!(m.cache_bytes(), 512 * 1024);
    }

    #[test]
    fn cache_geometry_is_consistent() {
        let m = MachineConfig::default();
        let sets = m.cache_sets();
        assert_eq!(sets * m.cache_line_words * m.cache_ways, m.cache_words);
        assert!(sets.is_power_of_two());
    }

    #[test]
    fn gflops_helper() {
        let m = MachineConfig::default();
        // 128 flops every cycle for 1000 cycles = peak.
        assert!((m.gflops(128_000, 1000) - 128.0).abs() < 1e-9);
        assert_eq!(m.gflops(1, 0), 0.0);
    }

    #[test]
    fn network_defaults_match_section23() {
        let n = NetworkConfig::default();
        assert!((n.node_injection_gbps() - 20.0).abs() < 1e-9);
        assert_eq!(n.total_nodes(), 8192);
        assert!((n.board_uplink_gbps() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn clone_and_eq() {
        let m = MachineConfig::default();
        assert_eq!(m.clone(), m);
        let n = NetworkConfig::default();
        assert_eq!(n.clone(), n);
    }
}

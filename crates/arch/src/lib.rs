//! Machine description for the Merrimac streaming supercomputer.
//!
//! This crate is the single source of truth for the architectural
//! parameters the paper lists in Table 1, the derived bandwidth figures
//! quoted throughout Section 2, and the functional-unit latency/throughput
//! table used by the VLIW kernel scheduler. Every other crate in the
//! workspace reads its constants from here so that a parameter sweep (for
//! ablations) only has to touch one struct.
//!
//! Two cost models live here:
//!
//! * [`MachineConfig`] — the Merrimac node (Section 2 of the paper).
//! * [`P4Config`] — the 2.4 GHz Pentium 4 baseline the paper compares
//!   against (Section 4.1).

pub mod machine;
pub mod ops;
pub mod p4;

pub use machine::{MachineConfig, NetworkConfig};
pub use ops::{FpuOpClass, OpCosts};
pub use p4::P4Config;

/// Bytes per machine word. Merrimac is a 64-bit double-precision machine;
/// all stream records and bandwidth figures in the paper count 8-byte words.
pub const WORD_BYTES: u64 = 8;

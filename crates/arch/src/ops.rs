//! Functional-unit operation classes and their cost table.
//!
//! The Merrimac cluster FPU is a 64-bit multiply-accumulate (MADD) unit
//! with single-cycle throughput and a short pipeline. Divides and square
//! roots are *not* hardware primitives: the paper (Section 5.1) notes they
//! "are computed iteratively and require several operations", which is why
//! the optimal StreamMD rate is well below the 128 GFLOPS peak. The kernel
//! crate lowers [`FpuOpClass::Div`]/[`FpuOpClass::Sqrt`]/[`FpuOpClass::Rsqrt`]
//! into Newton–Raphson sequences of MADD-class operations using the
//! iteration counts recorded here.

use serde::{Deserialize, Serialize};

/// Classes of operations the VLIW scheduler places into FPU slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FpuOpClass {
    /// Add/subtract (single flop).
    Add,
    /// Multiply (single flop).
    Mul,
    /// Fused multiply-add (two flops, the unit the peak rate assumes).
    Madd,
    /// Iteratively computed divide (lowered before scheduling).
    Div,
    /// Iteratively computed square root (lowered before scheduling).
    Sqrt,
    /// Iteratively computed reciprocal square root (lowered before
    /// scheduling). The water kernel uses this for 1/r.
    Rsqrt,
    /// Table-lookup seed for an iterative op (rcp/rsqrt estimate).
    Seed,
    /// Compare producing a boolean (select mask).
    Cmp,
    /// Select between two values by a mask.
    Sel,
    /// Logical op on masks.
    Logic,
    /// Conditional-stream access bookkeeping (sequencer op, not a flop).
    CondStream,
    /// Inter-cluster communication via the cluster switch.
    Comm,
    /// Copy/move through the LRF (scheduled but zero flops).
    Mov,
}

impl FpuOpClass {
    /// Programmer-visible floating point operations this op contributes to
    /// the "solution flops" count. Matches the GROMACS flop-accounting
    /// convention used by the paper: div and sqrt count as one operation
    /// each even though the hardware expands them.
    pub fn solution_flops(self) -> u64 {
        match self {
            FpuOpClass::Add | FpuOpClass::Mul | FpuOpClass::Div | FpuOpClass::Sqrt => 1,
            FpuOpClass::Rsqrt => 1,
            FpuOpClass::Madd => 2,
            _ => 0,
        }
    }

    /// True if the op occupies an FPU issue slot (everything does in this
    /// model except nothing — even `CondStream` bookkeeping issues, which
    /// is the "slight overhead of unexecuted instructions" the paper
    /// mentions for the variable scheme).
    pub fn issues(self) -> bool {
        true
    }
}

/// Latency/throughput table plus iterative-expansion parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpCosts {
    /// Pipeline latency in cycles of a MADD-class op (result available N
    /// cycles after issue).
    pub madd_latency: u64,
    /// Latency of compare/select/logic ops.
    pub simple_latency: u64,
    /// Latency of the seed lookup.
    pub seed_latency: u64,
    /// Latency of an inter-cluster communication.
    pub comm_latency: u64,
    /// Latency of conditional-stream bookkeeping.
    pub cond_latency: u64,
    /// Newton–Raphson iterations to refine a reciprocal seed to full
    /// double precision (each iteration is 2 MADD-class ops).
    pub recip_iterations: u32,
    /// Newton–Raphson iterations for reciprocal square root (each
    /// iteration is 3 MADD-class ops in the standard refinement).
    pub rsqrt_iterations: u32,
}

impl Default for OpCosts {
    fn default() -> Self {
        Self {
            madd_latency: 4,
            simple_latency: 1,
            seed_latency: 2,
            comm_latency: 3,
            cond_latency: 2,
            recip_iterations: 3,
            rsqrt_iterations: 3,
        }
    }
}

impl OpCosts {
    /// Issue-to-use latency for an op class. Iterative classes must be
    /// lowered before scheduling; asking for their latency is a logic error.
    pub fn latency(&self, op: FpuOpClass) -> u64 {
        match op {
            FpuOpClass::Add | FpuOpClass::Mul | FpuOpClass::Madd => self.madd_latency,
            FpuOpClass::Cmp | FpuOpClass::Sel | FpuOpClass::Logic | FpuOpClass::Mov => {
                self.simple_latency
            }
            FpuOpClass::Seed => self.seed_latency,
            FpuOpClass::Comm => self.comm_latency,
            FpuOpClass::CondStream => self.cond_latency,
            FpuOpClass::Div | FpuOpClass::Sqrt | FpuOpClass::Rsqrt => {
                panic!("iterative op {op:?} must be lowered before cost lookup")
            }
        }
    }

    /// Hardware (issue-slot) operations an iterative op expands into,
    /// including the seed. Used for static estimates; the lowering pass in
    /// the kernel crate produces the actual instruction sequence.
    pub fn expansion_ops(&self, op: FpuOpClass) -> u64 {
        match op {
            // seed, N × {e = 2−b·y, y = y·e}, q = a·y, then a correction
            // nmsub+madd pair — mirrors `lower::emit_div` exactly.
            FpuOpClass::Div => 4 + 2 * self.recip_iterations as u64,
            // seed, hx = 0.5·x, N × {t = y·y, w = 1.5−hx·t, y = y·w} —
            // mirrors `lower::emit_rsqrt`.
            FpuOpClass::Rsqrt => 2 + 3 * self.rsqrt_iterations as u64,
            // rsqrt then multiply by the argument.
            FpuOpClass::Sqrt => 3 + 3 * self.rsqrt_iterations as u64,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_flop_accounting() {
        assert_eq!(FpuOpClass::Madd.solution_flops(), 2);
        assert_eq!(FpuOpClass::Div.solution_flops(), 1);
        assert_eq!(FpuOpClass::Rsqrt.solution_flops(), 1);
        assert_eq!(FpuOpClass::Sel.solution_flops(), 0);
        assert_eq!(FpuOpClass::Comm.solution_flops(), 0);
    }

    #[test]
    fn latencies_defined_for_all_schedulable_ops() {
        let c = OpCosts::default();
        for op in [
            FpuOpClass::Add,
            FpuOpClass::Mul,
            FpuOpClass::Madd,
            FpuOpClass::Cmp,
            FpuOpClass::Sel,
            FpuOpClass::Logic,
            FpuOpClass::Mov,
            FpuOpClass::Seed,
            FpuOpClass::Comm,
            FpuOpClass::CondStream,
        ] {
            assert!(c.latency(op) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "lowered")]
    fn iterative_latency_panics() {
        OpCosts::default().latency(FpuOpClass::Div);
    }

    #[test]
    fn expansions_are_multi_op() {
        let c = OpCosts::default();
        assert!(c.expansion_ops(FpuOpClass::Div) > 5);
        assert!(c.expansion_ops(FpuOpClass::Sqrt) > c.expansion_ops(FpuOpClass::Rsqrt));
        assert_eq!(c.expansion_ops(FpuOpClass::Madd), 1);
    }
}

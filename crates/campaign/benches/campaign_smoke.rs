//! Campaign smoke harness: queue a small mixed campaign (2 variants ×
//! 2 datasets × 2 duplicates = 8 jobs) over a 2-worker service, print
//! the streaming results and campaign rates, and write the additive
//! `campaign` block into `BENCH_campaign.json`. CI runs this as the
//! `campaign-smoke` job and asserts on the exit status: nonzero cache
//! hits, zero failed jobs on shipped variants, and bitwise identity to
//! the sequential one-shot runs.
//!
//! Knobs: `CAMPAIGN_WORKERS` (default 2), `CAMPAIGN_THREADS` (engine
//! threads per job, default 2), `BENCH_REPORT_DIR` (report location).

use std::sync::Arc;

use merrimac_bench::{banner, run, Dataset, PerfReport};
use merrimac_campaign::{run_campaign, Job, JobSpec};
use streammd::Variant;

fn env_count(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

fn main() {
    let workers = env_count("CAMPAIGN_WORKERS", 2);
    let threads = env_count("CAMPAIGN_THREADS", 2);
    banner(
        "campaign smoke",
        "8-job mixed campaign over the cross-job artifact cache",
    );

    let datasets = [Arc::new(Dataset::small(27)), Arc::new(Dataset::small(64))];
    let variants = [Variant::Variable, Variant::Fixed];

    // 2 duplicates of every (dataset, variant) pair; the second copy of
    // each key must come out of the cache. Priorities favour the larger
    // box so the queue order differs from submission order.
    let mut jobs = Vec::new();
    for ds in &datasets {
        for &v in &variants {
            for copy in 0..2 {
                let prio = ds.system.num_molecules() as i32 + copy;
                jobs.push(Job::new(JobSpec::new(ds.clone(), v).threads(threads)).priority(prio));
            }
        }
    }
    let total = jobs.len();
    println!(
        "{total} jobs ({} datasets x {} variants x 2 copies), {workers} worker(s), \
         {threads} engine thread(s)\n",
        datasets.len(),
        variants.len()
    );

    let out = run_campaign(jobs, workers);
    let mut failures = 0;
    for r in &out.results {
        match &r.result {
            Ok(step) => println!(
                "  job {:>2} prio {:>3} {:<22} {:>9} cycles  cache {:?}  ({:.2}s)",
                r.id.0,
                r.priority,
                r.label,
                step.perf.cycles,
                r.cache.expect("completed jobs touched the cache"),
                r.wall_seconds
            ),
            Err(e) => {
                failures += 1;
                eprintln!("  job {:>2} {:<22} FAILED: {e}", r.id.0, r.label);
            }
        }
    }

    // Bitwise identity vs the sequential one-shot path, per key.
    for ds in &datasets {
        for &v in &variants {
            let one_shot = run(ds.spec(v).threads(threads)).expect("one-shot runs");
            for r in out
                .results
                .iter()
                .filter(|r| r.label == JobSpec::new(ds.clone(), v).label())
            {
                let step = r.result.as_ref().expect("campaign job completes");
                assert_eq!(
                    step.forces, one_shot.forces,
                    "{}: campaign forces must be bitwise-identical to one-shot",
                    r.label
                );
                assert_eq!(
                    step.perf.cycles, one_shot.perf.cycles,
                    "{}: cycles",
                    r.label
                );
            }
        }
    }
    println!("\n[ok] every campaign result is bitwise-identical to its one-shot run");

    let m = &out.metrics;
    println!(
        "campaign: {}/{} jobs in {:.2}s  ({:.2} jobs/s, {:.1}M iterations/s)",
        m.completed,
        m.jobs,
        m.wall_seconds,
        m.jobs_per_sec(),
        m.interactions_per_sec() / 1e6
    );
    println!(
        "cache: {} hits / {} misses / {} bypass over {} distinct keys (hit rate {:.0}%)",
        m.cache.hits,
        m.cache.misses,
        m.cache.bypass,
        m.cache.distinct_keys,
        m.cache_hit_rate() * 100.0
    );

    let mut report = PerfReport::new("campaign", datasets[0].system.num_molecules(), threads);
    report.campaign = Some(m.to_record());
    match report.write_default() {
        Ok(path) => println!("[ok] wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write campaign report: {e}");
            std::process::exit(1);
        }
    }

    assert_eq!(failures, 0, "no job may fail on shipped variants");
    assert_eq!(m.completed, total, "every job completes");
    assert_eq!(
        m.cache.distinct_keys, 4,
        "2 datasets x 2 variants distinct keys"
    );
    assert_eq!(m.cache.misses, 4, "one build per key");
    assert!(m.cache.hits >= 4, "every duplicate key must hit the cache");
    println!("\n[ok] campaign smoke passed: cache hits > 0, zero admission errors");
}

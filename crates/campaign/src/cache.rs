//! Cross-job artifact cache.
//!
//! A campaign repeats `(dataset, variant, machine)` combinations while
//! the execution-only knobs vary, so the expensive per-job work — strip
//! layout, kernel compilation, memory-image construction and the
//! static-analysis admission verdict — is shared through this cache.
//! The cached [`StepArtifact`] is immutable: execution clones the
//! memory image (`StreamMdApp::run_step_program`), so a hit is
//! bitwise-identical to a fresh build.
//!
//! Concurrency: each key maps to an `Arc<OnceLock<…>>` slot. The map
//! lock is held only to find/insert the slot; the build itself runs
//! under the slot's `OnceLock`, so two workers racing on the same key
//! build it exactly once while builds for *different* keys proceed in
//! parallel.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use merrimac_analysis::{Diagnostic, Severity};
use merrimac_bench::DatasetId;
use streammd::{StepProgram, StreamMdApp, Variant};

/// Identity of a cacheable compiled artifact.
///
/// `machine` is a fingerprint of every app knob that shapes the built
/// program or its analysis verdict (machine config with the
/// execution-only host-thread count zeroed, op costs, SDR policy,
/// kernel options, block length, strip override). Threads, kernel
/// engine and node count are deliberately absent: results are
/// bitwise-identical across them, so jobs differing only there share
/// artifacts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub dataset: DatasetId,
    pub variant: Variant,
    pub machine: String,
}

impl CacheKey {
    /// Key for running `variant` over `dataset` on `app`'s machine.
    pub fn for_app(app: &StreamMdApp, dataset: DatasetId, variant: Variant) -> Self {
        let mut cfg = app.cfg.clone();
        // Execution-only: any host-thread count produces bitwise-identical
        // simulated results, so it must not split the cache.
        cfg.host_threads = 0;
        let machine = format!(
            "{cfg:?}|{:?}|{:?}|{:?}|L{}|strip{:?}",
            app.costs, app.policy, app.kernel_opt, app.block_l, app.strip_iterations
        );
        Self {
            dataset,
            variant,
            machine,
        }
    }
}

/// A compiled, analyzed step: everything per-key, nothing per-run.
pub struct StepArtifact {
    /// The built step program (memory image, stream program, layout,
    /// force region). Never mutated: runs clone the memory.
    pub step: Arc<StepProgram>,
    /// Full static-analysis output for the program.
    pub diagnostics: Vec<Diagnostic>,
}

impl StepArtifact {
    /// Build (and analyze) the artifact for one key.
    pub fn build(app: &StreamMdApp, dataset: &merrimac_bench::Dataset, variant: Variant) -> Self {
        let step = app.build_step_program(&dataset.system, &dataset.list, variant);
        let diagnostics = app.analyze_built(&step);
        Self {
            step: Arc::new(step),
            diagnostics,
        }
    }

    /// Error-severity diagnostics — non-empty means the admission gate
    /// refuses every job on this key.
    pub fn admission_errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    pub fn admitted(&self) -> bool {
        self.admission_errors().is_empty()
    }
}

/// How a job's artifacts were obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from an already-built slot.
    Hit,
    /// This job built (and populated) the slot.
    Miss,
    /// The job deliberately skipped the cache. No current job class
    /// does (multi-node specs now decompose the cached canonical
    /// build); the status and its metrics field remain for report
    /// schema stability.
    Bypass,
}

/// Counters the campaign metrics report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: usize,
    pub misses: usize,
    pub bypass: usize,
    pub distinct_keys: usize,
}

type Slot = Arc<OnceLock<Arc<StepArtifact>>>;

/// Keyed once-only store of [`StepArtifact`]s shared by every campaign
/// worker.
#[derive(Default)]
pub struct ArtifactCache {
    slots: Mutex<HashMap<CacheKey, Slot>>,
    counters: Mutex<CacheStats>,
}

impl ArtifactCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch the artifact for `key`, building it at most once across
    /// all workers. Returns the artifact and whether this call hit or
    /// built the slot.
    pub fn get_or_build(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> StepArtifact,
    ) -> (Arc<StepArtifact>, CacheStatus) {
        let slot: Slot = {
            let mut slots = self.slots.lock().unwrap();
            slots.entry(key).or_default().clone()
        };
        let mut built = false;
        let artifact = slot
            .get_or_init(|| {
                built = true;
                Arc::new(build())
            })
            .clone();
        let mut c = self.counters.lock().unwrap();
        if built {
            c.misses += 1;
        } else {
            c.hits += 1;
        }
        (
            artifact,
            if built {
                CacheStatus::Miss
            } else {
                CacheStatus::Hit
            },
        )
    }

    /// Record a job that deliberately skipped the cache.
    pub fn note_bypass(&self) {
        self.counters.lock().unwrap().bypass += 1;
    }

    pub fn stats(&self) -> CacheStats {
        let mut s = *self.counters.lock().unwrap();
        s.distinct_keys = self.slots.lock().unwrap().len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merrimac_bench::Dataset;

    fn app() -> StreamMdApp {
        StreamMdApp::builder().build().expect("default app builds")
    }

    #[test]
    fn same_key_builds_once() {
        let cache = ArtifactCache::new();
        let ds = Dataset::small(27);
        let app = app();
        let key = CacheKey::for_app(&app, ds.id, Variant::Fixed);
        let (a, s1) = cache.get_or_build(key.clone(), || {
            StepArtifact::build(&app, &ds, Variant::Fixed)
        });
        let (b, s2) = cache.get_or_build(key, || panic!("second lookup must not rebuild"));
        assert_eq!(s1, CacheStatus::Miss);
        assert_eq!(s2, CacheStatus::Hit);
        assert!(Arc::ptr_eq(&a.step, &b.step), "hit returns the same build");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.distinct_keys), (1, 1, 1));
    }

    #[test]
    fn thread_count_does_not_split_the_key() {
        let ds = Dataset::small(27);
        let a1 = StreamMdApp::builder().threads(1).build().unwrap();
        let a4 = StreamMdApp::builder().threads(4).build().unwrap();
        assert_eq!(
            CacheKey::for_app(&a1, ds.id, Variant::Variable),
            CacheKey::for_app(&a4, ds.id, Variant::Variable)
        );
    }

    #[test]
    fn variant_and_dataset_split_the_key() {
        let app = app();
        let k = |id, v| CacheKey::for_app(&app, id, v);
        assert_ne!(
            k(DatasetId::Small(27), Variant::Fixed),
            k(DatasetId::Small(27), Variant::Variable)
        );
        assert_ne!(
            k(DatasetId::Small(27), Variant::Fixed),
            k(DatasetId::Small(64), Variant::Fixed)
        );
    }

    #[test]
    fn shipped_variants_are_admitted() {
        let ds = Dataset::small(27);
        let app = app();
        for v in Variant::ALL {
            let art = StepArtifact::build(&app, &ds, v);
            assert!(art.admitted(), "{v} must pass admission");
        }
    }

    #[test]
    fn concurrent_lookups_build_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ArtifactCache::new();
        let ds = Dataset::small(27);
        let app = app();
        let key = CacheKey::for_app(&app, ds.id, Variant::Duplicated);
        let builds = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_build(key.clone(), || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        StepArtifact::build(&app, &ds, Variant::Duplicated)
                    });
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }
}

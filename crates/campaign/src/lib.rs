//! Batch campaign service over the StreamMD harness.
//!
//! The one-shot entry point (`merrimac_bench::run`) rebuilds and
//! re-analyzes the step program on every call. A parameter sweep — the
//! kind behind the paper's Tables 3–5 and the scaling study — runs the
//! *same* `(dataset, variant, machine)` combination many times over
//! while only the execution knobs (threads, kernel engine, node count)
//! vary, so the expensive build work is pure duplication.
//!
//! This crate turns those sweeps into **campaigns**: a bounded pool of
//! host worker threads drains a priority queue of [`Job`]s, each job is
//! admitted through the static-analysis pipeline (rejections surface as
//! the same structured `Diagnostics` that `merrimac-lint` prints),
//! compiled artifacts — the built `StepProgram` plus its analysis
//! verdict — are shared across jobs through a keyed [`ArtifactCache`],
//! and structured [`JobResult`]s stream back as they complete.
//! [`CampaignMetrics`] summarizes the run (jobs/s, aggregate kernel
//! iterations/s, cache hit rate) and converts into the additive
//! `campaign` block of `BENCH_*.json` via
//! [`CampaignMetrics::to_record`].
//!
//! Determinism is inherited, not re-proven: execution works on a clone
//! of the cached memory image (`StreamMdApp::run_step_program`), so a
//! cache hit is bitwise-identical — forces and cycles — to a fresh
//! one-shot `bench::run` of the same spec, at any worker/thread count.
//! `tests/campaign_cache.rs` holds the property test.
//!
//! ```no_run
//! use std::sync::Arc;
//! use merrimac_bench::Dataset;
//! use merrimac_campaign::{CampaignService, Job, JobSpec};
//! use streammd::Variant;
//!
//! let ds = Arc::new(Dataset::small(27));
//! let mut svc = CampaignService::new(2);
//! for variant in [Variant::Variable, Variant::Fixed] {
//!     for _ in 0..2 {
//!         svc.submit(Job::new(JobSpec::new(ds.clone(), variant)));
//!     }
//! }
//! let outcome = svc.finish();
//! assert_eq!(outcome.metrics.cache.hits, 2);
//! ```

pub mod cache;
pub mod service;

pub use cache::{ArtifactCache, CacheKey, CacheStats, CacheStatus, StepArtifact};
pub use service::{
    run_campaign, CampaignMetrics, CampaignOutcome, CampaignService, Job, JobId, JobResult, JobSpec,
};

//! The campaign service: a bounded host-thread pool draining a
//! priority job queue, sharing compiled artifacts through the
//! [`ArtifactCache`] and streaming structured [`JobResult`]s back as
//! they complete.
//!
//! Scheduling: jobs are ordered by descending [`Job::priority`], ties
//! broken by submission order (FIFO). Workers block on a condvar while
//! the queue is empty and exit when [`CampaignService::finish`] closes
//! the queue. Every job runs the same admission gate the one-shot path
//! offers: the static-analysis pipeline's Error-severity diagnostics
//! reject it with a structured [`RunError::Admission`], never a panic.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use merrimac_bench::{CampaignRecord, Dataset, RunError, RunSpec, VariantError};
use merrimac_sim::{BatchWidth, KernelEngine};
use streammd::{run_multinode_program, StepOutcome, StreamMdApp, Variant};

use crate::cache::{ArtifactCache, CacheKey, CacheStats, CacheStatus, StepArtifact};

/// Owned analogue of [`merrimac_bench::RunSpec`]: what to run, fully
/// described, with the dataset shared behind an `Arc` so many jobs can
/// reference it without copies.
#[derive(Clone)]
pub struct JobSpec {
    pub dataset: Arc<Dataset>,
    pub variant: Variant,
    pub threads: usize,
    pub nodes: usize,
    pub engine: Option<KernelEngine>,
    /// Lane width of the batched engine (results are width-invariant).
    pub tape_batch: Option<BatchWidth>,
}

impl JobSpec {
    pub fn new(dataset: Arc<Dataset>, variant: Variant) -> Self {
        Self {
            dataset,
            variant,
            threads: 1,
            nodes: 1,
            engine: None,
            tape_batch: None,
        }
    }

    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    pub fn engine(mut self, engine: KernelEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    pub fn tape_batch(mut self, width: BatchWidth) -> Self {
        self.tape_batch = Some(width);
        self
    }

    /// The equivalent borrowed one-shot spec (what `bench::run` would
    /// execute for this job).
    pub fn run_spec(&self) -> RunSpec<'_> {
        let mut spec = RunSpec::new(&self.dataset.system, &self.dataset.list, self.variant)
            .threads(self.threads)
            .nodes(self.nodes);
        spec.engine = self.engine;
        spec.tape_batch = self.tape_batch;
        spec
    }

    /// Human-readable job identity for logs and reports.
    pub fn label(&self) -> String {
        format!(
            "{}/{}@n{}",
            self.variant.name(),
            self.dataset.id,
            self.nodes
        )
    }

    /// Validated app — the same construction path as `bench::run`, so
    /// preflight failures (e.g. a node count outside the modeled
    /// network) render identically from the service and the binary.
    fn build_app(&self) -> Result<StreamMdApp, RunError> {
        let mut b = StreamMdApp::builder()
            .neighbor(self.dataset.list.params)
            .threads(self.threads)
            .variants(&[self.variant])
            .nodes(self.nodes);
        if let Some(engine) = self.engine {
            b = b.engine(engine);
        }
        if let Some(width) = self.tape_batch {
            b = b.tape_batch(width);
        }
        b.build().map_err(|source| {
            RunError::from(VariantError {
                variant: self.variant,
                source,
            })
        })
    }
}

/// One queue entry: the spec plus its scheduling priority (higher runs
/// first; default 0).
#[derive(Clone)]
pub struct Job {
    pub spec: JobSpec,
    pub priority: i32,
}

impl Job {
    pub fn new(spec: JobSpec) -> Self {
        Self { spec, priority: 0 }
    }

    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }
}

/// Submission-ordered job identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// One completed (or failed) job, streamed back over the service's
/// result channel.
pub struct JobResult {
    pub id: JobId,
    pub priority: i32,
    pub label: String,
    /// How the job's artifacts were obtained; `None` when the job
    /// failed before reaching the cache (configuration preflight).
    pub cache: Option<CacheStatus>,
    /// Host wall-clock seconds this job took on its worker.
    pub wall_seconds: f64,
    /// The step outcome, or the single unified failure type
    /// (simulator, admission or environment).
    pub result: Result<StepOutcome, RunError>,
}

/// Campaign-level rate metrics, computed at [`CampaignService::finish`].
#[derive(Debug, Clone)]
pub struct CampaignMetrics {
    pub jobs: usize,
    pub completed: usize,
    pub failed: usize,
    pub workers: usize,
    pub cache: CacheStats,
    /// First submit to drain, host wall-clock.
    pub wall_seconds: f64,
    /// Kernel iterations executed across all completed jobs (each
    /// iteration is one molecule-pair interaction slot).
    pub total_iterations: u64,
}

impl CampaignMetrics {
    pub fn jobs_per_sec(&self) -> f64 {
        self.completed as f64 / self.wall_seconds.max(f64::MIN_POSITIVE)
    }

    pub fn interactions_per_sec(&self) -> f64 {
        self.total_iterations as f64 / self.wall_seconds.max(f64::MIN_POSITIVE)
    }

    pub fn cache_hit_rate(&self) -> f64 {
        let cacheable = self.cache.hits + self.cache.misses;
        if cacheable == 0 {
            0.0
        } else {
            self.cache.hits as f64 / cacheable as f64
        }
    }

    /// The additive `campaign` block for `BENCH_*.json`.
    pub fn to_record(&self) -> CampaignRecord {
        CampaignRecord {
            jobs: self.jobs,
            completed: self.completed,
            failed: self.failed,
            workers: self.workers,
            cache_hits: self.cache.hits,
            cache_misses: self.cache.misses,
            cache_bypass: self.cache.bypass,
            distinct_keys: self.cache.distinct_keys,
            wall_seconds: self.wall_seconds,
            jobs_per_sec: self.jobs_per_sec(),
            interactions_per_sec: self.interactions_per_sec(),
        }
    }
}

/// Everything [`CampaignService::finish`] returns: the results not
/// already taken via [`CampaignService::poll_result`], in completion
/// order, plus the campaign metrics.
pub struct CampaignOutcome {
    pub results: Vec<JobResult>,
    pub metrics: CampaignMetrics,
}

struct Queued {
    priority: i32,
    seq: u64,
    spec: JobSpec,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then FIFO (smaller seq first).
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct QueueState {
    heap: BinaryHeap<Queued>,
    closed: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    cache: ArtifactCache,
    completed: AtomicUsize,
    failed: AtomicUsize,
    total_iterations: AtomicU64,
}

/// The async batch service. Submit [`Job`]s, optionally consume
/// results as they stream in, then [`CampaignService::finish`] to
/// drain and collect the metrics.
pub struct CampaignService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    results: Receiver<JobResult>,
    sender: Option<Sender<JobResult>>,
    worker_count: usize,
    submitted: u64,
    started: Instant,
}

impl CampaignService {
    /// Start the service with `workers` host threads (min 1).
    pub fn new(workers: usize) -> Self {
        Self::build(workers, Vec::new())
    }

    fn build(workers: usize, preload: Vec<Job>) -> Self {
        let worker_count = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            cache: ArtifactCache::new(),
            completed: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            total_iterations: AtomicU64::new(0),
        });
        let (tx, rx) = channel();
        let mut submitted = 0;
        {
            let mut state = shared.queue.lock().unwrap();
            for job in preload {
                state.heap.push(Queued {
                    priority: job.priority,
                    seq: submitted,
                    spec: job.spec,
                });
                submitted += 1;
            }
        }
        let handles = (0..worker_count)
            .map(|_| {
                let shared = shared.clone();
                let tx = tx.clone();
                std::thread::spawn(move || worker_loop(&shared, &tx))
            })
            .collect();
        Self {
            shared,
            workers: handles,
            results: rx,
            sender: Some(tx),
            worker_count,
            submitted,
            started: Instant::now(),
        }
    }

    /// Enqueue a job; workers pick it up by priority. Returns its
    /// submission-ordered id.
    pub fn submit(&mut self, job: Job) -> JobId {
        let id = JobId(self.submitted);
        self.submitted += 1;
        let mut state = self.shared.queue.lock().unwrap();
        state.heap.push(Queued {
            priority: job.priority,
            seq: id.0,
            spec: job.spec,
        });
        drop(state);
        self.shared.available.notify_one();
        id
    }

    /// Take one finished result if any is ready (non-blocking stream
    /// consumption while the campaign runs).
    pub fn poll_result(&self) -> Option<JobResult> {
        self.results.try_recv().ok()
    }

    /// Close the queue, wait for every job, and return the remaining
    /// results plus the campaign metrics.
    pub fn finish(mut self) -> CampaignOutcome {
        {
            let mut state = self.shared.queue.lock().unwrap();
            state.closed = true;
        }
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            handle.join().expect("campaign worker panicked");
        }
        // Drop our sender so the drain below terminates.
        self.sender.take();
        let results: Vec<JobResult> = self.results.iter().collect();
        let metrics = CampaignMetrics {
            jobs: self.submitted as usize,
            completed: self.shared.completed.load(Ordering::SeqCst),
            failed: self.shared.failed.load(Ordering::SeqCst),
            workers: self.worker_count,
            cache: self.shared.cache.stats(),
            wall_seconds: self.started.elapsed().as_secs_f64(),
            total_iterations: self.shared.total_iterations.load(Ordering::SeqCst),
        };
        CampaignOutcome { results, metrics }
    }
}

/// Run a fixed batch to completion: every job is enqueued before the
/// workers start (so a single-worker campaign drains in exact priority
/// order), and the service is finished immediately.
pub fn run_campaign(jobs: Vec<Job>, workers: usize) -> CampaignOutcome {
    CampaignService::build(workers, jobs).finish()
}

fn worker_loop(shared: &Shared, tx: &Sender<JobResult>) {
    loop {
        let next = {
            let mut state = shared.queue.lock().unwrap();
            loop {
                if let Some(q) = state.heap.pop() {
                    break Some(q);
                }
                if state.closed {
                    break None;
                }
                state = shared.available.wait(state).unwrap();
            }
        };
        let Some(q) = next else { return };
        let result = execute(shared, q);
        match &result.result {
            Ok(out) => {
                shared.completed.fetch_add(1, Ordering::SeqCst);
                shared
                    .total_iterations
                    .fetch_add(out.iterations, Ordering::SeqCst);
            }
            Err(_) => {
                shared.failed.fetch_add(1, Ordering::SeqCst);
            }
        }
        // The receiver only disappears after every worker has joined,
        // so a send failure here is unreachable; ignore it rather than
        // poison the pool.
        let _ = tx.send(result);
    }
}

fn execute(shared: &Shared, q: Queued) -> JobResult {
    let t0 = Instant::now();
    let spec = &q.spec;
    let (cache, result) = match spec.build_app() {
        Err(e) => (None, Err(e)),
        Ok(app) => {
            // Single- and multi-node jobs share one cached artifact per
            // `(dataset, variant, machine)` key: the canonical step
            // program is node-count-independent, so the multi-node
            // runner decomposes the same build a single-node job runs.
            let key = CacheKey::for_app(&app, spec.dataset.id, spec.variant);
            let (artifact, status) = shared.cache.get_or_build(key, || {
                StepArtifact::build(&app, &spec.dataset, spec.variant)
            });
            if !artifact.admitted() {
                (
                    Some(status),
                    Err(RunError::Admission {
                        variant: spec.variant,
                        diagnostics: artifact.diagnostics.clone(),
                    }),
                )
            } else {
                let sim_err = |source| {
                    RunError::from(VariantError {
                        variant: spec.variant,
                        source,
                    })
                };
                let run = if spec.nodes > 1 {
                    run_multinode_program(&app, &spec.dataset.system, &artifact.step, spec.nodes)
                        .map(|m| m.outcome)
                        .map_err(sim_err)
                } else {
                    app.run_step_program(&spec.dataset.system, &artifact.step)
                        .map_err(sim_err)
                };
                (Some(status), run)
            }
        }
    };
    JobResult {
        id: JobId(q.seq),
        priority: q.priority,
        label: spec.label(),
        cache,
        wall_seconds: t0.elapsed().as_secs_f64(),
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_jobs(ds: &Arc<Dataset>, variants: &[Variant], copies: usize) -> Vec<Job> {
        let mut jobs = Vec::new();
        for _ in 0..copies {
            for &v in variants {
                jobs.push(Job::new(JobSpec::new(ds.clone(), v)));
            }
        }
        jobs
    }

    #[test]
    fn duplicate_specs_hit_the_cache() {
        let ds = Arc::new(Dataset::small(27));
        let out = run_campaign(small_jobs(&ds, &[Variant::Variable, Variant::Fixed], 3), 2);
        let m = &out.metrics;
        assert_eq!(m.jobs, 6);
        assert_eq!(m.completed, 6);
        assert_eq!(m.failed, 0);
        assert_eq!(m.cache.distinct_keys, 2);
        assert_eq!(m.cache.misses, 2, "one build per distinct key");
        assert_eq!(m.cache.hits, 4, "every duplicate is a hit");
        assert_eq!(m.cache.bypass, 0);
        assert!(m.cache_hit_rate() > 0.6);
        assert!(m.total_iterations > 0);
    }

    #[test]
    fn single_worker_drains_in_priority_then_fifo_order() {
        let ds = Arc::new(Dataset::small(27));
        let jobs = vec![
            Job::new(JobSpec::new(ds.clone(), Variant::Variable)), // seq 0, prio 0
            Job::new(JobSpec::new(ds.clone(), Variant::Variable)).priority(5), // seq 1
            Job::new(JobSpec::new(ds.clone(), Variant::Variable)).priority(5), // seq 2
            Job::new(JobSpec::new(ds.clone(), Variant::Variable)).priority(1), // seq 3
        ];
        let out = run_campaign(jobs, 1);
        let order: Vec<u64> = out.results.iter().map(|r| r.id.0).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn campaign_matches_one_shot_run_bitwise() {
        let ds = Arc::new(Dataset::small(27));
        let out = run_campaign(small_jobs(&ds, &[Variant::Duplicated], 2), 2);
        let one_shot = merrimac_bench::run(ds.spec(Variant::Duplicated)).expect("one-shot runs");
        for r in &out.results {
            let step = r.result.as_ref().expect("job completes");
            assert_eq!(step.forces, one_shot.forces, "forces bitwise-identical");
            assert_eq!(step.perf.cycles, one_shot.perf.cycles);
        }
    }

    #[test]
    fn multinode_jobs_share_the_cached_step_program() {
        let ds = Arc::new(Dataset::small(64));
        // Same (dataset, variant, machine) at three node counts: one
        // build serves all three — the canonical step program is
        // node-count-independent, so nothing bypasses the cache.
        let jobs = vec![
            Job::new(JobSpec::new(ds.clone(), Variant::Variable).nodes(2)),
            Job::new(JobSpec::new(ds.clone(), Variant::Variable)),
            Job::new(JobSpec::new(ds.clone(), Variant::Variable).nodes(8)),
        ];
        let out = run_campaign(jobs, 2);
        assert_eq!(out.metrics.completed, 3);
        assert_eq!(out.metrics.cache.bypass, 0);
        assert_eq!(out.metrics.cache.misses, 1, "one build per distinct key");
        assert_eq!(out.metrics.cache.hits, 2);
        assert_eq!(out.metrics.cache.distinct_keys, 1);
        let single = out
            .results
            .iter()
            .find(|r| r.label.ends_with("@n1"))
            .expect("single-node result present");
        let single_forces = &single.result.as_ref().expect("runs").forces;
        for r in &out.results {
            let step = r.result.as_ref().expect("job completes");
            if r.label.ends_with("@n1") {
                assert!(step.perf.phases.multinode.is_none());
            } else {
                assert!(step.perf.phases.multinode.is_some());
            }
            // Forces are bitwise node-count-independent off the shared build.
            assert_eq!(&step.forces, single_forces);
        }
    }

    #[test]
    fn multinode_atomic_jobs_run_through_the_cache() {
        let ds = Arc::new(Dataset::charged(64));
        let jobs = vec![
            Job::new(JobSpec::new(ds.clone(), Variant::Fixed).nodes(2)),
            Job::new(JobSpec::new(ds.clone(), Variant::Fixed)),
        ];
        let out = run_campaign(jobs, 2);
        assert_eq!(out.metrics.completed, 2);
        assert_eq!(out.metrics.cache.bypass, 0);
        assert_eq!(out.metrics.cache.distinct_keys, 1);
        let forces: Vec<_> = out
            .results
            .iter()
            .map(|r| r.result.as_ref().expect("runs").forces.clone())
            .collect();
        assert_eq!(forces[0], forces[1]);
    }

    #[test]
    fn preflight_failure_is_a_typed_result_not_a_panic() {
        let ds = Arc::new(Dataset::small(27));
        // Node count far outside the modeled network.
        let jobs = vec![Job::new(
            JobSpec::new(ds.clone(), Variant::Variable).nodes(1 << 20),
        )];
        let out = run_campaign(jobs, 1);
        assert_eq!(out.metrics.failed, 1);
        let r = &out.results[0];
        assert!(r.cache.is_none(), "never reached the cache");
        let err = r.result.as_ref().expect_err("must fail preflight");
        let rendered = format!("{err}");
        // Identical rendering to the one-shot path for the same spec.
        let one_shot = merrimac_bench::run(ds.spec(Variant::Variable).nodes(1 << 20))
            .expect_err("one-shot fails the same way");
        assert_eq!(rendered, format!("{one_shot}"));
    }

    #[test]
    fn streaming_poll_and_finish_partition_the_results() {
        let ds = Arc::new(Dataset::small(27));
        let mut svc = CampaignService::new(2);
        for job in small_jobs(&ds, &[Variant::Variable, Variant::Expanded], 2) {
            svc.submit(job);
        }
        // Busy-poll until at least one result streams out.
        let mut streamed = Vec::new();
        while streamed.is_empty() {
            if let Some(r) = svc.poll_result() {
                streamed.push(r);
            } else {
                std::thread::yield_now();
            }
        }
        let out = svc.finish();
        assert_eq!(out.metrics.jobs, 4);
        assert_eq!(out.metrics.completed, 4);
        assert_eq!(streamed.len() + out.results.len(), 4);
    }
}

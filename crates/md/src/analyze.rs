//! Trajectory analysis: temperature, mean-square displacement,
//! self-diffusion, and radial distribution functions.
//!
//! These back the Table 5 harness: the paper compares water models by
//! dipole moment, dielectric constant and self-diffusion coefficient. We
//! compute the dipole from the model geometry (`WaterModel::dipole_debye`)
//! and the self-diffusion coefficient from the Einstein relation over a
//! short NVE trajectory; the dielectric constant needs far longer runs
//! than a harness should take and is documented as out of scope.

use crate::pbc::Pbc;
use crate::system::WaterBox;
use crate::vec3::Vec3;

/// Mean-square displacement of molecular centres of mass between two
/// snapshots of (unwrapped) positions, nm².
pub fn msd(reference: &[Vec3], current: &[Vec3]) -> f64 {
    assert_eq!(reference.len(), current.len());
    assert!(!reference.is_empty());
    let n = reference.len() as f64;
    reference
        .iter()
        .zip(current)
        .map(|(a, b)| (*b - *a).norm2())
        .sum::<f64>()
        / n
}

/// Centres of mass of every molecule (unwrapped positions).
pub fn centers_of_mass(system: &WaterBox) -> Vec<Vec3> {
    (0..system.num_molecules())
        .map(|m| system.molecule_com(m))
        .collect()
}

/// Self-diffusion coefficient from the Einstein relation
/// `D = MSD / (6 t)`, in units of 1e-5 cm²/s (the Table 5 convention).
///
/// `msd_nm2` is in nm², `time_ps` in ps. 1 nm²/ps = 1e-14 m²... the
/// conversion works out to `D[1e-5 cm²/s] = (msd/6t)[nm²/ps] * 1e3`.
pub fn self_diffusion_1e5_cm2_s(msd_nm2: f64, time_ps: f64) -> f64 {
    assert!(time_ps > 0.0);
    msd_nm2 / (6.0 * time_ps) * 1.0e3
}

/// A running MSD tracker over a trajectory.
#[derive(Debug, Clone)]
pub struct MsdTracker {
    reference: Vec<Vec3>,
    samples: Vec<(f64, f64)>,
}

impl MsdTracker {
    /// Start tracking from the current configuration.
    pub fn new(system: &WaterBox) -> Self {
        Self {
            reference: centers_of_mass(system),
            samples: Vec::new(),
        }
    }

    /// Record the MSD at time `t_ps`.
    pub fn sample(&mut self, system: &WaterBox, t_ps: f64) {
        let com = centers_of_mass(system);
        self.samples.push((t_ps, msd(&self.reference, &com)));
    }

    /// Least-squares slope of MSD vs time (nm²/ps), skipping the first
    /// `skip` samples (ballistic regime).
    pub fn slope(&self, skip: usize) -> Option<f64> {
        let pts = &self.samples[skip.min(self.samples.len())..];
        if pts.len() < 2 {
            return None;
        }
        let n = pts.len() as f64;
        let (st, sm): (f64, f64) = pts
            .iter()
            .fold((0.0, 0.0), |(a, b), &(t, m)| (a + t, b + m));
        let (tm, tt): (f64, f64) = pts
            .iter()
            .fold((0.0, 0.0), |(a, b), &(t, m)| (a + t * m, b + t * t));
        let denom = n * tt - st * st;
        if denom.abs() < 1e-30 {
            return None;
        }
        Some((n * tm - st * sm) / denom)
    }

    /// Self-diffusion coefficient in 1e-5 cm²/s from the MSD slope.
    pub fn diffusion_1e5_cm2_s(&self, skip: usize) -> Option<f64> {
        self.slope(skip).map(|s| s / 6.0 * 1.0e3)
    }

    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }
}

/// Oxygen-oxygen radial distribution function g(r).
///
/// Returns `(r, g)` pairs at `bins` radii up to `r_max`.
pub fn rdf_oo(system: &WaterBox, r_max: f64, bins: usize) -> Vec<(f64, f64)> {
    assert!(bins > 0 && r_max > 0.0);
    let pbc: Pbc = system.pbc();
    let n = system.num_molecules();
    let dr = r_max / bins as f64;
    let mut hist = vec![0u64; bins];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = pbc.min_image(system.oxygen(i), system.oxygen(j)).norm();
            if d < r_max {
                hist[(d / dr) as usize] += 1;
            }
        }
    }
    let rho = n as f64 / pbc.volume();
    let mut out = Vec::with_capacity(bins);
    for (k, &h) in hist.iter().enumerate() {
        let r_lo = k as f64 * dr;
        let r_hi = r_lo + dr;
        let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
        // Each pair counted once; ideal-gas pair count in the shell:
        let ideal = 0.5 * n as f64 * rho * shell;
        let g = if ideal > 0.0 { h as f64 / ideal } else { 0.0 };
        out.push((r_lo + 0.5 * dr, g));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::WaterBox;

    #[test]
    fn msd_of_identical_snapshots_is_zero() {
        let s = WaterBox::builder().molecules(8).seed(41).build();
        let com = centers_of_mass(&s);
        assert_eq!(msd(&com, &com), 0.0);
    }

    #[test]
    fn msd_of_uniform_translation() {
        let a = vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)];
        let b = vec![Vec3::new(0.3, 0.0, 0.0), Vec3::new(1.3, 0.0, 0.0)];
        assert!((msd(&a, &b) - 0.09).abs() < 1e-12);
    }

    #[test]
    fn diffusion_units() {
        // Water at 300 K has D ≈ 2.3e-5 cm²/s ⇒ MSD of 6*D*t. In nm²/ps:
        // D = 2.3e-5 cm²/s = 2.3e-3 nm²/ps.
        let d = self_diffusion_1e5_cm2_s(6.0 * 2.3e-3 * 10.0, 10.0);
        assert!((d - 2.3).abs() < 1e-9, "D = {d}");
    }

    #[test]
    fn tracker_slope_linear_data() {
        let s = WaterBox::builder().molecules(8).seed(42).build();
        let mut t = MsdTracker::new(&s);
        // Fake linear samples.
        t.samples = (1..=10).map(|i| (i as f64, 0.5 * i as f64)).collect();
        let slope = t.slope(0).unwrap();
        assert!((slope - 0.5).abs() < 1e-9);
        let d = t.diffusion_1e5_cm2_s(0).unwrap();
        assert!((d - 0.5 / 6.0 * 1e3).abs() < 1e-6);
    }

    #[test]
    fn tracker_insufficient_samples() {
        let s = WaterBox::builder().molecules(8).seed(43).build();
        let t = MsdTracker::new(&s);
        assert!(t.slope(0).is_none());
    }

    #[test]
    fn rdf_zero_inside_core_unity_far() {
        let s = WaterBox::builder().molecules(216).seed(44).build();
        let g = rdf_oo(&s, 1.2, 60);
        // Hard core: nothing below 0.2 nm.
        for &(r, gv) in &g {
            if r < 0.2 {
                assert_eq!(gv, 0.0, "g({r}) = {gv} inside core");
            }
        }
        // Far field should be order unity (lattice structure allowed).
        let far: f64 = g
            .iter()
            .filter(|(r, _)| *r > 0.9)
            .map(|(_, gv)| *gv)
            .sum::<f64>()
            / g.iter().filter(|(r, _)| *r > 0.9).count() as f64;
        assert!(far > 0.3 && far < 3.0, "far-field g = {far}");
    }
}

//! Molecular-dynamics substrate for the StreamMD reproduction.
//!
//! The paper interfaces StreamMD with GROMACS through three arrays: the
//! molecule position array (nine coordinates per water molecule), the
//! neighbour-list index streams, and the force output array. This crate is
//! the stand-in for GROMACS: it builds realistic water systems, computes
//! the cut-off neighbour lists in scalar code (as GROMACS does, once every
//! several steps), evaluates the reference double-precision non-bonded
//! forces of Equation (1), and integrates the equations of motion so that
//! multi-step experiments (energy drift, self-diffusion for Table 5) are
//! possible.
//!
//! Layout mirrors GROMACS conventions where it matters to the paper:
//!
//! * A *molecule* is the unit of interaction: 3 atoms (O, H, H), 9
//!   coordinates, one entry in the neighbour lists.
//! * Neighbour lists are *half* lists (each pair appears once) grouped by
//!   central molecule, and each per-centre list carries one periodic shift
//!   vector — the "9 words of periodic boundary conditions" in the stream
//!   record are the per-atom replication of that shift (see
//!   [`neighbor::NeighborList`]).
//! * Forces use the GROMACS flop-accounting convention of 26
//!   programmer-visible operations per atom pair (234 per molecule pair),
//!   which the kernel crate reproduces exactly.

pub mod analyze;
pub mod atomic;
pub mod cell;
pub mod force;
pub mod integrate;
pub mod multisite;
pub mod neighbor;
pub mod pbc;
pub mod system;
pub mod units;
pub mod vec3;
pub mod water;

pub use force::{ForceField, ForceResult};
pub use neighbor::{NeighborList, NeighborListParams};
pub use pbc::Pbc;
pub use system::WaterBox;
pub use vec3::Vec3;
pub use water::WaterModel;

//! Reference forces for single-site atomic workloads.
//!
//! Two workloads from the MD-Bench short-range kernel catalogue ride on
//! this engine: the plain Lennard-Jones fluid ([`WaterModel::lj_atom`])
//! and the charged LJ+Coulomb particle ([`WaterModel::charged_atom`]).
//! Both use the same half neighbour lists and periodic shifts as the
//! water path; a "molecule" is just one site, so records are 3 words.
//!
//! [`pair_force_atomic`] is written so that every operation and its
//! association order mirror the stream kernels in
//! `streammd::kernels` exactly (the kernel engines evaluate `madd` as
//! the unfused `a*b + c`), which is what lets the differential tests pin
//! the simulated kernel outputs **bitwise** against this reference.

use crate::neighbor::NeighborList;
use crate::system::WaterBox;
use crate::units::COULOMB;
use crate::vec3::Vec3;
use crate::water::WaterModel;

/// Programmer-visible flops per LJ-fluid interaction (expanded-kernel
/// accounting, mirroring water's 234): shift 3, displacement 3, r² 5,
/// one divide, LJ chain 10, force scale 3, neighbour negation 3, energy
/// accumulation 1, virial 5 + 1.
pub const LJ_FLOPS_PER_INTERACTION: u64 = 35;
pub const LJ_DIVS_PER_INTERACTION: u64 = 1;
pub const LJ_SQRTS_PER_INTERACTION: u64 = 0;

/// Per-interaction flops of the charged workload: the LJ budget plus
/// √r², 1/r, r⁻² rebuild, the Coulomb energy/force terms and their
/// accumulation (one divide *and* one square root per pair).
pub const CHARGED_FLOPS_PER_INTERACTION: u64 = 41;
pub const CHARGED_DIVS_PER_INTERACTION: u64 = 1;
pub const CHARGED_SQRTS_PER_INTERACTION: u64 = 1;

/// Force-field tables for a single-site model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomForceField {
    /// Scaled charge product `q² / 4πɛ₀` (zero for the LJ fluid).
    pub qq: f64,
    pub c6: f64,
    pub c12: f64,
}

impl AtomForceField {
    /// Extract the tables from a single-site model.
    pub fn from_model(model: &WaterModel) -> Self {
        assert_eq!(
            model.num_sites(),
            1,
            "atomic force field requires a single-site model"
        );
        let q = model.sites[0].charge;
        Self {
            qq: COULOMB * q * q,
            c6: model.c6,
            c12: model.c12,
        }
    }

    /// Whether pairs carry a Coulomb term.
    pub fn coulomb(&self) -> bool {
        self.qq != 0.0
    }
}

/// One pair's force on the centre plus its energy/virial terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairTerms {
    /// Force on the centre atom; the neighbour takes `0 − f` (the exact
    /// negation the kernels write).
    pub force: Vec3,
    pub e_coul: f64,
    pub e_lj: f64,
    pub virial: f64,
}

/// Evaluate one atom pair with the *exact* operation order of the
/// stream kernels: plain (unfused) multiply-adds, left-to-right
/// association, divide and square root as single IEEE operations.
pub fn pair_force_atomic(ff: &AtomForceField, c_shifted: Vec3, n: Vec3) -> PairTerms {
    let dx = c_shifted.x - n.x;
    let dy = c_shifted.y - n.y;
    let dz = c_shifted.z - n.z;
    // v3_norm2 order: mul, then two unfused madds.
    let xx = dx * dx;
    let xy = dy * dy + xx;
    let r2 = dz * dz + xy;

    let (mut fs, rinv2, e_coul) = if ff.coulomb() {
        let r = r2.sqrt();
        let rinv = 1.0 / r;
        let rinv2 = rinv * rinv;
        let vc = ff.qq * rinv;
        let fs_c = vc * rinv2;
        (fs_c, rinv2, vc)
    } else {
        (0.0, 1.0 / r2, 0.0)
    };
    let rinv4 = rinv2 * rinv2;
    let rinv6 = rinv4 * rinv2;
    let v6 = ff.c6 * rinv6;
    let rinv12 = rinv6 * rinv6;
    let v12 = ff.c12 * rinv12;
    let e_lj = v12 - v6;
    let t12 = 12.0 * v12;
    let u = t12 - 6.0 * v6; // nmsub: t12 − 6·v6
    let fs_lj = u * rinv2;
    fs = if ff.coulomb() { fs + fs_lj } else { fs_lj };

    let f = Vec3::new(dx * fs, dy * fs, dz * fs);
    // Virial: mul then two unfused madds, like the kernel.
    let vx = dx * f.x;
    let vxy = dy * f.y + vx;
    let virial = dz * f.z + vxy;
    PairTerms {
        force: f,
        e_coul,
        e_lj,
        virial,
    }
}

/// Result of an atomic force evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomForceResult {
    /// Per-atom forces (kJ·mol⁻¹·nm⁻¹), one entry per atom.
    pub forces: Vec<Vec3>,
    pub coulomb_energy: f64,
    pub lj_energy: f64,
    pub virial: f64,
    pub interactions: u64,
}

/// Canonical (wrapped) atom positions — the position array the stream
/// layout serves.
pub fn canonical_atom_positions(system: &WaterBox) -> Vec<Vec3> {
    assert_eq!(system.num_sites(), 1, "atomic engine needs 1-site models");
    let pbc = system.pbc();
    system.positions().iter().map(|&p| pbc.wrap(p)).collect()
}

/// Evaluate every listed pair with the double-precision reference
/// engine (the atomic analogue of [`crate::force::compute_forces`]).
pub fn compute_forces_atomic(system: &WaterBox, list: &NeighborList) -> AtomForceResult {
    let ff = AtomForceField::from_model(system.model());
    let pbc = system.pbc();
    let canon = canonical_atom_positions(system);
    let mut forces = vec![Vec3::ZERO; canon.len()];
    let mut e_coul = 0.0;
    let mut e_lj = 0.0;
    let mut virial = 0.0;
    let mut interactions = 0u64;
    for l in &list.lists {
        let shift = pbc.shift_vector(l.shift_index as usize);
        let c = l.center as usize;
        let cs = canon[c] + shift;
        for &jn in &l.neighbors {
            let j = jn as usize;
            interactions += 1;
            let t = pair_force_atomic(&ff, cs, canon[j]);
            forces[c] += t.force;
            forces[j] -= t.force;
            e_coul += t.e_coul;
            e_lj += t.e_lj;
            virial += t.virial;
        }
    }
    AtomForceResult {
        forces,
        coulomb_energy: e_coul,
        lj_energy: e_lj,
        virial,
        interactions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::NeighborListParams;

    fn setup(model: WaterModel, n: usize) -> (WaterBox, NeighborList) {
        let s = WaterBox::builder()
            .molecules(n)
            .model(model)
            .density(21.0)
            .seed(31)
            .build();
        let params = NeighborListParams {
            cutoff: (0.45 * s.pbc().side()).min(1.0),
            skin: 0.0,
            rebuild_interval: 1,
        };
        let nl = NeighborList::build(&s, params);
        (s, nl)
    }

    #[test]
    fn lj_fluid_conserves_momentum() {
        let (s, nl) = setup(WaterModel::lj_atom(), 125);
        let r = compute_forces_atomic(&s, &nl);
        assert!(r.interactions > 0);
        let net: Vec3 = r.forces.iter().copied().sum();
        assert!(net.max_abs() < 1e-9, "net force {net:?}");
        assert_eq!(r.coulomb_energy, 0.0);
        assert!(r.lj_energy.is_finite());
    }

    #[test]
    fn charged_fluid_adds_coulomb_energy() {
        let (s, nl) = setup(WaterModel::charged_atom(), 125);
        let r = compute_forces_atomic(&s, &nl);
        // Like charges: every pair's Coulomb energy is positive.
        assert!(r.coulomb_energy > 0.0);
        let net: Vec3 = r.forces.iter().copied().sum();
        assert!(net.max_abs() < 1e-9, "net force {net:?}");
    }

    #[test]
    fn pair_terms_antisymmetric_under_swap_without_shift() {
        let ff = AtomForceField::from_model(&WaterModel::charged_atom());
        let a = Vec3::new(0.1, 0.2, 0.3);
        let b = Vec3::new(0.45, 0.11, 0.52);
        let t_ab = pair_force_atomic(&ff, a, b);
        let t_ba = pair_force_atomic(&ff, b, a);
        assert!((t_ab.force + t_ba.force).max_abs() < 1e-12);
        assert_eq!(t_ab.e_lj, t_ba.e_lj);
        assert_eq!(t_ab.e_coul, t_ba.e_coul);
    }

    #[test]
    fn lj_force_is_repulsive_at_short_range_attractive_at_long() {
        let ff = AtomForceField::from_model(&WaterModel::lj_atom());
        let sigma = (ff.c12 / ff.c6).powf(1.0 / 6.0);
        let near = pair_force_atomic(&ff, Vec3::new(0.9 * sigma, 0.0, 0.0), Vec3::ZERO);
        let far = pair_force_atomic(&ff, Vec3::new(1.5 * sigma, 0.0, 0.0), Vec3::ZERO);
        assert!(near.force.x > 0.0, "short range must repel");
        assert!(far.force.x < 0.0, "long range must attract");
    }

    #[test]
    fn from_model_scales_charge_product() {
        let ff = AtomForceField::from_model(&WaterModel::charged_atom());
        assert!((ff.qq - COULOMB * 0.41 * 0.41).abs() < 1e-12);
        assert!(ff.coulomb());
        assert!(!AtomForceField::from_model(&WaterModel::lj_atom()).coulomb());
    }

    #[test]
    fn dummy_distance_contribution_rounds_away() {
        // The stream layout pads blocks with dummies ~2·10¹² nm away;
        // their force contribution must vanish against any real force.
        let ff = AtomForceField::from_model(&WaterModel::charged_atom());
        let t = pair_force_atomic(&ff, Vec3::new(0.3, 0.2, 0.1), Vec3::new(-2.0e12, 0.0, 0.0));
        let real = pair_force_atomic(&ff, Vec3::new(0.4, 0.0, 0.0), Vec3::ZERO);
        assert_eq!(real.force.x + t.force.x, real.force.x);
        // The Coulomb virial of a dummy pair decays only as 1/r
        // (~10⁻¹¹ at 2·10¹² nm) — negligible relative to any real
        // pair's virial, though not below one ulp of it.
        assert!((t.virial / real.virial).abs() < 1e-10);
    }
}

//! Cut-off neighbour lists in the GROMACS/StreamMD layout.
//!
//! The list is a *half* list — each interacting molecule pair appears
//! exactly once — grouped by central molecule and periodic shift, exactly
//! the structure GROMACS hands to its water-water inner loop and the
//! paper feeds to the stream program as `i_central` / `i_neighbor`.
//!
//! Accuracy under infrequent rebuilds is maintained the way the paper
//! describes: "artificially increasing the cutoff distance beyond what is
//! strictly required by the physics" — the [`NeighborListParams::skin`]
//! parameter.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::cell::CellGrid;
use crate::pbc::Pbc;
use crate::system::WaterBox;
use crate::vec3::Vec3;

/// Centre count above which [`NeighborList::build`] fans the per-centre
/// search out over the rayon worker pool. Below it, thread spawn/join
/// costs more than the search; at the 10⁵–10⁶-particle sweep points the
/// build dominates wall-clock and scales with cores.
const PAR_BUILD_MIN_CENTERS: usize = 512;

/// Parameters of the neighbour search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeighborListParams {
    /// Interaction cut-off r_c in nm (paper dataset: 1.0).
    pub cutoff: f64,
    /// Extra list radius so the list stays valid between rebuilds.
    pub skin: f64,
    /// Time steps between rebuilds ("only generating it once every
    /// several time-steps").
    pub rebuild_interval: usize,
}

impl Default for NeighborListParams {
    fn default() -> Self {
        Self {
            cutoff: 1.0,
            skin: 0.1,
            rebuild_interval: 10,
        }
    }
}

impl NeighborListParams {
    /// The radius molecules are listed within.
    pub fn list_radius(&self) -> f64 {
        self.cutoff + self.skin
    }
}

/// Neighbours of one central molecule under one periodic shift.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CenterList {
    /// Central molecule index.
    pub center: u32,
    /// GROMACS shift index (see [`Pbc::shift_index`]); the shift is
    /// applied to the *central* molecule's coordinates.
    pub shift_index: u8,
    /// Neighbour molecule indices.
    pub neighbors: Vec<u32>,
}

/// A complete half neighbour list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeighborList {
    pub params: NeighborListParams,
    /// Per-(centre, shift) lists, ordered by centre.
    pub lists: Vec<CenterList>,
}

impl NeighborList {
    /// Build from a water box using a cell grid over oxygen positions.
    ///
    /// Large boxes fan the per-centre search out over the rayon worker
    /// pool: each centre's lists are a pure function of the (read-only)
    /// grid and positions, and the order-preserving parallel collect
    /// reassembles them in centre order, so the emitted list is
    /// byte-identical to the serial build at any thread count (pinned
    /// by `parallel_build_is_byte_identical_to_serial`).
    pub fn build(system: &WaterBox, params: NeighborListParams) -> Self {
        let parallel =
            system.num_molecules() >= PAR_BUILD_MIN_CENTERS && rayon::current_num_threads() > 1;
        Self::build_impl(system, params, parallel)
    }

    fn build_impl(system: &WaterBox, params: NeighborListParams, parallel: bool) -> Self {
        let n = system.num_molecules();
        let pbc = system.pbc();
        let radius = params.list_radius();
        assert!(
            radius * 2.0 <= pbc.side() + 1e-12,
            "cutoff+skin {radius} too large for box {}; minimum image would be ambiguous",
            pbc.side()
        );
        let oxygens: Vec<Vec3> = (0..n).map(|m| pbc.wrap(system.oxygen(m))).collect();
        let grid = CellGrid::build(pbc, &oxygens, radius);

        // One centre's (shift-grouped, sorted) lists, appended to `out`.
        // Scratch buffers are caller-owned so the serial path can reuse
        // them across centres.
        let collect_center = |i: usize,
                              by_shift: &mut Vec<Vec<u32>>,
                              used_shifts: &mut Vec<usize>,
                              out: &mut Vec<CenterList>| {
            for v in by_shift.iter_mut() {
                v.clear();
            }
            used_shifts.clear();
            let pi = oxygens[i];
            grid.for_neighbourhood(pi, |j| {
                // Half list: only pairs with j > i.
                if j <= i {
                    return;
                }
                let pj = oxygens[j];
                let d = pbc.min_image(pi, pj);
                if d.norm2() <= radius * radius {
                    let shift = pbc.image_shift(pi, pj);
                    let si = Pbc::shift_index(shift);
                    if by_shift[si].is_empty() {
                        used_shifts.push(si);
                    }
                    by_shift[si].push(j as u32);
                }
            });
            used_shifts.sort_unstable();
            for &si in used_shifts.iter() {
                let mut neighbors = std::mem::take(&mut by_shift[si]);
                neighbors.sort_unstable();
                out.push(CenterList {
                    center: i as u32,
                    shift_index: si as u8,
                    neighbors,
                });
            }
        };

        let lists: Vec<CenterList> = if parallel {
            let per_center: Vec<Vec<CenterList>> = (0..n)
                .into_par_iter()
                .map(|i| {
                    let mut by_shift: Vec<Vec<u32>> = vec![Vec::new(); Pbc::NUM_SHIFTS];
                    let mut used_shifts: Vec<usize> = Vec::new();
                    let mut out = Vec::new();
                    collect_center(i, &mut by_shift, &mut used_shifts, &mut out);
                    out
                })
                .collect();
            let mut lists = Vec::with_capacity(per_center.iter().map(Vec::len).sum());
            for mut v in per_center {
                lists.append(&mut v);
            }
            lists
        } else {
            let mut lists = Vec::new();
            let mut by_shift: Vec<Vec<u32>> = vec![Vec::new(); Pbc::NUM_SHIFTS];
            let mut used_shifts: Vec<usize> = Vec::new();
            for i in 0..n {
                collect_center(i, &mut by_shift, &mut used_shifts, &mut lists);
            }
            lists
        };
        Self { params, lists }
    }

    /// Total molecule-pair interactions (Table 2's "interactions").
    pub fn num_pairs(&self) -> usize {
        self.lists.iter().map(|l| l.neighbors.len()).sum()
    }

    /// Number of (centre, shift) lists.
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Mean neighbours per *molecule* (not per list).
    pub fn mean_neighbors_per_molecule(&self, num_molecules: usize) -> f64 {
        if num_molecules == 0 {
            0.0
        } else {
            self.num_pairs() as f64 / num_molecules as f64
        }
    }

    /// Flatten to `(center, neighbor, shift_index)` triples — the fully
    /// expanded interaction list of the `expanded` variant.
    pub fn flat_pairs(&self) -> Vec<(u32, u32, u8)> {
        let mut out = Vec::with_capacity(self.num_pairs());
        for l in &self.lists {
            for &j in &l.neighbors {
                out.push((l.center, j, l.shift_index));
            }
        }
        out
    }

    /// Does the list need rebuilding after molecules moved by at most
    /// `max_displacement` since the last build? (Standard skin criterion:
    /// two molecules may each travel skin/2.)
    pub fn is_stale(&self, max_displacement: f64) -> bool {
        max_displacement * 2.0 > self.params.skin
    }

    /// Brute-force reference list (O(n²)) used by tests and small systems.
    pub fn build_brute_force(system: &WaterBox, params: NeighborListParams) -> Self {
        let n = system.num_molecules();
        let pbc = system.pbc();
        let radius = params.list_radius();
        let oxygens: Vec<Vec3> = (0..n).map(|m| pbc.wrap(system.oxygen(m))).collect();
        let mut lists: Vec<CenterList> = Vec::new();
        for i in 0..n {
            let mut by_shift: Vec<Vec<u32>> = vec![Vec::new(); Pbc::NUM_SHIFTS];
            for j in (i + 1)..n {
                let d = pbc.min_image(oxygens[i], oxygens[j]);
                if d.norm2() <= radius * radius {
                    let si = Pbc::shift_index(pbc.image_shift(oxygens[i], oxygens[j]));
                    by_shift[si].push(j as u32);
                }
            }
            for (si, neighbors) in by_shift.into_iter().enumerate() {
                if !neighbors.is_empty() {
                    lists.push(CenterList {
                        center: i as u32,
                        shift_index: si as u8,
                        neighbors,
                    });
                }
            }
        }
        Self { params, lists }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_box(n: usize, seed: u64) -> WaterBox {
        WaterBox::builder().molecules(n).seed(seed).build()
    }

    #[test]
    fn grid_matches_brute_force() {
        let sys = small_box(125, 11);
        let params = NeighborListParams {
            cutoff: 0.55,
            skin: 0.05,
            rebuild_interval: 10,
        };
        let fast = NeighborList::build(&sys, params);
        let slow = NeighborList::build_brute_force(&sys, params);
        assert_eq!(fast.num_pairs(), slow.num_pairs());
        let mut fp = fast.flat_pairs();
        let mut sp = slow.flat_pairs();
        fp.sort_unstable();
        sp.sort_unstable();
        assert_eq!(fp, sp);
    }

    #[test]
    fn half_list_has_each_pair_once() {
        let sys = small_box(64, 12);
        let params = NeighborListParams {
            cutoff: 0.5,
            skin: 0.0,
            rebuild_interval: 1,
        };
        let nl = NeighborList::build(&sys, params);
        let mut seen = std::collections::HashSet::new();
        for (c, j, _) in nl.flat_pairs() {
            assert!(c < j, "half list must have center < neighbor");
            assert!(seen.insert((c, j)), "pair ({c},{j}) duplicated");
        }
    }

    #[test]
    fn paper_dataset_statistics() {
        // Table 2 reconstruction: 900 molecules at r_c = 1.0 nm should give
        // roughly 62k pairs (~69 neighbours per molecule in the half list).
        let sys = WaterBox::paper_dataset(7);
        let params = NeighborListParams {
            cutoff: 1.0,
            skin: 0.0,
            rebuild_interval: 10,
        };
        let nl = NeighborList::build(&sys, params);
        let pairs = nl.num_pairs();
        assert!(
            (55_000..70_000).contains(&pairs),
            "paper dataset pair count {pairs} outside expected band"
        );
        let mean = nl.mean_neighbors_per_molecule(900);
        assert!(mean > 60.0 && mean < 80.0, "mean neighbours {mean}");
    }

    #[test]
    fn shift_applied_to_center_reproduces_min_image() {
        let sys = small_box(64, 13);
        let pbc = sys.pbc();
        let params = NeighborListParams {
            cutoff: 0.6,
            skin: 0.0,
            rebuild_interval: 1,
        };
        let nl = NeighborList::build(&sys, params);
        for l in &nl.lists {
            let shift = pbc.shift_vector(l.shift_index as usize);
            let ci = pbc.wrap(sys.oxygen(l.center as usize)) + shift;
            for &j in &l.neighbors {
                let d = ci - pbc.wrap(sys.oxygen(j as usize));
                let mi = pbc.min_image(
                    pbc.wrap(sys.oxygen(l.center as usize)),
                    pbc.wrap(sys.oxygen(j as usize)),
                );
                assert!(
                    (d - mi).max_abs() < 1e-9,
                    "shifted displacement != min image"
                );
            }
        }
    }

    #[test]
    fn cutoff_respected() {
        let sys = small_box(64, 14);
        let pbc = sys.pbc();
        let params = NeighborListParams {
            cutoff: 0.6,
            skin: 0.0,
            rebuild_interval: 1,
        };
        let nl = NeighborList::build(&sys, params);
        for (c, j, _) in nl.flat_pairs() {
            let d = pbc
                .min_image(sys.oxygen(c as usize), sys.oxygen(j as usize))
                .norm();
            assert!(d <= 0.6 + 1e-12);
        }
    }

    #[test]
    fn staleness_criterion() {
        let params = NeighborListParams {
            cutoff: 1.0,
            skin: 0.2,
            rebuild_interval: 10,
        };
        let nl = NeighborList {
            params,
            lists: vec![],
        };
        assert!(!nl.is_stale(0.05));
        assert!(nl.is_stale(0.15));
    }

    #[test]
    fn oversized_cutoff_rejected() {
        let sys = small_box(8, 15);
        let params = NeighborListParams {
            cutoff: 5.0,
            skin: 0.0,
            rebuild_interval: 1,
        };
        let r = std::panic::catch_unwind(|| NeighborList::build(&sys, params));
        assert!(r.is_err());
    }

    #[test]
    fn parallel_build_is_byte_identical_to_serial() {
        // Above and below the parallelism threshold, forced through
        // both paths: same lists in the same order, so downstream
        // consumers (dataset cache keys, kernels) cannot observe the
        // host thread count.
        for (n, seed) in [(125usize, 21u64), (700, 22)] {
            let sys = small_box(n, seed);
            let params = NeighborListParams {
                cutoff: 0.55,
                skin: 0.05,
                rebuild_interval: 10,
            };
            let serial = NeighborList::build_impl(&sys, params, false);
            let parallel = NeighborList::build_impl(&sys, params, true);
            assert_eq!(serial, parallel, "n={n}");
            assert_eq!(
                NeighborList::build(&sys, params),
                serial,
                "n={n} front door"
            );
        }
    }

    #[test]
    fn lists_sorted_by_center() {
        let sys = small_box(64, 16);
        let nl = NeighborList::build(
            &sys,
            NeighborListParams {
                cutoff: 0.6,
                skin: 0.0,
                rebuild_interval: 1,
            },
        );
        for w in nl.lists.windows(2) {
            assert!(w[0].center <= w[1].center);
        }
    }
}

//! Water-system construction: the configuration GROMACS would hand to
//! StreamMD.
//!
//! The paper's dataset is a 900-molecule water box at liquid density
//! (Table 2). [`WaterBox::builder`] places molecules on a jittered cubic
//! lattice with random orientations — collision-free but liquid-like in
//! density — and draws molecular velocities from the Maxwell–Boltzmann
//! distribution. `positions_flat9` exposes exactly the "position array
//! containing nine coordinates for each molecule" described in Section 3.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::pbc::Pbc;
use crate::units::{KB, WATER_NUMBER_DENSITY};
use crate::vec3::Vec3;
use crate::water::WaterModel;

/// A box of rigid water molecules.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WaterBox {
    model: WaterModel,
    pbc: Pbc,
    /// Site positions, `num_molecules * num_sites` long, molecule-major.
    positions: Vec<Vec3>,
    /// Site velocities, same layout (nm/ps).
    velocities: Vec<Vec3>,
}

/// Builder for [`WaterBox`].
#[derive(Debug, Clone)]
pub struct WaterBoxBuilder {
    molecules: usize,
    model: WaterModel,
    density: f64,
    temperature: f64,
    seed: u64,
    side_override: Option<f64>,
}

impl WaterBox {
    /// Start building a box; defaults to the paper's configuration scaled
    /// to the requested molecule count (SPC water, liquid density, 300 K).
    pub fn builder() -> WaterBoxBuilder {
        WaterBoxBuilder {
            molecules: 900,
            model: WaterModel::spc(),
            density: WATER_NUMBER_DENSITY,
            temperature: 300.0,
            seed: 0x5eed,
            side_override: None,
        }
    }

    /// The paper's Table 2 dataset: 900 SPC molecules in a 3.0 nm box.
    pub fn paper_dataset(seed: u64) -> WaterBox {
        Self::builder().molecules(900).seed(seed).build()
    }

    pub fn model(&self) -> &WaterModel {
        &self.model
    }

    pub fn pbc(&self) -> Pbc {
        self.pbc
    }

    pub fn num_molecules(&self) -> usize {
        self.positions.len() / self.model.num_sites()
    }

    pub fn num_sites(&self) -> usize {
        self.model.num_sites()
    }

    /// All site positions, molecule-major.
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    pub fn positions_mut(&mut self) -> &mut [Vec3] {
        &mut self.positions
    }

    pub fn velocities(&self) -> &[Vec3] {
        &self.velocities
    }

    pub fn velocities_mut(&mut self) -> &mut [Vec3] {
        &mut self.velocities
    }

    /// Site positions of molecule `m`.
    pub fn molecule(&self, m: usize) -> &[Vec3] {
        let s = self.model.num_sites();
        &self.positions[m * s..(m + 1) * s]
    }

    /// Oxygen (site 0) position of molecule `m` — the reference point for
    /// neighbour searching, as in GROMACS water loops.
    pub fn oxygen(&self, m: usize) -> Vec3 {
        self.positions[m * self.model.num_sites()]
    }

    /// The StreamMD position array: nine coordinates per molecule
    /// (3 sites × xyz), molecule-major. Only valid for 3-site models.
    pub fn positions_flat9(&self) -> Vec<f64> {
        assert_eq!(
            self.model.num_sites(),
            3,
            "flat9 layout requires a 3-site model"
        );
        let mut out = Vec::with_capacity(self.num_molecules() * 9);
        for p in &self.positions {
            out.push(p.x);
            out.push(p.y);
            out.push(p.z);
        }
        out
    }

    /// The StreamMD position array for any site count: `3 × num_sites`
    /// coordinates per molecule, molecule-major (9 words for 3-site
    /// water, 3 for single-site atoms).
    pub fn positions_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.positions.len() * 3);
        for p in &self.positions {
            out.push(p.x);
            out.push(p.y);
            out.push(p.z);
        }
        out
    }

    /// Centre of mass of molecule `m`.
    pub fn molecule_com(&self, m: usize) -> Vec3 {
        let sites = &self.model.sites;
        let total: f64 = self.model.mass();
        self.molecule(m)
            .iter()
            .zip(sites)
            .map(|(p, s)| *p * s.mass)
            .sum::<Vec3>()
            / total
    }

    /// Instantaneous temperature from the kinetic energy, ignoring
    /// constraints (upper bound; the integrator reports the constrained
    /// value).
    pub fn temperature_unconstrained(&self) -> f64 {
        let sites = &self.model.sites;
        let ns = sites.len();
        let ke: f64 = self
            .velocities
            .iter()
            .enumerate()
            .map(|(i, v)| 0.5 * sites[i % ns].mass * v.norm2())
            .sum();
        let dof = (3 * self.velocities.len()).saturating_sub(3) as f64;
        if dof == 0.0 {
            0.0
        } else {
            2.0 * ke / (dof * KB)
        }
    }

    /// Construct directly from parts (used by tests and the integrator).
    pub fn from_parts(
        model: WaterModel,
        pbc: Pbc,
        positions: Vec<Vec3>,
        velocities: Vec<Vec3>,
    ) -> Self {
        assert_eq!(positions.len() % model.num_sites(), 0);
        assert_eq!(positions.len(), velocities.len());
        Self {
            model,
            pbc,
            positions,
            velocities,
        }
    }
}

/// A uniformly random rotation matrix (as three rows) from a quaternion.
fn random_rotation(rng: &mut impl Rng) -> [Vec3; 3] {
    // Shoemake's method for uniform quaternions.
    let u1: f64 = rng.gen();
    let u2: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
    let u3: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
    let a = (1.0 - u1).sqrt();
    let b = u1.sqrt();
    let (w, x, y, z) = (a * u2.sin(), a * u2.cos(), b * u3.sin(), b * u3.cos());
    [
        Vec3::new(
            1.0 - 2.0 * (y * y + z * z),
            2.0 * (x * y - w * z),
            2.0 * (x * z + w * y),
        ),
        Vec3::new(
            2.0 * (x * y + w * z),
            1.0 - 2.0 * (x * x + z * z),
            2.0 * (y * z - w * x),
        ),
        Vec3::new(
            2.0 * (x * z - w * y),
            2.0 * (y * z + w * x),
            1.0 - 2.0 * (x * x + y * y),
        ),
    ]
}

fn rotate(rot: &[Vec3; 3], v: Vec3) -> Vec3 {
    Vec3::new(rot[0].dot(v), rot[1].dot(v), rot[2].dot(v))
}

impl WaterBoxBuilder {
    /// Number of molecules (default 900 — the paper's dataset).
    pub fn molecules(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one molecule");
        self.molecules = n;
        self
    }

    /// Water model (default SPC).
    pub fn model(mut self, model: WaterModel) -> Self {
        self.model = model;
        self
    }

    /// Number density in molecules/nm³ (default: liquid water).
    pub fn density(mut self, d: f64) -> Self {
        assert!(d > 0.0);
        self.density = d;
        self.side_override = None;
        self
    }

    /// Fix the box side directly instead of deriving it from density.
    pub fn box_side(mut self, l: f64) -> Self {
        assert!(l > 0.0);
        self.side_override = Some(l);
        self
    }

    /// Initial temperature in K (default 300).
    pub fn temperature(mut self, t: f64) -> Self {
        assert!(t >= 0.0);
        self.temperature = t;
        self
    }

    /// RNG seed for placement, orientation and velocities.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the box.
    pub fn build(self) -> WaterBox {
        let n = self.molecules;
        let side = self
            .side_override
            .unwrap_or_else(|| (n as f64 / self.density).cbrt());
        let pbc = Pbc::cubic(side);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        // Lattice with enough cells for every molecule.
        let cells = (n as f64).cbrt().ceil() as usize;
        let cell = side / cells as f64;
        let jitter = cell * 0.08;

        let ns = self.model.num_sites();
        let mut positions = Vec::with_capacity(n * ns);
        let mut placed = 0;
        'outer: for ix in 0..cells {
            for iy in 0..cells {
                for iz in 0..cells {
                    if placed == n {
                        break 'outer;
                    }
                    let centre = Vec3::new(
                        (ix as f64 + 0.5) * cell,
                        (iy as f64 + 0.5) * cell,
                        (iz as f64 + 0.5) * cell,
                    );
                    let wiggle = Vec3::new(
                        rng.gen_range(-jitter..jitter),
                        rng.gen_range(-jitter..jitter),
                        rng.gen_range(-jitter..jitter),
                    );
                    let rot = random_rotation(&mut rng);
                    for site in &self.model.sites {
                        let p = centre + wiggle + rotate(&rot, site.offset);
                        positions.push(pbc.wrap(p));
                    }
                    placed += 1;
                }
            }
        }
        assert_eq!(placed, n, "lattice placement failed");

        // Maxwell–Boltzmann molecular (rigid-body translational)
        // velocities: every site in a molecule moves together.
        let mol_mass = self.model.mass();
        let sigma = if self.temperature > 0.0 {
            (KB * self.temperature / mol_mass).sqrt()
        } else {
            0.0
        };
        let gauss = |rng: &mut ChaCha8Rng| -> f64 {
            // Box–Muller.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let mut velocities = Vec::with_capacity(n * ns);
        let mut com_v = Vec3::ZERO;
        for _ in 0..n {
            let v = Vec3::new(gauss(&mut rng), gauss(&mut rng), gauss(&mut rng)) * sigma;
            com_v += v;
            for _ in 0..ns {
                velocities.push(v);
            }
        }
        // Remove centre-of-mass drift.
        let drift = com_v / n as f64;
        for v in &mut velocities {
            *v -= drift;
        }

        WaterBox::from_parts(self.model, pbc, positions, velocities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dataset_geometry() {
        let b = WaterBox::paper_dataset(1);
        assert_eq!(b.num_molecules(), 900);
        assert!((b.pbc().side() - 3.0).abs() < 0.01);
        assert_eq!(b.positions().len(), 2700);
    }

    #[test]
    fn flat9_layout() {
        let b = WaterBox::builder().molecules(8).seed(2).build();
        let flat = b.positions_flat9();
        assert_eq!(flat.len(), 8 * 9);
        assert_eq!(flat[0], b.positions()[0].x);
        assert_eq!(flat[9 + 3], b.positions()[4].x); // molecule 1, site 1
    }

    #[test]
    fn molecules_do_not_overlap() {
        let b = WaterBox::builder().molecules(125).seed(3).build();
        let pbc = b.pbc();
        let mut min_d = f64::INFINITY;
        for i in 0..b.num_molecules() {
            for j in (i + 1)..b.num_molecules() {
                let d = pbc.min_image(b.oxygen(i), b.oxygen(j)).norm();
                min_d = min_d.min(d);
            }
        }
        // Lattice spacing at water density is ~0.31 nm; jitter is small.
        assert!(min_d > 0.2, "closest O-O distance {min_d}");
    }

    #[test]
    fn rigid_geometry_preserved_by_placement() {
        let b = WaterBox::builder().molecules(27).seed(4).build();
        let pbc = b.pbc();
        for m in 0..b.num_molecules() {
            let mol = b.molecule(m);
            let oh1 = pbc.min_image(mol[1], mol[0]).norm();
            let oh2 = pbc.min_image(mol[2], mol[0]).norm();
            assert!((oh1 - 0.1).abs() < 1e-9, "OH1 = {oh1}");
            assert!((oh2 - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn velocities_have_roughly_target_temperature() {
        let b = WaterBox::builder()
            .molecules(512)
            .temperature(300.0)
            .seed(5)
            .build();
        // Each molecule moves rigidly, so the molecular translational
        // kinetic energy should correspond to ~300 K with 3N-3 dof.
        let n = b.num_molecules();
        let mass = b.model().mass();
        let ke: f64 = (0..n)
            .map(|m| 0.5 * mass * b.velocities()[m * 3].norm2())
            .sum();
        let t = 2.0 * ke / ((3 * n - 3) as f64 * KB);
        assert!((t - 300.0).abs() < 30.0, "T = {t}");
    }

    #[test]
    fn zero_net_momentum() {
        let b = WaterBox::builder().molecules(64).seed(6).build();
        let p: Vec3 = (0..b.num_molecules())
            .map(|m| b.velocities()[m * 3] * b.model().mass())
            .sum();
        assert!(p.max_abs() < 1e-9, "net momentum {p:?}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = WaterBox::builder().molecules(27).seed(42).build();
        let b = WaterBox::builder().molecules(27).seed(42).build();
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.velocities(), b.velocities());
    }

    #[test]
    fn different_seeds_differ() {
        let a = WaterBox::builder().molecules(27).seed(1).build();
        let b = WaterBox::builder().molecules(27).seed(2).build();
        assert_ne!(a.positions(), b.positions());
    }

    #[test]
    fn box_side_override() {
        let b = WaterBox::builder()
            .molecules(10)
            .box_side(5.0)
            .seed(1)
            .build();
        assert_eq!(b.pbc().side(), 5.0);
    }

    #[test]
    fn temperature_estimate_positive() {
        let b = WaterBox::builder().molecules(64).seed(9).build();
        assert!(b.temperature_unconstrained() > 0.0);
    }
}

//! Rigid water models.
//!
//! The paper's GROMACS runs use an SPC-like three-site model ("a model
//! where partial charges are located at the hydrogen and oxygen atoms")
//! and its Table 5 compares SPC against TIP5P (five fixed partial
//! charges) and the polarizable PPC model. We implement the fixed-charge
//! geometries exactly; polarizability is out of scope for the force
//! kernels (documented substitution in DESIGN.md) but the PPC *enhanced*
//! static dipole is reported for the Table 5 harness.

use serde::{Deserialize, Serialize};

use crate::units::{DEBYE, MASS_H, MASS_O};
use crate::vec3::Vec3;

/// A charge site of a rigid water model, positioned relative to the
/// oxygen with the molecule in its canonical orientation (dipole along
/// +z, molecule in the xz-plane).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Position relative to the oxygen, nm.
    pub offset: Vec3,
    /// Partial charge, e.
    pub charge: f64,
    /// Mass carried by this site, u (zero for virtual sites).
    pub mass: f64,
}

/// A rigid fixed-charge water model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaterModel {
    /// Human-readable name ("SPC", "TIP3P", "TIP5P", "PPC-static").
    pub name: String,
    /// Charge/mass sites; site 0 is always the oxygen.
    pub sites: Vec<Site>,
    /// Lennard-Jones C6 for the oxygen-oxygen pair, kJ·mol⁻¹·nm⁶.
    pub c6: f64,
    /// Lennard-Jones C12 for the oxygen-oxygen pair, kJ·mol⁻¹·nm¹².
    pub c12: f64,
}

/// Place two hydrogens at bond length `b` and H-O-H angle `theta`
/// (radians), symmetric about +z in the xz-plane.
fn hydrogens(b: f64, theta: f64) -> (Vec3, Vec3) {
    let half = theta / 2.0;
    let h1 = Vec3::new(b * half.sin(), 0.0, b * half.cos());
    let h2 = Vec3::new(-b * half.sin(), 0.0, b * half.cos());
    (h1, h2)
}

impl WaterModel {
    /// SPC: the simple point charge model (the paper's "model used for our
    /// GROMACS tests"). Bond 0.1 nm, tetrahedral angle 109.47°,
    /// qO = −0.82 e, qH = +0.41 e; LJ from σ = 0.3166 nm, ε = 0.650 kJ/mol.
    pub fn spc() -> Self {
        let (h1, h2) = hydrogens(0.1, 109.47_f64.to_radians());
        let sigma: f64 = 0.3166;
        let eps = 0.650;
        Self {
            name: "SPC".into(),
            sites: vec![
                Site {
                    offset: Vec3::ZERO,
                    charge: -0.82,
                    mass: MASS_O,
                },
                Site {
                    offset: h1,
                    charge: 0.41,
                    mass: MASS_H,
                },
                Site {
                    offset: h2,
                    charge: 0.41,
                    mass: MASS_H,
                },
            ],
            c6: 4.0 * eps * sigma.powi(6),
            c12: 4.0 * eps * sigma.powi(12),
        }
    }

    /// TIP3P: bond 0.09572 nm, angle 104.52°, qO = −0.834 e.
    pub fn tip3p() -> Self {
        let (h1, h2) = hydrogens(0.09572, 104.52_f64.to_radians());
        let sigma: f64 = 0.315_06;
        let eps = 0.6364;
        Self {
            name: "TIP3P".into(),
            sites: vec![
                Site {
                    offset: Vec3::ZERO,
                    charge: -0.834,
                    mass: MASS_O,
                },
                Site {
                    offset: h1,
                    charge: 0.417,
                    mass: MASS_H,
                },
                Site {
                    offset: h2,
                    charge: 0.417,
                    mass: MASS_H,
                },
            ],
            c6: 4.0 * eps * sigma.powi(6),
            c12: 4.0 * eps * sigma.powi(12),
        }
    }

    /// TIP5P geometry: neutral oxygen, two hydrogens (+0.241 e) and two
    /// lone-pair virtual sites (−0.241 e) 0.07 nm from the oxygen at the
    /// tetrahedral angle, *behind* the molecular plane (Table 5's "five
    /// fixed partial charges" — oxygen is the uncharged fifth site).
    pub fn tip5p() -> Self {
        let (h1, h2) = hydrogens(0.09572, 104.52_f64.to_radians());
        let lp_angle = 109.47_f64.to_radians() / 2.0;
        let l = 0.07;
        let lp1 = Vec3::new(0.0, l * lp_angle.sin(), -l * lp_angle.cos());
        let lp2 = Vec3::new(0.0, -l * lp_angle.sin(), -l * lp_angle.cos());
        let sigma: f64 = 0.312;
        let eps = 0.6694;
        Self {
            name: "TIP5P".into(),
            sites: vec![
                Site {
                    offset: Vec3::ZERO,
                    charge: 0.0,
                    mass: MASS_O,
                },
                Site {
                    offset: h1,
                    charge: 0.241,
                    mass: MASS_H,
                },
                Site {
                    offset: h2,
                    charge: 0.241,
                    mass: MASS_H,
                },
                Site {
                    offset: lp1,
                    charge: -0.241,
                    mass: 0.0,
                },
                Site {
                    offset: lp2,
                    charge: -0.241,
                    mass: 0.0,
                },
            ],
            c6: 4.0 * eps * sigma.powi(6),
            c12: 4.0 * eps * sigma.powi(12),
        }
    }

    /// PPC with its condensed-phase (polarization-enhanced) static charges.
    /// The true PPC model varies its charges with the dielectric
    /// environment; for Table 5 reporting we use the liquid-phase charge
    /// set that yields the published 2.52 D dipole. Geometry: bond
    /// 0.0943 nm, angle 106°.
    pub fn ppc_static() -> Self {
        let (h1, h2) = hydrogens(0.0943, 106.0_f64.to_radians());
        // Charge chosen so the dipole is 2.52 D (see tests).
        let qh = 0.4622;
        let sigma: f64 = 0.3234;
        let eps = 0.600;
        Self {
            name: "PPC-static".into(),
            sites: vec![
                Site {
                    offset: Vec3::ZERO,
                    charge: -2.0 * qh,
                    mass: MASS_O,
                },
                Site {
                    offset: h1,
                    charge: qh,
                    mass: MASS_H,
                },
                Site {
                    offset: h2,
                    charge: qh,
                    mass: MASS_H,
                },
            ],
            c6: 4.0 * eps * sigma.powi(6),
            c12: 4.0 * eps * sigma.powi(12),
        }
    }

    /// Single-site Lennard-Jones atom (argon-like): no charge, one mass
    /// point at the origin. σ = 0.34 nm, ε = 0.996 kJ/mol, mass 39.948 u.
    /// This is the low-arithmetic-intensity end of the workload catalogue
    /// (MD-Bench's plain LJ fluid).
    pub fn lj_atom() -> Self {
        let sigma: f64 = 0.34;
        let eps = 0.996;
        Self {
            name: "LJ-atom".into(),
            sites: vec![Site {
                offset: Vec3::ZERO,
                charge: 0.0,
                mass: 39.948,
            }],
            c6: 4.0 * eps * sigma.powi(6),
            c12: 4.0 * eps * sigma.powi(12),
        }
    }

    /// Single-site charged particle: the LJ atom carrying a partial
    /// charge, so every pair adds a Coulomb term (√ and ÷) on top of the
    /// LJ core — higher arithmetic intensity per word than the plain LJ
    /// fluid. Like-charge pairs only; the LJ core keeps the system bound
    /// enough for a force-kernel benchmark.
    pub fn charged_atom() -> Self {
        let mut m = Self::lj_atom();
        m.name = "Charged-atom".into();
        m.sites[0].charge = 0.41;
        m
    }

    /// Number of interaction sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Total mass, u.
    pub fn mass(&self) -> f64 {
        self.sites.iter().map(|s| s.mass).sum()
    }

    /// Net charge, e (should be zero for all models).
    pub fn net_charge(&self) -> f64 {
        self.sites.iter().map(|s| s.charge).sum()
    }

    /// Static dipole moment in Debye, computed from the site charges
    /// about the centre of charge.
    pub fn dipole_debye(&self) -> f64 {
        let mu: Vec3 = self.sites.iter().map(|s| s.offset * s.charge).sum();
        mu.norm() / DEBYE
    }

    /// Centre-of-mass offset from the oxygen in the canonical orientation.
    pub fn com_offset(&self) -> Vec3 {
        let m = self.mass();
        self.sites.iter().map(|s| s.offset * s.mass).sum::<Vec3>() / m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_are_neutral() {
        for m in [
            WaterModel::spc(),
            WaterModel::tip3p(),
            WaterModel::tip5p(),
            WaterModel::ppc_static(),
        ] {
            assert!(m.net_charge().abs() < 1e-12, "{} not neutral", m.name);
        }
    }

    #[test]
    fn spc_dipole_matches_table5() {
        // Table 5 lists the SPC dipole as 2.27 D.
        let d = WaterModel::spc().dipole_debye();
        assert!((d - 2.27).abs() < 0.03, "SPC dipole = {d} D");
    }

    #[test]
    fn tip5p_dipole_is_reasonable() {
        // TIP5P's published dipole is 2.29 D.
        let d = WaterModel::tip5p().dipole_debye();
        assert!((d - 2.29).abs() < 0.15, "TIP5P dipole = {d} D");
    }

    #[test]
    fn ppc_dipole_matches_table5() {
        // Table 5 lists the PPC dipole as 2.52 D.
        let d = WaterModel::ppc_static().dipole_debye();
        assert!((d - 2.52).abs() < 0.05, "PPC dipole = {d} D");
    }

    #[test]
    fn spc_geometry() {
        let m = WaterModel::spc();
        assert_eq!(m.num_sites(), 3);
        let b1 = (m.sites[1].offset - m.sites[0].offset).norm();
        let b2 = (m.sites[2].offset - m.sites[0].offset).norm();
        assert!((b1 - 0.1).abs() < 1e-12);
        assert!((b2 - 0.1).abs() < 1e-12);
        let cos = m.sites[1].offset.dot(m.sites[2].offset) / (b1 * b2);
        assert!((cos.acos().to_degrees() - 109.47).abs() < 0.01);
    }

    #[test]
    fn lj_parameters_positive() {
        for m in [WaterModel::spc(), WaterModel::tip3p(), WaterModel::tip5p()] {
            assert!(m.c6 > 0.0 && m.c12 > 0.0);
            // C12/C6 has units nm^6; sigma^6 = C12/C6.
            let sigma6 = m.c12 / m.c6;
            let sigma = sigma6.powf(1.0 / 6.0);
            assert!(sigma > 0.25 && sigma < 0.4, "{} sigma = {sigma}", m.name);
        }
    }

    #[test]
    fn water_mass_is_18() {
        assert!((WaterModel::spc().mass() - 18.0154).abs() < 1e-3);
        assert!((WaterModel::tip5p().mass() - 18.0154).abs() < 1e-3);
    }

    #[test]
    fn com_offset_is_along_dipole_axis() {
        let c = WaterModel::spc().com_offset();
        assert!(c.x.abs() < 1e-12 && c.y.abs() < 1e-12 && c.z > 0.0);
    }
}

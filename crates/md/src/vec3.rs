//! Minimal 3-vector used throughout the MD substrate.
//!
//! Double precision everywhere: the paper makes a point of Merrimac doing
//! full-bandwidth 64-bit arithmetic (versus the Pentium 4's
//! single-precision SSE loops), so the reference engine is f64.

use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A 3-component double-precision vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// All components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Self::new(v, v, v)
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Component-wise multiplication.
    #[inline]
    pub fn mul_elem(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    /// Unit vector in the same direction. Returns `ZERO` for a zero vector
    /// rather than NaN so force accumulation on coincident dummy particles
    /// stays finite.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            Vec3::ZERO
        } else {
            self / n
        }
    }

    /// Largest absolute component.
    #[inline]
    pub fn max_abs(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// True if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Copy components into a slice of length 3.
    #[inline]
    pub fn write_to(self, out: &mut [f64]) {
        out[0] = self.x;
        out[1] = self.y;
        out[2] = self.z;
    }

    /// Build from the first three elements of a slice.
    #[inline]
    pub fn from_slice(s: &[f64]) -> Vec3 {
        Vec3::new(s[0], s[1], s[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl std::iter::Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn basic_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 0.5);
        assert_eq!(a + b, Vec3::new(-3.0, 7.0, 3.5));
        assert_eq!(a - b, Vec3::new(5.0, -3.0, 2.5));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert!(close(a.dot(b), 1.0 * -4.0 + 2.0 * 5.0 + 3.0 * 0.5));
    }

    #[test]
    fn indexing_round_trips() {
        let mut v = Vec3::new(7.0, 8.0, 9.0);
        for i in 0..3 {
            v[i] += 1.0;
        }
        assert_eq!(v, Vec3::new(8.0, 9.0, 10.0));
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn normalized_zero_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn slice_round_trip() {
        let v = Vec3::new(1.5, -2.5, 3.25);
        let mut buf = [0.0; 3];
        v.write_to(&mut buf);
        assert_eq!(Vec3::from_slice(&buf), v);
    }

    #[test]
    fn sum_of_vectors() {
        let vs = [Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0)];
        let s: Vec3 = vs.iter().copied().sum();
        assert_eq!(s, Vec3::new(1.0, 2.0, 0.0));
    }

    fn arb_vec3() -> impl Strategy<Value = Vec3> {
        (-1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in arb_vec3(), b in arb_vec3()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_dot_symmetric(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!(close(a.dot(b), b.dot(a)));
        }

        #[test]
        fn prop_cross_orthogonal(a in arb_vec3(), b in arb_vec3()) {
            let c = a.cross(b);
            // |c . a| is bounded by rounding relative to the magnitudes.
            let scale = (a.norm() * b.norm() * a.norm()).max(1.0);
            prop_assert!(c.dot(a).abs() <= 1e-9 * scale);
            prop_assert!(c.dot(b).abs() <= 1e-9 * scale * (b.norm() / a.norm().max(1e-30)).max(1.0));
        }

        #[test]
        fn prop_norm_triangle_inequality(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        }

        #[test]
        fn prop_normalized_has_unit_norm(a in arb_vec3()) {
            prop_assume!(a.norm() > 1e-6);
            prop_assert!(close(a.normalized().norm(), 1.0));
        }

        #[test]
        fn prop_scalar_distributes(a in arb_vec3(), b in arb_vec3(), s in -100.0..100.0f64) {
            let lhs = (a + b) * s;
            let rhs = a * s + b * s;
            prop_assert!((lhs - rhs).max_abs() <= 1e-9 * (1.0 + lhs.max_abs()));
        }
    }
}

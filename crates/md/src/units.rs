//! Physical constants in GROMACS units.
//!
//! GROMACS (and therefore StreamMD) works in:
//!
//! * length — nanometres (nm)
//! * time — picoseconds (ps)
//! * mass — atomic mass units (u)
//! * energy — kJ/mol
//! * charge — elementary charges (e)
//!
//! In this system forces come out in kJ·mol⁻¹·nm⁻¹ and velocities in
//! nm/ps, and Newton's equations need no unit conversion factors beyond
//! the electric conversion factor below.

/// Electric conversion factor 1/(4πɛ₀) in kJ·mol⁻¹·nm·e⁻²
/// (the `4πɛ₀` of Equation (1) in the paper).
pub const COULOMB: f64 = 138.935_485;

/// Boltzmann constant in kJ·mol⁻¹·K⁻¹.
pub const KB: f64 = 8.314_462_618e-3;

/// Mass of an oxygen atom in u.
pub const MASS_O: f64 = 15.999_4;

/// Mass of a hydrogen atom in u.
pub const MASS_H: f64 = 1.008;

/// Mass of one water molecule in u.
pub const MASS_WATER: f64 = MASS_O + 2.0 * MASS_H;

/// Number density of liquid water at ambient conditions, molecules per nm³
/// (0.997 g/cm³). The paper's 900-molecule dataset at this density gives a
/// 3.0 nm box.
pub const WATER_NUMBER_DENSITY: f64 = 33.327;

/// Debye in e·nm (for reporting dipole moments in Table 5 units).
pub const DEBYE: f64 = 0.020_819_434;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_mass() {
        assert!((MASS_WATER - 18.0154).abs() < 1e-3);
    }

    #[test]
    fn box_side_for_900_molecules_is_3nm() {
        let volume = 900.0 / WATER_NUMBER_DENSITY;
        let side = volume.cbrt();
        assert!((side - 3.0).abs() < 0.01, "side = {side}");
    }

    #[test]
    fn thermal_energy_scale() {
        // kT at 300 K is about 2.5 kJ/mol.
        assert!((KB * 300.0 - 2.494).abs() < 0.01);
    }
}

//! Reference double-precision evaluation of the non-bonded water-water
//! interaction — Equation (1) of the paper:
//!
//! ```text
//! V_nb = Σ_{i,j} [ q_i q_j / (4πɛ₀ r_ij) + C12/r_ij¹² − C6/r_ij⁶ ]
//! ```
//!
//! Layout and conventions follow the GROMACS water-water loop the paper
//! streams: every pair in the neighbour list is evaluated (the cut-off is
//! enforced by list membership, not by a branch in the inner loop),
//! Coulomb acts between all 9 atom pairs of a molecule pair, and the
//! Lennard-Jones term acts between the two oxygens only. The periodic
//! shift is applied to the central molecule before the 9 pair
//! interactions.
//!
//! This engine is the ground truth every StreamMD variant must reproduce
//! and the workload for the Pentium 4 baseline.

use serde::{Deserialize, Serialize};

use crate::neighbor::NeighborList;
use crate::system::WaterBox;
use crate::units::COULOMB;
use crate::vec3::Vec3;

/// Programmer-visible floating-point operations per molecule-pair
/// interaction in the paper's accounting (Section 3: "each interaction
/// requires 234 floating-point operations including 9 divides and 9
/// square roots"). The kernel crate's builder-generated DAG is tested to
/// match this constant exactly.
pub const FLOPS_PER_INTERACTION: u64 = 234;

/// Divides per interaction (one 1/r per atom pair).
pub const DIVS_PER_INTERACTION: u64 = 9;

/// Square roots per interaction (one per atom pair).
pub const SQRTS_PER_INTERACTION: u64 = 9;

/// Atom pairs per molecule-pair interaction for 3-site water.
pub const ATOM_PAIRS: usize = 9;

/// Non-bonded force field parameters for a single molecule species.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForceField {
    /// Pairwise charge products q_i·q_j pre-multiplied by the electric
    /// conversion factor, indexed `[site_i][site_j]` (kJ·mol⁻¹·nm).
    pub qq: [[f64; 3]; 3],
    /// Lennard-Jones C6 between oxygens (kJ·mol⁻¹·nm⁶).
    pub c6: f64,
    /// Lennard-Jones C12 between oxygens (kJ·mol⁻¹·nm¹²).
    pub c12: f64,
}

impl ForceField {
    /// Build from a 3-site water model.
    pub fn from_model(model: &crate::water::WaterModel) -> Self {
        assert_eq!(model.num_sites(), 3, "force field requires a 3-site model");
        let q: Vec<f64> = model.sites.iter().map(|s| s.charge).collect();
        let mut qq = [[0.0; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                qq[i][j] = COULOMB * q[i] * q[j];
            }
        }
        Self {
            qq,
            c6: model.c6,
            c12: model.c12,
        }
    }
}

/// Output of a force evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ForceResult {
    /// Per-site forces, molecule-major (kJ·mol⁻¹·nm⁻¹).
    pub forces: Vec<Vec3>,
    /// Total Coulomb energy (kJ/mol).
    pub coulomb_energy: f64,
    /// Total Lennard-Jones energy (kJ/mol).
    pub lj_energy: f64,
    /// Scalar virial Σ r·f over interactions (kJ/mol).
    pub virial: f64,
    /// Molecule-pair interactions evaluated.
    pub interactions: u64,
}

impl ForceResult {
    /// Total potential energy.
    pub fn potential(&self) -> f64 {
        self.coulomb_energy + self.lj_energy
    }

    /// Solution flops of the evaluation in the paper's accounting.
    pub fn solution_flops(&self) -> u64 {
        self.interactions * FLOPS_PER_INTERACTION
    }
}

/// Force and energy contribution of one molecule pair.
///
/// `ci` are the central molecule's three site positions *already shifted*
/// into the neighbour's periodic image frame; `nj` the neighbour's sites.
/// Returns (force-on-center-sites, force-on-neighbor-sites, e_coul, e_lj,
/// virial).
#[inline]
pub fn pair_interaction(
    ff: &ForceField,
    ci: &[Vec3; 3],
    nj: &[Vec3; 3],
) -> ([Vec3; 3], [Vec3; 3], f64, f64, f64) {
    let mut fi = [Vec3::ZERO; 3];
    let mut fj = [Vec3::ZERO; 3];
    let mut e_coul = 0.0;
    let mut e_lj = 0.0;
    let mut virial = 0.0;
    for a in 0..3 {
        for b in 0..3 {
            let d = ci[a] - nj[b];
            let r2 = d.norm2();
            let r = r2.sqrt();
            let rinv = 1.0 / r;
            let rinv2 = rinv * rinv;
            let vc = ff.qq[a][b] * rinv;
            e_coul += vc;
            let mut fs = vc * rinv2;
            if a == 0 && b == 0 {
                let rinv6 = rinv2 * rinv2 * rinv2;
                let v6 = ff.c6 * rinv6;
                let v12 = ff.c12 * rinv6 * rinv6;
                e_lj += v12 - v6;
                fs += (12.0 * v12 - 6.0 * v6) * rinv2;
            }
            let f = d * fs;
            fi[a] += f;
            fj[b] -= f;
            virial += d.dot(f);
        }
    }
    (fi, fj, e_coul, e_lj, virial)
}

/// Evaluate all interactions in `list` for `system`.
pub fn compute_forces(system: &WaterBox, list: &NeighborList) -> ForceResult {
    let ff = ForceField::from_model(system.model());
    let pbc = system.pbc();
    let n = system.num_molecules();
    let mut forces = vec![Vec3::ZERO; n * 3];
    let mut e_coul = 0.0;
    let mut e_lj = 0.0;
    let mut virial = 0.0;
    let mut interactions = 0u64;

    for l in &list.lists {
        let shift = pbc.shift_vector(l.shift_index as usize);
        let c = l.center as usize;
        let cmol = system.molecule(c);
        // Apply the periodic shift to the central molecule once per list —
        // the "9 words of periodic boundary conditions" of the stream
        // record. Sites are placed relative to the wrapped oxygen so a
        // molecule straddling the boundary is not torn apart.
        let o = pbc.wrap(cmol[0]);
        let ci = [
            o + shift,
            o + pbc.min_image(cmol[1], cmol[0]) + shift,
            o + pbc.min_image(cmol[2], cmol[0]) + shift,
        ];
        for &jn in &l.neighbors {
            let j = jn as usize;
            let nmol = system.molecule(j);
            let oj = pbc.wrap(nmol[0]);
            let nj = [
                oj,
                oj + pbc.min_image(nmol[1], nmol[0]),
                oj + pbc.min_image(nmol[2], nmol[0]),
            ];
            let (fi, fj, ec, el, vir) = pair_interaction(&ff, &ci, &nj);
            for s in 0..3 {
                forces[c * 3 + s] += fi[s];
                forces[j * 3 + s] += fj[s];
            }
            e_coul += ec;
            e_lj += el;
            virial += vir;
            interactions += 1;
        }
    }

    ForceResult {
        forces,
        coulomb_energy: e_coul,
        lj_energy: e_lj,
        virial,
        interactions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::NeighborListParams;

    fn sys(n: usize, seed: u64) -> (WaterBox, NeighborList) {
        let s = WaterBox::builder().molecules(n).seed(seed).build();
        let nl = NeighborList::build(
            &s,
            NeighborListParams {
                cutoff: 0.45 * s.pbc().side().min(2.2),
                skin: 0.0,
                rebuild_interval: 1,
            },
        );
        (s, nl)
    }

    #[test]
    fn newtons_third_law_zero_net_force() {
        let (s, nl) = sys(64, 21);
        let r = compute_forces(&s, &nl);
        let net: Vec3 = r.forces.iter().copied().sum();
        // Forces are large (1e3-1e5); net must cancel to rounding.
        assert!(net.max_abs() < 1e-6, "net force {net:?}");
    }

    #[test]
    fn energies_are_finite_and_signed_sensibly() {
        let (s, nl) = sys(125, 22);
        let r = compute_forces(&s, &nl);
        assert!(r.coulomb_energy.is_finite());
        assert!(r.lj_energy.is_finite());
        // A jittered lattice is not an equilibrated liquid, so only the
        // magnitude is meaningful here (sign checks live in the MD tests).
        assert!(
            r.coulomb_energy.abs() > 1.0,
            "coulomb energy {}",
            r.coulomb_energy
        );
        assert_eq!(r.interactions as usize, nl.num_pairs());
    }

    #[test]
    fn two_molecule_analytic_check() {
        // Two molecules far apart along x, aligned identically: the leading
        // force is dipole-dipole; just verify symmetry and attraction of
        // opposite charges dominating at contact distance of like dipoles.
        use crate::pbc::Pbc;
        use crate::water::WaterModel;
        let model = WaterModel::spc();
        let pbc = Pbc::cubic(10.0);
        let mut pos = Vec::new();
        for site in &model.sites {
            pos.push(Vec3::new(2.0, 2.0, 2.0) + site.offset);
        }
        for site in &model.sites {
            pos.push(Vec3::new(2.8, 2.0, 2.0) + site.offset);
        }
        let vel = vec![Vec3::ZERO; 6];
        let s = WaterBox::from_parts(model, pbc, pos, vel);
        let nl = NeighborList::build(
            &s,
            NeighborListParams {
                cutoff: 2.0,
                skin: 0.0,
                rebuild_interval: 1,
            },
        );
        assert_eq!(nl.num_pairs(), 1);
        let r = compute_forces(&s, &nl);
        // Equal and opposite total molecular forces.
        let f0: Vec3 = r.forces[0..3].iter().copied().sum();
        let f1: Vec3 = r.forces[3..6].iter().copied().sum();
        assert!((f0 + f1).max_abs() < 1e-9);
        assert!(f0.norm() > 0.0);
    }

    #[test]
    fn pair_interaction_antisymmetric() {
        let ff = ForceField::from_model(&crate::water::WaterModel::spc());
        let ci = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.1, 0.0, 0.02),
            Vec3::new(-0.08, 0.05, 0.0),
        ];
        let nj = [
            Vec3::new(0.4, 0.1, 0.0),
            Vec3::new(0.5, 0.1, 0.05),
            Vec3::new(0.35, 0.18, 0.0),
        ];
        let (fi, fj, _, _, _) = pair_interaction(&ff, &ci, &nj);
        let sum: Vec3 = fi.iter().copied().sum::<Vec3>() + fj.iter().copied().sum::<Vec3>();
        assert!(sum.max_abs() < 1e-9);
    }

    #[test]
    fn virial_positive_for_pure_repulsion() {
        // Two oxygens closer than the LJ minimum repel; with charges the
        // sign can vary, so test the LJ-dominated regime at 0.25 nm.
        let ff = ForceField::from_model(&crate::water::WaterModel::spc());
        let ci = [
            Vec3::ZERO,
            Vec3::new(0.1, 0.0, 0.0),
            Vec3::new(0.0, 0.1, 0.0),
        ];
        let nj = [
            Vec3::new(0.25, 0.0, 0.0),
            Vec3::new(0.35, 0.0, 0.0),
            Vec3::new(0.25, 0.1, 0.0),
        ];
        let (_, _, _, e_lj, _) = pair_interaction(&ff, &ci, &nj);
        assert!(e_lj > 0.0, "LJ at 0.25 nm should be repulsive, got {e_lj}");
    }

    #[test]
    fn flop_accounting_constants() {
        assert_eq!(FLOPS_PER_INTERACTION, 234);
        assert_eq!(DIVS_PER_INTERACTION, 9);
        assert_eq!(SQRTS_PER_INTERACTION, 9);
        let (s, nl) = sys(27, 23);
        let r = compute_forces(&s, &nl);
        assert_eq!(r.solution_flops(), r.interactions * 234);
    }

    #[test]
    fn translation_invariance() {
        let (s, nl) = sys(27, 24);
        let r1 = compute_forces(&s, &nl);
        // Translate everything by a constant and rewrap: forces unchanged.
        let pbc = s.pbc();
        let shift = Vec3::new(0.37, -0.21, 0.11);
        let pos2: Vec<Vec3> = s.positions().iter().map(|&p| pbc.wrap(p + shift)).collect();
        let s2 = WaterBox::from_parts(s.model().clone(), pbc, pos2, s.velocities().to_vec());
        let nl2 = NeighborList::build(&s2, nl.params);
        let r2 = compute_forces(&s2, &nl2);
        assert_eq!(r1.interactions, r2.interactions);
        assert!((r1.potential() - r2.potential()).abs() < 1e-6 * r1.potential().abs());
        for (a, b) in r1.forces.iter().zip(&r2.forces) {
            assert!(
                (*a - *b).max_abs() < 1e-5,
                "forces differ after translation"
            );
        }
    }
}

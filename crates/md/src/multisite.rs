//! Generalized non-bonded forces for N-site rigid water models.
//!
//! The paper's Section 5.4 argues that more accurate water models (TIP5P
//! with five fixed charges, polarizable models) raise arithmetic
//! intensity and therefore suit Merrimac even better. This module is the
//! reference engine for that extension experiment: the same Coulomb +
//! Lennard-Jones physics as [`crate::force`], but over any fixed-charge
//! site count. Site 0 is the oxygen and carries the only Lennard-Jones
//! interaction; every charged site pair contributes Coulomb.

use crate::neighbor::NeighborList;
use crate::system::WaterBox;
use crate::units::COULOMB;
use crate::vec3::Vec3;

/// Generalized force-field tables for an N-site model.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSiteField {
    /// Sites per molecule.
    pub sites: usize,
    /// Scaled charge products, `sites × sites`, row-major.
    pub qq: Vec<f64>,
    pub c6: f64,
    pub c12: f64,
}

impl MultiSiteField {
    pub fn from_model(model: &crate::water::WaterModel) -> Self {
        let n = model.num_sites();
        let mut qq = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                qq[a * n + b] = COULOMB * model.sites[a].charge * model.sites[b].charge;
            }
        }
        Self {
            sites: n,
            qq,
            c6: model.c6,
            c12: model.c12,
        }
    }

    /// Site pairs with a non-zero interaction (charged-charged plus the
    /// oxygen LJ pair). TIP5P's neutral oxygen only appears via LJ.
    pub fn active_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for a in 0..self.sites {
            for b in 0..self.sites {
                if self.qq[a * self.sites + b] != 0.0 || (a == 0 && b == 0) {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Programmer-visible flops per molecule-pair interaction under the
    /// paper's accounting convention, generalized from the 3-site 234:
    /// 22 flops per active Coulomb pair + 1 energy accumulation, 12 for
    /// the LJ terms, 3 per site for the shift, 6 for the virial.
    pub fn flops_per_interaction(&self) -> u64 {
        let pairs = self.active_pairs();
        let coulomb_pairs = pairs
            .iter()
            .filter(|(a, b)| self.qq[a * self.sites + b] != 0.0)
            .count() as u64;
        let lj_only = pairs.len() as u64 - coulomb_pairs;
        // 23 per Coulomb pair; a Lennard-Jones-only pair costs 31
        // (distance 10 + LJ terms 10 + force/accumulation 10 + energy 1);
        // LJ riding on a charged O-O pair adds 12 as in the 3-site budget.
        let oo_charged = self.qq[0] != 0.0;
        23 * coulomb_pairs
            + 31 * lj_only
            + if oo_charged { 12 } else { 0 }
            + 3 * self.sites as u64
            + 6
    }
}

/// Result of a multi-site force evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiForceResult {
    pub forces: Vec<Vec3>,
    pub coulomb_energy: f64,
    pub lj_energy: f64,
    pub interactions: u64,
}

/// Evaluate all listed interactions with the generalized engine.
pub fn compute_forces_multisite(system: &WaterBox, list: &NeighborList) -> MultiForceResult {
    let ff = MultiSiteField::from_model(system.model());
    let ns = ff.sites;
    let pbc = system.pbc();
    let n = system.num_molecules();
    let mut forces = vec![Vec3::ZERO; n * ns];
    let mut e_coul = 0.0;
    let mut e_lj = 0.0;
    let mut interactions = 0u64;

    // Canonical (wrapped, rigid) site positions.
    let canon: Vec<Vec3> = (0..n)
        .flat_map(|m| {
            let mol = system.molecule(m);
            let o = pbc.wrap(mol[0]);
            (0..ns)
                .map(|s| {
                    if s == 0 {
                        o
                    } else {
                        o + pbc.min_image(mol[s], mol[0])
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect();

    for l in &list.lists {
        let shift = pbc.shift_vector(l.shift_index as usize);
        let c = l.center as usize;
        for &jn in &l.neighbors {
            let j = jn as usize;
            interactions += 1;
            for a in 0..ns {
                for b in 0..ns {
                    let qq = ff.qq[a * ns + b];
                    let lj = a == 0 && b == 0;
                    if qq == 0.0 && !lj {
                        continue;
                    }
                    let d = canon[c * ns + a] + shift - canon[j * ns + b];
                    let r2 = d.norm2();
                    let rinv = 1.0 / r2.sqrt();
                    let rinv2 = rinv * rinv;
                    let mut fs = 0.0;
                    if qq != 0.0 {
                        let vc = qq * rinv;
                        e_coul += vc;
                        fs += vc * rinv2;
                    }
                    if lj {
                        let rinv6 = rinv2 * rinv2 * rinv2;
                        let v6 = ff.c6 * rinv6;
                        let v12 = ff.c12 * rinv6 * rinv6;
                        e_lj += v12 - v6;
                        fs += (12.0 * v12 - 6.0 * v6) * rinv2;
                    }
                    let f = d * fs;
                    forces[c * ns + a] += f;
                    forces[j * ns + b] -= f;
                }
            }
        }
    }
    MultiForceResult {
        forces,
        coulomb_energy: e_coul,
        lj_energy: e_lj,
        interactions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::compute_forces;
    use crate::neighbor::NeighborListParams;
    use crate::water::WaterModel;

    fn setup(model: WaterModel, n: usize) -> (WaterBox, NeighborList) {
        let s = WaterBox::builder()
            .molecules(n)
            .model(model)
            .seed(71)
            .build();
        let params = NeighborListParams {
            cutoff: (0.45 * s.pbc().side()).min(1.0),
            skin: 0.0,
            rebuild_interval: 1,
        };
        let nl = NeighborList::build(&s, params);
        (s, nl)
    }

    #[test]
    fn reduces_to_three_site_engine_for_spc() {
        let (s, nl) = setup(WaterModel::spc(), 64);
        let multi = compute_forces_multisite(&s, &nl);
        let three = compute_forces(&s, &nl);
        assert_eq!(multi.interactions, three.interactions);
        let scale = three.forces.iter().map(|f| f.norm()).fold(1.0f64, f64::max);
        for (a, b) in multi.forces.iter().zip(&three.forces) {
            assert!((*a - *b).max_abs() < 1e-9 * scale);
        }
        assert!((multi.coulomb_energy - three.coulomb_energy).abs() < 1e-6);
        assert!((multi.lj_energy - three.lj_energy).abs() < 1e-9);
    }

    #[test]
    fn tip5p_runs_and_conserves_momentum() {
        let (s, nl) = setup(WaterModel::tip5p(), 64);
        let r = compute_forces_multisite(&s, &nl);
        let net: Vec3 = r.forces.iter().copied().sum();
        assert!(net.max_abs() < 1e-6, "net {net:?}");
        assert!(r.coulomb_energy.is_finite() && r.lj_energy.is_finite());
        assert_eq!(r.forces.len(), 64 * 5);
    }

    #[test]
    fn tip5p_oxygen_takes_no_coulomb_force_from_far_pairs() {
        // TIP5P's oxygen is neutral: its force is pure LJ.
        let ff = MultiSiteField::from_model(&WaterModel::tip5p());
        assert_eq!(ff.qq[0], 0.0);
        let pairs = ff.active_pairs();
        assert!(pairs.contains(&(0, 0)), "O-O LJ pair must stay active");
        // 4 charged sites on each side -> 16 Coulomb pairs + 1 LJ pair.
        assert_eq!(pairs.len(), 17);
    }

    #[test]
    fn flop_budget_grows_with_site_count() {
        let spc = MultiSiteField::from_model(&WaterModel::spc());
        let tip5p = MultiSiteField::from_model(&WaterModel::tip5p());
        assert_eq!(spc.flops_per_interaction(), 234);
        assert!(
            tip5p.flops_per_interaction() > spc.flops_per_interaction() * 3 / 2,
            "TIP5P budget {} vs SPC {}",
            tip5p.flops_per_interaction(),
            spc.flops_per_interaction()
        );
    }
}

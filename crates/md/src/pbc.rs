//! Periodic boundary conditions for a cubic box.
//!
//! GROMACS neighbour lists are built per *(central molecule, shift)* pair:
//! all neighbours in one list share a single periodic image shift, so the
//! shift can be applied once to the central molecule instead of per pair.
//! StreamMD inherits this: the "9 words of periodic boundary conditions"
//! in the stream record are the per-atom replication of that one shift
//! vector. [`Pbc::shift_index`]/[`Pbc::shift_vector`] reproduce the
//! GROMACS shift-vector enumeration for the 27 nearest images.

use serde::{Deserialize, Serialize};

use crate::vec3::Vec3;

/// A cubic periodic box of side `l` (nm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pbc {
    l: f64,
}

impl Pbc {
    /// Create a box of side `l` (must be positive and finite).
    pub fn cubic(l: f64) -> Self {
        assert!(
            l.is_finite() && l > 0.0,
            "box side must be positive, got {l}"
        );
        Self { l }
    }

    /// Box side in nm.
    #[inline]
    pub fn side(&self) -> f64 {
        self.l
    }

    /// Box volume in nm³.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.l * self.l * self.l
    }

    /// Wrap a position into the primary cell `[0, l)³`.
    #[inline]
    pub fn wrap(&self, p: Vec3) -> Vec3 {
        Vec3::new(self.wrap1(p.x), self.wrap1(p.y), self.wrap1(p.z))
    }

    #[inline]
    fn wrap1(&self, x: f64) -> f64 {
        let w = x - self.l * (x / self.l).floor();
        // floor() can leave w == l for x just below a multiple of l.
        if w >= self.l {
            w - self.l
        } else {
            w
        }
    }

    /// Minimum-image displacement `a - b`: the shortest vector from `b` to
    /// `a` over all periodic images. Each component lies in `[-l/2, l/2]`.
    #[inline]
    pub fn min_image(&self, a: Vec3, b: Vec3) -> Vec3 {
        let d = a - b;
        Vec3::new(self.min1(d.x), self.min1(d.y), self.min1(d.z))
    }

    #[inline]
    fn min1(&self, d: f64) -> f64 {
        d - self.l * (d / self.l).round()
    }

    /// Integer image shift `(sx, sy, sz) ∈ {-1, 0, 1}³` such that
    /// `a + shift*l - b` is the minimum image displacement, assuming both
    /// points are wrapped into the primary cell (so one lattice step
    /// suffices).
    #[inline]
    pub fn image_shift(&self, a: Vec3, b: Vec3) -> [i32; 3] {
        let d = a - b;
        [
            -(d.x / self.l).round() as i32,
            -(d.y / self.l).round() as i32,
            -(d.z / self.l).round() as i32,
        ]
    }

    /// GROMACS-style shift index for a `{-1,0,1}³` image shift: a number
    /// in `0..27` with 13 meaning "no shift".
    #[inline]
    pub fn shift_index(shift: [i32; 3]) -> usize {
        debug_assert!(shift.iter().all(|s| (-1..=1).contains(s)));
        ((shift[2] + 1) * 9 + (shift[1] + 1) * 3 + (shift[0] + 1)) as usize
    }

    /// Shift vector (in nm) for a shift index produced by
    /// [`Pbc::shift_index`].
    #[inline]
    pub fn shift_vector(&self, index: usize) -> Vec3 {
        debug_assert!(index < 27);
        let x = (index % 3) as i32 - 1;
        let y = ((index / 3) % 3) as i32 - 1;
        let z = (index / 9) as i32 - 1;
        Vec3::new(x as f64, y as f64, z as f64) * self.l
    }

    /// Number of distinct shift indices.
    pub const NUM_SHIFTS: usize = 27;

    /// The index of the zero shift.
    pub const CENTRAL_SHIFT: usize = 13;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wrap_into_primary_cell() {
        let pbc = Pbc::cubic(3.0);
        let p = pbc.wrap(Vec3::new(-0.1, 3.1, 7.5));
        assert!((p.x - 2.9).abs() < 1e-12);
        assert!((p.y - 0.1).abs() < 1e-12);
        assert!((p.z - 1.5).abs() < 1e-12);
    }

    #[test]
    fn min_image_is_short() {
        let pbc = Pbc::cubic(3.0);
        let a = Vec3::new(0.1, 0.1, 0.1);
        let b = Vec3::new(2.9, 2.9, 2.9);
        let d = pbc.min_image(a, b);
        assert!((d.x - 0.2).abs() < 1e-12);
        assert!((d.norm() - 0.2 * 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn shift_index_round_trip() {
        let pbc = Pbc::cubic(2.0);
        for sz in -1..=1 {
            for sy in -1..=1 {
                for sx in -1..=1 {
                    let idx = Pbc::shift_index([sx, sy, sz]);
                    assert!(idx < Pbc::NUM_SHIFTS);
                    let v = pbc.shift_vector(idx);
                    assert_eq!(v, Vec3::new(sx as f64, sy as f64, sz as f64) * 2.0);
                }
            }
        }
        assert_eq!(Pbc::shift_index([0, 0, 0]), Pbc::CENTRAL_SHIFT);
    }

    #[test]
    fn image_shift_recovers_min_image() {
        let pbc = Pbc::cubic(3.0);
        let a = pbc.wrap(Vec3::new(0.1, 1.5, 2.9));
        let b = pbc.wrap(Vec3::new(2.9, 1.4, 0.1));
        let s = pbc.image_shift(a, b);
        let shifted = a + pbc.shift_vector(Pbc::shift_index(s));
        let direct = shifted - b;
        let mi = pbc.min_image(a, b);
        assert!((direct - mi).max_abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_box_rejected() {
        Pbc::cubic(0.0);
    }

    fn arb_point(l: f64) -> impl Strategy<Value = Vec3> {
        (-3.0 * l..3.0 * l, -3.0 * l..3.0 * l, -3.0 * l..3.0 * l)
            .prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        #[test]
        fn prop_wrap_is_idempotent(p in arb_point(3.0)) {
            let pbc = Pbc::cubic(3.0);
            let w = pbc.wrap(p);
            prop_assert!((pbc.wrap(w) - w).max_abs() < 1e-12);
            prop_assert!(w.x >= 0.0 && w.x < 3.0);
            prop_assert!(w.y >= 0.0 && w.y < 3.0);
            prop_assert!(w.z >= 0.0 && w.z < 3.0);
        }

        #[test]
        fn prop_min_image_within_half_box(a in arb_point(3.0), b in arb_point(3.0)) {
            let pbc = Pbc::cubic(3.0);
            let d = pbc.min_image(a, b);
            prop_assert!(d.x.abs() <= 1.5 + 1e-12);
            prop_assert!(d.y.abs() <= 1.5 + 1e-12);
            prop_assert!(d.z.abs() <= 1.5 + 1e-12);
        }

        #[test]
        fn prop_min_image_antisymmetric(a in arb_point(3.0), b in arb_point(3.0)) {
            let pbc = Pbc::cubic(3.0);
            let dab = pbc.min_image(a, b);
            let dba = pbc.min_image(b, a);
            prop_assert!((dab + dba).max_abs() < 1e-9);
        }

        #[test]
        fn prop_wrap_preserves_min_image(a in arb_point(3.0), b in arb_point(3.0)) {
            let pbc = Pbc::cubic(3.0);
            let d1 = pbc.min_image(a, b);
            let d2 = pbc.min_image(pbc.wrap(a), pbc.wrap(b));
            // Displacements can differ by a lattice vector only when the
            // pair is exactly at half-box distance; compare norms instead.
            prop_assert!((d1.norm() - d2.norm()).abs() < 1e-9);
        }

        #[test]
        fn prop_image_shift_components_small(a in arb_point(3.0), b in arb_point(3.0)) {
            let pbc = Pbc::cubic(3.0);
            let (a, b) = (pbc.wrap(a), pbc.wrap(b));
            let s = pbc.image_shift(a, b);
            prop_assert!(s.iter().all(|c| (-1..=1).contains(c)));
        }
    }
}

//! Velocity-Verlet integration of rigid 3-site water with SHAKE/RATTLE
//! constraints.
//!
//! The paper's experiment is a single force step, but several of our
//! harnesses need trajectories: the energy-drift integration test, and the
//! self-diffusion measurement behind the Table 5 harness. The integrator
//! follows GROMACS practice: constraint dynamics for the rigid water
//! geometry, neighbour lists rebuilt every `rebuild_interval` steps with a
//! skin, and forces evaluated over all listed pairs.

use crate::force::{compute_forces, ForceResult};
use crate::neighbor::{NeighborList, NeighborListParams};
use crate::system::WaterBox;
use crate::units::KB;
use crate::vec3::Vec3;

/// A distance constraint between two sites of the same molecule.
#[derive(Debug, Clone, Copy)]
struct Constraint {
    a: usize,
    b: usize,
    /// Target squared distance.
    d2: f64,
}

/// Per-step observables.
#[derive(Debug, Clone, Copy)]
pub struct StepReport {
    /// Potential energy (kJ/mol).
    pub potential: f64,
    /// Kinetic energy (kJ/mol).
    pub kinetic: f64,
    /// Instantaneous temperature (K).
    pub temperature: f64,
    /// Largest single-site displacement this step (nm).
    pub max_displacement: f64,
}

impl StepReport {
    pub fn total_energy(&self) -> f64 {
        self.potential + self.kinetic
    }
}

/// Velocity-Verlet integrator with SHAKE position constraints and RATTLE
/// velocity constraints.
#[derive(Debug, Clone)]
pub struct Integrator {
    /// Time step in ps (GROMACS default for rigid water: 0.002).
    pub dt: f64,
    /// Neighbour-list policy.
    pub neighbor: NeighborListParams,
    /// SHAKE convergence tolerance on relative squared-distance error.
    pub shake_tol: f64,
    /// Maximum SHAKE/RATTLE sweeps.
    pub max_iter: usize,
}

impl Default for Integrator {
    fn default() -> Self {
        Self {
            dt: 0.002,
            neighbor: NeighborListParams::default(),
            shake_tol: 1e-10,
            max_iter: 100,
        }
    }
}

impl Integrator {
    fn constraints(system: &WaterBox) -> Vec<Constraint> {
        let model = system.model();
        assert_eq!(
            model.num_sites(),
            3,
            "integrator supports 3-site rigid water"
        );
        let d01 = (model.sites[1].offset - model.sites[0].offset).norm2();
        let d02 = (model.sites[2].offset - model.sites[0].offset).norm2();
        let d12 = (model.sites[2].offset - model.sites[1].offset).norm2();
        vec![
            Constraint {
                a: 0,
                b: 1,
                d2: d01,
            },
            Constraint {
                a: 0,
                b: 2,
                d2: d02,
            },
            Constraint {
                a: 1,
                b: 2,
                d2: d12,
            },
        ]
    }

    /// SHAKE: move `new_pos` so every constraint is satisfied, using the
    /// pre-step geometry `old_pos` for the constraint gradients.
    fn shake(
        &self,
        constraints: &[Constraint],
        masses: &[f64; 3],
        old_pos: &mut [Vec3],
        new_pos: &mut [Vec3],
    ) -> usize {
        let n_mol = new_pos.len() / 3;
        let mut worst_iters = 0;
        for m in 0..n_mol {
            let base = m * 3;
            for it in 0..self.max_iter {
                let mut converged = true;
                for c in constraints {
                    let (ia, ib) = (base + c.a, base + c.b);
                    let d = new_pos[ia] - new_pos[ib];
                    let diff = d.norm2() - c.d2;
                    if diff.abs() > self.shake_tol * c.d2 {
                        converged = false;
                        let ref_d = old_pos[ia] - old_pos[ib];
                        let (ma, mb) = (masses[c.a], masses[c.b]);
                        let g = diff / (2.0 * ref_d.dot(d) * (1.0 / ma + 1.0 / mb));
                        new_pos[ia] -= ref_d * (g / ma);
                        new_pos[ib] += ref_d * (g / mb);
                    }
                }
                if converged {
                    worst_iters = worst_iters.max(it);
                    break;
                }
                if it + 1 == self.max_iter {
                    worst_iters = self.max_iter;
                }
            }
        }
        worst_iters
    }

    /// RATTLE: remove velocity components along constrained bonds.
    fn rattle(
        &self,
        constraints: &[Constraint],
        masses: &[f64; 3],
        pos: &[Vec3],
        vel: &mut [Vec3],
    ) {
        let n_mol = vel.len() / 3;
        for m in 0..n_mol {
            let base = m * 3;
            for _ in 0..self.max_iter {
                let mut converged = true;
                for c in constraints {
                    let (ia, ib) = (base + c.a, base + c.b);
                    let d = pos[ia] - pos[ib];
                    let vrel = vel[ia] - vel[ib];
                    let dv = d.dot(vrel);
                    if dv.abs() > self.shake_tol * c.d2 / self.dt {
                        converged = false;
                        let (ma, mb) = (masses[c.a], masses[c.b]);
                        let k = dv / (d.norm2() * (1.0 / ma + 1.0 / mb));
                        vel[ia] -= d * (k / ma);
                        vel[ib] += d * (k / mb);
                    }
                }
                if converged {
                    break;
                }
            }
        }
    }

    fn kinetic(system: &WaterBox) -> f64 {
        let masses: Vec<f64> = system.model().sites.iter().map(|s| s.mass).collect();
        system
            .velocities()
            .iter()
            .enumerate()
            .map(|(i, v)| 0.5 * masses[i % 3] * v.norm2())
            .sum()
    }

    /// Degrees of freedom after constraints and COM removal.
    fn dof(system: &WaterBox) -> f64 {
        (6 * system.num_molecules()) as f64 - 3.0
    }

    /// Run `steps` steps, returning per-step observables. The system is
    /// modified in place; positions are left unwrapped so mean-square
    /// displacements can be computed by the analysis module.
    pub fn run(&self, system: &mut WaterBox, steps: usize) -> Vec<StepReport> {
        let constraints = Self::constraints(system);
        let site_masses: [f64; 3] = [
            system.model().sites[0].mass,
            system.model().sites[1].mass,
            system.model().sites[2].mass,
        ];
        let inv_m: Vec<f64> = site_masses.iter().map(|m| 1.0 / m).collect();
        let dof = Self::dof(system);

        let mut list = NeighborList::build(system, self.neighbor);
        let mut result = compute_forces(system, &list);
        let mut drift_since_rebuild = 0.0f64;
        let mut reports = Vec::with_capacity(steps);

        for step in 0..steps {
            let dt = self.dt;
            // Half kick.
            for (i, v) in system.velocities_mut().iter_mut().enumerate() {
                *v += result.forces[i] * (inv_m[i % 3] * dt * 0.5);
            }
            // Drift + SHAKE.
            let mut old_pos = system.positions().to_vec();
            let mut new_pos = old_pos.clone();
            let n_sites = new_pos.len();
            for i in 0..n_sites {
                new_pos[i] = old_pos[i] + system.velocities()[i] * dt;
            }
            self.shake(&constraints, &site_masses, &mut old_pos, &mut new_pos);
            // Constraint force correction folded into velocities.
            let mut max_disp = 0.0f64;
            {
                let vel = system.velocities_mut();
                for i in 0..n_sites {
                    vel[i] = (new_pos[i] - old_pos[i]) / dt;
                }
            }
            for i in 0..n_sites {
                max_disp = max_disp.max((new_pos[i] - old_pos[i]).norm());
            }
            system.positions_mut().copy_from_slice(&new_pos);
            drift_since_rebuild += max_disp;

            // Rebuild the list on schedule or when the skin is exhausted.
            let scheduled = (step + 1) % self.neighbor.rebuild_interval == 0;
            if scheduled || drift_since_rebuild * 2.0 > self.neighbor.skin {
                list = NeighborList::build(system, self.neighbor);
                drift_since_rebuild = 0.0;
            }
            result = compute_forces(system, &list);

            // Second half kick + RATTLE.
            for (i, v) in system.velocities_mut().iter_mut().enumerate() {
                *v += result.forces[i] * (inv_m[i % 3] * dt * 0.5);
            }
            let pos_snapshot = system.positions().to_vec();
            self.rattle(
                &constraints,
                &site_masses,
                &pos_snapshot,
                system.velocities_mut(),
            );

            let ke = Self::kinetic(system);
            reports.push(StepReport {
                potential: result.potential(),
                kinetic: ke,
                temperature: 2.0 * ke / (dof * KB),
                max_displacement: max_disp,
            });
        }
        reports
    }

    /// Rescale velocities to the target temperature (crude Berendsen-style
    /// equilibration aid; measurement runs should follow in plain NVE).
    pub fn rescale_temperature(&self, system: &mut WaterBox, target_k: f64) {
        let ke = Self::kinetic(system);
        let dof = Self::dof(system);
        let t = 2.0 * ke / (dof * KB);
        if t <= 0.0 {
            return;
        }
        let f = (target_k / t).sqrt();
        for v in system.velocities_mut() {
            *v = *v * f;
        }
    }

    /// One-off force evaluation with a fresh list (convenience for tests).
    pub fn single_point(&self, system: &WaterBox) -> ForceResult {
        let list = NeighborList::build(system, self.neighbor);
        compute_forces(system, &list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WaterBox {
        WaterBox::builder()
            .molecules(64)
            .temperature(300.0)
            .seed(31)
            .build()
    }

    #[test]
    fn constraints_preserved_over_steps() {
        let mut s = small();
        let integ = Integrator {
            neighbor: NeighborListParams {
                cutoff: 0.45,
                skin: 0.1,
                rebuild_interval: 5,
            },
            ..Default::default()
        };
        integ.run(&mut s, 20);
        let model = s.model().clone();
        let d01 = (model.sites[1].offset - model.sites[0].offset).norm();
        for m in 0..s.num_molecules() {
            let mol = s.molecule(m);
            let b = (mol[1] - mol[0]).norm();
            assert!((b - d01).abs() < 1e-6, "bond length drifted to {b}");
        }
    }

    #[test]
    fn energy_is_roughly_conserved() {
        let mut s = small();
        let integ = Integrator {
            dt: 0.001,
            neighbor: NeighborListParams {
                cutoff: 0.45,
                skin: 0.12,
                rebuild_interval: 3,
            },
            ..Default::default()
        };
        let reports = integ.run(&mut s, 100);
        let e0 = reports[2].total_energy();
        let e1 = reports.last().unwrap().total_energy();
        // Truncated (unshifted) cut-off forces make perfect conservation
        // impossible; demand drift below 2% of the kinetic scale.
        let scale = reports[2].kinetic.abs().max(1.0);
        assert!(
            (e1 - e0).abs() < 0.05 * scale,
            "energy drift {} vs scale {scale}",
            e1 - e0
        );
    }

    #[test]
    fn temperature_stays_physical() {
        let mut s = small();
        let integ = Integrator {
            dt: 0.001,
            neighbor: NeighborListParams {
                cutoff: 0.45,
                skin: 0.12,
                rebuild_interval: 3,
            },
            ..Default::default()
        };
        let reports = integ.run(&mut s, 50);
        for r in &reports {
            assert!(
                r.temperature > 10.0 && r.temperature < 2000.0,
                "T = {}",
                r.temperature
            );
        }
    }

    #[test]
    fn single_point_matches_compute_forces() {
        let s = small();
        let integ = Integrator {
            neighbor: NeighborListParams {
                cutoff: 0.45,
                skin: 0.0,
                rebuild_interval: 1,
            },
            ..Default::default()
        };
        let a = integ.single_point(&s);
        let list = NeighborList::build(&s, integ.neighbor);
        let b = compute_forces(&s, &list);
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.potential(), b.potential());
    }

    #[test]
    fn rescale_hits_target_temperature() {
        let mut s = small();
        let integ = Integrator::default();
        integ.rescale_temperature(&mut s, 150.0);
        let ke = Integrator::kinetic(&s);
        let t = 2.0 * ke / (Integrator::dof(&s) * KB);
        assert!((t - 150.0).abs() < 1.0, "T = {t}");
    }

    #[test]
    fn reports_have_expected_length() {
        let mut s = small();
        let integ = Integrator {
            neighbor: NeighborListParams {
                cutoff: 0.45,
                skin: 0.1,
                rebuild_interval: 5,
            },
            ..Default::default()
        };
        assert_eq!(integ.run(&mut s, 7).len(), 7);
    }
}

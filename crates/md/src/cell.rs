//! Cell (link-cell) spatial decomposition for O(n) neighbour searching.
//!
//! GROMACS builds its neighbour lists with a grid search; we do the same.
//! The box is divided into at least `cutoff`-sized cells; candidate pairs
//! are drawn only from the 27-cell neighbourhood.

use crate::pbc::Pbc;
use crate::vec3::Vec3;

/// A cell grid over a cubic periodic box.
#[derive(Debug, Clone)]
pub struct CellGrid {
    pbc: Pbc,
    /// Cells per axis.
    n: usize,
    /// Cell side length.
    cell_side: f64,
    /// Molecule indices per cell, CSR-style.
    cell_start: Vec<usize>,
    entries: Vec<usize>,
}

impl CellGrid {
    /// Bin `points` (one representative point per molecule, assumed
    /// wrapped) into cells no smaller than `min_cell`.
    pub fn build(pbc: Pbc, points: &[Vec3], min_cell: f64) -> Self {
        assert!(min_cell > 0.0);
        let n = ((pbc.side() / min_cell).floor() as usize).max(1);
        let cell_side = pbc.side() / n as f64;
        let num_cells = n * n * n;

        // Counting sort into CSR layout.
        let mut counts = vec![0usize; num_cells + 1];
        let cell_of = |p: Vec3| -> usize {
            let wrapped = pbc.wrap(p);
            let cx = ((wrapped.x / cell_side) as usize).min(n - 1);
            let cy = ((wrapped.y / cell_side) as usize).min(n - 1);
            let cz = ((wrapped.z / cell_side) as usize).min(n - 1);
            (cz * n + cy) * n + cx
        };
        for &p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 0..num_cells {
            counts[i + 1] += counts[i];
        }
        let mut entries = vec![0usize; points.len()];
        let mut cursor = counts.clone();
        for (i, &p) in points.iter().enumerate() {
            let c = cell_of(p);
            entries[cursor[c]] = i;
            cursor[c] += 1;
        }
        Self {
            pbc,
            n,
            cell_side,
            cell_start: counts,
            entries,
        }
    }

    /// Cells per axis.
    pub fn cells_per_axis(&self) -> usize {
        self.n
    }

    /// Side length of one cell.
    pub fn cell_side(&self) -> f64 {
        self.cell_side
    }

    /// Molecule indices in cell `(cx, cy, cz)`.
    pub fn cell(&self, cx: usize, cy: usize, cz: usize) -> &[usize] {
        let c = (cz * self.n + cy) * self.n + cx;
        &self.entries[self.cell_start[c]..self.cell_start[c + 1]]
    }

    /// Visit every molecule index in the 27-cell neighbourhood of the cell
    /// containing `p` (including its own cell). Cells repeat when the grid
    /// has fewer than 3 cells per axis; duplicates are suppressed.
    pub fn for_neighbourhood(&self, p: Vec3, mut f: impl FnMut(usize)) {
        let wrapped = self.pbc.wrap(p);
        let cx = ((wrapped.x / self.cell_side) as usize).min(self.n - 1) as isize;
        let cy = ((wrapped.y / self.cell_side) as usize).min(self.n - 1) as isize;
        let cz = ((wrapped.z / self.cell_side) as usize).min(self.n - 1) as isize;
        let n = self.n as isize;
        let wrap = |c: isize| -> usize { (((c % n) + n) % n) as usize };
        let mut visited: Vec<(usize, usize, usize)> = Vec::with_capacity(27);
        for dz in -1..=1 {
            for dy in -1..=1 {
                for dx in -1..=1 {
                    let c = (wrap(cx + dx), wrap(cy + dy), wrap(cz + dz));
                    if visited.contains(&c) {
                        continue;
                    }
                    visited.push(c);
                    for &m in self.cell(c.0, c.1, c.2) {
                        f(m);
                    }
                }
            }
        }
    }

    /// Total entries binned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_points_binned_once() {
        let pbc = Pbc::cubic(3.0);
        let pts: Vec<Vec3> = (0..50)
            .map(|i| Vec3::new(i as f64 * 0.059, i as f64 * 0.113, i as f64 * 0.211))
            .map(|p| pbc.wrap(p))
            .collect();
        let grid = CellGrid::build(pbc, &pts, 1.0);
        assert_eq!(grid.len(), 50);
        let mut total = 0;
        for cz in 0..grid.cells_per_axis() {
            for cy in 0..grid.cells_per_axis() {
                for cx in 0..grid.cells_per_axis() {
                    total += grid.cell(cx, cy, cz).len();
                }
            }
        }
        assert_eq!(total, 50);
    }

    #[test]
    fn neighbourhood_covers_cutoff() {
        // Every point within `min_cell` of p must be visited.
        let pbc = Pbc::cubic(3.0);
        let pts: Vec<Vec3> = (0..200)
            .map(|i| {
                pbc.wrap(Vec3::new(
                    (i * 7 % 97) as f64 * 0.031,
                    (i * 13 % 89) as f64 * 0.034,
                    (i * 29 % 83) as f64 * 0.036,
                ))
            })
            .collect();
        let cutoff = 0.9;
        let grid = CellGrid::build(pbc, &pts, cutoff);
        for (i, &p) in pts.iter().enumerate() {
            let mut visited = vec![false; pts.len()];
            grid.for_neighbourhood(p, |m| visited[m] = true);
            for (j, &q) in pts.iter().enumerate() {
                if pbc.min_image(p, q).norm() <= cutoff {
                    assert!(visited[j], "point {j} within cutoff of {i} but not visited");
                }
            }
        }
    }

    #[test]
    fn tiny_box_single_cell() {
        let pbc = Pbc::cubic(1.0);
        let pts = vec![Vec3::new(0.1, 0.1, 0.1), Vec3::new(0.9, 0.9, 0.9)];
        let grid = CellGrid::build(pbc, &pts, 2.0);
        assert_eq!(grid.cells_per_axis(), 1);
        let mut seen = 0;
        grid.for_neighbourhood(pts[0], |_| seen += 1);
        assert_eq!(seen, 2, "single-cell grid must not duplicate entries");
    }

    #[test]
    fn two_cells_per_axis_no_duplicates() {
        let pbc = Pbc::cubic(2.0);
        let pts: Vec<Vec3> = (0..20)
            .map(|i| pbc.wrap(Vec3::splat(i as f64 * 0.1)))
            .collect();
        let grid = CellGrid::build(pbc, &pts, 1.0);
        assert_eq!(grid.cells_per_axis(), 2);
        let mut count = vec![0usize; pts.len()];
        grid.for_neighbourhood(pts[0], |m| count[m] += 1);
        assert!(count.iter().all(|&c| c <= 1), "duplicate visits: {count:?}");
    }

    proptest! {
        #[test]
        fn prop_neighbourhood_completeness(seed in 0u64..500) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let pbc = Pbc::cubic(2.5);
            let pts: Vec<Vec3> = (0..40)
                .map(|_| Vec3::new(rng.gen::<f64>() * 2.5, rng.gen::<f64>() * 2.5, rng.gen::<f64>() * 2.5))
                .collect();
            let cutoff = 0.8;
            let grid = CellGrid::build(pbc, &pts, cutoff);
            for &p in pts.iter() {
                let mut visited = vec![false; pts.len()];
                grid.for_neighbourhood(p, |m| visited[m] = true);
                for (j, &q) in pts.iter().enumerate() {
                    if pbc.min_image(p, q).norm() <= cutoff {
                        prop_assert!(visited[j]);
                    }
                }
            }
        }
    }
}

//! Shared helpers for the table/figure regeneration harnesses.
//!
//! Every `cargo bench --bench <table|fig>` target prints the rows/series
//! the corresponding paper artifact reports; this library centralizes
//! dataset construction and variant execution so harnesses stay small
//! and consistent.

use md_sim::neighbor::{NeighborList, NeighborListParams};
use md_sim::system::WaterBox;
use merrimac_arch::MachineConfig;
use merrimac_sim::machine::SimError;
use streammd::{StepOutcome, StreamMdApp, Variant};

pub mod report;
pub use report::{PerfReport, VariantRecord};

/// Default seed for the paper dataset across harnesses (deterministic
/// output).
pub const SEED: u64 = 42;

/// The Table 2 neighbour-list policy.
pub fn paper_params() -> NeighborListParams {
    NeighborListParams {
        cutoff: 1.0,
        skin: 0.0,
        rebuild_interval: 10,
    }
}

/// The paper's 900-molecule dataset plus its neighbour list.
pub fn paper_system() -> (WaterBox, NeighborList) {
    let system = WaterBox::paper_dataset(SEED);
    let list = NeighborList::build(&system, paper_params());
    (system, list)
}

/// A smaller dataset for fast sanity harnesses.
pub fn small_system(molecules: usize) -> (WaterBox, NeighborList) {
    let system = WaterBox::builder().molecules(molecules).seed(SEED).build();
    let params = NeighborListParams {
        cutoff: (0.45 * system.pbc().side()).min(1.0),
        skin: 0.0,
        rebuild_interval: 10,
    };
    let list = NeighborList::build(&system, params);
    (system, list)
}

/// A variant that failed to simulate, with the simulator's context.
#[derive(Debug)]
pub struct VariantError {
    pub variant: Variant,
    pub source: SimError,
}

impl std::fmt::Display for VariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "variant {} failed: {}", self.variant, self.source)
    }
}

impl std::error::Error for VariantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Run one variant on a prepared system.
pub fn run_variant(
    system: &WaterBox,
    list: &NeighborList,
    variant: Variant,
) -> Result<StepOutcome, VariantError> {
    run_variant_threads(system, list, variant, 1)
}

/// Run one variant with an explicit engine thread count.
pub fn run_variant_threads(
    system: &WaterBox,
    list: &NeighborList,
    variant: Variant,
    threads: usize,
) -> Result<StepOutcome, VariantError> {
    StreamMdApp::new(MachineConfig::default())
        .with_neighbor(list.params)
        .with_threads(threads)
        .run_step_with_list(system, list, variant)
        .map_err(|source| VariantError { variant, source })
}

/// Run all four variants. A failing variant yields its error in place
/// so one bad variant cannot abort a whole bench suite.
pub fn run_all(
    system: &WaterBox,
    list: &NeighborList,
) -> Vec<(Variant, Result<StepOutcome, VariantError>)> {
    Variant::ALL
        .iter()
        .map(|&v| (v, run_variant(system, list, v)))
        .collect()
}

/// The `run_all` results that succeeded, with failures reported to
/// stderr — the common harness pattern.
pub fn run_all_ok(system: &WaterBox, list: &NeighborList) -> Vec<(Variant, StepOutcome)> {
    run_all(system, list)
        .into_iter()
        .filter_map(|(v, r)| match r {
            Ok(out) => Some((v, out)),
            Err(e) => {
                eprintln!("skipping {v}: {e}");
                None
            }
        })
        .collect()
}

/// Render a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Print a header banner naming the paper artifact.
pub fn banner(artifact: &str, description: &str) {
    println!("================================================================");
    println!("{artifact} — {description}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_system_runs_every_variant() {
        let (system, list) = small_system(27);
        for (v, out) in run_all(&system, &list) {
            let out = out.unwrap_or_else(|e| panic!("{e}"));
            assert!(out.perf.cycles > 0, "{v} produced no cycles");
        }
    }

    #[test]
    fn paper_system_statistics() {
        let (system, list) = paper_system();
        assert_eq!(system.num_molecules(), 900);
        assert!(list.num_pairs() > 50_000);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
    }
}

//! Shared helpers for the table/figure regeneration harnesses.
//!
//! Every `cargo bench --bench <table|fig>` target prints the rows/series
//! the corresponding paper artifact reports; this library centralizes
//! dataset construction and variant execution so harnesses stay small
//! and consistent.

use md_sim::neighbor::{NeighborList, NeighborListParams};
use md_sim::system::WaterBox;
use merrimac_arch::MachineConfig;
use streammd::{StepOutcome, StreamMdApp, Variant};

/// Default seed for the paper dataset across harnesses (deterministic
/// output).
pub const SEED: u64 = 42;

/// The Table 2 neighbour-list policy.
pub fn paper_params() -> NeighborListParams {
    NeighborListParams {
        cutoff: 1.0,
        skin: 0.0,
        rebuild_interval: 10,
    }
}

/// The paper's 900-molecule dataset plus its neighbour list.
pub fn paper_system() -> (WaterBox, NeighborList) {
    let system = WaterBox::paper_dataset(SEED);
    let list = NeighborList::build(&system, paper_params());
    (system, list)
}

/// A smaller dataset for fast sanity harnesses.
pub fn small_system(molecules: usize) -> (WaterBox, NeighborList) {
    let system = WaterBox::builder().molecules(molecules).seed(SEED).build();
    let params = NeighborListParams {
        cutoff: (0.45 * system.pbc().side()).min(1.0),
        skin: 0.0,
        rebuild_interval: 10,
    };
    let list = NeighborList::build(&system, params);
    (system, list)
}

/// Run one variant on a prepared system.
pub fn run_variant(system: &WaterBox, list: &NeighborList, variant: Variant) -> StepOutcome {
    StreamMdApp::new(MachineConfig::default())
        .with_neighbor(list.params)
        .run_step_with_list(system, list, variant)
        .unwrap_or_else(|e| panic!("variant {variant} failed: {e}"))
}

/// Run all four variants.
pub fn run_all(system: &WaterBox, list: &NeighborList) -> Vec<(Variant, StepOutcome)> {
    Variant::ALL
        .iter()
        .map(|&v| (v, run_variant(system, list, v)))
        .collect()
}

/// Render a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Print a header banner naming the paper artifact.
pub fn banner(artifact: &str, description: &str) {
    println!("================================================================");
    println!("{artifact} — {description}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_system_runs_every_variant() {
        let (system, list) = small_system(27);
        for (v, out) in run_all(&system, &list) {
            assert!(out.perf.cycles > 0, "{v} produced no cycles");
        }
    }

    #[test]
    fn paper_system_statistics() {
        let (system, list) = paper_system();
        assert_eq!(system.num_molecules(), 900);
        assert!(list.num_pairs() > 50_000);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
    }
}

//! Shared helpers for the table/figure regeneration harnesses.
//!
//! Every `cargo bench --bench <table|fig>` target prints the rows/series
//! the corresponding paper artifact reports; this library centralizes
//! dataset construction and variant execution so harnesses stay small
//! and consistent.
//!
//! Variant execution goes through one entry point: describe the run
//! with a [`RunSpec`] — dataset, variant, engine threads, simulated
//! node count, kernel engine — and pass it to [`run`]. The
//! configuration is validated by `StreamMdApp::builder()`, so
//! un-runnable setups (e.g. a strip too large to double-buffer in the
//! SRF, or a node count outside the modeled network) surface as a
//! typed [`RunError`] naming the offending knob instead of wedging the
//! simulated scoreboard. `MERRIMAC_*` environment overrides are parsed
//! in exactly one place, [`RunSpec::from_env_overrides`], and malformed
//! values are a typed [`RunError::Env`] instead of a silent fallback.

use md_sim::neighbor::{NeighborList, NeighborListParams};
use md_sim::system::WaterBox;
use md_sim::water::WaterModel;
use merrimac_analysis::{Diagnostic, Severity};
use merrimac_sim::machine::SimError;
use merrimac_sim::{BatchWidth, KernelEngine};
use streammd::{StepOutcome, StreamMdApp, Variant, Workload};

pub mod json;
pub mod report;
pub mod trend;
pub use report::{CampaignRecord, LintRecord, PerfReport, VariantRecord, SCHEMA_VERSION};
pub use trend::{compare, render_table, Tolerances, TrendDiff};

/// Default seed for the paper dataset across harnesses (deterministic
/// output).
pub const SEED: u64 = 42;

/// The Table 2 neighbour-list policy.
pub fn paper_params() -> NeighborListParams {
    NeighborListParams {
        cutoff: 1.0,
        skin: 0.0,
        rebuild_interval: 10,
    }
}

/// The paper's 900-molecule dataset plus its neighbour list.
pub fn paper_system() -> (WaterBox, NeighborList) {
    let system = WaterBox::paper_dataset(SEED);
    let list = NeighborList::build(&system, paper_params());
    (system, list)
}

/// A smaller dataset for fast sanity harnesses.
pub fn small_system(molecules: usize) -> (WaterBox, NeighborList) {
    let system = WaterBox::builder().molecules(molecules).seed(SEED).build();
    let params = NeighborListParams {
        cutoff: (0.45 * system.pbc().side()).min(1.0),
        skin: 0.0,
        rebuild_interval: 10,
    };
    let list = NeighborList::build(&system, params);
    (system, list)
}

/// A single-site atomic dataset (LJ fluid or charged particles) of `n`
/// particles at liquid-argon-like number density, with the same
/// cutoff policy as [`small_system`]. The size knob sweeps 10⁴–10⁵
/// particles for scaling studies; small counts serve sanity harnesses.
pub fn atomic_system(model: WaterModel, particles: usize) -> (WaterBox, NeighborList) {
    let system = WaterBox::builder()
        .molecules(particles)
        .model(model)
        .density(21.0)
        .seed(SEED)
        .build();
    let params = NeighborListParams {
        cutoff: (0.45 * system.pbc().side()).min(1.0),
        skin: 0.0,
        rebuild_interval: 10,
    };
    let list = NeighborList::build(&system, params);
    (system, list)
}

/// A variant that failed to simulate, with the simulator's context.
#[derive(Debug)]
pub struct VariantError {
    pub variant: Variant,
    pub source: SimError,
}

impl std::fmt::Display for VariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "variant {} failed: {}", self.variant, self.source)
    }
}

impl std::error::Error for VariantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A malformed `MERRIMAC_*` environment override, rejected by
/// [`RunSpec::from_env_overrides`] with the variable, the offending
/// value and what was expected — instead of the silent fall-back the
/// scattered ad-hoc parsers used to apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvOverrideError {
    pub var: &'static str,
    pub value: String,
    pub expected: &'static str,
}

impl std::fmt::Display for EnvOverrideError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "environment override {}={:?} is malformed: expected {}",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvOverrideError {}

/// The one failure type a run — one-shot [`run`] call or campaign job —
/// can produce. `bench::VariantError` (simulator/configuration
/// failures), static-analysis admission rejections and malformed
/// environment overrides all unify here, so `JobResult` in
/// `merrimac_campaign` carries a single typed failure and a
/// `NodesOutOfRange`-style preflight renders identically from the
/// binary and the service.
#[derive(Debug)]
pub enum RunError {
    /// The simulator (or its configuration preflight) failed.
    Variant(VariantError),
    /// The static-analysis admission gate refused the program. The
    /// structured diagnostics are the same `merrimac_analysis` output
    /// `merrimac-lint` renders.
    Admission {
        variant: Variant,
        diagnostics: Vec<Diagnostic>,
    },
    /// A `MERRIMAC_*` environment override did not parse.
    Env(EnvOverrideError),
}

impl RunError {
    fn sim(variant: Variant, source: SimError) -> Self {
        RunError::Variant(VariantError { variant, source })
    }

    /// Error-severity diagnostics of an [`RunError::Admission`]; empty
    /// for the other variants.
    pub fn admission_errors(&self) -> Vec<&Diagnostic> {
        match self {
            RunError::Admission { diagnostics, .. } => diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect(),
            _ => Vec::new(),
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Variant(e) => e.fmt(f),
            RunError::Admission {
                variant,
                diagnostics,
            } => {
                let errors: Vec<&Diagnostic> = diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .collect();
                write!(
                    f,
                    "variant {variant} rejected by static-analysis admission ({} error(s))",
                    errors.len()
                )?;
                if let Some(first) = errors.first() {
                    write!(f, ":\n{}", first.render())?;
                }
                Ok(())
            }
            RunError::Env(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Variant(e) => Some(e),
            RunError::Env(e) => Some(e),
            RunError::Admission { .. } => None,
        }
    }
}

impl From<VariantError> for RunError {
    fn from(e: VariantError) -> Self {
        RunError::Variant(e)
    }
}

impl From<EnvOverrideError> for RunError {
    fn from(e: EnvOverrideError) -> Self {
        RunError::Env(e)
    }
}

/// A named dataset a [`RunSpec`] can run over — the cacheable identity
/// the campaign service keys its artifact cache on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetId {
    /// The paper's 900-molecule box ([`paper_system`], seed [`SEED`]).
    Paper,
    /// A jittered-lattice box of `n` water molecules ([`small_system`]).
    Small(usize),
    /// A plain Lennard-Jones atomic fluid of `n` particles
    /// ([`atomic_system`] with [`WaterModel::lj_atom`]).
    Lj(usize),
    /// A charged-particle LJ+Coulomb box of `n` particles
    /// ([`atomic_system`] with [`WaterModel::charged_atom`]).
    Charged(usize),
}

impl DatasetId {
    pub fn molecules(self) -> usize {
        match self {
            DatasetId::Paper => 900,
            DatasetId::Small(n) | DatasetId::Lj(n) | DatasetId::Charged(n) => n,
        }
    }

    /// The workload this dataset exercises — part of the cacheable
    /// identity, so artifact caches and baselines are workload-aware.
    pub fn workload(self) -> Workload {
        match self {
            DatasetId::Paper | DatasetId::Small(_) => Workload::Water,
            DatasetId::Lj(_) => Workload::LjFluid,
            DatasetId::Charged(_) => Workload::Charged,
        }
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetId::Paper => write!(f, "paper-900"),
            DatasetId::Small(n) => write!(f, "small-{n}"),
            DatasetId::Lj(n) => write!(f, "lj-{n}"),
            DatasetId::Charged(n) => write!(f, "charged-{n}"),
        }
    }
}

/// A materialized dataset: the water box and its neighbour list, tagged
/// with the [`DatasetId`] that reproduces them. One-shot harnesses
/// borrow from it via [`Dataset::spec`]; the campaign service shares it
/// across jobs behind an `Arc` and keys compiled artifacts on `id`.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub id: DatasetId,
    pub system: WaterBox,
    pub list: NeighborList,
}

impl Dataset {
    /// Materialize a dataset from its id (deterministic: same id, same
    /// box, same list).
    pub fn materialize(id: DatasetId) -> Self {
        let (system, list) = match id {
            DatasetId::Paper => paper_system(),
            DatasetId::Small(n) => small_system(n),
            DatasetId::Lj(n) => atomic_system(WaterModel::lj_atom(), n),
            DatasetId::Charged(n) => atomic_system(WaterModel::charged_atom(), n),
        };
        Self { id, system, list }
    }

    pub fn paper() -> Self {
        Self::materialize(DatasetId::Paper)
    }

    pub fn small(molecules: usize) -> Self {
        Self::materialize(DatasetId::Small(molecules))
    }

    /// A Lennard-Jones atomic fluid of `particles` single-site atoms.
    pub fn lj(particles: usize) -> Self {
        Self::materialize(DatasetId::Lj(particles))
    }

    /// A charged-particle (LJ + Coulomb) box of `particles` atoms.
    pub fn charged(particles: usize) -> Self {
        Self::materialize(DatasetId::Charged(particles))
    }

    /// The workload this dataset exercises.
    pub fn workload(&self) -> Workload {
        self.id.workload()
    }

    /// A default run over this dataset.
    pub fn spec(&self, variant: Variant) -> RunSpec<'_> {
        RunSpec::new(&self.system, &self.list, variant)
    }
}

/// One execution, fully described: the dataset, its neighbour list, the
/// variant, the engine thread count, the simulated node count and the
/// kernel engine. Both the one-shot path ([`run`]) and the campaign
/// service go through this one description. Extend with the builder
/// methods; execute with [`run`].
#[derive(Debug, Clone, Copy)]
pub struct RunSpec<'a> {
    pub system: &'a WaterBox,
    pub list: &'a NeighborList,
    pub variant: Variant,
    /// Host worker threads for the functional phase (simulated results
    /// are identical at any count).
    pub threads: usize,
    /// Simulated Merrimac nodes; `1` runs the single-node step, larger
    /// counts the end-to-end multi-node runner (validated against the
    /// modeled network at build time).
    pub nodes: usize,
    /// Functional kernel-execution engine. `None` leaves the
    /// `SimConfigBuilder` default (the legacy lenient
    /// `MERRIMAC_KERNEL_ENGINE` fallback); set it explicitly — or via
    /// [`RunSpec::from_env_overrides`], which rejects malformed values.
    pub engine: Option<KernelEngine>,
    /// Lane width of the batched engine. `None` leaves the
    /// `SimConfigBuilder` default (the legacy lenient
    /// `MERRIMAC_TAPE_BATCH` fallback); results are bitwise-identical
    /// at either width.
    pub tape_batch: Option<BatchWidth>,
}

impl<'a> RunSpec<'a> {
    pub fn new(system: &'a WaterBox, list: &'a NeighborList, variant: Variant) -> Self {
        Self {
            system,
            list,
            variant,
            threads: 1,
            nodes: 1,
            engine: None,
            tape_batch: None,
        }
    }

    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Simulated node count (default 1).
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    pub fn engine(mut self, engine: KernelEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Lane width of the batched engine (default 8).
    pub fn tape_batch(mut self, width: BatchWidth) -> Self {
        self.tape_batch = Some(width);
        self
    }

    /// Apply the `MERRIMAC_HOST_THREADS`, `MERRIMAC_NODES`,
    /// `MERRIMAC_KERNEL_ENGINE` and `MERRIMAC_TAPE_BATCH` environment
    /// overrides to this spec — the single place those variables are
    /// parsed. Unset variables leave the spec untouched; a
    /// set-but-malformed value is a typed [`RunError::Env`] naming the
    /// variable, instead of the silent fall-back the legacy defaults
    /// apply.
    pub fn from_env_overrides(mut self) -> Result<Self, RunError> {
        if let Some(threads) = env_usize("MERRIMAC_HOST_THREADS")? {
            self.threads = threads;
        }
        if let Some(nodes) = env_usize("MERRIMAC_NODES")? {
            self.nodes = nodes;
        }
        if let Some(value) = env_value("MERRIMAC_KERNEL_ENGINE") {
            self.engine = Some(KernelEngine::parse(&value).ok_or(EnvOverrideError {
                var: "MERRIMAC_KERNEL_ENGINE",
                value,
                expected: "`batch`, `tape` or `interp`",
            })?);
        }
        if let Some(value) = env_value("MERRIMAC_TAPE_BATCH") {
            self.tape_batch = Some(BatchWidth::parse(&value).ok_or(EnvOverrideError {
                var: "MERRIMAC_TAPE_BATCH",
                value,
                expected: "`8` or `16`",
            })?);
        }
        Ok(self)
    }

    /// The validated application this spec describes.
    fn build_app(&self) -> Result<StreamMdApp, RunError> {
        let mut b = StreamMdApp::builder()
            .neighbor(self.list.params)
            .threads(self.threads)
            .variants(&[self.variant])
            .nodes(self.nodes);
        if let Some(engine) = self.engine {
            b = b.engine(engine);
        }
        if let Some(width) = self.tape_batch {
            b = b.tape_batch(width);
        }
        b.build().map_err(|e| RunError::sim(self.variant, e))
    }
}

fn env_value(var: &str) -> Option<String> {
    std::env::var(var).ok()
}

fn env_usize(var: &'static str) -> Result<Option<usize>, EnvOverrideError> {
    let Some(value) = env_value(var) else {
        return Ok(None);
    };
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        _ => Err(EnvOverrideError {
            var,
            value,
            expected: "a positive integer",
        }),
    }
}

/// Run one fully-specified step — the single execution entry point
/// behind every harness and the campaign service. `spec.nodes == 1`
/// runs the single-node step; larger counts run the end-to-end
/// multi-node runner and return its canonical [`StepOutcome`] (forces
/// bitwise node-count-independent, `perf` rewritten to the
/// barrier-to-barrier step, the breakdown in
/// `perf.phases.multinode`).
pub fn run(spec: RunSpec) -> Result<StepOutcome, RunError> {
    let app = spec.build_app()?;
    if spec.nodes > 1 {
        app.run_step_multinode(spec.system, spec.list, spec.variant)
            .map(|m| m.outcome)
            .map_err(|e| RunError::sim(spec.variant, e))
    } else {
        app.run_step_with_list(spec.system, spec.list, spec.variant)
            .map_err(|e| RunError::sim(spec.variant, e))
    }
}

/// Run the static analysis pipeline over one variant's step program
/// without executing it. Same configuration path as [`run`], so the
/// diagnostics describe exactly the program the harnesses simulate.
pub fn analyze(spec: RunSpec) -> Result<Vec<Diagnostic>, RunError> {
    let app = spec.build_app()?;
    Ok(app.analyze_step(spec.system, spec.list, spec.variant))
}

/// Render a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Print a header banner naming the paper artifact.
pub fn banner(artifact: &str, description: &str) {
    println!("================================================================");
    println!("{artifact} — {description}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_system_runs_every_variant() {
        let (system, list) = small_system(27);
        for v in Variant::ALL {
            let out = run(RunSpec::new(&system, &list, v)).unwrap_or_else(|e| panic!("{e}"));
            assert!(out.perf.cycles > 0, "{v} produced no cycles");
        }
    }

    #[test]
    fn atomic_datasets_run_every_variant() {
        for ds in [Dataset::lj(64), Dataset::charged(64)] {
            for v in Variant::ALL {
                let out = run(ds.spec(v)).unwrap_or_else(|e| panic!("{} {v}: {e}", ds.id));
                assert!(out.perf.cycles > 0, "{} {v} produced no cycles", ds.id);
                assert_eq!(out.forces.len(), 64);
            }
        }
    }

    #[test]
    fn dataset_ids_are_workload_aware() {
        assert_eq!(DatasetId::Paper.workload(), Workload::Water);
        assert_eq!(DatasetId::Small(27).workload(), Workload::Water);
        assert_eq!(DatasetId::Lj(100).workload(), Workload::LjFluid);
        assert_eq!(DatasetId::Charged(100).workload(), Workload::Charged);
        assert_eq!(DatasetId::Lj(100).to_string(), "lj-100");
        assert_eq!(DatasetId::Charged(100).to_string(), "charged-100");
        assert_eq!(DatasetId::Charged(100).molecules(), 100);
        // Distinct workloads at the same size are distinct cache keys.
        assert_ne!(DatasetId::Lj(100), DatasetId::Charged(100));
    }

    #[test]
    fn paper_system_statistics() {
        let (system, list) = paper_system();
        assert_eq!(system.num_molecules(), 900);
        assert!(list.num_pairs() > 50_000);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    fn tape_batch_env_override_is_checked() {
        // Junk is a typed error naming the variable; a valid width
        // lands in the spec. (Other tests tolerate this variable being
        // transiently set: widths are bitwise-equivalent and the
        // legacy `BatchWidth::from_env` fallback is lenient.)
        let (system, list) = small_system(27);
        std::env::set_var("MERRIMAC_TAPE_BATCH", "12");
        let err = RunSpec::new(&system, &list, Variant::Expanded)
            .from_env_overrides()
            .unwrap_err();
        match err {
            RunError::Env(e) => {
                assert_eq!(e.var, "MERRIMAC_TAPE_BATCH");
                assert_eq!(e.value, "12");
            }
            other => panic!("expected Env error, got {other}"),
        }
        std::env::set_var("MERRIMAC_TAPE_BATCH", "16");
        let spec = RunSpec::new(&system, &list, Variant::Expanded)
            .from_env_overrides()
            .expect("valid width");
        assert_eq!(spec.tape_batch, Some(BatchWidth::W16));
        std::env::remove_var("MERRIMAC_TAPE_BATCH");
    }

    #[test]
    fn variant_error_chains_to_sim_error() {
        use std::error::Error;
        let e = VariantError {
            variant: Variant::Fixed,
            source: SimError::Config("bad knob".into()),
        };
        assert!(e.to_string().contains("fixed"));
        assert!(e.source().is_some());
    }
}

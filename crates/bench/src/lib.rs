//! Shared helpers for the table/figure regeneration harnesses.
//!
//! Every `cargo bench --bench <table|fig>` target prints the rows/series
//! the corresponding paper artifact reports; this library centralizes
//! dataset construction and variant execution so harnesses stay small
//! and consistent.
//!
//! Variant execution goes through one entry point: describe the run
//! with a [`RunSpec`] and pass it to [`run`]. The configuration is
//! validated by `StreamMdApp::builder()`, so un-runnable setups (e.g. a
//! strip too large to double-buffer in the SRF) surface as a
//! [`VariantError`] naming the offending knob instead of wedging the
//! simulated scoreboard.

use md_sim::neighbor::{NeighborList, NeighborListParams};
use md_sim::system::WaterBox;
use merrimac_sim::machine::SimError;
use streammd::{MultiNodeOutcome, StepOutcome, StreamMdApp, Variant};

pub mod json;
pub mod report;
pub mod trend;
pub use report::{LintRecord, PerfReport, VariantRecord, SCHEMA_VERSION};
pub use trend::{compare, render_table, Tolerances, TrendDiff};

/// Default seed for the paper dataset across harnesses (deterministic
/// output).
pub const SEED: u64 = 42;

/// The Table 2 neighbour-list policy.
pub fn paper_params() -> NeighborListParams {
    NeighborListParams {
        cutoff: 1.0,
        skin: 0.0,
        rebuild_interval: 10,
    }
}

/// The paper's 900-molecule dataset plus its neighbour list.
pub fn paper_system() -> (WaterBox, NeighborList) {
    let system = WaterBox::paper_dataset(SEED);
    let list = NeighborList::build(&system, paper_params());
    (system, list)
}

/// A smaller dataset for fast sanity harnesses.
pub fn small_system(molecules: usize) -> (WaterBox, NeighborList) {
    let system = WaterBox::builder().molecules(molecules).seed(SEED).build();
    let params = NeighborListParams {
        cutoff: (0.45 * system.pbc().side()).min(1.0),
        skin: 0.0,
        rebuild_interval: 10,
    };
    let list = NeighborList::build(&system, params);
    (system, list)
}

/// A variant that failed to simulate, with the simulator's context.
#[derive(Debug)]
pub struct VariantError {
    pub variant: Variant,
    pub source: SimError,
}

impl std::fmt::Display for VariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "variant {} failed: {}", self.variant, self.source)
    }
}

impl std::error::Error for VariantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// One variant execution, fully described: the dataset, its neighbour
/// list, the variant and the engine thread count. Extend with
/// [`RunSpec::threads`]; execute with [`run`].
#[derive(Debug, Clone, Copy)]
pub struct RunSpec<'a> {
    pub system: &'a WaterBox,
    pub list: &'a NeighborList,
    pub variant: Variant,
    /// Host worker threads for the functional phase (simulated results
    /// are identical at any count).
    pub threads: usize,
}

impl<'a> RunSpec<'a> {
    pub fn new(system: &'a WaterBox, list: &'a NeighborList, variant: Variant) -> Self {
        Self {
            system,
            list,
            variant,
            threads: 1,
        }
    }

    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Run one fully-specified variant — the single execution entry point
/// behind every harness.
pub fn run(spec: RunSpec) -> Result<StepOutcome, VariantError> {
    let err = |source| VariantError {
        variant: spec.variant,
        source,
    };
    StreamMdApp::builder()
        .neighbor(spec.list.params)
        .threads(spec.threads)
        .variants(&[spec.variant])
        .build()
        .map_err(err)?
        .run_step_with_list(spec.system, spec.list, spec.variant)
        .map_err(err)
}

/// Run one fully-specified variant decomposed over `nodes` simulated
/// Merrimac nodes (the end-to-end multi-node runner). Same validated
/// configuration path as [`run`], with the node count checked against
/// the modeled network at build time.
pub fn run_multinode(spec: RunSpec, nodes: usize) -> Result<MultiNodeOutcome, VariantError> {
    let err = |source| VariantError {
        variant: spec.variant,
        source,
    };
    StreamMdApp::builder()
        .neighbor(spec.list.params)
        .threads(spec.threads)
        .variants(&[spec.variant])
        .nodes(nodes)
        .build()
        .map_err(err)?
        .run_step_multinode(spec.system, spec.list, spec.variant)
        .map_err(err)
}

/// Run the static analysis pipeline over one variant's step program
/// without executing it. Same configuration path as [`run`], so the
/// diagnostics describe exactly the program the harnesses simulate.
pub fn analyze(spec: RunSpec) -> Result<Vec<merrimac_analysis::Diagnostic>, VariantError> {
    let err = |source| VariantError {
        variant: spec.variant,
        source,
    };
    let app = StreamMdApp::builder()
        .neighbor(spec.list.params)
        .threads(spec.threads)
        .variants(&[spec.variant])
        .build()
        .map_err(err)?;
    Ok(app.analyze_step(spec.system, spec.list, spec.variant))
}

/// Render a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Print a header banner naming the paper artifact.
pub fn banner(artifact: &str, description: &str) {
    println!("================================================================");
    println!("{artifact} — {description}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_system_runs_every_variant() {
        let (system, list) = small_system(27);
        for v in Variant::ALL {
            let out = run(RunSpec::new(&system, &list, v)).unwrap_or_else(|e| panic!("{e}"));
            assert!(out.perf.cycles > 0, "{v} produced no cycles");
        }
    }

    #[test]
    fn paper_system_statistics() {
        let (system, list) = paper_system();
        assert_eq!(system.num_molecules(), 900);
        assert!(list.num_pairs() > 50_000);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    fn variant_error_chains_to_sim_error() {
        use std::error::Error;
        let e = VariantError {
            variant: Variant::Fixed,
            source: SimError::Config("bad knob".into()),
        };
        assert!(e.to_string().contains("fixed"));
        assert!(e.source().is_some());
    }
}

//! Perf-trend diffing: compare a fresh [`PerfReport`] against a
//! committed baseline and flag regressions.
//!
//! The simulated metrics (cycles, GFLOPS, arithmetic intensity, the
//! locality split) are bit-deterministic — same code, same numbers on
//! any host — so their tolerances are tight and exist only to absorb
//! deliberate, reviewed model changes below the noise floor of
//! interest. Host wall-clock is the one genuinely noisy metric and gets
//! a correspondingly loose tolerance. Every tolerance can be overridden
//! through `TREND_TOL_*` environment variables; the baseline location
//! through `TREND_BASELINE_DIR`.
//!
//! Direction matters: a metric only regresses in its *bad* direction
//! (GFLOPS/intensity down, MEM-fraction/cycles/wall-clock up).
//! Improvements of any size pass — the gate exists to stop silent decay,
//! not to freeze progress; after an intentional improvement or model
//! change, refresh the baseline (`TREND_REFRESH=1`).

use std::path::{Path, PathBuf};

use crate::report::{PerfReport, VariantRecord};

/// Allowed movement per metric before the gate trips.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Max fractional drop in solution GFLOPS.
    pub gflops_frac: f64,
    /// Max fractional drop in measured arithmetic intensity.
    pub intensity_frac: f64,
    /// Max absolute rise in the MEM locality fraction.
    pub locality_abs: f64,
    /// Max fractional rise in simulated cycles.
    pub cycles_frac: f64,
    /// Max fractional rise in host wall-clock (noisy; keep loose).
    pub wall_frac: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Self {
            gflops_frac: 0.02,
            intensity_frac: 0.02,
            locality_abs: 0.02,
            cycles_frac: 0.02,
            wall_frac: 0.75,
        }
    }
}

impl Tolerances {
    /// Tolerances for the paper-scale (900-molecule) trend dataset: the
    /// simulated metrics stay tight (they are bit-deterministic at any
    /// scale), but the host wall-clock band is looser — the run is ~20×
    /// longer, so absolute noise from a loaded CI host is larger.
    pub fn paper_scale() -> Self {
        Self {
            wall_frac: 1.5,
            ..Self::default()
        }
    }

    /// Defaults overridden by `TREND_TOL_GFLOPS`, `TREND_TOL_INTENSITY`,
    /// `TREND_TOL_LOCALITY`, `TREND_TOL_CYCLES`, `TREND_TOL_WALL`
    /// (fractions, e.g. `0.05`).
    pub fn from_env() -> Self {
        Self::from_env_or(Self::default())
    }

    /// [`Tolerances::from_env`] with explicit defaults for anything the
    /// environment leaves unset (e.g. [`Tolerances::paper_scale`]).
    pub fn from_env_or(defaults: Self) -> Self {
        let read = |var: &str, default: f64| -> f64 {
            std::env::var(var)
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .filter(|t| t.is_finite() && *t >= 0.0)
                .unwrap_or(default)
        };
        Self {
            gflops_frac: read("TREND_TOL_GFLOPS", defaults.gflops_frac),
            intensity_frac: read("TREND_TOL_INTENSITY", defaults.intensity_frac),
            locality_abs: read("TREND_TOL_LOCALITY", defaults.locality_abs),
            cycles_frac: read("TREND_TOL_CYCLES", defaults.cycles_frac),
            wall_frac: read("TREND_TOL_WALL", defaults.wall_frac),
        }
    }
}

/// One metric of one variant, baseline vs. current.
#[derive(Debug, Clone)]
pub struct Delta {
    pub variant: String,
    pub metric: &'static str,
    pub baseline: f64,
    pub current: f64,
    /// Signed movement in the metric's bad direction (fractional for
    /// ratio metrics, absolute for the locality fraction): positive
    /// means "got worse".
    pub worsening: f64,
    pub tolerance: f64,
    pub regressed: bool,
}

/// Outcome of diffing one report pair.
#[derive(Debug, Clone, Default)]
pub struct TrendDiff {
    pub deltas: Vec<Delta>,
    /// Structural failures no tolerance applies to: variants that
    /// disappeared or started erroring.
    pub problems: Vec<String>,
}

impl TrendDiff {
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    pub fn is_regression(&self) -> bool {
        !self.problems.is_empty() || self.deltas.iter().any(|d| d.regressed)
    }
}

/// Diff `current` against `baseline` under `tol`.
pub fn compare(baseline: &PerfReport, current: &PerfReport, tol: &Tolerances) -> TrendDiff {
    let mut diff = TrendDiff::default();
    for base in &baseline.variants {
        let Some(cur) = current.variants.iter().find(|c| c.variant == base.variant) else {
            diff.problems.push(format!(
                "variant {}: present in baseline but missing from this run",
                base.variant
            ));
            continue;
        };
        match (&base.error, &cur.error) {
            (None, Some(e)) => {
                diff.problems
                    .push(format!("variant {}: now fails: {e}", base.variant));
                continue;
            }
            (Some(_), _) => continue, // was broken at baseline time: nothing to compare
            (None, None) => {}
        }
        // Losing the parallel engine is structural, not a tolerance
        // question: the simulated numbers stay identical (the serial
        // fallback is exact), so only this check catches the wall-clock
        // capability silently disappearing.
        if base.phases.partition_parallelized && !cur.phases.partition_parallelized {
            let why = cur
                .phases
                .partition_fallback
                .map(|k| k.code())
                .unwrap_or("no reason recorded");
            diff.problems.push(format!(
                "variant {}: strip partitioner fell back to serial ({why}) \
                 but the baseline ran parallelized",
                base.variant
            ));
        }
        diff.deltas.extend(variant_deltas(base, cur, tol));
    }
    for cur in &current.variants {
        let new = !baseline.variants.iter().any(|b| b.variant == cur.variant);
        if new {
            if let Some(e) = &cur.error {
                diff.problems
                    .push(format!("new variant {} fails: {e}", cur.variant));
            }
        }
    }
    diff
}

fn variant_deltas(base: &VariantRecord, cur: &VariantRecord, tol: &Tolerances) -> Vec<Delta> {
    // Fractional drop (for higher-is-better metrics).
    let drop_frac = |b: f64, c: f64| (b - c) / b.abs().max(1e-12);
    // Fractional rise (for lower-is-better metrics).
    let rise_frac = |b: f64, c: f64| (c - b) / b.abs().max(1e-12);
    let mk = |metric, b, c, worsening: f64, tolerance| Delta {
        variant: base.variant.clone(),
        metric,
        baseline: b,
        current: c,
        worsening,
        tolerance,
        regressed: worsening > tolerance,
    };
    vec![
        mk(
            "solution_gflops",
            base.solution_gflops,
            cur.solution_gflops,
            drop_frac(base.solution_gflops, cur.solution_gflops),
            tol.gflops_frac,
        ),
        mk(
            "intensity",
            base.intensity_measured,
            cur.intensity_measured,
            drop_frac(base.intensity_measured, cur.intensity_measured),
            tol.intensity_frac,
        ),
        mk(
            "mem_fraction",
            base.locality.2,
            cur.locality.2,
            cur.locality.2 - base.locality.2,
            tol.locality_abs,
        ),
        mk(
            "cycles",
            base.cycles as f64,
            cur.cycles as f64,
            rise_frac(base.cycles as f64, cur.cycles as f64),
            tol.cycles_frac,
        ),
        mk(
            "wall_seconds",
            base.wall_seconds,
            cur.wall_seconds,
            rise_frac(base.wall_seconds, cur.wall_seconds),
            tol.wall_frac,
        ),
    ]
}

/// Render the human-readable delta table (every metric, regressions
/// marked) plus any structural problems.
pub fn render_table(diff: &TrendDiff) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<16} {:>14} {:>14} {:>9} {:>7}  status\n",
        "variant", "metric", "baseline", "current", "worse", "tol"
    ));
    for d in &diff.deltas {
        out.push_str(&format!(
            "{:<12} {:<16} {:>14.6} {:>14.6} {:>8.2}% {:>6.1}%  {}\n",
            d.variant,
            d.metric,
            d.baseline,
            d.current,
            d.worsening * 100.0,
            d.tolerance * 100.0,
            if d.regressed { "REGRESSED" } else { "ok" }
        ));
    }
    for p in &diff.problems {
        out.push_str(&format!("PROBLEM: {p}\n"));
    }
    out
}

/// Directory holding committed baselines: `$TREND_BASELINE_DIR`, else
/// `bench/baselines/` at the repository root.
pub fn baseline_dir() -> PathBuf {
    match std::env::var("TREND_BASELINE_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench/baselines"),
    }
}

/// Load `BENCH_<label>.json` from `dir`. A missing file is `Ok(None)`
/// (first run, or a deliberately retired baseline); an unreadable or
/// schema-mismatched file is an error — a corrupt gate must fail loudly,
/// not silently pass.
pub fn load_baseline_from(dir: &Path, label: &str) -> Result<Option<PerfReport>, String> {
    let path = dir.join(format!("BENCH_{label}.json"));
    if !path.exists() {
        return Ok(None);
    }
    PerfReport::load(&path).map(Some)
}

/// [`load_baseline_from`] rooted at [`baseline_dir`].
pub fn load_baseline(label: &str) -> Result<Option<PerfReport>, String> {
    load_baseline_from(&baseline_dir(), label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SCHEMA_VERSION;
    use streammd::PhaseBreakdown;

    fn record(variant: &str, gflops: f64, cycles: u64) -> VariantRecord {
        VariantRecord {
            variant: variant.into(),
            cycles,
            seconds: 1e-4,
            solution_gflops: gflops,
            all_gflops: gflops * 1.2,
            intensity_measured: 10.0,
            locality: (0.95, 0.026, 0.024),
            lrf_refs: 1_000_000,
            srf_refs: 30_000,
            mem_refs: 25_000,
            iterations: 5_000,
            phases: PhaseBreakdown::default(),
            wall_seconds: 0.5,
            error: None,
        }
    }

    fn report(records: Vec<VariantRecord>) -> PerfReport {
        let mut r = PerfReport::new("trend_unit", 216, 1);
        r.variants = records;
        r
    }

    #[test]
    fn five_percent_gflops_drop_is_flagged_naming_variant_and_metric() {
        let base = report(vec![record("fixed", 40.0, 100_000)]);
        let cur = report(vec![record("fixed", 38.0, 100_000)]);
        let diff = compare(&base, &cur, &Tolerances::default());
        assert!(diff.is_regression());
        let regs = diff.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].variant, "fixed");
        assert_eq!(regs[0].metric, "solution_gflops");
        let table = render_table(&diff);
        assert!(table.contains("fixed"), "{table}");
        assert!(table.contains("solution_gflops"), "{table}");
        assert!(table.contains("REGRESSED"), "{table}");
    }

    #[test]
    fn improvements_and_small_noise_pass() {
        let base = report(vec![record("fixed", 40.0, 100_000)]);
        // 10% faster plus cycles down: strictly better.
        let better = report(vec![record("fixed", 44.0, 90_000)]);
        assert!(!compare(&base, &better, &Tolerances::default()).is_regression());
        // 1% slower: inside the default 2% band.
        let noisy = report(vec![record("fixed", 39.6, 101_000)]);
        assert!(!compare(&base, &noisy, &Tolerances::default()).is_regression());
    }

    #[test]
    fn cycle_growth_and_new_errors_are_regressions() {
        let base = report(vec![
            record("fixed", 40.0, 100_000),
            record("variable", 30.0, 90_000),
        ]);
        let cur = report(vec![
            record("fixed", 40.0, 110_000),
            VariantRecord::from_error("variable", "scoreboard deadlock"),
        ]);
        let diff = compare(&base, &cur, &Tolerances::default());
        assert!(diff.is_regression());
        assert!(diff.regressions().iter().any(|d| d.metric == "cycles"));
        assert!(
            diff.problems.iter().any(|p| p.contains("variable")),
            "{:?}",
            diff.problems
        );
    }

    #[test]
    fn losing_the_parallel_engine_is_a_structural_problem() {
        let parallel = |v: &str| {
            let mut r = record(v, 40.0, 100_000);
            r.phases.partition_parallelized = true;
            r.phases.partition_strips = 8;
            r
        };
        let serial = |v: &str| {
            let mut r = record(v, 40.0, 100_000);
            r.phases.partition_fallback = Some(merrimac_sim::FallbackKind::RegionConflict);
            r
        };
        let base = report(vec![parallel("fixed")]);
        // Identical simulated numbers, but the partitioner now falls
        // back: every tolerance passes, the structural check must trip.
        let cur = report(vec![serial("fixed")]);
        let diff = compare(&base, &cur, &Tolerances::default());
        assert!(diff.is_regression());
        assert!(diff.regressions().is_empty(), "no metric moved");
        assert_eq!(diff.problems.len(), 1);
        assert!(
            diff.problems[0].contains("region_conflict"),
            "{:?}",
            diff.problems
        );
        // The reverse direction (serial baseline, parallel current) is
        // an improvement, not a problem.
        let diff = compare(&cur, &base, &Tolerances::default());
        assert!(!diff.is_regression());
    }

    #[test]
    fn paper_scale_tolerances_loosen_only_wall_clock() {
        let d = Tolerances::default();
        let p = Tolerances::paper_scale();
        assert!(p.wall_frac > d.wall_frac);
        assert_eq!(p.gflops_frac, d.gflops_frac);
        assert_eq!(p.intensity_frac, d.intensity_frac);
        assert_eq!(p.locality_abs, d.locality_abs);
        assert_eq!(p.cycles_frac, d.cycles_frac);
    }

    #[test]
    fn vanished_variant_is_a_problem_and_baseline_errors_are_ignored() {
        let base = report(vec![
            record("fixed", 40.0, 100_000),
            VariantRecord::from_error("variable", "was already broken"),
        ]);
        let cur = report(vec![VariantRecord::from_error("variable", "still broken")]);
        let diff = compare(&base, &cur, &Tolerances::default());
        // `fixed` vanished → problem; `variable` was broken at baseline
        // time → no new signal.
        assert_eq!(diff.problems.len(), 1);
        assert!(diff.problems[0].contains("fixed"));
        assert!(diff.deltas.is_empty());
    }

    #[test]
    fn missing_baseline_is_tolerated_but_corrupt_one_is_not() {
        let dir = std::env::temp_dir().join(format!("trend_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_baseline_from(&dir, "no_such_label").unwrap().is_none());
        // Stale schema version → hard error, not a silent pass.
        let mut old = report(vec![record("fixed", 40.0, 100_000)]);
        old.schema_version = SCHEMA_VERSION - 1;
        std::fs::write(dir.join("BENCH_stale.json"), old.to_json()).unwrap();
        let err = load_baseline_from(&dir, "stale").expect_err("stale schema must error");
        assert!(err.contains("schema version"), "{err}");
        // Garbage → hard error too.
        std::fs::write(dir.join("BENCH_garbage.json"), "{not json").unwrap();
        assert!(load_baseline_from(&dir, "garbage").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Machine-readable run reports: each harness can emit a
//! `BENCH_<label>.json` file alongside its human-readable tables so
//! downstream tooling (plots, regression tracking) never scrapes
//! stdout.
//!
//! The JSON is rendered by hand — the workspace builds offline and the
//! vendored `serde` is a no-op stand-in — so the schema lives entirely
//! in this file: a report object with per-variant records of GFLOPS,
//! arithmetic intensity, locality split, simulated seconds, host
//! wall-clock and the engine thread count.

use std::io;
use std::path::{Path, PathBuf};

use streammd::StepOutcome;

/// One variant's measurements (or its failure).
#[derive(Debug, Clone)]
pub struct VariantRecord {
    pub variant: String,
    pub cycles: u64,
    /// Simulated seconds at the machine clock.
    pub seconds: f64,
    pub solution_gflops: f64,
    pub all_gflops: f64,
    pub intensity_measured: f64,
    /// (LRF, SRF, MEM) reference fractions.
    pub locality: (f64, f64, f64),
    pub mem_refs: u64,
    pub iterations: u64,
    /// Host wall-clock seconds spent simulating this variant.
    pub wall_seconds: f64,
    /// Set when the variant failed; measurement fields are zero.
    pub error: Option<String>,
}

impl VariantRecord {
    pub fn from_outcome(variant: &str, out: &StepOutcome, wall_seconds: f64) -> Self {
        Self {
            variant: variant.to_string(),
            cycles: out.perf.cycles,
            seconds: out.perf.seconds,
            solution_gflops: out.perf.solution_gflops,
            all_gflops: out.perf.all_gflops,
            intensity_measured: out.perf.intensity_measured,
            locality: out.perf.locality,
            mem_refs: out.perf.mem_refs,
            iterations: out.iterations,
            wall_seconds,
            error: None,
        }
    }

    pub fn from_error(variant: &str, error: &str) -> Self {
        Self {
            variant: variant.to_string(),
            cycles: 0,
            seconds: 0.0,
            solution_gflops: 0.0,
            all_gflops: 0.0,
            intensity_measured: 0.0,
            locality: (0.0, 0.0, 0.0),
            mem_refs: 0,
            iterations: 0,
            wall_seconds: 0.0,
            error: Some(error.to_string()),
        }
    }

    fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"variant\": {}", json_str(&self.variant)),
            format!("\"cycles\": {}", self.cycles),
            format!("\"seconds\": {}", json_f64(self.seconds)),
            format!("\"solution_gflops\": {}", json_f64(self.solution_gflops)),
            format!("\"all_gflops\": {}", json_f64(self.all_gflops)),
            format!(
                "\"intensity_measured\": {}",
                json_f64(self.intensity_measured)
            ),
            format!(
                "\"locality\": {{\"lrf\": {}, \"srf\": {}, \"mem\": {}}}",
                json_f64(self.locality.0),
                json_f64(self.locality.1),
                json_f64(self.locality.2)
            ),
            format!("\"mem_refs\": {}", self.mem_refs),
            format!("\"iterations\": {}", self.iterations),
            format!("\"wall_seconds\": {}", json_f64(self.wall_seconds)),
        ];
        match &self.error {
            Some(e) => fields.push(format!("\"error\": {}", json_str(e))),
            None => fields.push("\"error\": null".to_string()),
        }
        format!("    {{\n      {}\n    }}", fields.join(",\n      "))
    }
}

/// A full run report, serialized as `BENCH_<label>.json`.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Short slug naming the experiment (also names the output file).
    pub label: String,
    pub molecules: usize,
    /// Engine worker threads used for the functional phase.
    pub threads: usize,
    pub variants: Vec<VariantRecord>,
}

impl PerfReport {
    pub fn new(label: impl Into<String>, molecules: usize, threads: usize) -> Self {
        Self {
            label: label.into(),
            molecules,
            threads,
            variants: Vec::new(),
        }
    }

    pub fn to_json(&self) -> String {
        let variants: Vec<String> = self.variants.iter().map(|v| v.to_json()).collect();
        format!(
            "{{\n  \"label\": {},\n  \"molecules\": {},\n  \"threads\": {},\n  \"variants\": [\n{}\n  ]\n}}\n",
            json_str(&self.label),
            self.molecules,
            self.threads,
            variants.join(",\n")
        )
    }

    /// Write `BENCH_<label>.json` under `dir`, returning the path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.label));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Write under `$BENCH_REPORT_DIR` (default: current directory).
    pub fn write_default(&self) -> io::Result<PathBuf> {
        let dir = std::env::var("BENCH_REPORT_DIR").unwrap_or_else(|_| ".".to_string());
        self.write(Path::new(&dir))
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_writes() {
        let mut report = PerfReport::new("unit_test", 64, 4);
        report
            .variants
            .push(VariantRecord::from_error("variable", "boom \"quoted\""));
        let json = report.to_json();
        assert!(json.contains("\"label\": \"unit_test\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\\\"quoted\\\""));
        let dir = std::env::temp_dir();
        let path = report.write(&dir).expect("writes");
        assert!(path.ends_with("BENCH_unit_test.json"));
        let back = std::fs::read_to_string(&path).expect("reads");
        assert_eq!(back, json);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn non_finite_values_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}

//! Machine-readable run reports: each harness can emit a
//! `BENCH_<label>.json` file alongside its human-readable tables so
//! downstream tooling (plots, regression tracking) never scrapes
//! stdout.
//!
//! The JSON is rendered by hand — the workspace builds offline and the
//! vendored `serde` is a no-op stand-in — so the schema lives entirely
//! in this file: a report object tagged with [`SCHEMA_VERSION`] holding
//! per-variant records of GFLOPS, arithmetic intensity, the locality
//! split with its raw per-level reference counts, the per-phase cycle
//! breakdown, simulated seconds, host wall-clock and the engine thread
//! count. [`PerfReport::from_json`] reads the same format back (via the
//! hand-rolled [`crate::json`] parser) for the trend harness and
//! rejects reports written by a different schema version.

use std::io;
use std::path::{Path, PathBuf};

use merrimac_sim::FallbackKind;
use streammd::{MultiNodeBreakdown, PhaseBreakdown, StepOutcome};

use crate::json::{self, Json};

/// Version tag of the `BENCH_*.json` format. Bump whenever a field is
/// added, removed or changes meaning; the trend harness refuses to diff
/// across versions (a stale baseline must be refreshed, not guessed at).
///
/// Version history: 1 — original per-variant records; 2 — adds
/// `schema_version`, raw `lrf_refs`/`srf_refs` counts and the
/// per-phase cycle breakdown; 3 — adds the per-variant `partition`
/// object (`parallelized`, `strips`, `fallback` reason code) recording
/// whether the strip partitioner admitted the program to the sharded
/// parallel engine.
///
/// The top-level `lints` array (per-variant static analysis severity
/// counts from `merrimac_analysis`) is an *additive, leniently parsed*
/// field: readers treat a missing array as empty and the trend harness
/// never diffs it, so adding it did not bump the version — committed
/// schema-3 baselines stay valid.
pub const SCHEMA_VERSION: u64 = 3;

/// Static-analysis summary for one variant's step program: how many
/// diagnostics `merrimac_analysis::analyze_program` produced at each
/// severity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintRecord {
    pub variant: String,
    pub errors: usize,
    pub warnings: usize,
    pub infos: usize,
}

impl LintRecord {
    fn to_json(&self) -> String {
        format!(
            "    {{\"variant\": {}, \"errors\": {}, \"warnings\": {}, \"infos\": {}}}",
            json_str(&self.variant),
            self.errors,
            self.warnings,
            self.infos
        )
    }

    fn from_json_value(v: &Json) -> Result<Self, String> {
        let count = |k: &str| -> Result<usize, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("lint record missing count `{k}`"))
        };
        Ok(Self {
            variant: v
                .get("variant")
                .and_then(Json::as_str)
                .ok_or("lint record missing `variant`")?
                .to_string(),
            errors: count("errors")?,
            warnings: count("warnings")?,
            infos: count("infos")?,
        })
    }
}

/// Campaign-level rate metrics from `merrimac_campaign`: how many jobs
/// ran, how the cross-job artifact cache behaved, and the aggregate
/// throughput. Additive, leniently parsed top-level block like `lints`:
/// absent in one-shot reports, never diffed by the trend harness, so it
/// did not bump [`SCHEMA_VERSION`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignRecord {
    /// Jobs submitted to the service.
    pub jobs: usize,
    /// Jobs that produced a `StepOutcome`.
    pub completed: usize,
    /// Jobs that failed (admission rejections and simulator errors).
    pub failed: usize,
    /// Service worker threads the campaign was scheduled across.
    pub workers: usize,
    /// Jobs served compiled artifacts from the cross-job cache.
    pub cache_hits: usize,
    /// Jobs that built (and populated) their artifact slot.
    pub cache_misses: usize,
    /// Jobs that skipped the cache (multi-node specs).
    pub cache_bypass: usize,
    /// Distinct `(dataset, variant, machine)` keys seen.
    pub distinct_keys: usize,
    /// Host wall-clock seconds from first submit to drain.
    pub wall_seconds: f64,
    /// Completed jobs per host wall-clock second.
    pub jobs_per_sec: f64,
    /// Aggregate simulated pair interactions per host wall-clock second
    /// across all completed jobs.
    pub interactions_per_sec: f64,
}

impl CampaignRecord {
    /// Fraction of cacheable jobs served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let cacheable = self.cache_hits + self.cache_misses;
        if cacheable == 0 {
            0.0
        } else {
            self.cache_hits as f64 / cacheable as f64
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n    \"jobs\": {}, \"completed\": {}, \"failed\": {}, \"workers\": {},\n    \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_bypass\": {}, \
             \"distinct_keys\": {},\n    \"wall_seconds\": {}, \"jobs_per_sec\": {}, \
             \"interactions_per_sec\": {}\n  }}",
            self.jobs,
            self.completed,
            self.failed,
            self.workers,
            self.cache_hits,
            self.cache_misses,
            self.cache_bypass,
            self.distinct_keys,
            json_f64(self.wall_seconds),
            json_f64(self.jobs_per_sec),
            json_f64(self.interactions_per_sec)
        )
    }

    fn from_json_value(v: &Json) -> Option<Self> {
        let count = |k: &str| v.get(k).and_then(Json::as_u64).map(|n| n as usize);
        // `json_f64` writes non-finite values as null; read them as 0.
        let num = |k: &str| match v.get(k) {
            Some(Json::Null) => Some(0.0),
            Some(j) => j.as_f64(),
            None => None,
        };
        Some(Self {
            jobs: count("jobs")?,
            completed: count("completed")?,
            failed: count("failed")?,
            workers: count("workers")?,
            cache_hits: count("cache_hits")?,
            cache_misses: count("cache_misses")?,
            cache_bypass: count("cache_bypass")?,
            distinct_keys: count("distinct_keys")?,
            wall_seconds: num("wall_seconds")?,
            jobs_per_sec: num("jobs_per_sec")?,
            interactions_per_sec: num("interactions_per_sec")?,
        })
    }
}

/// One variant's measurements (or its failure).
#[derive(Debug, Clone)]
pub struct VariantRecord {
    pub variant: String,
    pub cycles: u64,
    /// Simulated seconds at the machine clock.
    pub seconds: f64,
    pub solution_gflops: f64,
    pub all_gflops: f64,
    pub intensity_measured: f64,
    /// (LRF, SRF, MEM) reference fractions.
    pub locality: (f64, f64, f64),
    /// Raw register-hierarchy reference counts behind the fractions.
    pub lrf_refs: u64,
    pub srf_refs: u64,
    pub mem_refs: u64,
    pub iterations: u64,
    /// Per-phase busy cycles (gather/load/kernel/scatter-add/store) and
    /// scoreboard stalls.
    pub phases: PhaseBreakdown,
    /// Host wall-clock seconds spent simulating this variant.
    pub wall_seconds: f64,
    /// Set when the variant failed; measurement fields are zero.
    pub error: Option<String>,
}

impl VariantRecord {
    pub fn from_outcome(variant: &str, out: &StepOutcome, wall_seconds: f64) -> Self {
        Self {
            variant: variant.to_string(),
            cycles: out.perf.cycles,
            seconds: out.perf.seconds,
            solution_gflops: out.perf.solution_gflops,
            all_gflops: out.perf.all_gflops,
            intensity_measured: out.perf.intensity_measured,
            locality: out.perf.locality,
            lrf_refs: out.report.counters.lrf_refs,
            srf_refs: out.report.counters.srf_refs,
            mem_refs: out.perf.mem_refs,
            iterations: out.iterations,
            phases: out.perf.phases,
            wall_seconds,
            error: None,
        }
    }

    pub fn from_error(variant: &str, error: &str) -> Self {
        Self {
            variant: variant.to_string(),
            cycles: 0,
            seconds: 0.0,
            solution_gflops: 0.0,
            all_gflops: 0.0,
            intensity_measured: 0.0,
            locality: (0.0, 0.0, 0.0),
            lrf_refs: 0,
            srf_refs: 0,
            mem_refs: 0,
            iterations: 0,
            phases: PhaseBreakdown::default(),
            wall_seconds: 0.0,
            error: Some(error.to_string()),
        }
    }

    fn to_json(&self) -> String {
        let p = &self.phases;
        let mut fields = vec![
            format!("\"variant\": {}", json_str(&self.variant)),
            format!("\"cycles\": {}", self.cycles),
            format!("\"seconds\": {}", json_f64(self.seconds)),
            format!("\"solution_gflops\": {}", json_f64(self.solution_gflops)),
            format!("\"all_gflops\": {}", json_f64(self.all_gflops)),
            format!(
                "\"intensity_measured\": {}",
                json_f64(self.intensity_measured)
            ),
            format!(
                "\"locality\": {{\"lrf\": {}, \"srf\": {}, \"mem\": {}}}",
                json_f64(self.locality.0),
                json_f64(self.locality.1),
                json_f64(self.locality.2)
            ),
            format!("\"lrf_refs\": {}", self.lrf_refs),
            format!("\"srf_refs\": {}", self.srf_refs),
            format!("\"mem_refs\": {}", self.mem_refs),
            format!("\"iterations\": {}", self.iterations),
            format!(
                "\"phases\": {{\"gather\": {}, \"load\": {}, \"kernel\": {}, \"scatter_add\": {}, \"store\": {}, \"sdr_stall\": {}}}",
                p.gather_cycles,
                p.load_cycles,
                p.kernel_cycles,
                p.scatter_add_cycles,
                p.store_cycles,
                p.sdr_stall_cycles
            ),
            format!(
                "\"partition\": {{\"parallelized\": {}, \"strips\": {}, \"fallback\": {}}}",
                p.partition_parallelized,
                p.partition_strips,
                match p.partition_fallback {
                    Some(kind) => json_str(kind.code()),
                    None => "null".to_string(),
                }
            ),
            format!("\"wall_seconds\": {}", json_f64(self.wall_seconds)),
        ];
        // Additive, schema-lenient like the `lints` array: only written
        // for multi-node steps, ignored-if-missing by the reader, never
        // diffed by the trend harness (the gated metrics carry it via
        // `cycles`), so adding it did not bump the schema version.
        if let Some(mn) = p.multinode {
            fields.push(format!(
                "\"multinode\": {{\"nodes\": {}, \"compute_cycles_max\": {}, \
                 \"compute_cycles_mean\": {}, \"comm_cycles_max\": {}, \"step_cycles\": {}, \
                 \"halo_in_words\": {}, \"force_out_words\": {}}}",
                mn.nodes,
                mn.compute_cycles_max,
                mn.compute_cycles_mean,
                mn.comm_cycles_max,
                mn.step_cycles,
                mn.halo_in_words,
                mn.force_out_words
            ));
        }
        match &self.error {
            Some(e) => fields.push(format!("\"error\": {}", json_str(e))),
            None => fields.push("\"error\": null".to_string()),
        }
        format!("    {{\n      {}\n    }}", fields.join(",\n      "))
    }

    fn from_json_value(v: &Json) -> Result<Self, String> {
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("variant record missing string `{k}`"))
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("variant record missing count `{k}`"))
        };
        // `json_f64` writes non-finite values as null; read them back as 0.
        let f64_field = |k: &str| -> Result<f64, String> {
            match v.get(k) {
                Some(Json::Null) => Ok(0.0),
                Some(j) => j
                    .as_f64()
                    .ok_or_else(|| format!("variant record field `{k}` is not a number")),
                None => Err(format!("variant record missing number `{k}`")),
            }
        };
        let locality = v
            .get("locality")
            .ok_or("variant record missing `locality`")?;
        let loc_field = |k: &str| -> Result<f64, String> {
            locality
                .get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("locality missing `{k}`"))
        };
        let phases = v.get("phases").ok_or("variant record missing `phases`")?;
        let phase_field = |k: &str| -> Result<u64, String> {
            phases
                .get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("phases missing `{k}`"))
        };
        let partition = v
            .get("partition")
            .ok_or("variant record missing `partition`")?;
        let partition_parallelized = partition
            .get("parallelized")
            .and_then(Json::as_bool)
            .ok_or("partition missing `parallelized`")?;
        let partition_strips = partition
            .get("strips")
            .and_then(Json::as_u64)
            .ok_or("partition missing `strips`")? as u32;
        let partition_fallback = match partition.get("fallback") {
            Some(Json::Str(s)) => Some(
                FallbackKind::from_code(s)
                    .ok_or_else(|| format!("unknown partition fallback code `{s}`"))?,
            ),
            _ => None,
        };
        let error = match v.get("error") {
            Some(Json::Str(s)) => Some(s.clone()),
            _ => None,
        };
        // Additive multi-node block: absent (or malformed, in foreign
        // files) reads as None, mirroring the lenient `lints` handling.
        let multinode = v.get("multinode").and_then(|mn| {
            let field = |k: &str| mn.get(k).and_then(Json::as_u64);
            Some(MultiNodeBreakdown {
                nodes: field("nodes")? as u32,
                compute_cycles_max: field("compute_cycles_max")?,
                compute_cycles_mean: field("compute_cycles_mean")?,
                comm_cycles_max: field("comm_cycles_max")?,
                step_cycles: field("step_cycles")?,
                halo_in_words: field("halo_in_words")?,
                force_out_words: field("force_out_words")?,
            })
        });
        Ok(Self {
            variant: str_field("variant")?,
            cycles: u64_field("cycles")?,
            seconds: f64_field("seconds")?,
            solution_gflops: f64_field("solution_gflops")?,
            all_gflops: f64_field("all_gflops")?,
            intensity_measured: f64_field("intensity_measured")?,
            locality: (loc_field("lrf")?, loc_field("srf")?, loc_field("mem")?),
            lrf_refs: u64_field("lrf_refs")?,
            srf_refs: u64_field("srf_refs")?,
            mem_refs: u64_field("mem_refs")?,
            iterations: u64_field("iterations")?,
            phases: PhaseBreakdown {
                gather_cycles: phase_field("gather")?,
                load_cycles: phase_field("load")?,
                kernel_cycles: phase_field("kernel")?,
                scatter_add_cycles: phase_field("scatter_add")?,
                store_cycles: phase_field("store")?,
                sdr_stall_cycles: phase_field("sdr_stall")?,
                partition_parallelized,
                partition_strips,
                partition_fallback,
                multinode,
            },
            wall_seconds: f64_field("wall_seconds")?,
            error,
        })
    }
}

/// A full run report, serialized as `BENCH_<label>.json`.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Short slug naming the experiment (also names the output file).
    pub label: String,
    /// Format version; always [`SCHEMA_VERSION`] for freshly built
    /// reports, whatever the file said for loaded ones.
    pub schema_version: u64,
    pub molecules: usize,
    /// Engine worker threads used for the functional phase.
    pub threads: usize,
    pub variants: Vec<VariantRecord>,
    /// Per-variant static analysis severity counts. Additive field:
    /// absent in older schema-3 files (parsed as empty) and ignored by
    /// the trend comparator.
    pub lints: Vec<LintRecord>,
    /// Campaign-service rate metrics. Additive field: absent in
    /// one-shot reports (parsed as `None`) and ignored by the trend
    /// comparator.
    pub campaign: Option<CampaignRecord>,
}

impl PerfReport {
    pub fn new(label: impl Into<String>, molecules: usize, threads: usize) -> Self {
        Self {
            label: label.into(),
            schema_version: SCHEMA_VERSION,
            molecules,
            threads,
            variants: Vec::new(),
            lints: Vec::new(),
            campaign: None,
        }
    }

    pub fn to_json(&self) -> String {
        let variants: Vec<String> = self.variants.iter().map(|v| v.to_json()).collect();
        let lints: Vec<String> = self.lints.iter().map(|l| l.to_json()).collect();
        let campaign = match &self.campaign {
            Some(c) => format!(",\n  \"campaign\": {}", c.to_json()),
            None => String::new(),
        };
        format!(
            "{{\n  \"label\": {},\n  \"schema_version\": {},\n  \"molecules\": {},\n  \"threads\": {},\n  \"variants\": [\n{}\n  ],\n  \"lints\": [\n{}\n  ]{}\n}}\n",
            json_str(&self.label),
            self.schema_version,
            self.molecules,
            self.threads,
            variants.join(",\n"),
            lints.join(",\n"),
            campaign
        )
    }

    /// Parse a report previously rendered by [`PerfReport::to_json`].
    ///
    /// A report whose `schema_version` differs from [`SCHEMA_VERSION`]
    /// (including pre-versioning files with no tag at all) is rejected:
    /// cross-version diffs silently compare renamed or re-scaled fields,
    /// so the only safe answer is "refresh the baseline".
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let version = v.get("schema_version").and_then(Json::as_u64).unwrap_or(1);
        if version != SCHEMA_VERSION {
            return Err(format!(
                "report schema version {version} does not match this binary's {SCHEMA_VERSION}; \
                 refresh the baseline (TREND_REFRESH=1) instead of diffing across formats"
            ));
        }
        let label = v
            .get("label")
            .and_then(Json::as_str)
            .ok_or("report missing `label`")?
            .to_string();
        let molecules = v
            .get("molecules")
            .and_then(Json::as_u64)
            .ok_or("report missing `molecules`")? as usize;
        let threads = v
            .get("threads")
            .and_then(Json::as_u64)
            .ok_or("report missing `threads`")? as usize;
        let variants = v
            .get("variants")
            .and_then(Json::as_arr)
            .ok_or("report missing `variants`")?
            .iter()
            .map(VariantRecord::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        // Leniently parsed additive field: schema-3 files written before
        // the lint summary existed simply have no `lints` array.
        let lints = match v.get("lints").and_then(Json::as_arr) {
            Some(items) => items
                .iter()
                .map(LintRecord::from_json_value)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        // Additive campaign block: absent (or malformed, in foreign
        // files) reads as None, mirroring the lenient `multinode` block.
        let campaign = v.get("campaign").and_then(CampaignRecord::from_json_value);
        Ok(Self {
            label,
            schema_version: version,
            molecules,
            threads,
            variants,
            lints,
            campaign,
        })
    }

    /// Read and parse a report file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write `BENCH_<label>.json` under `dir`, returning the path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.label));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Write under `$BENCH_REPORT_DIR` (default: current directory).
    pub fn write_default(&self) -> io::Result<PathBuf> {
        let dir = std::env::var("BENCH_REPORT_DIR").unwrap_or_else(|_| ".".to_string());
        self.write(Path::new(&dir))
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_writes() {
        let mut report = PerfReport::new("unit_test", 64, 4);
        report
            .variants
            .push(VariantRecord::from_error("variable", "boom \"quoted\""));
        let json = report.to_json();
        assert!(json.contains("\"label\": \"unit_test\""));
        assert!(json.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\\\"quoted\\\""));
        let dir = std::env::temp_dir();
        let path = report.write(&dir).expect("writes");
        assert!(path.ends_with("BENCH_unit_test.json"));
        let back = std::fs::read_to_string(&path).expect("reads");
        assert_eq!(back, json);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn non_finite_values_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    fn sample_record() -> VariantRecord {
        VariantRecord {
            variant: "fixed".into(),
            cycles: 123_456,
            seconds: 1.25e-4,
            solution_gflops: 31.5,
            all_gflops: 40.25,
            intensity_measured: 10.5,
            locality: (0.95, 0.026, 0.024),
            lrf_refs: 9_000_000,
            srf_refs: 250_000,
            mem_refs: 230_000,
            iterations: 7_800,
            phases: PhaseBreakdown {
                gather_cycles: 100,
                load_cycles: 50,
                kernel_cycles: 9_000,
                scatter_add_cycles: 70,
                store_cycles: 30,
                sdr_stall_cycles: 5,
                partition_parallelized: true,
                partition_strips: 4,
                partition_fallback: None,
                multinode: Some(MultiNodeBreakdown {
                    nodes: 8,
                    compute_cycles_max: 1_200,
                    compute_cycles_mean: 1_000,
                    comm_cycles_max: 150,
                    step_cycles: 1_350,
                    halo_in_words: 4_000,
                    force_out_words: 3_600,
                }),
            },
            wall_seconds: 0.75,
            error: None,
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let mut report = PerfReport::new("rt", 216, 2);
        report.variants.push(sample_record());
        let mut failed = VariantRecord::from_error("variable", "deadlock");
        failed.phases.partition_fallback = Some(FallbackKind::RegionConflict);
        report.variants.push(failed);
        report.lints.push(LintRecord {
            variant: "expanded".into(),
            errors: 0,
            warnings: 2,
            infos: 1,
        });
        let parsed = PerfReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed.label, "rt");
        assert_eq!(parsed.schema_version, SCHEMA_VERSION);
        assert_eq!(parsed.molecules, 216);
        assert_eq!(parsed.threads, 2);
        assert_eq!(parsed.variants.len(), 2);
        let a = &parsed.variants[0];
        let b = &report.variants[0];
        assert_eq!(a.variant, b.variant);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.solution_gflops, b.solution_gflops);
        assert_eq!(a.locality, b.locality);
        assert_eq!(a.lrf_refs, b.lrf_refs);
        assert_eq!(a.phases, b.phases);
        assert!(a.phases.partition_parallelized);
        assert_eq!(a.phases.partition_strips, 4);
        assert_eq!(a.error, None);
        let f = &parsed.variants[1].phases;
        assert_eq!(
            f.partition_fallback,
            Some(FallbackKind::RegionConflict),
            "fallback reason codes survive the round trip"
        );
        assert_eq!(
            parsed.variants[1].error.as_deref(),
            Some("deadlock"),
            "errors survive the round trip"
        );
        assert_eq!(parsed.lints, report.lints, "lint summary round-trips");
    }

    #[test]
    fn campaign_block_round_trips_and_is_optional() {
        // Absent block (every pre-campaign schema-3 file) parses as None.
        let mut report = PerfReport::new("camp", 64, 2);
        let parsed = PerfReport::from_json(&report.to_json()).expect("parses");
        assert!(parsed.campaign.is_none());
        assert!(!report.to_json().contains("campaign"));

        report.campaign = Some(CampaignRecord {
            jobs: 8,
            completed: 8,
            failed: 0,
            workers: 2,
            cache_hits: 4,
            cache_misses: 4,
            cache_bypass: 0,
            distinct_keys: 4,
            wall_seconds: 1.5,
            jobs_per_sec: 5.25,
            interactions_per_sec: 1.0e6,
        });
        let parsed = PerfReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed.campaign, report.campaign, "campaign round-trips");
        let c = parsed.campaign.unwrap();
        assert!((c.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_lints_array_parses_as_empty() {
        // Schema-3 baselines committed before the lint summary existed
        // have no `lints` key; they must keep parsing unchanged.
        let json = format!(
            "{{\"label\": \"pre-lints\", \"schema_version\": {SCHEMA_VERSION}, \
             \"molecules\": 216, \"threads\": 1, \"variants\": []}}"
        );
        let parsed = PerfReport::from_json(&json).expect("parses without `lints`");
        assert!(parsed.lints.is_empty());
    }

    #[test]
    fn mismatched_schema_version_is_rejected() {
        let mut report = PerfReport::new("old", 64, 1);
        report.schema_version = SCHEMA_VERSION + 1;
        let err = PerfReport::from_json(&report.to_json()).expect_err("must reject");
        assert!(err.contains("schema version"), "{err}");
        // Pre-versioning reports (no tag) are implicitly version 1.
        let legacy = r#"{"label": "x", "molecules": 1, "threads": 1, "variants": []}"#;
        let err = PerfReport::from_json(legacy).expect_err("must reject untagged");
        assert!(err.contains("schema version 1"), "{err}");
    }
}

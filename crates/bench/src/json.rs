//! A minimal JSON reader for the trend harness.
//!
//! The workspace builds offline and the vendored `serde` is a no-op
//! stand-in, so `BENCH_*.json` files are both rendered (see [`report`])
//! and parsed by hand. This parser covers exactly the JSON this
//! workspace emits — objects, arrays, strings with the escapes
//! `report::json_str` produces, numbers, booleans and null — and
//! reports the byte offset of the first error.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{s}` at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // {
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_report_shape() {
        let doc = r#"{
  "label": "t",
  "schema_version": 2,
  "variants": [
    {"variant": "fixed", "gflops": 12.5, "error": null, "ok": true},
    {"variant": "q\"uoted\n", "gflops": -1e-3, "ok": false}
  ]
}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("schema_version").unwrap().as_u64(), Some(2));
        let variants = v.get("variants").unwrap().as_arr().unwrap();
        assert_eq!(variants.len(), 2);
        assert_eq!(variants[0].get("variant").unwrap().as_str(), Some("fixed"));
        assert_eq!(variants[0].get("error"), Some(&Json::Null));
        assert_eq!(
            variants[1].get("variant").unwrap().as_str(),
            Some("q\"uoted\n")
        );
        assert_eq!(variants[1].get("gflops").unwrap().as_f64(), Some(-1e-3));
        assert_eq!(variants[1].get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "{\"a\" 1}",
            "12..5",
            "\"unterminated",
            "{} extra",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-2").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }
}

//! Perf-trend regression gate: run every StreamMD variant on the
//! 216-molecule box, diff the measurements against the committed
//! baseline (`bench/baselines/BENCH_trend_216.json`), print the delta
//! table, and exit non-zero on regression. CI runs this on every push;
//! run it locally with `cargo trend` (alias) or
//! `cargo bench -p merrimac-bench --bench trend`.
//!
//! Environment knobs:
//!
//! * `TREND_REFRESH=1` — rewrite the committed baseline from this run
//!   (after an intentional perf or model change) and exit.
//! * `TREND_BASELINE_DIR` — read/write baselines here instead of the
//!   committed directory.
//! * `BENCH_REPORT_DIR` — where the current report and the
//!   `TREND_DELTA.txt` table land (default: current directory).
//! * `TREND_TOL_{GFLOPS,INTENSITY,LOCALITY,CYCLES,WALL}` — tolerance
//!   overrides (fractions).
//! * `TREND_INJECT_GFLOPS_FACTOR` / `TREND_INJECT_VARIANT` — scale the
//!   measured GFLOPS of one variant (default: all) before diffing; a
//!   self-test hook proving the gate trips (e.g. factor `0.95`).

use std::path::Path;
use std::time::Instant;

use merrimac_bench::{
    banner, render_table, run, small_system, trend, PerfReport, RunSpec, Tolerances, VariantRecord,
};
use streammd::Variant;

const MOLECULES: usize = 216;
const LABEL: &str = "trend_216";

fn main() {
    banner(
        "trend gate",
        "per-variant perf vs. committed baseline, fail on regression",
    );
    let (system, list) = small_system(MOLECULES);
    let mut current = PerfReport::new(LABEL, MOLECULES, 1);
    for variant in Variant::ALL {
        let t0 = Instant::now();
        match run(RunSpec::new(&system, &list, variant)) {
            Ok(out) => {
                let wall = t0.elapsed().as_secs_f64();
                current
                    .variants
                    .push(VariantRecord::from_outcome(variant.name(), &out, wall));
            }
            Err(e) => {
                eprintln!("{e}");
                current
                    .variants
                    .push(VariantRecord::from_error(variant.name(), &e.to_string()));
            }
        }
    }
    apply_injection(&mut current);

    match current.write_default() {
        Ok(path) => println!("[ok] wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write current report: {e}");
            std::process::exit(1);
        }
    }

    let baseline_dir = trend::baseline_dir();
    if std::env::var("TREND_REFRESH").map(|v| v == "1") == Ok(true) {
        std::fs::create_dir_all(&baseline_dir).expect("create baseline dir");
        let path = current.write(&baseline_dir).expect("write baseline");
        println!("[ok] refreshed baseline {}", path.display());
        return;
    }

    let baseline = match trend::load_baseline(LABEL) {
        Ok(Some(b)) => b,
        Ok(None) => {
            println!(
                "no baseline {}/BENCH_{LABEL}.json — nothing to diff (seed one with TREND_REFRESH=1)",
                baseline_dir.display()
            );
            return;
        }
        Err(e) => {
            eprintln!("baseline unusable: {e}");
            std::process::exit(1);
        }
    };

    let tol = Tolerances::from_env();
    let diff = merrimac_bench::compare(&baseline, &current, &tol);
    let table = render_table(&diff);
    println!("{table}");
    write_delta_table(&table);
    if diff.is_regression() {
        eprintln!(
            "trend gate FAILED: {} metric regression(s), {} structural problem(s) vs {}",
            diff.regressions().len(),
            diff.problems.len(),
            baseline_dir.join(format!("BENCH_{LABEL}.json")).display()
        );
        eprintln!(
            "if this change is intentional, refresh the baseline: \
             TREND_REFRESH=1 cargo bench -p merrimac-bench --bench trend"
        );
        std::process::exit(1);
    }
    println!("trend gate passed: no regression beyond tolerance");
}

/// Self-test hook: scale measured GFLOPS so CI can prove the gate trips.
fn apply_injection(report: &mut PerfReport) {
    let Some(factor) = std::env::var("TREND_INJECT_GFLOPS_FACTOR")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
    else {
        return;
    };
    let only = std::env::var("TREND_INJECT_VARIANT").ok();
    for rec in &mut report.variants {
        if only.as_deref().is_none_or(|v| v == rec.variant) {
            rec.solution_gflops *= factor;
            println!(
                "[inject] {} solution_gflops scaled by {factor}",
                rec.variant
            );
        }
    }
}

fn write_delta_table(table: &str) {
    let dir = std::env::var("BENCH_REPORT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = Path::new(&dir).join("TREND_DELTA.txt");
    match std::fs::write(&path, table) {
        Ok(()) => println!("[ok] wrote {}", path.display()),
        Err(e) => eprintln!("could not write delta table: {e}"),
    }
}

//! Perf-trend regression gate: run every StreamMD variant on the trend
//! dataset, diff the measurements against the committed baseline
//! (`bench/baselines/BENCH_<label>.json`), print the delta table, and
//! exit non-zero on regression. CI runs the 216-molecule gate on every
//! push and the 900-molecule paper-scale gate on `main`; run either
//! locally with `cargo trend` (alias) or
//! `cargo bench -p merrimac-bench --bench trend`.
//!
//! Environment knobs:
//!
//! * `TREND_DATASET=900` — run the paper's 900-molecule dataset (label
//!   `trend_900`, looser wall-clock tolerance) instead of the default
//!   216-molecule box (label `trend_216`).
//! * `TREND_DATASET=multinode` — run the 216-molecule box through the
//!   end-to-end multi-node runner at several node counts (label
//!   `trend_multinode`, records like `variable@n8`); `cycles` is the
//!   simulated barrier-to-barrier multi-node step, so the gate guards
//!   the halo-exchange comm model as well as the compute path.
//! * `TREND_DATASET=lj` — run every variant on a 512-particle
//!   Lennard-Jones atomic fluid (label `trend_lj`), guarding the
//!   single-site workload path end to end.
//! * `TREND_DATASET=charged` — the same box with the charged-particle
//!   (LJ + Coulomb) model (label `trend_charged`).
//! * `TREND_THREADS` — engine worker threads for the functional phase
//!   (default: host parallelism capped at 8). Simulated metrics are
//!   bitwise-identical at any count; only wall-clock moves.
//! * `TREND_REFRESH=1` — rewrite the committed baseline from this run
//!   (after an intentional perf or model change) and exit.
//! * `TREND_BASELINE_DIR` — read/write baselines here instead of the
//!   committed directory.
//! * `BENCH_REPORT_DIR` — where the current report and the
//!   `TREND_DELTA.txt` table land (default: current directory).
//! * `TREND_TOL_{GFLOPS,INTENSITY,LOCALITY,CYCLES,WALL}` — tolerance
//!   overrides (fractions).
//! * `TREND_INJECT_GFLOPS_FACTOR` / `TREND_INJECT_VARIANT` — scale the
//!   measured GFLOPS of one variant (default: all) before diffing; a
//!   self-test hook proving the gate trips (e.g. factor `0.95`).

use std::path::Path;
use std::time::Instant;

use md_sim::neighbor::NeighborList;
use md_sim::system::WaterBox;
use merrimac_bench::{
    atomic_system, banner, paper_system, render_table, run, small_system, trend, PerfReport,
    RunSpec, Tolerances, VariantRecord,
};
use streammd::Variant;

/// What one gate run executes: every variant on one processor, or
/// selected variants decomposed over several simulated node counts.
enum Mode {
    Variants,
    MultiNode(&'static [(Variant, usize)]),
}

/// The multi-node sweep: the conditional-stream variant across the
/// acceptance node counts plus one block variant for coverage.
const MULTINODE_POINTS: &[(Variant, usize)] = &[
    (Variant::Variable, 1),
    (Variant::Variable, 2),
    (Variant::Variable, 8),
    (Variant::Fixed, 8),
];

/// The dataset the gate runs, selected by `TREND_DATASET`.
struct Dataset {
    label: &'static str,
    molecules: usize,
    system: WaterBox,
    list: NeighborList,
    tolerance_defaults: Tolerances,
    mode: Mode,
}

fn dataset_from_env() -> Dataset {
    match std::env::var("TREND_DATASET").as_deref() {
        Ok("900") => {
            let (system, list) = paper_system();
            Dataset {
                label: "trend_900",
                molecules: 900,
                system,
                list,
                tolerance_defaults: Tolerances::paper_scale(),
                mode: Mode::Variants,
            }
        }
        Ok("lj") => {
            let (system, list) = atomic_system(md_sim::water::WaterModel::lj_atom(), 512);
            Dataset {
                label: "trend_lj",
                molecules: 512,
                system,
                list,
                tolerance_defaults: Tolerances::default(),
                mode: Mode::Variants,
            }
        }
        Ok("charged") => {
            let (system, list) = atomic_system(md_sim::water::WaterModel::charged_atom(), 512);
            Dataset {
                label: "trend_charged",
                molecules: 512,
                system,
                list,
                tolerance_defaults: Tolerances::default(),
                mode: Mode::Variants,
            }
        }
        Ok("multinode") => {
            let (system, list) = small_system(216);
            Dataset {
                label: "trend_multinode",
                molecules: 216,
                system,
                list,
                tolerance_defaults: Tolerances::default(),
                mode: Mode::MultiNode(MULTINODE_POINTS),
            }
        }
        _ => {
            let (system, list) = small_system(216);
            Dataset {
                label: "trend_216",
                molecules: 216,
                system,
                list,
                tolerance_defaults: Tolerances::default(),
                mode: Mode::Variants,
            }
        }
    }
}

fn threads_from_env() -> usize {
    std::env::var("TREND_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1)
        })
}

fn main() {
    let ds = dataset_from_env();
    let threads = threads_from_env();
    banner(
        "trend gate",
        "per-variant perf vs. committed baseline, fail on regression",
    );
    println!(
        "dataset: {} molecules (label {}), {threads} engine thread(s)",
        ds.molecules, ds.label
    );
    let mut current = PerfReport::new(ds.label, ds.molecules, threads);
    match ds.mode {
        Mode::Variants => {
            for variant in Variant::ALL {
                let t0 = Instant::now();
                match run(RunSpec::new(&ds.system, &ds.list, variant).threads(threads)) {
                    Ok(out) => {
                        let wall = t0.elapsed().as_secs_f64();
                        current.variants.push(VariantRecord::from_outcome(
                            variant.name(),
                            &out,
                            wall,
                        ));
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        current
                            .variants
                            .push(VariantRecord::from_error(variant.name(), &e.to_string()));
                    }
                }
            }
        }
        Mode::MultiNode(points) => {
            for &(variant, nodes) in points {
                let name = format!("{}@n{nodes}", variant.name());
                let t0 = Instant::now();
                let spec = RunSpec::new(&ds.system, &ds.list, variant)
                    .threads(threads)
                    .nodes(nodes);
                match run(spec) {
                    Ok(out) => {
                        let wall = t0.elapsed().as_secs_f64();
                        // n = 1 runs the plain single-node step and has
                        // no breakdown block to print.
                        if let Some(mn) = out.perf.phases.multinode {
                            println!(
                                "  {name}: step {} cycles (compute max {}, comm max {}, \
                                 imbalance {:.2}, halo {} words)",
                                mn.step_cycles,
                                mn.compute_cycles_max,
                                mn.comm_cycles_max,
                                mn.imbalance(),
                                mn.halo_in_words
                            );
                        } else {
                            println!("  {name}: step {} cycles (single node)", out.perf.cycles);
                        }
                        current
                            .variants
                            .push(VariantRecord::from_outcome(&name, &out, wall));
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        current
                            .variants
                            .push(VariantRecord::from_error(&name, &e.to_string()));
                    }
                }
            }
        }
    }
    apply_injection(&mut current);

    match current.write_default() {
        Ok(path) => println!("[ok] wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write current report: {e}");
            std::process::exit(1);
        }
    }

    let baseline_dir = trend::baseline_dir();
    if std::env::var("TREND_REFRESH").map(|v| v == "1") == Ok(true) {
        std::fs::create_dir_all(&baseline_dir).expect("create baseline dir");
        let path = current.write(&baseline_dir).expect("write baseline");
        println!("[ok] refreshed baseline {}", path.display());
        return;
    }

    let baseline = match trend::load_baseline(ds.label) {
        Ok(Some(b)) => b,
        Ok(None) => {
            println!(
                "no baseline {}/BENCH_{}.json — nothing to diff (seed one with TREND_REFRESH=1)",
                baseline_dir.display(),
                ds.label
            );
            return;
        }
        Err(e) => {
            eprintln!("baseline unusable: {e}");
            std::process::exit(1);
        }
    };

    let tol = Tolerances::from_env_or(ds.tolerance_defaults);
    let diff = merrimac_bench::compare(&baseline, &current, &tol);
    let table = render_table(&diff);
    println!("{table}");
    write_delta_table(&table);
    if diff.is_regression() {
        eprintln!(
            "trend gate FAILED: {} metric regression(s), {} structural problem(s) vs {}",
            diff.regressions().len(),
            diff.problems.len(),
            baseline_dir
                .join(format!("BENCH_{}.json", ds.label))
                .display()
        );
        eprintln!(
            "if this change is intentional, refresh the baseline: \
             TREND_REFRESH=1 cargo bench -p merrimac-bench --bench trend"
        );
        std::process::exit(1);
    }
    println!("trend gate passed: no regression beyond tolerance");
}

/// Self-test hook: scale measured GFLOPS so CI can prove the gate trips.
fn apply_injection(report: &mut PerfReport) {
    let Some(factor) = std::env::var("TREND_INJECT_GFLOPS_FACTOR")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
    else {
        return;
    };
    let only = std::env::var("TREND_INJECT_VARIANT").ok();
    for rec in &mut report.variants {
        if only.as_deref().is_none_or(|v| v == rec.variant) {
            rec.solution_gflops *= factor;
            println!(
                "[inject] {} solution_gflops scaled by {factor}",
                rec.variant
            );
        }
    }
}

fn write_delta_table(table: &str) {
    let dir = std::env::var("BENCH_REPORT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = Path::new(&dir).join("TREND_DELTA.txt");
    match std::fs::write(&path, table) {
        Ok(()) => println!("[ok] wrote {}", path.display()),
        Err(e) => eprintln!("could not write delta table: {e}"),
    }
}

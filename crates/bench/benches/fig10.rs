//! Figure 10 — VLIW schedules of the `variable` interaction kernel
//! before (list-scheduled, no pipelining) and after optimization
//! (unrolled twice + software pipelined), with the issue-rate
//! improvement the paper quantifies at 28%.

use merrimac_arch::{MachineConfig, OpCosts};
use merrimac_bench::banner;
use merrimac_kernel::render::{render_pipelined, render_schedule};
use merrimac_sim::{CompiledKernel, KernelOpt};
use streammd::kernels::variable_kernel;

fn main() {
    banner(
        "Figure 10",
        "schedules of the variable interaction kernel, before/after optimization",
    );
    let cfg = MachineConfig::default();
    let costs = OpCosts::default();

    let unopt = CompiledKernel::compile(variable_kernel(), &cfg, &costs, KernelOpt::unoptimized());
    let opt = CompiledKernel::compile(variable_kernel(), &cfg, &costs, KernelOpt::optimized());

    // (a) the first screens of the unoptimized schedule.
    let text = render_schedule(&unopt.lowered, &unopt.schedule);
    let head: Vec<&str> = text.lines().take(28).collect();
    println!("(a) unoptimized — one iteration per schedule, latencies exposed");
    println!("{}", head.join("\n"));
    println!("      ... ({} cycles total)\n", unopt.schedule.length);

    // (b) steady state of the optimized modulo schedule.
    let pipe = opt.pipelined.as_ref().expect("pipelined");
    let text = render_pipelined(&opt.lowered, pipe);
    let head: Vec<&str> = text.lines().take(28).collect();
    println!("(b) optimized — unrolled 2x, software pipelined (steady state)");
    println!("{}", head.join("\n"));
    println!("      ... (II {} for two interactions)\n", pipe.ii);

    let before = unopt.cycles_per_iteration();
    let after = opt.cycles_per_iteration();
    let improvement = (before / after - 1.0) * 100.0;
    println!("cycles per interaction: before {before:.1}, after {after:.1}");
    println!("issue-rate improvement: {improvement:.0}% (paper: 28%)");
    println!(
        "steady-state: a new VLIW instruction issues on {:.0}% of cycles (paper: ~90%)",
        pipe.issue_rate() * 100.0
    );
    println!(
        "slot occupancy: {:.0}% of the 4 FPU slots",
        pipe.occupancy() * 100.0
    );

    assert!(after < before, "optimization must help");
    assert!(improvement > 10.0, "improvement {improvement}% too small");
    assert!(pipe.issue_rate() > 0.85);
    println!("\n[ok] unroll + software pipelining reproduces the Figure 10 effect");
}

//! Workload size sweep — the atomic workloads (LJ fluid, charged
//! particles) across the 10⁴–10⁵-particle range, per variant, with the
//! arithmetic-intensity and sustained-GFLOPS trajectory printed against
//! the water reference point. Demonstrates that the workload-generic
//! pipeline (layout, kernels, admission, execution) holds at scaling
//! sizes, not just at the sanity-harness counts.
//!
//! Environment knobs:
//!
//! * `SWEEP_SIZES` — comma-separated particle counts
//!   (default `10000,31623,100000`).
//! * `SWEEP_VARIANTS` — comma-separated variant names
//!   (default `variable`; pass e.g. `variable,fixed` for list coverage
//!   on both the half-list and block layouts).
//! * `SWEEP_THREADS` — engine worker threads (default: host
//!   parallelism capped at 8).

use std::time::Instant;

use md_sim::water::WaterModel;
use merrimac_bench::{atomic_system, banner, run, RunSpec};
use streammd::Variant;

fn sizes_from_env() -> Vec<usize> {
    std::env::var("SWEEP_SIZES")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![10_000, 31_623, 100_000])
}

fn variants_from_env() -> Vec<Variant> {
    std::env::var("SWEEP_VARIANTS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| {
                    let t = t.trim();
                    Variant::ALL.iter().copied().find(|v| v.name() == t)
                })
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![Variant::Variable])
}

fn threads_from_env() -> usize {
    std::env::var("SWEEP_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1)
        })
}

fn main() {
    banner(
        "workload sweep",
        "atomic workloads over 10⁴–10⁵ particles, intensity & GFLOPS",
    );
    let sizes = sizes_from_env();
    let variants = variants_from_env();
    let threads = threads_from_env();
    println!("sizes: {sizes:?}, {threads} engine thread(s)\n");
    println!(
        "{:<10} {:>9} {:<12} {:>13} {:>10} {:>9} {:>9}",
        "workload", "particles", "variant", "interactions", "intensity", "GFLOPS", "wall s"
    );
    let mut failures = 0;
    for (label, model) in [
        ("lj", WaterModel::lj_atom()),
        ("charged", WaterModel::charged_atom()),
    ] {
        for &n in &sizes {
            let (system, list) = atomic_system(model.clone(), n);
            for &variant in &variants {
                let t0 = Instant::now();
                match run(RunSpec::new(&system, &list, variant).threads(threads)) {
                    Ok(out) => {
                        println!(
                            "{:<10} {:>9} {:<12} {:>13} {:>10.3} {:>9.2} {:>9.2}",
                            label,
                            n,
                            variant.name(),
                            out.dataset.interactions,
                            out.perf.intensity_measured,
                            out.perf.solution_gflops,
                            t0.elapsed().as_secs_f64()
                        );
                    }
                    Err(e) => {
                        failures += 1;
                        eprintln!("{label} n={n} {variant}: {e}");
                    }
                }
            }
        }
    }
    println!("\nwater reference (216 molecules, variable): intensity 10.52, 26.7 GFLOPS");
    println!("record-word bound: water 26.0, charged 13.7, lj 11.7 flops/word");
    if failures > 0 {
        eprintln!("\nworkload sweep: {failures} run(s) failed");
        std::process::exit(1);
    }
}

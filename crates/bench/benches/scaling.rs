//! Extension X1 — multi-node scaling of StreamMD over the folded-Clos
//! network ("initial results of the scaling of the algorithm to larger
//! configurations of the system", paper Section 1).
//!
//! Two parts: the analytic strong-scaling sweep on the tiled
//! 57.6M-molecule workload, and a simulated-vs-analytic comparison on
//! the paper's 900-molecule dataset — the end-to-end multi-node runner
//! (`streammd::multinode`) against the closed-form estimator, with the
//! estimator's two-phase latency and `worst_level` fixes applied. Set
//! `SCALING_MAX_SIM_NODES` to cap the simulated node counts (CI uses
//! the default 8).

use std::time::Instant;

use merrimac_arch::{MachineConfig, NetworkConfig};
use merrimac_bench::{banner, paper_system, run, RunSpec};
use merrimac_net::scaling::{estimate, scaling_sweep, ScalingWorkload};
use merrimac_net::topology::Topology;
use streammd::{MultiNodeBreakdown, Variant};

fn main() {
    banner(
        "Extension X1",
        "multi-node StreamMD scaling on the folded-Clos network",
    );

    // Calibrate per-molecule cost from the simulated single-node run.
    let (system, list) = paper_system();
    let out = match run(RunSpec::new(&system, &list, Variant::Variable)) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let cycles_per_molecule = out.perf.cycles as f64 / system.num_molecules() as f64;
    println!(
        "single-node calibration: {:.0} cycles/molecule/step (variable variant)\n",
        cycles_per_molecule
    );

    let machine = MachineConfig::default();
    let net = NetworkConfig::default();
    // 57.6M-molecule system: the paper dataset tiled 40x40x40.
    let w = ScalingWorkload::paper_scaled(40, cycles_per_molecule);
    println!(
        "workload: {:.1}M molecules, r_c = {} nm",
        w.molecules / 1e6,
        w.cutoff_nm
    );
    println!();
    println!(
        "{:>7} {:>12} {:>10} {:>12} {:>12} {:>10} {:>12}",
        "nodes", "mols/node", "halo/node", "compute(c)", "comm(c)", "eff", "TFLOPS"
    );
    let pts = scaling_sweep(&machine, &net, &w, 8192).expect("sweep over modeled node counts");
    for p in &pts {
        println!(
            "{:>7} {:>12.0} {:>10.0} {:>12.0} {:>12.0} {:>9.0}% {:>12.2}",
            p.nodes,
            p.molecules_per_node,
            p.halo_per_node,
            p.compute_cycles,
            p.comm_cycles,
            p.efficiency * 100.0,
            p.solution_gflops / 1e3
        );
    }

    let first = pts.first().unwrap();
    let last = pts.last().unwrap();
    assert!(last.step_seconds < first.step_seconds);
    assert!(last.efficiency < 1.0);
    println!();
    println!(
        "[ok] {}x nodes -> {:.0}x faster steps at {:.0}% efficiency",
        last.nodes,
        first.step_seconds / last.step_seconds,
        last.efficiency * 100.0
    );

    simulated_vs_analytic(&system, &list, &machine, &net, cycles_per_molecule);
}

/// Run the end-to-end multi-node runner on the real 900-molecule box
/// and put it next to the analytic estimator on the *same* workload.
/// The estimator assumes perfectly balanced compute and overlapped
/// communication; the executed runner measures real strip imbalance and
/// two non-overlapped exchange phases, so the gap between the curves is
/// exactly what the closed form cannot see. The pre-fix column re-adds
/// the single-latency bug for contrast (a small correction at on-board
/// latencies, growing with the level).
fn simulated_vs_analytic(
    system: &md_sim::system::WaterBox,
    list: &md_sim::neighbor::NeighborList,
    machine: &MachineConfig,
    net: &NetworkConfig,
    cycles_per_molecule: f64,
) {
    let max_nodes: usize = std::env::var("SCALING_MAX_SIM_NODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let n_mol = system.num_molecules() as f64;
    let side = system.pbc().side();
    let workload = ScalingWorkload {
        molecules: n_mol,
        cutoff_nm: list.params.cutoff,
        density: n_mol / side.powi(3),
        cycles_per_molecule,
        interactions_per_molecule: list.num_pairs() as f64 / n_mol,
    };
    let topo = Topology::new(net.clone());

    println!();
    banner(
        "Extension X1b",
        "simulated multi-node runner vs the (fixed) analytic estimator, 900 molecules",
    );
    println!(
        "{:>7} {:>12} {:>12} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "nodes",
        "sim step(c)",
        "sim comm(c)",
        "sim eff",
        "imbal",
        "halo(w)",
        "analytic eff",
        "pre-fix eff"
    );
    let mut n = 1usize;
    while n <= max_nodes {
        let t0 = Instant::now();
        let sim = match run(RunSpec::new(system, list, Variant::Variable).nodes(n)) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        // n = 1 takes the plain single-node path (no breakdown block);
        // its step is the canonical run with no communication at all.
        let mn = sim.perf.phases.multinode.unwrap_or(MultiNodeBreakdown {
            nodes: 1,
            compute_cycles_max: sim.perf.cycles,
            compute_cycles_mean: sim.perf.cycles,
            comm_cycles_max: 0,
            step_cycles: sim.perf.cycles,
            halo_in_words: 0,
            force_out_words: 0,
        });
        let sim_efficiency = sim.report.cycles as f64 / (n as f64 * mn.step_cycles.max(1) as f64);
        let ana = estimate(machine, &topo, &workload, n).expect("in-range node count");
        // What the estimator said before the two-phase latency fix:
        // identical bandwidth cycles, one latency charge instead of two.
        let level = topo.worst_level(n).expect("in-range node count");
        let prefix_comm = ana.comm_cycles - topo.latency_cycles(level) as f64;
        let prefix_step =
            ana.compute_cycles.max(prefix_comm) + 0.05 * prefix_comm.min(ana.compute_cycles);
        let single = workload.molecules * workload.cycles_per_molecule;
        let prefix_eff = single / (n as f64 * prefix_step);
        println!(
            "{:>7} {:>12} {:>12} {:>9.0}% {:>9.2} {:>10} {:>11.2}% {:>11.2}% ({:.1}s)",
            n,
            mn.step_cycles,
            mn.comm_cycles_max,
            sim_efficiency * 100.0,
            mn.imbalance(),
            mn.halo_in_words,
            ana.efficiency * 100.0,
            prefix_eff * 100.0,
            t0.elapsed().as_secs_f64()
        );
        assert!(sim_efficiency > 0.0 && sim_efficiency <= 1.0 + 1e-9);
        assert!(
            ana.efficiency <= prefix_eff + 1e-12,
            "two latency charges cannot make the analytic curve faster"
        );
        n *= 2;
    }
    println!();
    println!(
        "[ok] simulated forces are bitwise N-independent; the analytic curve assumes \
         perfect load balance and comm/compute overlap, so on a box this small the \
         executed runner sits below it — the gap is the measured strip imbalance"
    );
}

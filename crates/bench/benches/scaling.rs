//! Extension X1 — multi-node scaling of StreamMD over the folded-Clos
//! network ("initial results of the scaling of the algorithm to larger
//! configurations of the system", paper Section 1).

use merrimac_arch::{MachineConfig, NetworkConfig};
use merrimac_bench::{banner, paper_system, run, RunSpec};
use merrimac_net::scaling::{scaling_sweep, ScalingWorkload};
use streammd::Variant;

fn main() {
    banner(
        "Extension X1",
        "multi-node StreamMD scaling on the folded-Clos network",
    );

    // Calibrate per-molecule cost from the simulated single-node run.
    let (system, list) = paper_system();
    let out = match run(RunSpec::new(&system, &list, Variant::Variable)) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let cycles_per_molecule = out.perf.cycles as f64 / system.num_molecules() as f64;
    println!(
        "single-node calibration: {:.0} cycles/molecule/step (variable variant)\n",
        cycles_per_molecule
    );

    let machine = MachineConfig::default();
    let net = NetworkConfig::default();
    // 57.6M-molecule system: the paper dataset tiled 40x40x40.
    let w = ScalingWorkload::paper_scaled(40, cycles_per_molecule);
    println!(
        "workload: {:.1}M molecules, r_c = {} nm",
        w.molecules / 1e6,
        w.cutoff_nm
    );
    println!();
    println!(
        "{:>7} {:>12} {:>10} {:>12} {:>12} {:>10} {:>12}",
        "nodes", "mols/node", "halo/node", "compute(c)", "comm(c)", "eff", "TFLOPS"
    );
    let pts = scaling_sweep(&machine, &net, &w, 8192);
    for p in &pts {
        println!(
            "{:>7} {:>12.0} {:>10.0} {:>12.0} {:>12.0} {:>9.0}% {:>12.2}",
            p.nodes,
            p.molecules_per_node,
            p.halo_per_node,
            p.compute_cycles,
            p.comm_cycles,
            p.efficiency * 100.0,
            p.solution_gflops / 1e3
        );
    }

    let first = pts.first().unwrap();
    let last = pts.last().unwrap();
    assert!(last.step_seconds < first.step_seconds);
    assert!(last.efficiency < 1.0);
    println!();
    println!(
        "[ok] {}x nodes -> {:.0}x faster steps at {:.0}% efficiency",
        last.nodes,
        first.step_seconds / last.step_seconds,
        last.efficiency * 100.0
    );
}

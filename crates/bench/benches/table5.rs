//! Table 5 — water model properties. The paper compares SPC, TIP5P and
//! PPC by dipole moment, dielectric constant and self-diffusion
//! coefficient. We compute the dipole from each model's geometry and the
//! self-diffusion coefficient from a short NVE trajectory (Einstein
//! relation); the dielectric constant needs multi-nanosecond sampling
//! and is documented as out of scope (DESIGN.md, substitution table).

use md_sim::analyze::MsdTracker;
use md_sim::integrate::Integrator;
use md_sim::neighbor::NeighborListParams;
use md_sim::system::WaterBox;
use md_sim::water::WaterModel;
use merrimac_bench::banner;

fn measure_diffusion(model: WaterModel, steps: usize) -> f64 {
    let mut system = WaterBox::builder()
        .molecules(216)
        .model(model)
        .temperature(300.0)
        .seed(7)
        .build();
    let integ = Integrator {
        dt: 0.002,
        neighbor: NeighborListParams {
            cutoff: 0.75,
            skin: 0.08,
            rebuild_interval: 5,
        },
        ..Default::default()
    };
    // Equilibrate with velocity rescaling (the jittered lattice melts and
    // would otherwise heat the NVE run far above 300 K), then measure.
    for _ in 0..8 {
        integ.run(&mut system, steps / 16);
        integ.rescale_temperature(&mut system, 300.0);
    }
    let mut tracker = MsdTracker::new(&system);
    let chunk = 20;
    let mut t = 0.0;
    for _ in 0..(steps / chunk) {
        integ.run(&mut system, chunk);
        t += integ.dt * chunk as f64;
        tracker.sample(&system, t);
    }
    tracker.diffusion_1e5_cm2_s(2).unwrap_or(0.0)
}

fn main() {
    banner(
        "Table 5",
        "Water model properties (dipole; measured self-diffusion)",
    );
    println!(
        "{:<12} {:>14} {:>22} {:>20}",
        "model", "dipole (D)", "paper dipole (D)", "self-diff (1e-5 cm2/s)"
    );
    let rows: Vec<(WaterModel, f64, Option<f64>)> = vec![
        (
            WaterModel::spc(),
            2.27,
            Some(measure_diffusion(WaterModel::spc(), 400)),
        ),
        (WaterModel::tip5p(), 2.29, None),
        (
            WaterModel::ppc_static(),
            2.52,
            Some(measure_diffusion(WaterModel::ppc_static(), 400)),
        ),
    ];
    for (m, paper_dipole, diff) in rows {
        println!(
            "{:<12} {:>14.2} {:>22.2} {:>20}",
            m.name,
            m.dipole_debye(),
            paper_dipole,
            diff.map_or("n/a (virtual sites)".to_string(), |d| format!("{d:.2}")),
        );
    }
    println!();
    println!("experimental: dipole 2.65 D (liquid), self-diffusion 2.30e-5 cm2/s");
    println!("paper self-diffusion: SPC 3.85, TIP5P 2.62, PPC 2.6 (1e-5 cm2/s)");
    println!("note: 216 molecules × a few ps is a smoke-scale estimate; expect");
    println!("      O(1) agreement with the published values, not 2 digits.");
}

//! Figure 7 — overlap of memory and kernel operations before and after
//! the stream-descriptor-register allocation fix.
//!
//! The paper found that the original allocator held the register mapping
//! an SRF stream to its memory address until the stream died, starving
//! the memory system of descriptors and serializing gathers behind
//! kernels (Figure 7a). Releasing at transfer completion restored
//! perfect overlap (Figure 7b). We run the `duplicated` variant — the
//! one the paper's figure uses — under both policies with a reduced
//! descriptor file so the hazard bites, and print the two timelines.

use md_sim::neighbor::NeighborList;
use md_sim::system::WaterBox;
use merrimac_arch::MachineConfig;
use merrimac_bench::{banner, paper_params, pct, SEED};
use merrimac_sim::SdrPolicy;
use streammd::{StreamMdApp, Variant};

fn run(policy: SdrPolicy) -> (u64, f64, String) {
    // The flaw only matters when (a) descriptors are scarce relative to
    // the live streams of the software pipeline and (b) the kernels are
    // the bottleneck, so the memory system has slack it could use to run
    // ahead. Give the machine a fast memory path (cached gathers) and a
    // small descriptor file, as in the paper's original configuration.
    let cfg = MachineConfig {
        stream_descriptor_registers: 4,
        cache_allocates_gathers: true,
        ..MachineConfig::default()
    };
    let system = WaterBox::paper_dataset(SEED);
    let list = NeighborList::build(&system, paper_params());
    let out = StreamMdApp::builder()
        .machine(cfg)
        .neighbor(paper_params())
        .policy(policy)
        .build()
        .expect("valid config")
        .run_step_with_list(&system, &list, Variant::Duplicated)
        .expect("run");
    (
        out.perf.cycles,
        out.perf.overlap,
        out.report.timeline.render(28),
    )
}

fn main() {
    banner(
        "Figure 7",
        "memory/kernel overlap: naive vs eager SDR allocation (duplicated variant)",
    );
    let (naive_cycles, naive_overlap, naive_tl) = run(SdrPolicy::Naive);
    let (eager_cycles, eager_overlap, eager_tl) = run(SdrPolicy::Eager);

    println!("(a) naive allocation — register held until the SRF stream dies");
    println!("{naive_tl}");
    println!("(b) eager allocation — register released at transfer completion");
    println!("{eager_tl}");
    println!(
        "naive:  {naive_cycles} cycles, overlap {} of memory time",
        pct(naive_overlap)
    );
    println!(
        "eager:  {eager_cycles} cycles, overlap {} of memory time",
        pct(eager_overlap)
    );
    println!(
        "fix speedup: {:.1}% (paper: partial overlap -> perfect overlap)",
        (naive_cycles as f64 / eager_cycles as f64 - 1.0) * 100.0
    );
    assert!(eager_cycles <= naive_cycles);
    assert!(eager_overlap >= naive_overlap);
    println!("\n[ok] eager policy restores overlap");
}

//! Table 2 — dataset properties: molecule count, interactions, centre
//! replication and padded neighbour totals for the fixed-L layout.

use merrimac_bench::{banner, paper_system, run, RunSpec};
use streammd::Variant;

fn main() {
    banner(
        "Table 2",
        "Dataset properties (900-molecule SPC water, r_c = 1.0 nm)",
    );
    let (system, list) = paper_system();
    let out = match run(RunSpec::new(&system, &list, Variant::Fixed)) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let d = out.dataset;
    println!("{:<38} {:>10}", "molecules", d.molecules);
    println!("{:<38} {:>10}", "interactions", d.interactions);
    println!(
        "{:<38} {:>10}",
        "repeated molecules for fixed", d.repeated_molecules_fixed
    );
    println!(
        "{:<38} {:>10}",
        "total neighbors for fixed", d.total_neighbors_fixed
    );
    println!();
    println!(
        "mean neighbours/molecule: {:.1} (expected 4/3·π·r_c³·ρ/2 = {:.1})",
        list.mean_neighbors_per_molecule(system.num_molecules()),
        4.0 / 3.0 * std::f64::consts::PI * 33.327 / 2.0
    );
    println!(
        "dummy padding overhead: {:.1}%",
        (d.total_neighbors_fixed as f64 / d.interactions as f64 - 1.0) * 100.0
    );
    println!();
    println!("paper (reconstructed): 900 molecules, ~62k interactions,");
    println!("~9k repeated molecules, ~72k padded neighbour slots");
}

//! Figure 8 — locality: percentage of references made to each level of
//! the register hierarchy (LRF / SRF / MEM) for each variant.

use merrimac_bench::{banner, paper_system, run, RunSpec};
use streammd::Variant;

fn bar(frac: f64, width: usize) -> String {
    let n = (frac * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

fn main() {
    banner("Figure 8", "Locality of the StreamMD implementations");
    let (system, list) = paper_system();
    let results: Vec<_> = Variant::ALL
        .iter()
        .filter_map(|&v| match run(RunSpec::new(&system, &list, v)) {
            Ok(out) => Some((v, out)),
            Err(e) => {
                eprintln!("skipping {v}: {e}");
                None
            }
        })
        .collect();
    println!(
        "{:<12} {:>8} {:>8} {:>8}   (references by hierarchy level)",
        "variant", "%LRF", "%SRF", "%MEM"
    );
    for (v, out) in &results {
        let (l, s, m) = out.perf.locality;
        println!(
            "{:<12} {:>7.1}% {:>7.2}% {:>7.2}%   {}",
            v.name(),
            l * 100.0,
            s * 100.0,
            m * 100.0,
            bar(l, 40)
        );
    }
    println!();
    println!("paper: ~89-96% LRF across variants; SRF and MEM nearly equal,");
    println!("showing the SRF is a staging area, not a locality store.");

    for (v, out) in &results {
        let (l, s, m) = out.perf.locality;
        assert!(l > 0.85, "{v}: LRF {l}");
        let rel = (s - m).abs() / m.max(1e-12);
        assert!(rel < 0.6, "{v}: SRF {s} vs MEM {m} diverge");
    }
    println!("\n[ok] LRF-dominated locality with SRF ≈ MEM reproduced");
}

//! Machine-readable performance report: runs every StreamMD variant on
//! a 216-molecule box at engine thread counts {1, 4}, verifies the
//! parallel engine's bitwise-determinism contract, and writes
//! `BENCH_streammd_216.json` (override the directory with
//! `BENCH_REPORT_DIR`).

use std::time::Instant;

use merrimac_analysis::severity_counts;
use merrimac_bench::{
    analyze, banner, run, small_system, LintRecord, PerfReport, RunSpec, VariantRecord,
};
use streammd::Variant;

const MOLECULES: usize = 216;
const THREADS: usize = 4;

fn main() {
    banner(
        "perf report",
        "per-variant GFLOPS/intensity/locality as BENCH_*.json",
    );
    let (system, list) = small_system(MOLECULES);
    let mut report = PerfReport::new(format!("streammd_{MOLECULES}"), MOLECULES, THREADS);

    println!(
        "{:<12} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "variant", "sol GFLOPS", "intensity", "serial (s)", "parallel(s)", "speedup"
    );
    for variant in Variant::ALL {
        let t0 = Instant::now();
        let serial = run(RunSpec::new(&system, &list, variant));
        let serial_wall = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let parallel = run(RunSpec::new(&system, &list, variant).threads(THREADS));
        let parallel_wall = t1.elapsed().as_secs_f64();
        match (serial, parallel) {
            (Ok(s), Ok(p)) => {
                assert_eq!(
                    s.forces, p.forces,
                    "{variant}: parallel forces must be bitwise-identical to serial"
                );
                assert_eq!(s.perf.cycles, p.perf.cycles);
                assert_eq!(s.report.counters, p.report.counters);
                println!(
                    "{:<12} {:>12.2} {:>10.2} {:>12.3} {:>12.3} {:>9.2}x",
                    variant.name(),
                    p.perf.solution_gflops,
                    p.perf.intensity_measured,
                    serial_wall,
                    parallel_wall,
                    serial_wall / parallel_wall.max(1e-12)
                );
                report.variants.push(VariantRecord::from_outcome(
                    variant.name(),
                    &p,
                    parallel_wall,
                ));
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("{e}");
                report
                    .variants
                    .push(VariantRecord::from_error(variant.name(), &e.to_string()));
            }
        }
    }

    println!("\nstatic analysis (merrimac-lint passes over each step program):");
    println!(
        "{:<12} {:>7} {:>9} {:>6}",
        "variant", "errors", "warnings", "infos"
    );
    for variant in Variant::ALL {
        match analyze(RunSpec::new(&system, &list, variant)) {
            Ok(diags) => {
                let (errors, warnings, infos) = severity_counts(&diags);
                println!(
                    "{:<12} {:>7} {:>9} {:>6}",
                    variant.name(),
                    errors,
                    warnings,
                    infos
                );
                report.lints.push(LintRecord {
                    variant: variant.name().to_string(),
                    errors,
                    warnings,
                    infos,
                });
            }
            Err(e) => eprintln!("lint pass skipped for {variant}: {e}"),
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\nhost cores available: {cores} (speedup requires > 1)");
    match report.write_default() {
        Ok(path) => println!("[ok] wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write report: {e}");
            std::process::exit(1);
        }
    }
}

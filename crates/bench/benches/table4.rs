//! Table 4 — arithmetic intensity of the StreamMD variants: the
//! closed-form "calculated" column, the dataset-aware refinement (the
//! paper's parenthesized values), and the value measured by the
//! simulator.

use merrimac_bench::{banner, paper_system, run, RunSpec};
use streammd::{AnalyticModel, Variant};

fn main() {
    banner("Table 4", "Arithmetic intensity (flops per memory word)");
    let (system, list) = paper_system();
    let results: Vec<_> = Variant::ALL
        .iter()
        .filter_map(|&v| match run(RunSpec::new(&system, &list, v)) {
            Ok(out) => Some((v, out)),
            Err(e) => {
                eprintln!("skipping {v}: {e}");
                None
            }
        })
        .collect();

    let n = system.num_molecules() as u64;
    let pairs = list.num_pairs() as u64;
    let nbar = pairs as f64 / n as f64;
    println!(
        "{:<12} {:>12} {:>18} {:>10}",
        "variant", "calculated", "calc (dataset)", "measured"
    );
    for (v, out) in &results {
        let ideal = AnalyticModel::ideal(*v, 8, nbar);
        let d = out.dataset;
        let ds = AnalyticModel::for_dataset(
            *v,
            8,
            pairs,
            d.total_neighbors_fixed as u64,
            d.repeated_molecules_fixed as u64,
            n,
        );
        println!(
            "{:<12} {:>12.2} {:>18.2} {:>10.2}",
            v.name(),
            ideal.intensity,
            ds.intensity,
            out.perf.intensity_measured
        );
    }
    println!();
    println!("paper Table 4 (surviving values): expanded ~4.9 calculated;");
    println!("fixed measured 8.6; variable measured ~9.9-12; duplicated ~17-18 calculated.");
    println!("Ordering to reproduce: duplicated > variable ≈ fixed > expanded.");

    // Assert the ordering a reader of the table expects.
    let get = |v: Variant| {
        results
            .iter()
            .find(|(x, _)| *x == v)
            .map(|(_, o)| o.perf.intensity_measured)
            .unwrap_or_else(|| panic!("variant {v} missing (failed above)"))
    };
    assert!(get(Variant::Duplicated) > get(Variant::Fixed));
    assert!(get(Variant::Fixed) > get(Variant::Expanded));
    assert!(get(Variant::Variable) > get(Variant::Expanded));
    println!("\n[ok] measured intensity ordering matches the paper");
}

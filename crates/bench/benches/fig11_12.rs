//! Figures 11 and 12 — the blocking-scheme estimate: computation and
//! memory operations versus cluster size (Fig. 11) and the resulting
//! wall-clock estimate with its minimum (Fig. 12).
//!
//! Two calibrations are shown:
//!  * "paper-like" — the paper's balance (variable scheme ~3x
//!    memory-bound), which exhibits the interior minimum of Figure 12;
//!  * "simulated" — calibrated from our own variable-variant run, which
//!    is kernel-bound (our modulo scheduler is far more efficient than
//!    the 2004 compiler), so blocking cannot pay — documented in
//!    EXPERIMENTS.md.

use blocking_model::model::{default_sizes, sweep, BlockingConfig, Calibration};
use merrimac_bench::{banner, paper_system, run, RunSpec};
use streammd::Variant;

fn series(label: &str, cal: &Calibration) -> Vec<blocking_model::BlockingPoint> {
    let cfg = BlockingConfig::default();
    let pts = sweep(&cfg, cal, &default_sizes());
    println!("-- {label} --");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "size", "mols/cl", "kernel", "memory", "time"
    );
    for p in pts.iter().step_by(3) {
        println!(
            "{:>6.1} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            p.size, p.molecules_per_cluster, p.kernel_rel, p.memory_rel, p.time_rel
        );
    }
    let min = pts
        .iter()
        .min_by(|a, b| a.time_rel.total_cmp(&b.time_rel))
        .copied()
        .unwrap();
    println!(
        "minimum: time {:.2}x at cluster size {:.1} ({:.1} molecules/cluster)\n",
        min.time_rel, min.size, min.molecules_per_cluster
    );
    pts
}

fn main() {
    banner(
        "Figures 11-12",
        "blocking scheme: computation/memory trade-off vs cluster size",
    );

    // Paper-like balance: reproduces the Figure 12 dip.
    let paper = series("paper-like calibration", &Calibration::paper_like());

    // Calibration from our own simulation of the variable scheme.
    let (system, list) = paper_system();
    let out = match run(RunSpec::new(&system, &list, Variant::Variable)) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let interactions = out.perf.solution_flops as f64 / 234.0;
    let kernel_cycles = out
        .report
        .timeline
        .busy(merrimac_sim::timeline::Unit::Kernel) as f64;
    let mem_cycles = out
        .report
        .timeline
        .busy(merrimac_sim::timeline::Unit::Memory) as f64;
    let cal = Calibration {
        kernel_cycles_per_interaction: kernel_cycles / interactions,
        memory_cycles_per_word: mem_cycles / out.perf.mem_refs as f64,
    };
    println!(
        "simulated balance: {:.2} kernel cycles/interaction, {:.2} memory cycles/word",
        cal.kernel_cycles_per_interaction, cal.memory_cycles_per_word
    );
    let ours = series("calibrated from our simulated variable run", &cal);

    // Figure 11 trends hold under both calibrations.
    for pts in [&paper, &ours] {
        let i1 = pts.iter().position(|p| p.size >= 1.0).unwrap();
        assert!(pts.last().unwrap().kernel_rel > pts[i1].kernel_rel);
        assert!(pts.last().unwrap().memory_rel < pts[i1].memory_rel);
    }
    // Figure 12's dip exists under the paper's balance.
    let min = paper
        .iter()
        .min_by(|a, b| a.time_rel.total_cmp(&b.time_rel))
        .unwrap();
    assert!(min.time_rel < 1.0 && min.size > 0.9 && min.size < 2.5);
    println!(
        "[ok] Figure 11 trends hold; Figure 12 minimum at cluster size {:.1}",
        min.size
    );
}

//! Table 1 — Merrimac parameters, printed from the live machine
//! description (so the table can never drift from what the simulator
//! actually uses).

use merrimac_arch::MachineConfig;
use merrimac_bench::banner;

fn main() {
    banner("Table 1", "Merrimac parameters");
    let m = MachineConfig::default();
    let rows: Vec<(&str, String)> = vec![
        ("Number of stream cache banks", m.cache_banks.to_string()),
        (
            "Number of scatter-add units per bank",
            m.scatter_add_units_per_bank.to_string(),
        ),
        (
            "Latency of scatter-add functional unit",
            m.scatter_add_latency.to_string(),
        ),
        (
            "Number of combining store entries",
            m.combining_store_entries.to_string(),
        ),
        (
            "Number of DRAM interface channels",
            m.dram_channels.to_string(),
        ),
        (
            "Number of address generators",
            m.address_generators.to_string(),
        ),
        ("Operating frequency", format!("{} GHz", m.clock_hz / 1e9)),
        (
            "Peak DRAM bandwidth",
            format!("{:.1} GB/s", m.dram_peak_gbps()),
        ),
        (
            "Stream cache bandwidth",
            format!("{:.0} GB/s", m.cache_gbps()),
        ),
        ("Number of clusters", m.clusters.to_string()),
        (
            "Peak floating point operations per cycle",
            m.peak_flops_per_cycle().to_string(),
        ),
        ("SRF bandwidth", format!("{:.0} GB/s", m.srf_gbps())),
        ("SRF size", format!("{} MB", m.srf_bytes() / (1024 * 1024))),
        (
            "Stream cache size",
            format!("{} KB", m.cache_bytes() / 1024),
        ),
    ];
    for (name, value) in rows {
        println!("{name:<44} {value}");
    }
    println!();
    println!(
        "(random-access DRAM bandwidth {:.0} GB/s = {} words/cycle; peak {} GFLOPS)",
        m.dram_random_gbps(),
        m.dram_random_words_per_cycle,
        m.peak_gflops()
    );
}

//! Figure 9 — performance of the StreamMD implementations: solution
//! GFLOPS (time-to-solution), all-hardware GFLOPS, memory reference
//! counts, and the Pentium 4 baseline.

use md_sim::force::FLOPS_PER_INTERACTION;
use merrimac_arch::{MachineConfig, P4Config};
use merrimac_bench::{banner, paper_system, run, RunSpec};
use streammd::Variant;

fn main() {
    banner("Figure 9", "Performance of the StreamMD implementations");
    let (system, list) = paper_system();
    let results: Vec<_> = Variant::ALL
        .iter()
        .filter_map(|&v| match run(RunSpec::new(&system, &list, v)) {
            Ok(out) => Some((v, out)),
            Err(e) => {
                eprintln!("skipping {v}: {e}");
                None
            }
        })
        .collect();
    let p4 = p4_baseline::model::estimate(&P4Config::default(), &system, &list);

    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "variant", "sol GFLOPS", "all GFLOPS", "MEM (Kref)", "time (ms)"
    );
    for (v, out) in &results {
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>12} {:>12.3}",
            v.name(),
            out.perf.solution_gflops,
            out.perf.all_gflops,
            out.perf.mem_refs / 1000,
            out.perf.seconds * 1e3
        );
    }
    println!(
        "{:<12} {:>12.2} {:>12} {:>12} {:>12.3}",
        "Pentium 4",
        p4.solution_gflops,
        "-",
        "-",
        p4.seconds * 1e3
    );

    let get = |v: Variant| {
        results
            .iter()
            .find(|(x, _)| *x == v)
            .map(|(_, o)| o.perf.solution_gflops)
            .unwrap_or_else(|| panic!("variant {v} missing (failed above)"))
    };
    let variable = get(Variant::Variable);
    let expanded = get(Variant::Expanded);
    let fixed = get(Variant::Fixed);
    let duplicated = get(Variant::Duplicated);

    println!();
    println!("relationships (paper values in parentheses):");
    println!(
        "  variable vs expanded:   +{:>5.0}%   (paper: +84%)",
        (variable / expanded - 1.0) * 100.0
    );
    println!(
        "  fixed    vs expanded:   +{:>5.0}%   (paper: +46%)",
        (fixed / expanded - 1.0) * 100.0
    );
    println!(
        "  variable vs fixed:      +{:>5.0}%   (paper: ~+26%)",
        (variable / fixed - 1.0) * 100.0
    );
    println!(
        "  variable vs duplicated: +{:>5.0}%",
        (variable / duplicated - 1.0) * 100.0
    );
    println!(
        "  variable vs Pentium 4:  {:>5.1}x   (paper: ~2x, OCR-ambiguous)",
        variable / p4.solution_gflops
    );

    // The machine-level context of Section 5.1.
    let cfg = MachineConfig::default();
    let kernel_ops = 450.0; // issued ops per interaction (see DESIGN.md)
    let optimal =
        cfg.total_fpus() as f64 * cfg.clock_hz / kernel_ops * FLOPS_PER_INTERACTION as f64 / 1e9;
    println!();
    println!(
        "optimal solution rate for this kernel: ~{optimal:.1} GFLOPS; variable sustains {:.0}%",
        variable / optimal * 100.0
    );

    assert!(variable > expanded && variable > fixed && variable > duplicated);
    assert!(
        expanded < fixed && expanded < duplicated,
        "expanded must be slowest"
    );
    assert!(
        variable / p4.solution_gflops > 2.0,
        "must beat the P4 clearly"
    );
    println!("\n[ok] ordering reproduced: variable > fixed, duplicated > expanded ≫ P4");
}

//! Criterion micro-benchmarks of the substrate hot paths: the reference
//! force engine, the GROMACS-like single-precision loop, neighbour-list
//! construction, the cache model, the VLIW schedulers and the kernel
//! interpreter.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use md_sim::force::compute_forces;
use md_sim::neighbor::{NeighborList, NeighborListParams};
use md_sim::system::WaterBox;
use merrimac_arch::{MachineConfig, OpCosts};
use merrimac_kernel::lower::lower_kernel;
use merrimac_kernel::{list_schedule, modulo_schedule, Interpreter, StreamData};
use merrimac_sim::cache::StreamCache;
use streammd::kernels::{expanded_kernel, kernel_params};

fn bench_reference_forces(c: &mut Criterion) {
    let system = WaterBox::builder().molecules(216).seed(1).build();
    let params = NeighborListParams {
        cutoff: 0.8,
        skin: 0.0,
        rebuild_interval: 10,
    };
    let list = NeighborList::build(&system, params);
    c.bench_function("reference_forces_216", |b| {
        b.iter(|| black_box(compute_forces(&system, &list)))
    });
}

fn bench_sse_like_forces(c: &mut Criterion) {
    let system = WaterBox::builder().molecules(216).seed(1).build();
    let params = NeighborListParams {
        cutoff: 0.8,
        skin: 0.0,
        rebuild_interval: 10,
    };
    let list = NeighborList::build(&system, params);
    c.bench_function("gromacs_like_f32_forces_216", |b| {
        b.iter(|| black_box(p4_baseline::water_water_forces_sse_like(&system, &list)))
    });
}

fn bench_neighbor_build(c: &mut Criterion) {
    let system = WaterBox::builder().molecules(900).seed(1).build();
    let params = NeighborListParams {
        cutoff: 1.0,
        skin: 0.0,
        rebuild_interval: 10,
    };
    c.bench_function("neighbor_list_900", |b| {
        b.iter(|| black_box(NeighborList::build(&system, params)))
    });
}

fn bench_cache_trace(c: &mut Criterion) {
    let cfg = MachineConfig::default();
    c.bench_function("cache_trace_64k", |b| {
        b.iter_batched(
            || StreamCache::new(&cfg),
            |mut cache| black_box(cache.access_trace(0..65536u64, false)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_schedulers(c: &mut Criterion) {
    let costs = OpCosts::default();
    let k = lower_kernel(&expanded_kernel(), &costs);
    c.bench_function("list_schedule_expanded", |b| {
        b.iter(|| black_box(list_schedule(&k, &costs, 4)))
    });
    c.bench_function("modulo_schedule_expanded", |b| {
        b.iter(|| black_box(modulo_schedule(&k, &costs, 4)))
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let k = expanded_kernel();
    let ff = md_sim::force::ForceField::from_model(&md_sim::water::WaterModel::spc());
    let params = kernel_params(&ff);
    let n = 256usize;
    let mk = |stride: f64| {
        StreamData::new(
            9,
            (0..n * 9)
                .map(|i| (i as f64 * stride).sin() + 2.0)
                .collect(),
        )
    };
    let inputs = vec![mk(0.013), StreamData::new(9, vec![0.0; n * 9]), mk(0.017)];
    c.bench_function("interpret_expanded_256", |b| {
        b.iter(|| {
            black_box(
                Interpreter::new(&k)
                    .run(&inputs, &params, n)
                    .expect("interp"),
            )
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reference_forces,
        bench_sse_like_forces,
        bench_neighbor_build,
        bench_cache_trace,
        bench_schedulers,
        bench_interpreter
);
criterion_main!(benches);

//! Micro-benchmarks of the substrate hot paths: the reference force
//! engine, the GROMACS-like single-precision loop, neighbour-list
//! construction, the cache model, the VLIW schedulers and the kernel
//! interpreter.
//!
//! Criterion is unavailable offline, so this harness times each closure
//! directly: a warm-up pass, then the median of `SAMPLES` timed runs.

use std::hint::black_box;
use std::time::Instant;

use md_sim::force::compute_forces;
use md_sim::neighbor::{NeighborList, NeighborListParams};
use md_sim::system::WaterBox;
use merrimac_arch::{MachineConfig, OpCosts};
use merrimac_kernel::lower::lower_kernel;
use merrimac_kernel::{
    list_schedule, modulo_schedule, BatchWidth, CompiledTape, Interpreter, StreamData,
};
use merrimac_sim::cache::StreamCache;
use streammd::kernels::{expanded_kernel, kernel_params, variable_kernel};

const SAMPLES: usize = 20;

/// Time `f` (warm-up pass, then median of `SAMPLES` runs) and return
/// the median in seconds.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let median = times[times.len() / 2];
    println!(
        "{name:<32} {:>12.3} µs/iter (median of {SAMPLES})",
        median * 1e6
    );
    median
}

/// Report a three-engine comparison as interactions/second plus the
/// batch engine's speedup over each of the other two — the numbers the
/// CI micro smoke job archives so host functional-execution throughput
/// is tracked across commits.
fn engine_summary(label: &str, interactions: usize, interp_s: f64, tape_s: f64, batch_s: f64) {
    let rate = |s: f64| interactions as f64 / s / 1e6;
    println!(
        "{label:<24} interp {:>8.2} Mint/s | tape {:>8.2} Mint/s | batch {:>8.2} Mint/s | \
         batch/interp {:>5.2}x | batch/tape {:>5.2}x",
        rate(interp_s),
        rate(tape_s),
        rate(batch_s),
        interp_s / batch_s,
        tape_s / batch_s
    );
}

fn main() {
    merrimac_bench::banner("micro", "substrate hot-path micro-benchmarks");

    let system = WaterBox::builder().molecules(216).seed(1).build();
    let params = NeighborListParams {
        cutoff: 0.8,
        skin: 0.0,
        rebuild_interval: 10,
    };
    let list = NeighborList::build(&system, params);
    bench("reference_forces_216", || compute_forces(&system, &list));
    bench("gromacs_like_f32_forces_216", || {
        p4_baseline::water_water_forces_sse_like(&system, &list)
    });

    let big = WaterBox::builder().molecules(900).seed(1).build();
    let big_params = NeighborListParams {
        cutoff: 1.0,
        skin: 0.0,
        rebuild_interval: 10,
    };
    bench("neighbor_list_900", || {
        NeighborList::build(&big, big_params)
    });

    let cfg = MachineConfig::default();
    bench("cache_trace_64k", || {
        let mut cache = StreamCache::new(&cfg);
        cache.access_trace(0..65536u64, false)
    });

    let costs = OpCosts::default();
    let k = lower_kernel(&expanded_kernel(), &costs);
    bench("list_schedule_expanded", || list_schedule(&k, &costs, 4));
    bench("modulo_schedule_expanded", || {
        modulo_schedule(&k, &costs, 4)
    });

    let kern = expanded_kernel();
    let ff = md_sim::force::ForceField::from_model(&md_sim::water::WaterModel::spc());
    let kparams = kernel_params(&ff);
    let n = 256usize;
    let mk = |stride: f64| {
        StreamData::new(
            9,
            (0..n * 9)
                .map(|i| (i as f64 * stride).sin() + 2.0)
                .collect(),
        )
    };
    let inputs = vec![mk(0.013), StreamData::new(9, vec![0.0; n * 9]), mk(0.017)];
    let interp_s = bench("interpret_expanded_256", || {
        Interpreter::new(&kern)
            .run(&inputs, &kparams, n)
            .expect("interp")
    });
    let tape = CompiledTape::compile(&kern);
    let tape_s = bench("tape_expanded_256", || {
        tape.run(&inputs, &kparams, n).expect("tape")
    });
    let batch_s = bench("batch8_expanded_256", || {
        tape.run_batched(&inputs, &kparams, n, BatchWidth::W8)
            .expect("batch")
    });
    let batch16_s = bench("batch16_expanded_256", || {
        tape.run_batched(&inputs, &kparams, n, BatchWidth::W16)
            .expect("batch")
    });
    // Check-elided proven paths: the same launches under a static
    // underrun proof, which skips prove_fast_underrun and every per-pop
    // depth check. The delta against the checked lines above is the
    // measured win the EXPERIMENTS.md lint table reports.
    let records: Vec<usize> = inputs.iter().map(|d| d.num_records()).collect();
    let proof = tape
        .prove_underrun_free(&records, n)
        .expect("expanded inputs prove safe");
    let proven_tape_s = bench("tape_expanded_256_proven", || {
        tape.run_proven(&inputs, &kparams, n, &proof).expect("tape")
    });
    let proven_batch_s = bench("batch8_expanded_256_proven", || {
        tape.run_batched_proven(&inputs, &kparams, n, BatchWidth::W8, &proof)
            .expect("batch")
    });
    let proven_batch16_s = bench("batch16_expanded_256_proven", || {
        tape.run_batched_proven(&inputs, &kparams, n, BatchWidth::W16, &proof)
            .expect("batch")
    });

    // `variable` exercises the general tape path (conditional centre
    // stream): new centre every 8 iterations.
    let vkern = variable_kernel();
    let centres = n.div_ceil(8);
    let vinputs = vec![
        mk(0.013),
        StreamData::new(
            1,
            (0..n).map(|i| if i % 8 == 0 { 1.0 } else { 0.0 }).collect(),
        ),
        StreamData::new(
            18,
            (0..centres * 18)
                .map(|i| (i as f64 * 0.011).cos() + 2.0)
                .collect(),
        ),
    ];
    let vinterp_s = bench("interpret_variable_256", || {
        Interpreter::new(&vkern)
            .run(&vinputs, &kparams, n)
            .expect("interp")
    });
    let vtape = CompiledTape::compile(&vkern);
    let vtape_s = bench("tape_variable_256", || {
        vtape.run(&vinputs, &kparams, n).expect("tape")
    });
    let vbatch_s = bench("batch8_variable_256", || {
        vtape
            .run_batched(&vinputs, &kparams, n, BatchWidth::W8)
            .expect("batch")
    });
    // General-path elision: with the centre stream fully staged the
    // prover covers the worst case, so the proven run drops the
    // per-iteration every-stream checks and every per-pop depth check —
    // the checks the general path otherwise pays on each conditional
    // read.
    let vstaged = vec![
        vinputs[0].clone(),
        vinputs[1].clone(),
        StreamData::new(
            18,
            (0..n * 18)
                .map(|i| (i as f64 * 0.011).cos() + 2.0)
                .collect(),
        ),
    ];
    let vrecords: Vec<usize> = vstaged.iter().map(|d| d.num_records()).collect();
    let vproof = vtape
        .prove_underrun_free(&vrecords, n)
        .expect("staged variable inputs prove safe");
    let vstaged_tape_s = bench("tape_variable_256_staged", || {
        vtape.run(&vstaged, &kparams, n).expect("tape")
    });
    let vproven_tape_s = bench("tape_variable_256_proven", || {
        vtape
            .run_proven(&vstaged, &kparams, n, &vproof)
            .expect("tape")
    });

    println!();
    engine_summary(
        "expanded (fast path)",
        n,
        interp_s,
        tape_s,
        batch_s.min(batch16_s),
    );
    engine_summary(
        "expanded (proven)",
        n,
        interp_s,
        proven_tape_s,
        proven_batch_s.min(proven_batch16_s),
    );
    println!(
        "{:<24} tape {:>5.2}x | batch {:>5.2}x (checked / proven)",
        "underrun-proof elision",
        tape_s / proven_tape_s,
        batch_s.min(batch16_s) / proven_batch_s.min(proven_batch16_s)
    );
    engine_summary("variable (general path)", n, vinterp_s, vtape_s, vbatch_s);
    println!(
        "{:<24} tape {:>5.2}x (checked / proven, staged centres)",
        "general-path elision",
        vstaged_tape_s / vproven_tape_s
    );
}

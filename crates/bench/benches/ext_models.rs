//! Extension X2 — complex water models (paper Section 5.4): more charge
//! sites raise arithmetic intensity, so "Merrimac will provide better
//! performance for those more accurate models". SPC (3 sites) vs TIP5P
//! (5 sites) through the generalized multi-site stream pipeline.

use md_sim::multisite::MultiSiteField;
use md_sim::neighbor::{NeighborList, NeighborListParams};
use md_sim::system::WaterBox;
use md_sim::water::WaterModel;
use merrimac_arch::MachineConfig;
use merrimac_bench::banner;
use streammd::models::run_multisite_step;

fn run(model: WaterModel, molecules: usize) -> (String, u64, f64, f64, u64) {
    let name = model.name.clone();
    let system = WaterBox::builder()
        .molecules(molecules)
        .model(model)
        .seed(42)
        .build();
    let params = NeighborListParams {
        cutoff: (0.45 * system.pbc().side()).min(1.0),
        skin: 0.0,
        rebuild_interval: 10,
    };
    let list = NeighborList::build(&system, params);
    let out = run_multisite_step(&MachineConfig::default(), &system, &list).expect("multisite run");
    (
        name,
        out.flops_per_interaction,
        out.intensity,
        out.solution_gflops,
        out.cycles,
    )
}

fn main() {
    banner(
        "Extension X2",
        "complex water models raise arithmetic intensity (Section 5.4)",
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "model", "flops/int", "intensity", "sol GFLOPS", "cycles"
    );
    let mut rows = Vec::new();
    for model in [WaterModel::spc(), WaterModel::tip3p(), WaterModel::tip5p()] {
        let r = run(model, 216);
        println!(
            "{:<12} {:>12} {:>12.2} {:>12.2} {:>12}",
            r.0, r.1, r.2, r.3, r.4
        );
        rows.push(r);
    }
    println!();
    let spc = &rows[0];
    let tip5p = &rows[2];
    println!(
        "TIP5P vs SPC: {:.2}x the flops per interaction, {:.2}x the intensity",
        tip5p.1 as f64 / spc.1 as f64,
        tip5p.2 / spc.2
    );
    println!("(in-kernel derivation of the virtual sites would lift the intensity");
    println!(" gain to the full flop ratio — the paper's 'no additional memory");
    println!(" bandwidth' scenario; see streammd::models.)");

    let budget = MultiSiteField::from_model(&WaterModel::tip5p()).flops_per_interaction();
    assert_eq!(budget, tip5p.1);
    assert!(tip5p.2 > spc.2, "TIP5P must have higher measured intensity");
    assert!(tip5p.1 > spc.1 * 3 / 2);
    println!("\n[ok] arithmetic intensity rises with model complexity");
}

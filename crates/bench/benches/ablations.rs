//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. fixed-L sweep (the paper: "overheads are typically not large for a
//!    reasonable value of L (between 8 and 32)");
//! 2. combining-store depth for scatter-add;
//! 3. stream-cache allocation for gathers on/off;
//! 4. stream-descriptor-register count under the naive policy;
//! 5. strip size vs SRF double-buffering pressure.

use md_sim::neighbor::NeighborList;
use md_sim::system::WaterBox;
use merrimac_arch::MachineConfig;
use merrimac_bench::{banner, paper_params, paper_system, SEED};
use merrimac_sim::SdrPolicy;
use streammd::{StreamMdApp, Variant};

fn run_with(
    cfg: MachineConfig,
    variant: Variant,
    policy: SdrPolicy,
    strip: Option<usize>,
    l: usize,
) -> u64 {
    let system = WaterBox::paper_dataset(SEED);
    let list = NeighborList::build(&system, paper_params());
    let mut b = StreamMdApp::builder()
        .machine(cfg)
        .neighbor(paper_params())
        .policy(policy)
        .block_l(l)
        .variants(&[variant]);
    if let Some(s) = strip {
        b = b.strip_iterations(s);
    }
    b.build()
        .expect("valid config")
        .run_step_with_list(&system, &list, variant)
        .expect("run")
        .perf
        .cycles
}

fn main() {
    banner("Ablations", "design-choice sweeps on the paper dataset");

    println!("-- (1) fixed-L block length --");
    println!("{:>4} {:>12} {:>14}", "L", "cycles", "vs L=8");
    let base_l8 = run_with(
        MachineConfig::default(),
        Variant::Fixed,
        SdrPolicy::Eager,
        None,
        8,
    );
    let mut l_cycles = Vec::new();
    for l in [2usize, 4, 8, 16, 32] {
        let c = run_with(
            MachineConfig::default(),
            Variant::Fixed,
            SdrPolicy::Eager,
            None,
            l,
        );
        l_cycles.push((l, c));
        println!("{l:>4} {c:>12} {:>13.2}x", c as f64 / base_l8 as f64);
    }
    // Tiny L pays padding+centre replication; the 8..32 plateau is flat.
    let worst_small = l_cycles.iter().find(|(l, _)| *l == 2).unwrap().1;
    assert!(worst_small > base_l8, "L=2 must be worse than L=8");

    println!("\n-- (2) combining-store entries (expanded variant, scatter-heavy) --");
    println!("{:>8} {:>12}", "entries", "cycles");
    let mut combine = Vec::new();
    for entries in [0usize, 1, 8, 64] {
        let cfg = MachineConfig {
            combining_store_entries: entries,
            ..MachineConfig::default()
        };
        let c = run_with(cfg, Variant::Expanded, SdrPolicy::Eager, None, 8);
        combine.push((entries, c));
        println!("{entries:>8} {c:>12}");
    }
    assert!(combine[0].1 >= combine[2].1, "combining must not hurt");

    println!("\n-- (3) stream-cache allocation for gathers --");
    for (name, alloc) in [("bypass (default)", false), ("allocate", true)] {
        let cfg = MachineConfig {
            cache_allocates_gathers: alloc,
            ..MachineConfig::default()
        };
        let c = run_with(cfg, Variant::Variable, SdrPolicy::Eager, None, 8);
        println!("{name:<20} {c:>12} cycles");
    }

    println!("\n-- (4) stream descriptor registers under the naive policy --");
    println!("{:>6} {:>12}", "SDRs", "cycles");
    let mut sdr_cycles = Vec::new();
    for sdrs in [4usize, 6, 8, 16, 32] {
        let cfg = MachineConfig {
            stream_descriptor_registers: sdrs,
            ..MachineConfig::default()
        };
        let c = run_with(cfg, Variant::Duplicated, SdrPolicy::Naive, None, 8);
        sdr_cycles.push((sdrs, c));
        println!("{sdrs:>6} {c:>12}");
    }
    assert!(
        sdr_cycles.first().unwrap().1 >= sdr_cycles.last().unwrap().1,
        "more SDRs cannot hurt"
    );

    println!("\n-- (5) strip size (variable variant) --");
    println!("{:>8} {:>12}", "strip", "cycles");
    for strip in [128usize, 512, 2048, 4096] {
        let c = run_with(
            MachineConfig::default(),
            Variant::Variable,
            SdrPolicy::Eager,
            Some(strip),
            8,
        );
        println!("{strip:>8} {c:>12}");
    }

    // Keep the compiler honest about the full dataset too.
    let (_system, list) = paper_system();
    println!("\n(dataset: {} interactions)", list.num_pairs());
    println!("\n[ok] ablation sweeps complete");
}

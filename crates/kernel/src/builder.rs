//! Ergonomic construction of kernel dataflow graphs.
//!
//! The StreamMD interaction kernels are a few hundred nodes; building
//! them by hand-indexing `Vec<Node>` would be unmaintainable. The builder
//! hands out copyable [`Val`] handles and provides one method per op, plus
//! small vector helpers ([`V3`]) since almost everything in the water
//! kernel is 3-vector arithmetic.

use crate::ir::{Kernel, Node, NodeId, OpKind, RegId, StreamMode, StreamSig, WriteSpec};

/// A handle to an SSA value inside a kernel being built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Val(pub NodeId);

/// A triple of values — a 3-vector in the dataflow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V3 {
    pub x: Val,
    pub y: Val,
    pub z: Val,
}

/// Kernel graph builder.
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    inputs: Vec<StreamSig>,
    outputs: Vec<StreamSig>,
    reg_init: Vec<f64>,
    num_params: u32,
    nodes: Vec<Node>,
    reg_updates: Vec<(RegId, NodeId)>,
    writes: Vec<WriteSpec>,
}

impl KernelBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            reg_init: Vec::new(),
            num_params: 0,
            nodes: Vec::new(),
            reg_updates: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Declare an input stream; returns its index.
    pub fn input(&mut self, name: &str, record_len: u32, mode: StreamMode) -> u32 {
        self.inputs.push(StreamSig {
            name: name.into(),
            record_len,
            mode,
        });
        (self.inputs.len() - 1) as u32
    }

    /// Declare an output stream; returns its index.
    pub fn output(&mut self, name: &str, record_len: u32) -> u32 {
        self.outputs.push(StreamSig {
            name: name.into(),
            record_len,
            mode: StreamMode::EveryIteration,
        });
        (self.outputs.len() - 1) as u32
    }

    /// Declare a loop-carried register with an initial value.
    pub fn reg(&mut self, init: f64) -> RegId {
        self.reg_init.push(init);
        (self.reg_init.len() - 1) as RegId
    }

    /// Declare a scalar launch parameter; returns its value handle.
    pub fn param(&mut self) -> Val {
        let p = self.num_params;
        self.num_params += 1;
        self.push(Node::Param(p))
    }

    fn push(&mut self, n: Node) -> Val {
        self.nodes.push(n);
        Val((self.nodes.len() - 1) as NodeId)
    }

    pub fn constant(&mut self, v: f64) -> Val {
        self.push(Node::Const(v))
    }

    pub fn read(&mut self, stream: u32, field: u32) -> Val {
        self.push(Node::Read { stream, field })
    }

    /// Read a whole 3-vector starting at `field`.
    pub fn read_v3(&mut self, stream: u32, field: u32) -> V3 {
        V3 {
            x: self.read(stream, field),
            y: self.read(stream, field + 1),
            z: self.read(stream, field + 2),
        }
    }

    pub fn read_reg(&mut self, r: RegId) -> Val {
        self.push(Node::ReadReg(r))
    }

    pub fn cond_read(&mut self, stream: u32, field: u32, pred: Val, fallback: Val) -> Val {
        self.push(Node::CondRead {
            stream,
            field,
            pred: pred.0,
            fallback: fallback.0,
        })
    }

    fn op(&mut self, op: OpKind, args: &[Val]) -> Val {
        debug_assert_eq!(args.len(), op.arity());
        self.push(Node::Op {
            op,
            args: args.iter().map(|v| v.0).collect(),
        })
    }

    pub fn add(&mut self, a: Val, b: Val) -> Val {
        self.op(OpKind::Add, &[a, b])
    }

    pub fn sub(&mut self, a: Val, b: Val) -> Val {
        self.op(OpKind::Sub, &[a, b])
    }

    pub fn mul(&mut self, a: Val, b: Val) -> Val {
        self.op(OpKind::Mul, &[a, b])
    }

    /// `a*b + c`
    pub fn madd(&mut self, a: Val, b: Val, c: Val) -> Val {
        self.op(OpKind::Madd, &[a, b, c])
    }

    /// `c - a*b`
    pub fn nmsub(&mut self, a: Val, b: Val, c: Val) -> Val {
        self.op(OpKind::Nmsub, &[a, b, c])
    }

    pub fn div(&mut self, a: Val, b: Val) -> Val {
        self.op(OpKind::Div, &[a, b])
    }

    pub fn sqrt(&mut self, a: Val) -> Val {
        self.op(OpKind::Sqrt, &[a])
    }

    pub fn rsqrt(&mut self, a: Val) -> Val {
        self.op(OpKind::Rsqrt, &[a])
    }

    pub fn cmp_eq(&mut self, a: Val, b: Val) -> Val {
        self.op(OpKind::CmpEq, &[a, b])
    }

    pub fn cmp_lt(&mut self, a: Val, b: Val) -> Val {
        self.op(OpKind::CmpLt, &[a, b])
    }

    pub fn cmp_le(&mut self, a: Val, b: Val) -> Val {
        self.op(OpKind::CmpLe, &[a, b])
    }

    pub fn sel(&mut self, mask: Val, a: Val, b: Val) -> Val {
        self.op(OpKind::Sel, &[mask, a, b])
    }

    pub fn and(&mut self, a: Val, b: Val) -> Val {
        self.op(OpKind::And, &[a, b])
    }

    pub fn or(&mut self, a: Val, b: Val) -> Val {
        self.op(OpKind::Or, &[a, b])
    }

    pub fn not(&mut self, a: Val) -> Val {
        self.op(OpKind::Not, &[a])
    }

    pub fn mov(&mut self, a: Val) -> Val {
        self.op(OpKind::Mov, &[a])
    }

    /// Low-precision reciprocal seed (normally emitted by the lowering
    /// pass; exposed for tests).
    pub fn seed_recip(&mut self, a: Val) -> Val {
        self.op(OpKind::SeedRecip, &[a])
    }

    /// Low-precision reciprocal-square-root seed.
    pub fn seed_rsqrt(&mut self, a: Val) -> Val {
        self.op(OpKind::SeedRsqrt, &[a])
    }

    // ---- 3-vector helpers -------------------------------------------------

    pub fn v3_const(&mut self, x: f64, y: f64, z: f64) -> V3 {
        V3 {
            x: self.constant(x),
            y: self.constant(y),
            z: self.constant(z),
        }
    }

    pub fn v3_add(&mut self, a: V3, b: V3) -> V3 {
        V3 {
            x: self.add(a.x, b.x),
            y: self.add(a.y, b.y),
            z: self.add(a.z, b.z),
        }
    }

    pub fn v3_sub(&mut self, a: V3, b: V3) -> V3 {
        V3 {
            x: self.sub(a.x, b.x),
            y: self.sub(a.y, b.y),
            z: self.sub(a.z, b.z),
        }
    }

    /// Component-wise `a*s + b` (scale-accumulate).
    pub fn v3_scale_add(&mut self, a: V3, s: Val, b: V3) -> V3 {
        V3 {
            x: self.madd(a.x, s, b.x),
            y: self.madd(a.y, s, b.y),
            z: self.madd(a.z, s, b.z),
        }
    }

    pub fn v3_scale(&mut self, a: V3, s: Val) -> V3 {
        V3 {
            x: self.mul(a.x, s),
            y: self.mul(a.y, s),
            z: self.mul(a.z, s),
        }
    }

    /// Squared norm via mul + 2 madds.
    pub fn v3_norm2(&mut self, a: V3) -> Val {
        let xx = self.mul(a.x, a.x);
        let xy = self.madd(a.y, a.y, xx);
        self.madd(a.z, a.z, xy)
    }

    /// Dot product via mul + 2 madds.
    pub fn v3_dot(&mut self, a: V3, b: V3) -> Val {
        let xx = self.mul(a.x, b.x);
        let xy = self.madd(a.y, b.y, xx);
        self.madd(a.z, b.z, xy)
    }

    pub fn v3_sel(&mut self, mask: Val, a: V3, b: V3) -> V3 {
        V3 {
            x: self.sel(mask, a.x, b.x),
            y: self.sel(mask, a.y, b.y),
            z: self.sel(mask, a.z, b.z),
        }
    }

    pub fn v3_read_reg(&mut self, r: [RegId; 3]) -> V3 {
        V3 {
            x: self.read_reg(r[0]),
            y: self.read_reg(r[1]),
            z: self.read_reg(r[2]),
        }
    }

    // ---- side effects -----------------------------------------------------

    /// Update register `r` to `v` at the end of each iteration.
    pub fn set_reg(&mut self, r: RegId, v: Val) {
        self.reg_updates.push((r, v.0));
    }

    /// Append a record to `stream` each iteration.
    pub fn write(&mut self, stream: u32, values: &[Val]) {
        self.writes.push(WriteSpec {
            stream,
            values: values.iter().map(|v| v.0).collect(),
            cond: None,
        });
    }

    /// Append a record to `stream` only when `cond` is non-zero.
    pub fn write_if(&mut self, stream: u32, cond: Val, values: &[Val]) {
        self.writes.push(WriteSpec {
            stream,
            values: values.iter().map(|v| v.0).collect(),
            cond: Some(cond.0),
        });
    }

    /// Finish and validate.
    pub fn build(self) -> Kernel {
        let k = Kernel {
            name: self.name,
            inputs: self.inputs,
            outputs: self.outputs,
            reg_init: self.reg_init,
            num_params: self.num_params,
            nodes: self.nodes,
            reg_updates: self.reg_updates,
            writes: self.writes,
        };
        k.validate_ssa();
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_dot_product_kernel() {
        let mut b = KernelBuilder::new("dot");
        let s = b.input("ab", 6, StreamMode::EveryIteration);
        let o = b.output("dot", 1);
        let a = b.read_v3(s, 0);
        let c = b.read_v3(s, 3);
        let d = b.v3_dot(a, c);
        b.write(o, &[d]);
        let k = b.build();
        assert_eq!(k.nodes.len(), 9);
        assert_eq!(k.writes.len(), 1);
    }

    #[test]
    fn registers_and_conditionals() {
        let mut b = KernelBuilder::new("cond");
        let s = b.input("data", 1, StreamMode::Conditional);
        let o = b.output("out", 1);
        let r = b.reg(0.0);
        let prev = b.read_reg(r);
        let limit = b.constant(10.0);
        let need = b.cmp_lt(prev, limit);
        let v = b.cond_read(s, 0, need, prev);
        b.set_reg(r, v);
        b.write_if(o, need, &[v]);
        let k = b.build();
        assert_eq!(k.reg_init, vec![0.0]);
        assert_eq!(k.writes[0].cond, Some(need.0));
    }

    #[test]
    fn v3_helpers_generate_madds() {
        let mut b = KernelBuilder::new("v3");
        let s = b.input("p", 3, StreamMode::EveryIteration);
        let o = b.output("n2", 1);
        let p = b.read_v3(s, 0);
        let n2 = b.v3_norm2(p);
        b.write(o, &[n2]);
        let k = b.build();
        let madds = k
            .nodes
            .iter()
            .filter(|n| {
                matches!(
                    n,
                    Node::Op {
                        op: OpKind::Madd,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(madds, 2);
    }

    #[test]
    fn params_are_counted() {
        let mut b = KernelBuilder::new("p");
        let _o = b.output("o", 1);
        let p1 = b.param();
        let p2 = b.param();
        let s = b.add(p1, p2);
        b.write(0, &[s]);
        let k = b.build();
        assert_eq!(k.num_params, 2);
    }
}

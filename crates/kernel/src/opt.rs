//! Dataflow optimization passes: constant folding, common-subexpression
//! elimination and dead-code elimination.
//!
//! The paper's toolchain applies "sophisticated compilation techniques to
//! achieve near optimal schedules"; these passes are the scalar-level
//! half of that story. They are *off by default* in the StreamMD
//! reproduction because Table 4/Figure 9 count the programmer-visible
//! operation budget (234 flops per interaction) before algebraic
//! simplification — but they are exercised by the ablation benches and
//! available to any other kernel author.

use std::collections::HashMap;

use crate::ir::{Kernel, Node, NodeId, OpKind, WriteSpec};
use crate::schedule::live_set;

/// Fold operations whose inputs are all compile-time constants.
pub fn constant_fold(kernel: &Kernel) -> Kernel {
    let mut out = kernel.clone();
    for i in 0..out.nodes.len() {
        let folded = match &out.nodes[i] {
            Node::Op { op, args } => {
                let consts: Option<Vec<f64>> = args
                    .iter()
                    .map(|&a| match &out.nodes[a as usize] {
                        Node::Const(c) => Some(*c),
                        _ => None,
                    })
                    .collect();
                consts.and_then(|c| eval_op(*op, &c))
            }
            _ => None,
        };
        if let Some(v) = folded {
            out.nodes[i] = Node::Const(v);
        }
    }
    out.validate_ssa();
    out
}

fn eval_op(op: OpKind, a: &[f64]) -> Option<f64> {
    let mask = |b: bool| if b { 1.0 } else { 0.0 };
    Some(match op {
        OpKind::Add => a[0] + a[1],
        OpKind::Sub => a[0] - a[1],
        OpKind::Mul => a[0] * a[1],
        OpKind::Madd => a[0] * a[1] + a[2],
        OpKind::Nmsub => a[2] - a[0] * a[1],
        OpKind::Div => a[0] / a[1],
        OpKind::Sqrt => a[0].sqrt(),
        OpKind::Rsqrt => 1.0 / a[0].sqrt(),
        OpKind::SeedRecip => (1.0 / a[0]) as f32 as f64,
        OpKind::SeedRsqrt => (1.0 / a[0].sqrt()) as f32 as f64,
        OpKind::CmpEq => mask(a[0] == a[1]),
        OpKind::CmpLt => mask(a[0] < a[1]),
        OpKind::CmpLe => mask(a[0] <= a[1]),
        OpKind::Sel => {
            if a[0] != 0.0 {
                a[1]
            } else {
                a[2]
            }
        }
        OpKind::And => mask(a[0] != 0.0 && a[1] != 0.0),
        OpKind::Or => mask(a[0] != 0.0 || a[1] != 0.0),
        OpKind::Not => mask(a[0] == 0.0),
        OpKind::Min => a[0].min(a[1]),
        OpKind::Max => a[0].max(a[1]),
        OpKind::Mov => a[0],
    })
}

/// Structural key for value numbering. `CondRead` is excluded: popping a
/// stream is a side effect and two identical-looking conditional reads
/// are *not* interchangeable.
#[derive(Hash, PartialEq, Eq)]
enum Key {
    Const(u64),
    Param(u32),
    ReadReg(u32),
    Read(u32, u32),
    Op(OpKind, Vec<NodeId>),
}

/// Common-subexpression elimination by value numbering over the SSA
/// order. Commutative ops are canonicalized by sorting their argument
/// ids.
pub fn cse(kernel: &Kernel) -> Kernel {
    let mut remap: Vec<NodeId> = Vec::with_capacity(kernel.nodes.len());
    let mut seen: HashMap<Key, NodeId> = HashMap::new();
    let mut nodes: Vec<Node> = Vec::with_capacity(kernel.nodes.len());

    for node in &kernel.nodes {
        let mapped = match node {
            Node::CondRead {
                stream,
                field,
                pred,
                fallback,
            } => {
                // Never merged; still needs arg remapping.
                nodes.push(Node::CondRead {
                    stream: *stream,
                    field: *field,
                    pred: remap[*pred as usize],
                    fallback: remap[*fallback as usize],
                });
                (nodes.len() - 1) as NodeId
            }
            other => {
                let rewritten = match other {
                    Node::Op { op, args } => Node::Op {
                        op: *op,
                        args: args.iter().map(|a| remap[*a as usize]).collect(),
                    },
                    n => n.clone(),
                };
                let key = match &rewritten {
                    Node::Const(c) => Key::Const(c.to_bits()),
                    Node::Param(p) => Key::Param(*p),
                    Node::ReadReg(r) => Key::ReadReg(*r),
                    Node::Read { stream, field } => Key::Read(*stream, *field),
                    Node::Op { op, args } => {
                        let mut a = args.clone();
                        if matches!(
                            op,
                            OpKind::Add
                                | OpKind::Mul
                                | OpKind::And
                                | OpKind::Or
                                | OpKind::Min
                                | OpKind::Max
                                | OpKind::CmpEq
                        ) {
                            a.sort_unstable();
                        }
                        Key::Op(*op, a)
                    }
                    Node::CondRead { .. } => unreachable!(),
                };
                match seen.get(&key) {
                    Some(&id) => id,
                    None => {
                        nodes.push(rewritten);
                        let id = (nodes.len() - 1) as NodeId;
                        seen.insert(key, id);
                        id
                    }
                }
            }
        };
        remap.push(mapped);
    }

    let out = remap_kernel(kernel, nodes, &remap);
    out.validate_ssa();
    out
}

/// Remove nodes not reachable from the live roots (writes, register
/// updates, conditional-stream pops).
pub fn dce(kernel: &Kernel) -> Kernel {
    let live = live_set(kernel);
    let mut remap: Vec<NodeId> = vec![u32::MAX; kernel.nodes.len()];
    let mut nodes = Vec::with_capacity(kernel.nodes.len());
    for (i, node) in kernel.nodes.iter().enumerate() {
        if !live[i] {
            continue;
        }
        let rewritten = match node {
            Node::Op { op, args } => Node::Op {
                op: *op,
                args: args.iter().map(|a| remap[*a as usize]).collect(),
            },
            Node::CondRead {
                stream,
                field,
                pred,
                fallback,
            } => Node::CondRead {
                stream: *stream,
                field: *field,
                pred: remap[*pred as usize],
                fallback: remap[*fallback as usize],
            },
            n => n.clone(),
        };
        nodes.push(rewritten);
        remap[i] = (nodes.len() - 1) as NodeId;
    }
    let out = remap_kernel(kernel, nodes, &remap);
    out.validate_ssa();
    out
}

/// Run fold → CSE → DCE to a fixed point (at most a few rounds).
pub fn optimize(kernel: &Kernel) -> Kernel {
    let mut k = kernel.clone();
    for _ in 0..4 {
        let next = dce(&cse(&constant_fold(&k)));
        if next.nodes.len() == k.nodes.len() {
            return next;
        }
        k = next;
    }
    k
}

fn remap_kernel(kernel: &Kernel, nodes: Vec<Node>, remap: &[NodeId]) -> Kernel {
    Kernel {
        name: kernel.name.clone(),
        inputs: kernel.inputs.clone(),
        outputs: kernel.outputs.clone(),
        reg_init: kernel.reg_init.clone(),
        num_params: kernel.num_params,
        nodes,
        reg_updates: kernel
            .reg_updates
            .iter()
            .map(|(r, v)| (*r, remap[*v as usize]))
            .collect(),
        writes: kernel
            .writes
            .iter()
            .map(|w| WriteSpec {
                stream: w.stream,
                values: w.values.iter().map(|v| remap[*v as usize]).collect(),
                cond: w.cond.map(|c| remap[c as usize]),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::interp::{Interpreter, StreamData};
    use crate::ir::StreamMode;

    fn run(k: &Kernel, data: Vec<f64>, iters: usize) -> Vec<f64> {
        Interpreter::new(k)
            .run(&[StreamData::new(1, data)], &[], iters)
            .unwrap()
            .outputs[0]
            .data
            .clone()
    }

    #[test]
    fn folds_constant_expressions() {
        let mut b = KernelBuilder::new("fold");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let two = b.constant(2.0);
        let three = b.constant(3.0);
        let six = b.mul(two, three); // foldable
        let x = b.read(s, 0);
        let y = b.mul(x, six);
        b.write(o, &[y]);
        let k = b.build();
        let folded = constant_fold(&k);
        assert!(matches!(folded.nodes[six.0 as usize], Node::Const(c) if c == 6.0));
        assert_eq!(run(&folded, vec![1.0, 2.0], 2), vec![6.0, 12.0]);
    }

    #[test]
    fn cse_merges_duplicate_work() {
        let mut b = KernelBuilder::new("cse");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 2);
        let x = b.read(s, 0);
        let a1 = b.mul(x, x);
        let a2 = b.mul(x, x); // duplicate
        let r1 = b.add(a1, x);
        let r2 = b.add(a2, x); // becomes duplicate after CSE of a1/a2
        b.write(o, &[r1, r2]);
        let k = b.build();
        let before = k.issuing_nodes().count();
        let after_k = dce(&cse(&k));
        let after = after_k.issuing_nodes().count();
        assert_eq!(before, 4);
        assert_eq!(after, 2, "x*x and x*x+x each merge");
        assert_eq!(run(&after_k, vec![3.0], 1), vec![12.0, 12.0]);
    }

    #[test]
    fn cse_respects_commutativity() {
        let mut b = KernelBuilder::new("comm");
        let s = b.input("xy", 2, StreamMode::EveryIteration);
        let o = b.output("o", 2);
        let x = b.read(s, 0);
        let y = b.read(s, 1);
        let a = b.add(x, y);
        let c = b.add(y, x); // commuted duplicate
        let d = b.sub(x, y);
        let e = b.sub(y, x); // NOT a duplicate (sub is not commutative)
        let m = b.mul(a, c);
        let n = b.mul(d, e);
        b.write(o, &[m, n]);
        let k = b.build();
        let opt = dce(&cse(&k));
        // add merged; subs kept.
        let subs = opt
            .nodes
            .iter()
            .filter(|n| {
                matches!(
                    n,
                    Node::Op {
                        op: OpKind::Sub,
                        ..
                    }
                )
            })
            .count();
        let adds = opt
            .nodes
            .iter()
            .filter(|n| {
                matches!(
                    n,
                    Node::Op {
                        op: OpKind::Add,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(adds, 1);
        assert_eq!(subs, 2);
    }

    #[test]
    fn cse_never_merges_conditional_reads() {
        let mut b = KernelBuilder::new("cond");
        let s = b.input("c", 1, StreamMode::Conditional);
        let f = b.input("flags", 1, StreamMode::EveryIteration);
        let o = b.output("o", 2);
        let flag = b.read(f, 0);
        let zero = b.constant(0.0);
        let r1 = b.cond_read(s, 0, flag, zero);
        let r2 = b.cond_read(s, 0, flag, zero); // looks identical
        b.write(o, &[r1, r2]);
        let k = b.build();
        let opt = cse(&k);
        let cond_reads = opt
            .nodes
            .iter()
            .filter(|n| matches!(n, Node::CondRead { .. }))
            .count();
        assert_eq!(cond_reads, 2, "conditional reads must never merge");
    }

    #[test]
    fn dce_removes_dead_work_and_preserves_semantics() {
        let mut b = KernelBuilder::new("dce");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let x = b.read(s, 0);
        let _dead = b.rsqrt(x);
        let _dead2 = b.mul(x, x);
        let y = b.add(x, x);
        b.write(o, &[y]);
        let k = b.build();
        let opt = dce(&k);
        assert!(opt.nodes.len() < k.nodes.len());
        assert_eq!(run(&opt, vec![4.0], 1), vec![8.0]);
    }

    #[test]
    fn optimize_reaches_fixed_point_and_preserves_outputs() {
        // Chain where folding exposes CSE which exposes DCE.
        let mut b = KernelBuilder::new("all");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let one = b.constant(1.0);
        let two = b.constant(2.0);
        let three = b.add(one, two);
        let x = b.read(s, 0);
        let a = b.mul(x, three);
        let c3 = b.constant(3.0);
        let bb = b.mul(x, c3); // duplicate of `a` after folding
        let y = b.add(a, bb);
        b.write(o, &[y]);
        let k = b.build();
        let opt = optimize(&k);
        assert!(opt.issuing_nodes().count() <= 2);
        assert_eq!(run(&opt, vec![2.0], 1), vec![12.0]);
    }

    #[test]
    fn water_kernel_optimization_is_modest() {
        // Sanity on a real kernel: the water interaction graph has little
        // redundancy by construction, so optimization shrinks it by a few
        // percent at most — and must preserve validity.
        let k = crate::lower::lower_kernel(
            &{
                // Use a random-ish arithmetic kernel in lieu of streammd
                // (which lives upstream of this crate).
                let mut b = KernelBuilder::new("w");
                let s = b.input("p", 6, StreamMode::EveryIteration);
                let o = b.output("f", 3);
                let a = b.read_v3(s, 0);
                let c = b.read_v3(s, 3);
                let d = b.v3_sub(a, c);
                let r2 = b.v3_norm2(d);
                let rinv = b.rsqrt(r2);
                let f = b.v3_scale(d, rinv);
                b.write(o, &[f.x, f.y, f.z]);
                b.build()
            },
            &merrimac_arch::OpCosts::default(),
        );
        let opt = optimize(&k);
        opt.validate_ssa();
        assert!(opt.issuing_nodes().count() <= k.issuing_nodes().count());
    }
}

//! Lowering of iterative operations.
//!
//! Merrimac's FPUs are multiply-add units; divide and square root are
//! implemented in software as a low-precision hardware *seed* followed by
//! Newton–Raphson refinement (Section 5.1: "divides and square-roots are
//! computed iteratively and require several operations"). This pass
//! rewrites every `Div`/`Sqrt`/`Rsqrt` node into that sequence so the
//! scheduler only ever sees single-cycle-throughput ops.
//!
//! Expansion shapes (N = iterations from [`OpCosts`]):
//!
//! * `rsqrt(x)`  → seed, `hx = 0.5·x`, then N × { `t = y·y`,
//!   `w = 1.5 − hx·t`, `y = y·w` } — `2 + 3N` issued ops.
//! * `div(a,b)`  → seed, N × { `e = 2 − b·y`, `y = y·e` }, `q = a·y`,
//!   plus a final correction `q' = q + y·(a − b·q)` — `4 + 2N` issued ops.
//! * `sqrt(x)`   → `x · rsqrt(x)` — `3 + 3N` issued ops.

use merrimac_arch::OpCosts;

use crate::ir::{Kernel, Node, NodeId, OpKind};

/// Rewrites all iterative ops; returns the lowered kernel. Idempotent on
/// already-lowered kernels.
pub fn lower_kernel(kernel: &Kernel, costs: &OpCosts) -> Kernel {
    let mut out = Kernel {
        name: kernel.name.clone(),
        inputs: kernel.inputs.clone(),
        outputs: kernel.outputs.clone(),
        reg_init: kernel.reg_init.clone(),
        num_params: kernel.num_params,
        nodes: Vec::with_capacity(kernel.nodes.len() * 2),
        reg_updates: Vec::new(),
        writes: Vec::new(),
    };
    // Map from old node id to new node id.
    let mut remap: Vec<NodeId> = Vec::with_capacity(kernel.nodes.len());

    let push = |nodes: &mut Vec<Node>, n: Node| -> NodeId {
        nodes.push(n);
        (nodes.len() - 1) as NodeId
    };

    for node in &kernel.nodes {
        let new_id = match node {
            Node::Op {
                op: OpKind::Rsqrt,
                args,
            } => {
                let x = remap[args[0] as usize];
                emit_rsqrt(&mut out.nodes, x, costs.rsqrt_iterations)
            }
            Node::Op {
                op: OpKind::Sqrt,
                args,
            } => {
                let x = remap[args[0] as usize];
                let r = emit_rsqrt(&mut out.nodes, x, costs.rsqrt_iterations);
                push(
                    &mut out.nodes,
                    Node::Op {
                        op: OpKind::Mul,
                        args: vec![x, r],
                    },
                )
            }
            Node::Op {
                op: OpKind::Div,
                args,
            } => {
                let a = remap[args[0] as usize];
                let b = remap[args[1] as usize];
                emit_div(&mut out.nodes, a, b, costs.recip_iterations)
            }
            Node::Op { op, args } => {
                let args = args.iter().map(|a| remap[*a as usize]).collect();
                push(&mut out.nodes, Node::Op { op: *op, args })
            }
            Node::CondRead {
                stream,
                field,
                pred,
                fallback,
            } => push(
                &mut out.nodes,
                Node::CondRead {
                    stream: *stream,
                    field: *field,
                    pred: remap[*pred as usize],
                    fallback: remap[*fallback as usize],
                },
            ),
            other => push(&mut out.nodes, other.clone()),
        };
        remap.push(new_id);
    }

    out.reg_updates = kernel
        .reg_updates
        .iter()
        .map(|(r, v)| (*r, remap[*v as usize]))
        .collect();
    out.writes = kernel
        .writes
        .iter()
        .map(|w| crate::ir::WriteSpec {
            stream: w.stream,
            values: w.values.iter().map(|v| remap[*v as usize]).collect(),
            cond: w.cond.map(|c| remap[c as usize]),
        })
        .collect();
    out.validate_ssa();
    debug_assert!(out.is_lowered());
    out
}

fn emit_rsqrt(nodes: &mut Vec<Node>, x: NodeId, iters: u32) -> NodeId {
    let mut push = |n: Node| -> NodeId {
        nodes.push(n);
        (nodes.len() - 1) as NodeId
    };
    let half = push(Node::Const(0.5));
    let three_half = push(Node::Const(1.5));
    let mut y = push(Node::Op {
        op: OpKind::SeedRsqrt,
        args: vec![x],
    });
    let hx = push(Node::Op {
        op: OpKind::Mul,
        args: vec![x, half],
    });
    for _ in 0..iters {
        let t = push(Node::Op {
            op: OpKind::Mul,
            args: vec![y, y],
        });
        // w = 1.5 - hx*t
        let w = push(Node::Op {
            op: OpKind::Nmsub,
            args: vec![hx, t, three_half],
        });
        y = push(Node::Op {
            op: OpKind::Mul,
            args: vec![y, w],
        });
    }
    y
}

fn emit_div(nodes: &mut Vec<Node>, a: NodeId, b: NodeId, iters: u32) -> NodeId {
    let mut push = |n: Node| -> NodeId {
        nodes.push(n);
        (nodes.len() - 1) as NodeId
    };
    let two = push(Node::Const(2.0));
    let mut y = push(Node::Op {
        op: OpKind::SeedRecip,
        args: vec![b],
    });
    for _ in 0..iters {
        // e = 2 - b*y ; y = y*e
        let e = push(Node::Op {
            op: OpKind::Nmsub,
            args: vec![b, y, two],
        });
        y = push(Node::Op {
            op: OpKind::Mul,
            args: vec![y, e],
        });
    }
    let q = push(Node::Op {
        op: OpKind::Mul,
        args: vec![a, y],
    });
    // Correction: q' = q + y*(a - b*q)
    let r = push(Node::Op {
        op: OpKind::Nmsub,
        args: vec![b, q, a],
    });
    push(Node::Op {
        op: OpKind::Madd,
        args: vec![r, y, q],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::interp::{Interpreter, StreamData};
    use crate::ir::StreamMode;

    fn one_op_kernel(
        f: impl FnOnce(
            &mut KernelBuilder,
            crate::builder::Val,
            crate::builder::Val,
        ) -> crate::builder::Val,
    ) -> Kernel {
        let mut b = KernelBuilder::new("t");
        let s = b.input("in", 2, StreamMode::EveryIteration);
        let o = b.output("out", 1);
        let x = b.read(s, 0);
        let y = b.read(s, 1);
        let r = f(&mut b, x, y);
        b.write(o, &[r]);
        b.build()
    }

    fn run_unary(k: &Kernel, inputs: &[(f64, f64)]) -> Vec<f64> {
        let data: Vec<f64> = inputs.iter().flat_map(|&(a, b)| [a, b]).collect();
        let out = Interpreter::new(k)
            .run(&[StreamData::new(2, data)], &[], inputs.len())
            .expect("interp");
        out.outputs[0].data.clone()
    }

    #[test]
    fn lowered_kernel_has_no_iterative_ops() {
        let k = one_op_kernel(|b, x, _| b.rsqrt(x));
        let l = lower_kernel(&k, &OpCosts::default());
        assert!(l.is_lowered());
        assert!(
            !k.is_lowered()
                || k.nodes
                    .iter()
                    .all(|n| !matches!(n, Node::Op { op, .. } if op.is_iterative()))
        );
    }

    #[test]
    fn rsqrt_accuracy() {
        let k = one_op_kernel(|b, x, _| b.rsqrt(x));
        let l = lower_kernel(&k, &OpCosts::default());
        let inputs: Vec<(f64, f64)> = [0.01, 0.5, 1.0, 2.0, 123.456, 9.9e6]
            .iter()
            .map(|&x| (x, 0.0))
            .collect();
        let got = run_unary(&l, &inputs);
        for (i, &(x, _)) in inputs.iter().enumerate() {
            let want = 1.0 / x.sqrt();
            let rel = ((got[i] - want) / want).abs();
            assert!(rel < 1e-14, "rsqrt({x}) rel error {rel}");
        }
    }

    #[test]
    fn sqrt_accuracy() {
        let k = one_op_kernel(|b, x, _| b.sqrt(x));
        let l = lower_kernel(&k, &OpCosts::default());
        let inputs: Vec<(f64, f64)> = [0.04, 1.0, 3.0, 777.0].iter().map(|&x| (x, 0.0)).collect();
        let got = run_unary(&l, &inputs);
        for (i, &(x, _)) in inputs.iter().enumerate() {
            let rel = ((got[i] - x.sqrt()) / x.sqrt()).abs();
            assert!(rel < 1e-15, "sqrt({x}) rel error {rel}");
        }
    }

    #[test]
    fn div_accuracy() {
        let k = one_op_kernel(|b, x, y| b.div(x, y));
        let l = lower_kernel(&k, &OpCosts::default());
        let inputs = vec![
            (1.0, 3.0),
            (10.0, 7.0),
            (-2.5, 0.3),
            (5.0, 1e-3),
            (0.0, 2.0),
        ];
        let got = run_unary(&l, &inputs);
        for (i, &(a, b)) in inputs.iter().enumerate() {
            let want = a / b;
            let err = if want == 0.0 {
                got[i].abs()
            } else {
                ((got[i] - want) / want).abs()
            };
            assert!(err < 1e-15, "div({a},{b}) error {err}");
        }
    }

    #[test]
    fn expansion_op_counts_match_cost_model() {
        type BuildFn =
            fn(&mut KernelBuilder, crate::builder::Val, crate::builder::Val) -> crate::builder::Val;
        let costs = OpCosts::default();
        let cases: [(BuildFn, merrimac_arch::FpuOpClass); 3] = [
            (|b, x, _| b.rsqrt(x), merrimac_arch::FpuOpClass::Rsqrt),
            (|b, x, _| b.sqrt(x), merrimac_arch::FpuOpClass::Sqrt),
            (|b, x, y| b.div(x, y), merrimac_arch::FpuOpClass::Div),
        ];
        for (build, class) in cases {
            let k = one_op_kernel(build);
            let l = lower_kernel(&k, &costs);
            let issued = l.issuing_nodes().count() as u64;
            assert_eq!(
                issued,
                costs.expansion_ops(class),
                "expansion count mismatch for {class:?}"
            );
        }
    }

    #[test]
    fn lowering_is_idempotent() {
        let k = one_op_kernel(|b, x, y| b.div(x, y));
        let costs = OpCosts::default();
        let l1 = lower_kernel(&k, &costs);
        let l2 = lower_kernel(&l1, &costs);
        assert_eq!(l1.nodes, l2.nodes);
    }

    #[test]
    fn plain_ops_pass_through() {
        let k = one_op_kernel(|b, x, y| b.madd(x, y, x));
        let l = lower_kernel(&k, &OpCosts::default());
        assert_eq!(l.nodes.len(), k.nodes.len());
    }
}

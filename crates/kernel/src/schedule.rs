//! Critical-path list scheduling onto the cluster's VLIW slots.
//!
//! Each cluster executes one VLIW word per cycle with one slot per FPU
//! (4 in the Table 1 configuration). The scheduler places every *live*
//! issuing node (arithmetic and conditional-stream bookkeeping; plain
//! stream reads are serviced by stream buffers and are free) so that all
//! data dependencies are satisfied with full pipeline latencies — the
//! static scheduling discipline the paper's "communication scheduling"
//! compiler implements.

use std::collections::HashMap;

use merrimac_arch::OpCosts;

use crate::ir::{Kernel, Node, NodeId};

/// A scheduled loop body (non-pipelined: one iteration completes before
/// the next begins, as in the left half of Figure 10).
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// `slots[cycle][slot]` — issued node, if any.
    pub slots: Vec<Vec<Option<NodeId>>>,
    /// Issue cycle per node (None for non-issuing or dead nodes).
    pub issue_cycle: Vec<Option<u64>>,
    /// Cycle at which each node's *value* is available.
    pub value_ready: Vec<Option<u64>>,
    pub num_slots: usize,
    /// Completion time: all values (including latencies) available.
    pub length: u64,
}

impl Schedule {
    /// Number of ops issued.
    pub fn issued_ops(&self) -> usize {
        self.issue_cycle.iter().flatten().count()
    }

    /// Last cycle in which anything issues, plus one.
    pub fn issue_span(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Fraction of slot-cycles filled over the issue span.
    pub fn occupancy(&self) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        self.issued_ops() as f64 / (self.slots.len() * self.num_slots) as f64
    }

    /// Fraction of cycles (over the issue span) in which at least one op
    /// issues — the paper's "a new instruction is issued on X% of cycles".
    pub fn issue_rate(&self) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        let busy = self
            .slots
            .iter()
            .filter(|row| row.iter().any(|s| s.is_some()))
            .count();
        busy as f64 / self.slots.len() as f64
    }
}

/// Compute the set of live nodes: transitive dependencies of the kernel's
/// observable roots.
pub fn live_set(kernel: &Kernel) -> Vec<bool> {
    let mut live = vec![false; kernel.nodes.len()];
    let mut stack = kernel.live_roots();
    while let Some(n) = stack.pop() {
        if live[n as usize] {
            continue;
        }
        live[n as usize] = true;
        stack.extend(kernel.nodes[n as usize].deps());
    }
    live
}

fn latency_of(node: &Node, costs: &OpCosts) -> u64 {
    node.fpu_class().map_or(0, |c| costs.latency(c))
}

/// Longest-latency path from each node to any live root (the classic list
/// scheduling priority).
pub fn heights(kernel: &Kernel, costs: &OpCosts, live: &[bool]) -> Vec<u64> {
    let n = kernel.nodes.len();
    let mut height = vec![0u64; n];
    // users: reverse edges.
    let mut users: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (i, node) in kernel.nodes.iter().enumerate() {
        for d in node.deps() {
            users[d as usize].push(i as NodeId);
        }
    }
    for i in (0..n).rev() {
        if !live[i] {
            continue;
        }
        let max_user = users[i]
            .iter()
            .map(|&u| height[u as usize])
            .max()
            .unwrap_or(0);
        height[i] = latency_of(&kernel.nodes[i], costs) + max_user;
    }
    height
}

/// List-schedule the kernel onto `num_slots` FPU slots.
///
/// Panics if the kernel still contains iterative ops (run
/// [`crate::lower::lower_kernel`] first).
pub fn list_schedule(kernel: &Kernel, costs: &OpCosts, num_slots: usize) -> Schedule {
    assert!(
        kernel.is_lowered(),
        "kernel {} must be lowered before scheduling",
        kernel.name
    );
    assert!(num_slots > 0);
    let n = kernel.nodes.len();
    let live = live_set(kernel);
    let height = heights(kernel, costs, &live);

    let mut value_ready: Vec<Option<u64>> = vec![None; n];
    let mut issue_cycle: Vec<Option<u64>> = vec![None; n];
    // Seed non-issuing nodes whose deps are all non-issuing (transitively):
    // resolved lazily below.
    let mut slots: Vec<Vec<Option<NodeId>>> = Vec::new();

    // Resolve value_ready for non-issuing nodes whose deps are known.
    fn try_resolve(kernel: &Kernel, i: usize, value_ready: &mut [Option<u64>]) -> Option<u64> {
        if let Some(v) = value_ready[i] {
            return Some(v);
        }
        let node = &kernel.nodes[i];
        if node.issues() {
            return None; // set when scheduled
        }
        let mut ready = 0u64;
        for d in node.deps() {
            match value_ready[d as usize] {
                Some(r) => ready = ready.max(r),
                None => return None,
            }
        }
        value_ready[i] = Some(ready);
        Some(ready)
    }

    // Initial pass: resolve pure chains of non-issuing nodes.
    for (i, &alive) in live.iter().enumerate() {
        if alive {
            try_resolve(kernel, i, &mut value_ready);
        }
    }

    let total_to_schedule = (0..n)
        .filter(|&i| live[i] && kernel.nodes[i].issues())
        .count();
    let mut scheduled = 0usize;
    let mut t: u64 = 0;
    // Safety bound: every op takes at most latency+1 cycles serialized.
    let bound = (total_to_schedule as u64 + 1) * (costs.madd_latency + 2) + 64;

    while scheduled < total_to_schedule {
        assert!(
            t < bound,
            "list scheduler failed to converge for {}",
            kernel.name
        );
        // Gather ready nodes at cycle t.
        let mut ready: Vec<(u64, NodeId)> = Vec::new();
        for i in 0..n {
            if !live[i] || issue_cycle[i].is_some() || !kernel.nodes[i].issues() {
                continue;
            }
            let mut ok = true;
            let mut earliest = 0u64;
            for d in kernel.nodes[i].deps() {
                match try_resolve(kernel, d as usize, &mut value_ready) {
                    Some(r) => earliest = earliest.max(r),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && earliest <= t {
                ready.push((height[i], i as NodeId));
            }
        }
        // Highest priority first; stable tiebreak on node id for
        // determinism.
        ready.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut row = vec![None; num_slots];
        for (slot, &(_, node)) in ready.iter().take(num_slots).enumerate() {
            row[slot] = Some(node);
            issue_cycle[node as usize] = Some(t);
            let lat = latency_of(&kernel.nodes[node as usize], costs);
            value_ready[node as usize] = Some(t + lat);
            scheduled += 1;
        }
        slots.push(row);
        t += 1;
    }

    // Trim trailing empty rows (can appear if the last ready set was
    // empty while waiting on latencies — they still represent stall
    // cycles, so only rows after the final issue are trimmed).
    while slots
        .last()
        .is_some_and(|row| row.iter().all(|s| s.is_none()))
    {
        slots.pop();
    }

    // Final resolution of all live non-issuing nodes.
    for (i, &alive) in live.iter().enumerate() {
        if alive {
            try_resolve(kernel, i, &mut value_ready);
        }
    }
    let length = (0..n)
        .filter(|&i| live[i])
        .filter_map(|i| value_ready[i])
        .max()
        .unwrap_or(0)
        .max(slots.len() as u64);

    Schedule {
        slots,
        issue_cycle,
        value_ready,
        num_slots,
        length,
    }
}

/// Dependence-edge map (used by the validator and the pipeliner).
pub fn user_map(kernel: &Kernel) -> HashMap<NodeId, Vec<NodeId>> {
    let mut users: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for (i, node) in kernel.nodes.iter().enumerate() {
        for d in node.deps() {
            users.entry(d).or_default().push(i as NodeId);
        }
    }
    users
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::StreamMode;
    use crate::lower::lower_kernel;

    fn chain_kernel(len: usize) -> Kernel {
        // x -> +1 -> +1 -> ... serial chain (no ILP).
        let mut b = KernelBuilder::new("chain");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let one = b.constant(1.0);
        let mut v = b.read(s, 0);
        for _ in 0..len {
            v = b.add(v, one);
        }
        b.write(o, &[v]);
        b.build()
    }

    fn wide_kernel(width: usize) -> Kernel {
        // independent multiplies, all ILP.
        let mut b = KernelBuilder::new("wide");
        let s = b.input("x", width as u32, StreamMode::EveryIteration);
        let o = b.output("y", width as u32);
        let vals: Vec<_> = (0..width)
            .map(|i| {
                let x = b.read(s, i as u32);
                b.mul(x, x)
            })
            .collect();
        b.write(o, &vals);
        b.build()
    }

    #[test]
    fn serial_chain_is_latency_bound() {
        let costs = OpCosts::default();
        let k = lower_kernel(&chain_kernel(5), &costs);
        let s = list_schedule(&k, &costs, 4);
        // 5 serial adds with latency 4: completion at 5*4 = 20.
        assert_eq!(s.length, 5 * costs.madd_latency);
        assert_eq!(s.issued_ops(), 5);
    }

    #[test]
    fn wide_kernel_is_throughput_bound() {
        let costs = OpCosts::default();
        let k = lower_kernel(&wide_kernel(16), &costs);
        let s = list_schedule(&k, &costs, 4);
        // 16 independent muls on 4 slots: 4 issue cycles, last result at
        // 3 + latency.
        assert_eq!(s.issue_span(), 4);
        assert_eq!(s.length, 3 + costs.madd_latency);
        assert!((s.occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dependencies_respected() {
        let costs = OpCosts::default();
        let k = lower_kernel(&chain_kernel(8), &costs);
        let s = list_schedule(&k, &costs, 4);
        for (i, node) in k.nodes.iter().enumerate() {
            if let Some(t) = s.issue_cycle[i] {
                for d in node.deps() {
                    let r = s.value_ready[d as usize].expect("dep resolved");
                    assert!(r <= t, "node {i} issued at {t} before dep {d} ready at {r}");
                }
            }
        }
    }

    #[test]
    fn dead_nodes_not_scheduled() {
        let mut b = KernelBuilder::new("dead");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let x = b.read(s, 0);
        let _dead = b.mul(x, x); // never written
        let live = b.add(x, x);
        b.write(o, &[live]);
        let k = b.build();
        let costs = OpCosts::default();
        let sch = list_schedule(&lower_kernel(&k, &costs), &costs, 4);
        assert_eq!(sch.issued_ops(), 1);
    }

    #[test]
    #[should_panic(expected = "lowered")]
    fn unlowered_kernel_rejected() {
        let mut b = KernelBuilder::new("bad");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let x = b.read(s, 0);
        let r = b.rsqrt(x);
        b.write(o, &[r]);
        let k = b.build();
        list_schedule(&k, &OpCosts::default(), 4);
    }

    #[test]
    fn issue_rate_of_dense_schedule_is_one() {
        let costs = OpCosts::default();
        let k = lower_kernel(&wide_kernel(8), &costs);
        let s = list_schedule(&k, &costs, 4);
        assert!((s.issue_rate() - 1.0).abs() < 1e-12);
    }
}

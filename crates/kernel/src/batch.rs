//! Batched structure-of-arrays execution of a compiled tape — the
//! vectorized host fast path.
//!
//! The scalar tape ([`crate::tape`]) retired the interpreter's
//! per-iteration graph walk but still dispatches one opcode per scalar
//! iteration. This module executes the same tape over batches of
//! `B ∈ {8, 16}` iterations held in `[f64; B]` lane arrays, so each op
//! becomes one tight loop the compiler can autovectorize and the per-op
//! dispatch cost is amortized over the whole batch — the same shape
//! MD-Bench gives its SIMD force kernels, and a faithful host-side echo
//! of Merrimac running one kernel across parallel cluster lanes.
//!
//! Bitwise identity with the scalar engines is the hard constraint. It
//! is preserved by partitioning the tape at compile time ([`BatchPlan`])
//! into three dataflow-ordered phases:
//!
//! 1. **`vec_pre`** — ops with no transitive dependence on loop-carried
//!    registers or conditional reads. Lane-independent, so they run
//!    vectorized over the whole batch first. For the arithmetic-heavy
//!    StreamMD variants this is nearly the entire tape.
//! 2. **`seq`** — the loop-carried core: every conditional read plus
//!    the lane-coupled backward slice feeding register updates and pop
//!    predicates/fallbacks. These run scalar, lane by lane in iteration
//!    order, so conditional pops happen in exactly the scalar engine's
//!    order (iteration-major, op order within an iteration) and
//!    register chains thread through the batch unchanged. This is the
//!    compress side of the paper's conditional-stream semantics: a pop
//!    fills only the lanes whose predicate is live; inactive lanes take
//!    their fallback value.
//! 3. **`vec_post`** — lane-coupled consumers that feed neither
//!    register updates nor pops; once phase 2 has materialized per-lane
//!    register and conditional-read values they vectorize too.
//!
//! Every op still computes the same `f64` expression on the same
//! operand values, so reordering between phases cannot change a single
//! bit. Writes drain lane-major (iteration order) at batch end, which
//! expands conditionally-written records in exactly the scalar append
//! order. The remainder — `iterations % B`, plus everything past the
//! point where an every-iteration stream can still cover a full batch —
//! runs through the *same* scalar-tape helpers as [`CompiledTape::run`]
//! ([`crate::tape::ScalarState`] hand-off), so underrun errors and
//! their `(stream, iteration)` values are shared code, not a
//! reimplementation. `tests/tape_equivalence.rs` pins all of this
//! differentially against both scalar oracles.

use std::fmt;

use crate::interp::{InterpError, InterpOutput, StreamData};
use crate::tape::{mask, Code, CompiledTape, ScalarState, TapeOp, UnderrunProof, NO_COND};

/// Lane count of the batched SoA engine: 8 or 16 iterations per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchWidth {
    /// 8 lanes — the default: one AVX-512 register (or two AVX2
    /// registers) per operand, and a short scalar remainder.
    #[default]
    W8,
    /// 16 lanes — more dispatch amortization on long arithmetic tapes
    /// at twice the lane-array footprint.
    W16,
}

impl BatchWidth {
    /// The width a `MERRIMAC_TAPE_BATCH` value names, if any. Typed
    /// rejection of malformed values happens at the validated front
    /// door (`merrimac_bench::RunSpec::from_env_overrides`), which
    /// calls this.
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "8" => Some(BatchWidth::W8),
            "16" => Some(BatchWidth::W16),
            _ => None,
        }
    }

    /// Resolve from the `MERRIMAC_TAPE_BATCH` environment variable
    /// (`8` or `16`; anything else, including unset, means 8). Lenient
    /// legacy default for raw construction — results are
    /// bitwise-identical at either width, only host wall-clock differs.
    pub fn from_env() -> Self {
        std::env::var("MERRIMAC_TAPE_BATCH")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// Iterations per batch.
    pub fn lanes(self) -> usize {
        match self {
            BatchWidth::W8 => 8,
            BatchWidth::W16 => 16,
        }
    }
}

impl std::fmt::Display for BatchWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.lanes())
    }
}

/// Compile-time phase partition of a tape's ops (see the module docs).
/// Built once in [`CompiledTape::compile`] and cached on the tape, so
/// every launch reuses the analysis.
#[derive(Debug, Clone, Default)]
pub struct BatchPlan {
    /// Phase 1: lane-independent ops, vectorized before any lane state.
    pub(crate) vec_pre: Vec<TapeOp>,
    /// Phase 2: the scalar per-lane core, in original tape order.
    pub(crate) seq: Vec<TapeOp>,
    /// Phase 3: lane-coupled but state-free consumers, vectorized after
    /// phase 2 resolves the per-lane register/conditional values.
    pub(crate) vec_post: Vec<TapeOp>,
}

impl BatchPlan {
    pub(crate) fn analyze(tape: &CompiledTape) -> Self {
        let n = tape.num_nodes;
        // A slot is lane-coupled when its value is not a pure function
        // of this iteration's own stream records: register reads carry
        // state from earlier lanes, conditional reads depend on the
        // shared pop cursor. Coupling propagates forward through use.
        let mut coupled = vec![false; n];
        for &(dst, _) in &tape.reg_reads {
            coupled[dst as usize] = true;
        }
        for op in &tape.ops {
            if op.code == Code::CondRead
                || used_args(op)
                    .into_iter()
                    .flatten()
                    .any(|a| coupled[a as usize])
            {
                coupled[op.dst as usize] = true;
            }
        }
        // `needed` marks the backward slice that must resolve before
        // the next lane may start: register-update sources plus pop
        // predicates and fallbacks.
        let mut needed = vec![false; n];
        for &(_, v) in &tape.reg_updates {
            needed[v as usize] = true;
        }
        for cr in &tape.cond_reads {
            needed[cr.pred as usize] = true;
            needed[cr.fallback as usize] = true;
        }
        for op in tape.ops.iter().rev() {
            if op.code != Code::CondRead && needed[op.dst as usize] {
                for a in used_args(op).into_iter().flatten() {
                    needed[a as usize] = true;
                }
            }
        }
        // Uncoupled ops never observe lane state, so hoisting them to
        // phase 1 is dataflow-safe even when `needed` (their results are
        // ready before any lane of phase 2 reads them). Coupled ops stay
        // sequential only while something per-lane depends on them.
        let mut plan = BatchPlan::default();
        for op in &tape.ops {
            if op.code == Code::CondRead {
                plan.seq.push(*op);
            } else if !coupled[op.dst as usize] {
                plan.vec_pre.push(*op);
            } else if needed[op.dst as usize] {
                plan.seq.push(*op);
            } else {
                plan.vec_post.push(*op);
            }
        }
        plan
    }
}

/// The operand slots an op actually reads. Unused slots default to 0 in
/// [`TapeOp`] and must not leak into the dependence analysis, or node 0
/// would falsely couple every unary op.
fn used_args(op: &TapeOp) -> [Option<u32>; 3] {
    match op.code {
        Code::Sqrt | Code::Rsqrt | Code::SeedRecip | Code::SeedRsqrt | Code::Not | Code::Mov => {
            [Some(op.a), None, None]
        }
        Code::Madd | Code::Nmsub | Code::Sel => [Some(op.a), Some(op.b), Some(op.c)],
        Code::CondRead => [None, None, None],
        _ => [Some(op.a), Some(op.b), None],
    }
}

/// One violated invariant of the three-phase batch split, as found by
/// [`CompiledTape::audit_batch_plan`]. A correct [`BatchPlan`] never
/// produces any of these; each variant names the op slot (and where
/// relevant the phase or operand) that breaks the contract the batch
/// engine's correctness proof rests on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPlanViolation {
    /// A tape op's destination slot appears in no phase: the batch
    /// engine would simply never compute it.
    MissingOp { dst: u32 },
    /// A destination slot appears in more than one phase (or twice in
    /// one): the op would execute multiple times per iteration.
    DuplicateOp { dst: u32 },
    /// A conditional read was scheduled outside the sequential phase,
    /// where the shared pop cursor cannot resolve in lane order.
    CondReadOutsideSeq { dst: u32, phase: &'static str },
    /// A phase-1 (pre-vectorized) op reads a lane-coupled slot — a
    /// register read, a sequential result, or a phase-3 result — whose
    /// per-lane value does not exist yet when phase 1 runs.
    PreReadsCoupled { dst: u32, arg: u32 },
    /// A sequential op reads a slot that only resolves in phase 3,
    /// which runs after the whole sequential phase.
    SeqReadsPost { dst: u32, arg: u32 },
    /// A register-update source or a pop predicate/fallback resolves
    /// only in phase 3 — the next lane would observe a stale value.
    NeededInPost { dst: u32 },
    /// Ops inside one phase are out of tape (SSA) order, so an op could
    /// read an operand slot before the phase has written it.
    PhaseOrder { phase: &'static str, dst: u32 },
}

impl fmt::Display for BatchPlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BatchPlanViolation::MissingOp { dst } => {
                write!(f, "op slot {dst} is scheduled in no phase")
            }
            BatchPlanViolation::DuplicateOp { dst } => {
                write!(f, "op slot {dst} is scheduled more than once")
            }
            BatchPlanViolation::CondReadOutsideSeq { dst, phase } => {
                write!(f, "conditional read at slot {dst} scheduled in {phase} instead of seq")
            }
            BatchPlanViolation::PreReadsCoupled { dst, arg } => {
                write!(f, "vec_pre op at slot {dst} reads lane-coupled slot {arg}")
            }
            BatchPlanViolation::SeqReadsPost { dst, arg } => {
                write!(f, "seq op at slot {dst} reads vec_post slot {arg}")
            }
            BatchPlanViolation::NeededInPost { dst } => {
                write!(
                    f,
                    "slot {dst} feeds a register update or pop control but resolves in vec_post"
                )
            }
            BatchPlanViolation::PhaseOrder { phase, dst } => {
                write!(f, "{phase} breaks tape order at slot {dst}")
            }
        }
    }
}

impl CompiledTape {
    /// Re-derive every invariant the batch engine assumes of its cached
    /// [`BatchPlan`] and report each breach. Independent of
    /// [`BatchPlan::analyze`]'s own bookkeeping on purpose: the audit
    /// checks the *plan artifact* against the tape, so a bug in the
    /// analysis (or a hand-corrupted plan in tests) is caught rather
    /// than re-trusted. Returns an empty vector for a sound plan.
    pub fn audit_batch_plan(&self) -> Vec<BatchPlanViolation> {
        let plan = &self.batch;
        let mut out = Vec::new();
        let n = self.num_nodes;

        // Phase membership by destination slot, plus the multi-set
        // count for exactly-once coverage.
        let mut in_pre = vec![false; n];
        let mut in_seq = vec![false; n];
        let mut in_post = vec![false; n];
        let mut count = vec![0usize; n];
        for op in &plan.vec_pre {
            in_pre[op.dst as usize] = true;
            count[op.dst as usize] += 1;
        }
        for op in &plan.seq {
            in_seq[op.dst as usize] = true;
            count[op.dst as usize] += 1;
        }
        for op in &plan.vec_post {
            in_post[op.dst as usize] = true;
            count[op.dst as usize] += 1;
        }
        for op in &self.ops {
            match count[op.dst as usize] {
                0 => out.push(BatchPlanViolation::MissingOp { dst: op.dst }),
                1 => {}
                _ => out.push(BatchPlanViolation::DuplicateOp { dst: op.dst }),
            }
        }

        // Conditional reads must resolve the shared pop cursor in lane
        // order — only the sequential phase provides that.
        for (phase, ops) in [("vec_pre", &plan.vec_pre), ("vec_post", &plan.vec_post)] {
            for op in ops.iter() {
                if op.code == Code::CondRead {
                    out.push(BatchPlanViolation::CondReadOutsideSeq { dst: op.dst, phase });
                }
            }
        }

        // Lane-coupled slots: register reads carry prior-lane state;
        // seq and post results are per-lane by construction.
        let mut coupled = vec![false; n];
        for &(dst, _) in &self.reg_reads {
            coupled[dst as usize] = true;
        }
        for s in 0..n {
            if in_seq[s] || in_post[s] {
                coupled[s] = true;
            }
        }
        for op in &plan.vec_pre {
            for a in used_args(op).into_iter().flatten() {
                if coupled[a as usize] {
                    out.push(BatchPlanViolation::PreReadsCoupled { dst: op.dst, arg: a });
                }
            }
        }

        // The sequential phase runs strictly before phase 3.
        for op in &plan.seq {
            for a in used_args(op).into_iter().flatten() {
                if in_post[a as usize] {
                    out.push(BatchPlanViolation::SeqReadsPost { dst: op.dst, arg: a });
                }
            }
        }

        // Everything the next lane depends on — register-update sources
        // and pop predicates/fallbacks — must resolve by end of seq.
        let mut needed_now = vec![false; n];
        for &(_, v) in &self.reg_updates {
            needed_now[v as usize] = true;
        }
        for cr in &self.cond_reads {
            needed_now[cr.pred as usize] = true;
            needed_now[cr.fallback as usize] = true;
        }
        for s in 0..n {
            if needed_now[s] && in_post[s] {
                out.push(BatchPlanViolation::NeededInPost { dst: s as u32 });
            }
        }

        // Tape order within each phase: dsts are strictly increasing in
        // tape order (SSA), so any inversion means an op could read a
        // slot its own phase has not written yet.
        for (phase, ops) in [
            ("vec_pre", &plan.vec_pre),
            ("seq", &plan.seq),
            ("vec_post", &plan.vec_post),
        ] {
            for w in ops.windows(2) {
                if w[1].dst <= w[0].dst {
                    out.push(BatchPlanViolation::PhaseOrder { phase, dst: w[1].dst });
                }
            }
        }

        out
    }

    /// Drop the last op of the first non-empty phase, leaving a plan
    /// the audit must flag with exactly one `MissingOp`. Test-only
    /// sabotage hook for the BATCH_PLAN_SPLIT fixtures — never called
    /// by production code.
    #[doc(hidden)]
    pub fn corrupt_batch_plan_for_tests(&mut self) {
        for ops in [
            &mut self.batch.vec_pre,
            &mut self.batch.seq,
            &mut self.batch.vec_post,
        ] {
            if !ops.is_empty() {
                ops.pop();
                return;
            }
        }
    }

    /// Execute the tape in SoA batches of `width` lanes. Bitwise
    /// identical to [`CompiledTape::run`]: same outputs, consumed
    /// counts, final registers, and the same [`InterpError`] values on
    /// failure — `tests/tape_equivalence.rs` holds all three engines to
    /// this differentially.
    pub fn run_batched(
        &self,
        inputs: &[StreamData],
        params: &[f64],
        iterations: usize,
        width: BatchWidth,
    ) -> Result<InterpOutput, InterpError> {
        match width {
            BatchWidth::W8 => self.run_batched_impl::<8, true>(inputs, params, iterations),
            BatchWidth::W16 => self.run_batched_impl::<16, true>(inputs, params, iterations),
        }
    }

    /// [`CompiledTape::run_batched`] with a static underrun proof:
    /// after the O(streams) [`UnderrunProof::covers`] revalidation, the
    /// up-front underrun decision, the every-stream batch clamp and the
    /// per-pop depth checks are all elided — the proof guarantees none
    /// of them could fire. Bitwise-identical to the checked path; a
    /// proof that does not cover the launch falls back to it.
    pub fn run_batched_proven(
        &self,
        inputs: &[StreamData],
        params: &[f64],
        iterations: usize,
        width: BatchWidth,
        proof: &UnderrunProof,
    ) -> Result<InterpOutput, InterpError> {
        if !proof.covers(inputs, iterations) {
            return self.run_batched(inputs, params, iterations, width);
        }
        match width {
            BatchWidth::W8 => self.run_batched_impl::<8, false>(inputs, params, iterations),
            BatchWidth::W16 => self.run_batched_impl::<16, false>(inputs, params, iterations),
        }
    }

    fn run_batched_impl<const B: usize, const CHECKED: bool>(
        &self,
        inputs: &[StreamData],
        params: &[f64],
        iterations: usize,
    ) -> Result<InterpOutput, InterpError> {
        self.validate_signature(inputs, params)?;
        let mut outputs = self.make_outputs(iterations);
        let mut regs = self.reg_init.clone();

        // One [f64; B] lane array per value slot. Constants and params
        // broadcast once per launch; SSA guarantees phase results
        // overwrite their slots before any lane reads them.
        let mut lanes: Vec<[f64; B]> = vec![[0.0; B]; self.num_nodes];
        for &(slot, c) in &self.const_inits {
            lanes[slot as usize] = [c; B];
        }
        for &(slot, p) in &self.param_inits {
            lanes[slot as usize] = [params[p as usize]; B];
        }

        if CHECKED && self.fast_path {
            // The scalar fast path decides underrun before the loop; the
            // batch engine inherits the proof (and its blame order)
            // wholesale. A static UnderrunProof discharges this.
            self.prove_fast_underrun(inputs, iterations)?;
        }
        // Full batches run vectorized only while every every-iteration
        // stream still covers the whole batch; the scalar tail owns the
        // (possibly erroring) remainder. A proven launch needs no clamp:
        // the proof guarantees every every-iteration stream covers all
        // `iterations`, so the clamp would be a no-op.
        let num_records: Vec<usize> = inputs.iter().map(|d| d.num_records()).collect();
        let batches = if CHECKED {
            let every_limit = self
                .input_every_iter
                .iter()
                .enumerate()
                .filter(|(_, e)| **e)
                .map(|(s, _)| num_records[s])
                .min()
                .unwrap_or(usize::MAX);
            iterations.min(every_limit) / B
        } else {
            iterations / B
        };

        let mut st = ScalarState::new(self, inputs.len());
        for b in 0..batches {
            self.exec_batch::<B, CHECKED>(
                inputs,
                &num_records,
                &mut lanes,
                &mut regs,
                &mut outputs,
                &mut st,
                b * B,
            )?;
        }

        // Scalar remainder through the shared tape helpers: identical
        // iteration bodies, error values and append order.
        let done = batches * B;
        let records_consumed = if self.fast_path {
            if done < iterations {
                let mut vals = self.init_vals(params);
                self.run_fast_range(
                    inputs,
                    &mut vals,
                    &mut regs,
                    &mut outputs,
                    &mut st.row_base,
                    iterations - done,
                );
            }
            vec![iterations; inputs.len()]
        } else {
            if done < iterations {
                let mut vals = self.init_vals(params);
                if CHECKED {
                    self.run_general_range(
                        inputs,
                        &mut vals,
                        &mut regs,
                        &mut outputs,
                        &mut st,
                        done,
                        iterations,
                    )?;
                } else {
                    self.run_general_range_unchecked(
                        inputs,
                        &mut vals,
                        &mut regs,
                        &mut outputs,
                        &mut st,
                        done,
                        iterations,
                    );
                }
            }
            st.cursors
        };

        Ok(InterpOutput {
            outputs,
            records_consumed,
            iterations,
            final_regs: regs,
        })
    }

    /// One full batch of `B` iterations: SoA gather, the three phases,
    /// lane-major write drain, cursor advance. `base` is the absolute
    /// iteration index of lane 0 (for underrun blame).
    #[allow(clippy::too_many_arguments)]
    fn exec_batch<const B: usize, const CHECKED: bool>(
        &self,
        inputs: &[StreamData],
        num_records: &[usize],
        lanes: &mut [[f64; B]],
        regs: &mut [f64],
        outputs: &mut [StreamData],
        st: &mut ScalarState,
        base: usize,
    ) -> Result<(), InterpError> {
        // SoA gather: transpose B consecutive records of each
        // every-iteration stream into the read slots' lane arrays.
        for g in &self.stream_reads {
            let s = g.stream as usize;
            let rl = self.input_record_len[s];
            let rows = &inputs[s].data[st.row_base[s]..st.row_base[s] + B * rl];
            for &(dst, f) in &g.reads {
                let mut lane = [0.0f64; B];
                for (l, v) in lane.iter_mut().enumerate() {
                    *v = rows[l * rl + f as usize];
                }
                lanes[dst as usize] = lane;
            }
        }
        // Phase 1: lane-independent arithmetic, vectorized.
        for op in &self.batch.vec_pre {
            exec_vec::<B>(op, lanes);
        }
        // Phase 2: scalar per lane, in iteration order — register chains
        // and conditional pops resolve exactly as in the scalar engine.
        for l in 0..B {
            st.generation += 1;
            for &(dst, r) in &self.reg_reads {
                lanes[dst as usize][l] = regs[r as usize];
            }
            for op in &self.batch.seq {
                let v = match op.code {
                    Code::CondRead => {
                        let cr = &self.cond_reads[op.a as usize];
                        if lanes[cr.pred as usize][l] != 0.0 {
                            let s = cr.stream as usize;
                            let slot = cr.slot as usize;
                            if st.pop_gen[slot] != st.generation {
                                if CHECKED && st.cursors[s] >= num_records[s] {
                                    return Err(InterpError::StreamUnderrun {
                                        stream: s,
                                        iteration: base + l,
                                    });
                                }
                                st.pop_gen[slot] = st.generation;
                                st.pop_base[slot] = st.row_base[s];
                                st.cursors[s] += 1;
                                st.row_base[s] += self.input_record_len[s];
                            }
                            inputs[s].data[st.pop_base[slot] + cr.field as usize]
                        } else {
                            lanes[cr.fallback as usize][l]
                        }
                    }
                    _ => eval_arith_lane::<B>(op, lanes, l),
                };
                lanes[op.dst as usize][l] = v;
            }
            for &(r, v) in &self.reg_updates {
                regs[r as usize] = lanes[v as usize][l];
            }
        }
        // Phase 3: vectorized consumers of the resolved lane state.
        for op in &self.batch.vec_post {
            exec_vec::<B>(op, lanes);
        }
        // Drain writes lane-major so appends interleave exactly as the
        // scalar per-iteration write plan — the expand side: conditional
        // writes scatter only their active lanes. (`l` picks one lane
        // out of every referenced lane array, so it is a genuine index.)
        #[allow(clippy::needless_range_loop)]
        for l in 0..B {
            for w in &self.writes {
                if w.cond != NO_COND && lanes[w.cond as usize][l] == 0.0 {
                    continue;
                }
                let out = &mut outputs[w.stream as usize].data;
                let range = w.start as usize..(w.start + w.len) as usize;
                out.extend(
                    self.write_values[range]
                        .iter()
                        .map(|&v| lanes[v as usize][l]),
                );
            }
        }
        // Every-iteration streams advance once per lane, as a block.
        for (s, every) in self.input_every_iter.iter().enumerate() {
            if *every {
                st.cursors[s] += B;
                st.row_base[s] += B * self.input_record_len[s];
            }
        }
        Ok(())
    }
}

/// Execute one lane-independent op over all `B` lanes. Operand arrays
/// are copied out by value (`[f64; B]` is `Copy`) so the destination
/// store borrows cleanly and each match arm is one flat loop the
/// compiler can autovectorize. Same `f64` expressions as the scalar
/// `eval_arith`, lane by lane.
#[inline(always)]
fn exec_vec<const B: usize>(op: &TapeOp, lanes: &mut [[f64; B]]) {
    let a = lanes[op.a as usize];
    let mut d = [0.0f64; B];
    match op.code {
        Code::Add => {
            let b = lanes[op.b as usize];
            for l in 0..B {
                d[l] = a[l] + b[l];
            }
        }
        Code::Sub => {
            let b = lanes[op.b as usize];
            for l in 0..B {
                d[l] = a[l] - b[l];
            }
        }
        Code::Mul => {
            let b = lanes[op.b as usize];
            for l in 0..B {
                d[l] = a[l] * b[l];
            }
        }
        Code::Madd => {
            let b = lanes[op.b as usize];
            let c = lanes[op.c as usize];
            for l in 0..B {
                d[l] = a[l] * b[l] + c[l];
            }
        }
        Code::Nmsub => {
            let b = lanes[op.b as usize];
            let c = lanes[op.c as usize];
            for l in 0..B {
                d[l] = c[l] - a[l] * b[l];
            }
        }
        Code::Div => {
            let b = lanes[op.b as usize];
            for l in 0..B {
                d[l] = a[l] / b[l];
            }
        }
        Code::Sqrt => {
            for l in 0..B {
                d[l] = a[l].sqrt();
            }
        }
        Code::Rsqrt => {
            for l in 0..B {
                d[l] = 1.0 / a[l].sqrt();
            }
        }
        Code::SeedRecip => {
            for l in 0..B {
                d[l] = (1.0 / a[l]) as f32 as f64;
            }
        }
        Code::SeedRsqrt => {
            for l in 0..B {
                d[l] = (1.0 / a[l].sqrt()) as f32 as f64;
            }
        }
        Code::CmpEq => {
            let b = lanes[op.b as usize];
            for l in 0..B {
                d[l] = mask(a[l] == b[l]);
            }
        }
        Code::CmpLt => {
            let b = lanes[op.b as usize];
            for l in 0..B {
                d[l] = mask(a[l] < b[l]);
            }
        }
        Code::CmpLe => {
            let b = lanes[op.b as usize];
            for l in 0..B {
                d[l] = mask(a[l] <= b[l]);
            }
        }
        Code::Sel => {
            let b = lanes[op.b as usize];
            let c = lanes[op.c as usize];
            for l in 0..B {
                d[l] = if a[l] != 0.0 { b[l] } else { c[l] };
            }
        }
        Code::And => {
            let b = lanes[op.b as usize];
            for l in 0..B {
                d[l] = mask(a[l] != 0.0 && b[l] != 0.0);
            }
        }
        Code::Or => {
            let b = lanes[op.b as usize];
            for l in 0..B {
                d[l] = mask(a[l] != 0.0 || b[l] != 0.0);
            }
        }
        Code::Not => {
            for l in 0..B {
                d[l] = mask(a[l] == 0.0);
            }
        }
        Code::Min => {
            let b = lanes[op.b as usize];
            for l in 0..B {
                d[l] = a[l].min(b[l]);
            }
        }
        Code::Max => {
            let b = lanes[op.b as usize];
            for l in 0..B {
                d[l] = a[l].max(b[l]);
            }
        }
        Code::Mov => d = a,
        Code::CondRead => unreachable!("conditional read in a vector phase"),
    }
    lanes[op.dst as usize] = d;
}

/// Scalar evaluation of one op at lane `l` — the phase-2 twin of the
/// tape's `eval_arith`, bit-for-bit the same `f64` expressions.
#[inline(always)]
fn eval_arith_lane<const B: usize>(op: &TapeOp, lanes: &[[f64; B]], l: usize) -> f64 {
    let a = lanes[op.a as usize][l];
    match op.code {
        Code::Add => a + lanes[op.b as usize][l],
        Code::Sub => a - lanes[op.b as usize][l],
        Code::Mul => a * lanes[op.b as usize][l],
        Code::Madd => a * lanes[op.b as usize][l] + lanes[op.c as usize][l],
        Code::Nmsub => lanes[op.c as usize][l] - a * lanes[op.b as usize][l],
        Code::Div => a / lanes[op.b as usize][l],
        Code::Sqrt => a.sqrt(),
        Code::Rsqrt => 1.0 / a.sqrt(),
        Code::SeedRecip => (1.0 / a) as f32 as f64,
        Code::SeedRsqrt => (1.0 / a.sqrt()) as f32 as f64,
        Code::CmpEq => mask(a == lanes[op.b as usize][l]),
        Code::CmpLt => mask(a < lanes[op.b as usize][l]),
        Code::CmpLe => mask(a <= lanes[op.b as usize][l]),
        Code::Sel => {
            if a != 0.0 {
                lanes[op.b as usize][l]
            } else {
                lanes[op.c as usize][l]
            }
        }
        Code::And => mask(a != 0.0 && lanes[op.b as usize][l] != 0.0),
        Code::Or => mask(a != 0.0 || lanes[op.b as usize][l] != 0.0),
        Code::Not => mask(a == 0.0),
        Code::Min => a.min(lanes[op.b as usize][l]),
        Code::Max => a.max(lanes[op.b as usize][l]),
        Code::Mov => a,
        Code::CondRead => unreachable!("conditional read reached eval_arith_lane"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::{Kernel, StreamMode};

    const WIDTHS: [BatchWidth; 2] = [BatchWidth::W8, BatchWidth::W16];

    fn assert_matches_scalar(k: &Kernel, inputs: &[StreamData], params: &[f64], iterations: usize) {
        let tape = CompiledTape::compile(k);
        let scalar = tape.run(inputs, params, iterations);
        for w in WIDTHS {
            let batched = tape.run_batched(inputs, params, iterations, w);
            assert_eq!(
                batched, scalar,
                "batch({w}) vs scalar tape diverged on kernel '{}' over {iterations} iterations",
                k.name
            );
        }
    }

    #[test]
    fn width_knob_parses_and_reports_lanes() {
        assert_eq!(BatchWidth::parse("8"), Some(BatchWidth::W8));
        assert_eq!(BatchWidth::parse("16"), Some(BatchWidth::W16));
        assert_eq!(BatchWidth::parse("12"), None);
        assert_eq!(BatchWidth::parse(""), None);
        assert_eq!(BatchWidth::default().lanes(), 8);
        assert_eq!(BatchWidth::W16.lanes(), 16);
        assert_eq!(BatchWidth::W16.to_string(), "16");
    }

    /// An accumulator kernel with a long uncoupled arithmetic chain:
    /// the shape of the StreamMD interaction kernels.
    fn accum_kernel() -> Kernel {
        let mut b = KernelBuilder::new("accum");
        let s = b.input("x", 2, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let r = b.reg(0.0);
        let x0 = b.read(s, 0);
        let x1 = b.read(s, 1);
        let d = b.sub(x0, x1);
        let d2 = b.mul(d, d);
        let inv = b.rsqrt(d2);
        let contrib = b.madd(inv, d2, d);
        let acc = b.read_reg(r);
        let sum = b.add(acc, contrib);
        b.set_reg(r, sum);
        b.write(o, &[contrib]);
        b.build()
    }

    #[test]
    fn plan_keeps_the_arithmetic_slice_vectorized() {
        let tape = CompiledTape::compile(&accum_kernel());
        // Only the accumulate add (coupled via the register read AND
        // feeding the register update) must run sequentially.
        assert_eq!(tape.batch.seq.len(), 1, "plan: {:?}", tape.batch);
        assert_eq!(
            tape.batch.vec_pre.len() + tape.batch.vec_post.len() + 1,
            tape.ops.len()
        );
        assert!(tape.batch.vec_pre.len() >= 4);
    }

    #[test]
    fn accumulator_matches_scalar_including_remainder_lanes() {
        let k = accum_kernel();
        for n in [0usize, 1, 7, 8, 9, 16, 23, 48, 100] {
            let data: Vec<f64> = (0..2 * n).map(|i| 1.0 + 0.25 * i as f64).collect();
            assert_matches_scalar(&k, &[StreamData::new(2, data)], &[], n);
        }
    }

    #[test]
    fn conditional_compress_expand_matches_scalar() {
        // Conditional pop (compress) driven by a register parity chain,
        // plus a conditional write (expand) — both sides of the batch
        // mask machinery, over enough iterations for several batches.
        let mut b = KernelBuilder::new("cond_batch");
        let s = b.input("vals", 1, StreamMode::Conditional);
        let o = b.output("out", 1);
        let parity = b.reg(1.0);
        let cur = b.reg(0.0);
        let want = b.read_reg(parity);
        let prev = b.read_reg(cur);
        let v = b.cond_read(s, 0, want, prev);
        let flip = b.not(want);
        b.set_reg(parity, flip);
        b.set_reg(cur, v);
        b.write_if(o, want, &[v]);
        let k = b.build();
        let data: Vec<f64> = (0..40).map(|i| 10.0 * (i + 1) as f64).collect();
        for n in [0usize, 5, 8, 16, 19, 33, 80] {
            assert_matches_scalar(&k, &[StreamData::new(1, data.clone())], &[], n);
        }
    }

    #[test]
    fn fast_path_underrun_error_matches_scalar() {
        let k = accum_kernel();
        // 10 records, 32 iterations: the up-front proof must blame the
        // same (stream, iteration) as the scalar engines.
        let data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert_matches_scalar(&k, &[StreamData::new(2, data)], &[], 32);
    }

    #[test]
    fn conditional_underrun_mid_batch_matches_scalar() {
        // Every iteration pops, but only 11 records exist: the underrun
        // lands mid-batch (lane 3 of batch 1 at width 8) and must carry
        // the absolute iteration index.
        let mut b = KernelBuilder::new("under");
        let s = b.input("v", 1, StreamMode::Conditional);
        let o = b.output("out", 1);
        let one = b.constant(1.0);
        let zero = b.constant(0.0);
        let v = b.cond_read(s, 0, one, zero);
        b.write(o, &[v]);
        let k = b.build();
        let data: Vec<f64> = (0..11).map(|i| i as f64).collect();
        assert_matches_scalar(&k, &[StreamData::new(1, data)], &[], 24);
        let tape = CompiledTape::compile(&k);
        let err = tape
            .run_batched(
                &[StreamData::new(1, (0..11).map(|i| i as f64).collect())],
                &[],
                24,
                BatchWidth::W8,
            )
            .unwrap_err();
        assert_eq!(
            err,
            InterpError::StreamUnderrun {
                stream: 0,
                iteration: 11
            }
        );
    }

    #[test]
    fn every_iteration_underrun_in_general_path_matches_scalar() {
        // Mixed modes: the every-iteration stream runs dry first, so
        // the batched engine must stop vectorizing at the limit and let
        // the shared scalar tail produce the error.
        let mut b = KernelBuilder::new("mixed");
        let se = b.input("e", 1, StreamMode::EveryIteration);
        let sc = b.input("c", 1, StreamMode::Conditional);
        let o = b.output("out", 1);
        let x = b.read(se, 0);
        let t = b.constant(2.0);
        let p = b.cmp_lt(t, x);
        let zero = b.constant(0.0);
        let v = b.cond_read(sc, 0, p, zero);
        let sum = b.add(x, v);
        b.write(o, &[sum]);
        let k = b.build();
        let every: Vec<f64> = (0..13).map(|i| i as f64).collect();
        let cond: Vec<f64> = (0..40).map(|i| 100.0 + i as f64).collect();
        for n in [0usize, 8, 13, 20, 40] {
            assert_matches_scalar(
                &k,
                &[
                    StreamData::new(1, every.clone()),
                    StreamData::new(1, cond.clone()),
                ],
                &[],
                n,
            );
        }
    }

    #[test]
    fn params_and_seed_ops_broadcast_bitwise() {
        let mut b = KernelBuilder::new("seeded");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 2);
        let p = b.param();
        let x = b.read(s, 0);
        let sr = b.seed_recip(x);
        let sq = b.seed_rsqrt(x);
        let a = b.mul(sr, p);
        let c = b.mul(sq, p);
        b.write(o, &[a, c]);
        let k = b.build();
        let data: Vec<f64> = (0..27).map(|i| 0.5 + i as f64).collect();
        assert_matches_scalar(&k, &[StreamData::new(1, data)], &[3.25], 27);
    }

    #[test]
    fn audit_passes_on_analyzed_plans() {
        for k in [accum_kernel()] {
            let tape = CompiledTape::compile(&k);
            assert_eq!(tape.audit_batch_plan(), vec![], "kernel '{}'", k.name);
        }
        // Conditional kernel: CondReads pin ops into seq; the audit
        // must still find nothing to complain about.
        let mut b = KernelBuilder::new("cond_audit");
        let s = b.input("v", 1, StreamMode::Conditional);
        let o = b.output("out", 1);
        let one = b.constant(1.0);
        let zero = b.constant(0.0);
        let v = b.cond_read(s, 0, one, zero);
        let doubled = b.add(v, v);
        b.write(o, &[doubled]);
        let tape = CompiledTape::compile(&b.build());
        assert_eq!(tape.audit_batch_plan(), vec![]);
    }

    #[test]
    fn audit_flags_a_dropped_op_exactly_once() {
        let mut tape = CompiledTape::compile(&accum_kernel());
        tape.corrupt_batch_plan_for_tests();
        let violations = tape.audit_batch_plan();
        assert_eq!(violations.len(), 1, "violations: {violations:?}");
        assert!(
            matches!(violations[0], BatchPlanViolation::MissingOp { .. }),
            "violations: {violations:?}"
        );
    }

    #[test]
    fn audit_flags_duplicates_misphased_condreads_and_order() {
        let tape = CompiledTape::compile(&accum_kernel());
        // Duplicate: replay the first vec_pre op at the end of vec_pre.
        // That both duplicates the op and breaks tape order.
        let mut dup = tape.clone();
        let first = dup.batch.vec_pre[0];
        dup.batch.vec_pre.push(first);
        let v = dup.audit_batch_plan();
        assert!(
            v.iter()
                .any(|x| matches!(x, BatchPlanViolation::DuplicateOp { .. })),
            "violations: {v:?}"
        );
        assert!(
            v.iter()
                .any(|x| matches!(x, BatchPlanViolation::PhaseOrder { phase: "vec_pre", .. })),
            "violations: {v:?}"
        );

        // Hoisting the coupled seq op into vec_pre: its register-read
        // operand makes it lane-coupled, so the audit must reject it.
        let mut hoist = tape.clone();
        let seq_op = hoist.batch.seq.remove(0);
        hoist.batch.vec_pre.push(seq_op);
        let v = hoist.audit_batch_plan();
        assert!(
            v.iter()
                .any(|x| matches!(x, BatchPlanViolation::PreReadsCoupled { .. })),
            "violations: {v:?}"
        );

        // Demoting it to vec_post instead starves the register update.
        let mut demote = tape.clone();
        let seq_op = demote.batch.seq.remove(0);
        demote.batch.vec_post.push(seq_op);
        let v = demote.audit_batch_plan();
        assert!(
            v.iter()
                .any(|x| matches!(x, BatchPlanViolation::NeededInPost { .. })),
            "violations: {v:?}"
        );

        // A CondRead outside seq is always wrong.
        let mut b = KernelBuilder::new("cond_misphase");
        let s = b.input("v", 1, StreamMode::Conditional);
        let o = b.output("out", 1);
        let one = b.constant(1.0);
        let zero = b.constant(0.0);
        let val = b.cond_read(s, 0, one, zero);
        b.write(o, &[val]);
        let mut mis = CompiledTape::compile(&b.build());
        let cr = mis.batch.seq.remove(0);
        mis.batch.vec_post.push(cr);
        let v = mis.audit_batch_plan();
        assert!(
            v.iter().any(|x| matches!(
                x,
                BatchPlanViolation::CondReadOutsideSeq {
                    phase: "vec_post",
                    ..
                }
            )),
            "violations: {v:?}"
        );
    }

    #[test]
    fn proven_batched_run_is_bitwise_identical() {
        let k = accum_kernel();
        let tape = CompiledTape::compile(&k);
        for n in [0usize, 1, 8, 23, 48] {
            let data: Vec<f64> = (0..2 * n).map(|i| 1.0 + 0.25 * i as f64).collect();
            let inputs = [StreamData::new(2, data)];
            let proof = tape
                .prove_underrun_free(&[n], n)
                .expect("exact-length inputs must prove safe");
            for w in WIDTHS {
                let checked = tape.run_batched(&inputs, &[], n, w).unwrap();
                let proven = tape.run_batched_proven(&inputs, &[], n, w, &proof).unwrap();
                assert_eq!(checked, proven, "width {w}, n {n}");
            }
        }
    }

    #[test]
    fn stale_proof_falls_back_to_the_checked_path() {
        let k = accum_kernel();
        let tape = CompiledTape::compile(&k);
        // Proof for 8 iterations does not cover a 32-iteration launch
        // over short inputs: the proven entry point must re-check and
        // reproduce the checked path's error exactly.
        let proof = tape.prove_underrun_free(&[8], 8).unwrap();
        let data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let inputs = [StreamData::new(2, data)];
        for w in WIDTHS {
            let checked = tape.run_batched(&inputs, &[], 32, w);
            let proven = tape.run_batched_proven(&inputs, &[], 32, w, &proof);
            assert_eq!(checked, proven);
            assert!(proven.is_err());
        }
    }
}

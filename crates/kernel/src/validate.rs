//! Schedule validation: proofs that a schedule preserves kernel
//! semantics.
//!
//! Because the scheduler never reorders side effects (writes and register
//! updates consume the same SSA values), a schedule is semantics-preserving
//! iff (a) every live issuing node is placed exactly once, (b) no two ops
//! share a slot-cycle, and (c) every op issues no earlier than all of its
//! dependencies' values are available. The validator checks all three for
//! both plain and modulo schedules, and is exercised by property tests
//! over random kernels.

use merrimac_arch::OpCosts;

use crate::ir::{Kernel, Node};
use crate::pipeline::PipelinedSchedule;
use crate::schedule::{live_set, Schedule};

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError(pub String);

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid schedule: {}", self.0)
    }
}

impl std::error::Error for ValidationError {}

fn latency_of(node: &Node, costs: &OpCosts) -> u64 {
    node.fpu_class().map_or(0, |c| costs.latency(c))
}

/// Validate a non-pipelined schedule.
pub fn validate_schedule(
    kernel: &Kernel,
    schedule: &Schedule,
    costs: &OpCosts,
) -> Result<(), ValidationError> {
    let live = live_set(kernel);

    // (a) coverage and uniqueness via the slot table.
    let mut placements = vec![0usize; kernel.nodes.len()];
    for (t, row) in schedule.slots.iter().enumerate() {
        if row.len() != schedule.num_slots {
            return Err(ValidationError(format!("row {t} has {} slots", row.len())));
        }
        for op in row.iter().flatten() {
            placements[*op as usize] += 1;
            if schedule.issue_cycle[*op as usize] != Some(t as u64) {
                return Err(ValidationError(format!(
                    "node {op} slot table says cycle {t} but issue_cycle disagrees"
                )));
            }
        }
    }
    for (i, node) in kernel.nodes.iter().enumerate() {
        let expected = usize::from(live[i] && node.issues());
        if placements[i] != expected {
            return Err(ValidationError(format!(
                "node {i} placed {} times, expected {expected}",
                placements[i]
            )));
        }
    }

    // (b) dependency timing.
    for (i, node) in kernel.nodes.iter().enumerate() {
        let Some(t) = schedule.issue_cycle[i] else {
            continue;
        };
        for d in node.deps() {
            let ready = ready_time(kernel, &schedule.issue_cycle, d as usize, costs)
                .ok_or_else(|| ValidationError(format!("node {i} dep {d} never ready")))?;
            if ready > t {
                return Err(ValidationError(format!(
                    "node {i} issues at {t} before dep {d} ready at {ready}"
                )));
            }
        }
    }
    Ok(())
}

/// When is node `i`'s value available, given issue cycles? Non-issuing
/// nodes forward the max of their deps.
fn ready_time(
    kernel: &Kernel,
    issue_cycle: &[Option<u64>],
    i: usize,
    costs: &OpCosts,
) -> Option<u64> {
    let node = &kernel.nodes[i];
    if node.issues() {
        issue_cycle[i].map(|t| t + latency_of(node, costs))
    } else {
        let mut r = 0;
        for d in node.deps() {
            r = r.max(ready_time(kernel, issue_cycle, d as usize, costs)?);
        }
        Some(r)
    }
}

/// Validate a modulo schedule: per-iteration dependences, modulo resource
/// exclusivity, and cross-iteration recurrence margins.
pub fn validate_pipelined(
    kernel: &Kernel,
    p: &PipelinedSchedule,
    _costs: &OpCosts,
) -> Result<(), ValidationError> {
    let live = live_set(kernel);
    if p.rows.len() as u64 != p.ii {
        return Err(ValidationError(format!(
            "{} rows for II {}",
            p.rows.len(),
            p.ii
        )));
    }

    // Modulo resource table consistency.
    let mut seen = std::collections::HashSet::new();
    for (r, row) in p.rows.iter().enumerate() {
        for op in row.iter().flatten() {
            if !seen.insert(*op) {
                return Err(ValidationError(format!("node {op} placed twice")));
            }
            match p.issue_time[*op as usize] {
                Some(t) if t % p.ii == r as u64 => {}
                other => {
                    return Err(ValidationError(format!(
                        "node {op} row {r} inconsistent with issue time {other:?}"
                    )))
                }
            }
        }
    }
    for (i, node) in kernel.nodes.iter().enumerate() {
        if live[i] && node.issues() && !seen.contains(&(i as u32)) {
            return Err(ValidationError(format!("live node {i} not placed")));
        }
    }

    // Intra-iteration deps.
    for (i, node) in kernel.nodes.iter().enumerate() {
        let Some(t) = p.issue_time[i] else { continue };
        for d in node.deps() {
            let ready = p.value_ready[d as usize]
                .ok_or_else(|| ValidationError(format!("node {i} dep {d} unresolved")))?;
            if ready > t {
                return Err(ValidationError(format!(
                    "node {i} at {t} before dep {d} ready {ready}"
                )));
            }
        }
    }

    // Cross-iteration recurrences: reg update from iteration k must be
    // ready before the earliest use in iteration k+1 (offset by II).
    for (reg, update) in &kernel.reg_updates {
        let Some(ready) = p.value_ready[*update as usize] else {
            continue;
        };
        for (i, node) in kernel.nodes.iter().enumerate() {
            if !live[i] || !matches!(node, Node::ReadReg(r) if r == reg) {
                continue;
            }
            for (j, user) in kernel.nodes.iter().enumerate() {
                if !live[j] || !user.deps().contains(&(i as u32)) {
                    continue;
                }
                let t_use = p.issue_time[j].or(p.value_ready[j]).unwrap_or(0);
                if ready > t_use + p.ii {
                    return Err(ValidationError(format!(
                        "recurrence on reg {reg}: update ready {ready} > use {t_use} + II {}",
                        p.ii
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::StreamMode;
    use crate::lower::lower_kernel;
    use crate::pipeline::modulo_schedule;
    use crate::schedule::list_schedule;
    use proptest::prelude::*;

    fn random_kernel(seed: u64, n_ops: usize) -> Kernel {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut b = KernelBuilder::new(format!("rand{seed}"));
        let s = b.input("in", 4, StreamMode::EveryIteration);
        let o = b.output("out", 1);
        let mut vals = vec![b.read(s, 0), b.read(s, 1), b.read(s, 2), b.read(s, 3)];
        let r = b.reg(1.0);
        vals.push(b.read_reg(r));
        for _ in 0..n_ops {
            let a = vals[rng.gen_range(0..vals.len())];
            let c = vals[rng.gen_range(0..vals.len())];
            let v = match rng.gen_range(0..6) {
                0 => b.add(a, c),
                1 => b.mul(a, c),
                2 => b.madd(a, c, vals[rng.gen_range(0..vals.len())]),
                3 => b.sub(a, c),
                4 => b.rsqrt(a),
                _ => b.div(a, c),
            };
            vals.push(v);
        }
        let last = *vals.last().unwrap();
        b.set_reg(r, last);
        b.write(o, &[last]);
        b.build()
    }

    #[test]
    fn list_schedules_validate() {
        let costs = OpCosts::default();
        for seed in 0..10 {
            let k = lower_kernel(&random_kernel(seed, 20), &costs);
            let s = list_schedule(&k, &costs, 4);
            validate_schedule(&k, &s, &costs).expect("valid");
        }
    }

    #[test]
    fn modulo_schedules_validate() {
        let costs = OpCosts::default();
        for seed in 0..10 {
            let k = lower_kernel(&random_kernel(seed + 100, 25), &costs);
            let p = modulo_schedule(&k, &costs, 4);
            validate_pipelined(&k, &p, &costs).expect("valid");
        }
    }

    #[test]
    fn tampered_schedule_rejected() {
        let costs = OpCosts::default();
        let k = lower_kernel(&random_kernel(7, 15), &costs);
        let mut s = list_schedule(&k, &costs, 4);
        // Move the last op to cycle 0 (certain dep violation or conflict).
        let moved = s
            .issue_cycle
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (i, c)))
            .max_by_key(|&(_, c)| c);
        if let Some((node, old)) = moved {
            if old > 0 {
                s.issue_cycle[node] = Some(0);
                assert!(validate_schedule(&k, &s, &costs).is_err());
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_schedules_valid_over_random_kernels(seed in 0u64..5000, n in 5usize..40) {
            let costs = OpCosts::default();
            let k = lower_kernel(&random_kernel(seed, n), &costs);
            let s = list_schedule(&k, &costs, 4);
            prop_assert!(validate_schedule(&k, &s, &costs).is_ok());
            let p = modulo_schedule(&k, &costs, 4);
            prop_assert!(validate_pipelined(&k, &p, &costs).is_ok());
            // Pipelined throughput never loses to the serial schedule.
            prop_assert!(p.ii <= s.length.max(1));
        }
    }
}

//! Bytecode kernel-execution engine: compile a dataflow graph once into
//! a flat tape, then execute the tape with no per-iteration allocation.
//!
//! [`crate::interp::Interpreter`] re-walks the node graph every
//! iteration — enum dispatch over `Vec<NodeId>` argument lists, a fresh
//! `Vec<HashMap>` of conditional-pop bookkeeping per iteration, and
//! push-grown output vectors. That is pure host overhead on the hottest
//! path in the simulator (every simulated interaction funnels through
//! it). The paper's kernel story is the same one in miniature: issue
//! rate is won by compiling once and executing a dense schedule.
//!
//! [`CompiledTape::compile`] runs once per kernel and produces:
//!
//! * a linear [`TapeOp`] array with pre-resolved operand/destination
//!   value slots (no `Vec<NodeId>` pointer chases at run time), with
//!   register and stream-record reads batched into a dispatch-free
//!   per-iteration prologue so the tape itself is pure arithmetic (plus
//!   conditional reads);
//! * loop-invariant constants and parameters hoisted into an init plan
//!   executed once per launch, not once per iteration;
//! * a flat conditional-pop table with one slot per distinct
//!   `(stream, predicate)` pair, reset by a generation counter instead
//!   of a fresh `HashMap` per iteration;
//! * a write plan with exact per-launch capacity reservation
//!   (`iterations × words appended per iteration`);
//! * a fast-path loop for kernels with no conditional input streams
//!   (the `expanded`/`fixed`/`duplicated` StreamMD variants): stream
//!   underrun is proven impossible up front, so the iteration body runs
//!   with no per-iteration availability checks at all.
//!
//! The tape is semantically bitwise-identical to the interpreter — same
//! `f64` operations in the same order, same pop semantics, same error
//! values — which `tests/tape_equivalence.rs` proves differentially
//! over random kernels. The interpreter remains the reference oracle.

use crate::batch::BatchPlan;
use crate::interp::{InterpError, InterpOutput, StreamData};
use crate::ir::{Kernel, Node, OpKind, StreamMode};

/// Sentinel for "no condition" in a [`WritePlan`].
pub(crate) const NO_COND: u32 = u32::MAX;

/// Tape opcodes. Plain register/stream reads never appear here: they
/// are source nodes with no operands, so the compiler batches them into
/// a per-iteration read prologue ([`StreamReads`]/`reg_reads`) executed
/// without opcode dispatch. Constants and parameters are hoisted
/// further, into the once-per-launch init plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Code {
    /// `dst = cond_reads[a]` (see [`CondReadSlot`])
    CondRead,
    Add,
    Sub,
    Mul,
    Madd,
    Nmsub,
    Div,
    Sqrt,
    Rsqrt,
    SeedRecip,
    SeedRsqrt,
    CmpEq,
    CmpLt,
    CmpLe,
    Sel,
    And,
    Or,
    Not,
    Min,
    Max,
    Mov,
}

/// One tape instruction: opcode plus pre-resolved value slots. `a`, `b`
/// and `c` are operand slots for arithmetic ops; for conditional reads
/// `a` indexes the [`CondReadSlot`] table.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TapeOp {
    pub(crate) code: Code,
    pub(crate) dst: u32,
    pub(crate) a: u32,
    pub(crate) b: u32,
    pub(crate) c: u32,
}

/// Iteration-prologue reads from one every-iteration input stream:
/// `vals[dst] = current_record[field]`. Grouped per stream so the
/// record row is sliced once and shared by all its field reads.
#[derive(Debug, Clone)]
pub(crate) struct StreamReads {
    pub(crate) stream: u32,
    /// `(value slot, field)` pairs.
    pub(crate) reads: Vec<(u32, u32)>,
}

/// Pre-resolved conditional-stream read. `slot` indexes the flat pop
/// table: all `CondRead`s guarded by the same predicate on the same
/// stream share one popped record per iteration, while distinct
/// predicates (e.g. the copies introduced by unrolling) pop
/// independently — exactly the interpreter's per-predicate `HashMap`
/// semantics, but with the slot assignment done at compile time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CondReadSlot {
    pub(crate) stream: u32,
    pub(crate) field: u32,
    pub(crate) pred: u32,
    pub(crate) fallback: u32,
    pub(crate) slot: u32,
}

/// One output write per iteration: `write_values[start..start+len]`
/// appended to `outputs[stream]` when `cond` (a value slot, or
/// [`NO_COND`]) is non-zero.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WritePlan {
    pub(crate) stream: u32,
    pub(crate) cond: u32,
    pub(crate) start: u32,
    pub(crate) len: u32,
}

/// A kernel compiled to a flat execution tape. Immutable and shareable
/// across threads; all mutable execution state lives on the stack of
/// [`CompiledTape::run`].
#[derive(Debug, Clone)]
pub struct CompiledTape {
    pub(crate) name: String,
    pub(crate) num_nodes: usize,
    /// `(value slot, constant)` — loop-invariant, applied once per run.
    pub(crate) const_inits: Vec<(u32, f64)>,
    /// `(value slot, param index)` — loop-invariant.
    pub(crate) param_inits: Vec<(u32, u32)>,
    /// `(value slot, register)` — iteration prologue. Registers only
    /// change in the iteration epilogue (`reg_updates`), so every
    /// register read can run before the arithmetic tape.
    pub(crate) reg_reads: Vec<(u32, u32)>,
    /// Per-stream iteration-prologue reads (every-iteration streams
    /// only; `validate_ssa` rejects plain reads of conditional streams).
    pub(crate) stream_reads: Vec<StreamReads>,
    /// The arithmetic/conditional-read tape proper.
    pub(crate) ops: Vec<TapeOp>,
    pub(crate) cond_reads: Vec<CondReadSlot>,
    /// Number of distinct `(stream, predicate)` pop slots.
    pub(crate) pop_slots: usize,
    pub(crate) input_record_len: Vec<usize>,
    pub(crate) input_every_iter: Vec<bool>,
    pub(crate) num_params: usize,
    pub(crate) reg_init: Vec<f64>,
    pub(crate) reg_updates: Vec<(u32, u32)>,
    pub(crate) writes: Vec<WritePlan>,
    pub(crate) write_values: Vec<u32>,
    pub(crate) out_record_len: Vec<usize>,
    /// Worst-case words appended per iteration to each output — exact
    /// for outputs with only unconditional writes.
    pub(crate) out_words_per_iter: Vec<usize>,
    pub(crate) fast_path: bool,
    /// Dataflow phase partition of `ops` for the batched SoA engine
    /// ([`crate::batch`]), precomputed here so every launch reuses it.
    pub(crate) batch: BatchPlan,
}

/// A static proof that a launch of this tape cannot underrun any input
/// stream, produced by [`CompiledTape::prove_underrun_free`].
///
/// The proof records the worst-case records each stream can consume
/// over the proven iteration count (one per iteration for
/// every-iteration streams, `iterations × pop-slots` for conditional
/// streams). A launch presents the proof to [`CompiledTape::run_proven`]
/// or [`CompiledTape::run_batched_proven`]; after an O(streams)
/// revalidation ([`UnderrunProof::covers`]) the engines execute with no
/// per-iteration availability checks and no per-pop depth checks — they
/// provably cannot fire. Misuse is safe: a proof that does not cover
/// the launch falls back to the checked path, bitwise-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnderrunProof {
    /// Iterations the proof covers (a launch may run fewer).
    iterations: usize,
    /// Worst-case records consumed per input stream over `iterations`.
    needed_records: Vec<usize>,
}

impl UnderrunProof {
    /// Iterations the proof covers.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Worst-case records consumed per input stream.
    pub fn needed_records(&self) -> &[usize] {
        &self.needed_records
    }

    /// Does this proof discharge the underrun checks for a launch of
    /// `iterations` over `inputs`? Consumption bounds are monotone in
    /// the iteration count, so any launch no longer than the proven one
    /// whose streams are at least as deep as the proven worst case is
    /// covered.
    pub fn covers(&self, inputs: &[StreamData], iterations: usize) -> bool {
        iterations <= self.iterations
            && inputs.len() == self.needed_records.len()
            && inputs
                .iter()
                .zip(&self.needed_records)
                .all(|(d, n)| d.num_records() >= *n)
    }
}

impl CompiledTape {
    /// Compile `kernel` into a tape. Validates the kernel once here so
    /// [`CompiledTape::run`] never re-validates.
    pub fn compile(kernel: &Kernel) -> Self {
        kernel.validate_ssa();
        let mut const_inits = Vec::new();
        let mut param_inits = Vec::new();
        let mut reg_reads = Vec::new();
        let mut stream_reads: Vec<StreamReads> = Vec::new();
        let mut ops = Vec::new();
        let mut cond_reads: Vec<CondReadSlot> = Vec::new();
        // (stream, pred) -> pop slot. Kernels have few conditional
        // reads, so a linear scan beats hashing at compile time too.
        let mut slot_keys: Vec<(u32, u32)> = Vec::new();
        for (i, node) in kernel.nodes.iter().enumerate() {
            let dst = i as u32;
            match node {
                Node::Const(c) => const_inits.push((dst, *c)),
                Node::Param(p) => param_inits.push((dst, *p)),
                Node::ReadReg(r) => reg_reads.push((dst, *r)),
                Node::Read { stream, field } => {
                    let group = match stream_reads.iter_mut().find(|g| g.stream == *stream) {
                        Some(g) => g,
                        None => {
                            stream_reads.push(StreamReads {
                                stream: *stream,
                                reads: Vec::new(),
                            });
                            stream_reads.last_mut().unwrap()
                        }
                    };
                    group.reads.push((dst, *field));
                }
                Node::CondRead {
                    stream,
                    field,
                    pred,
                    fallback,
                } => {
                    let key = (*stream, *pred);
                    let slot = match slot_keys.iter().position(|k| *k == key) {
                        Some(s) => s,
                        None => {
                            slot_keys.push(key);
                            slot_keys.len() - 1
                        }
                    };
                    cond_reads.push(CondReadSlot {
                        stream: *stream,
                        field: *field,
                        pred: *pred,
                        fallback: *fallback,
                        slot: slot as u32,
                    });
                    ops.push(TapeOp {
                        code: Code::CondRead,
                        dst,
                        a: (cond_reads.len() - 1) as u32,
                        b: 0,
                        c: 0,
                    });
                }
                Node::Op { op, args } => {
                    let code = match op {
                        OpKind::Add => Code::Add,
                        OpKind::Sub => Code::Sub,
                        OpKind::Mul => Code::Mul,
                        OpKind::Madd => Code::Madd,
                        OpKind::Nmsub => Code::Nmsub,
                        OpKind::Div => Code::Div,
                        OpKind::Sqrt => Code::Sqrt,
                        OpKind::Rsqrt => Code::Rsqrt,
                        OpKind::SeedRecip => Code::SeedRecip,
                        OpKind::SeedRsqrt => Code::SeedRsqrt,
                        OpKind::CmpEq => Code::CmpEq,
                        OpKind::CmpLt => Code::CmpLt,
                        OpKind::CmpLe => Code::CmpLe,
                        OpKind::Sel => Code::Sel,
                        OpKind::And => Code::And,
                        OpKind::Or => Code::Or,
                        OpKind::Not => Code::Not,
                        OpKind::Min => Code::Min,
                        OpKind::Max => Code::Max,
                        OpKind::Mov => Code::Mov,
                    };
                    ops.push(TapeOp {
                        code,
                        dst,
                        a: args[0],
                        b: args.get(1).copied().unwrap_or(0),
                        c: args.get(2).copied().unwrap_or(0),
                    });
                }
            }
        }

        let mut write_values = Vec::new();
        let mut writes = Vec::new();
        let mut out_words_per_iter = vec![0usize; kernel.outputs.len()];
        for w in &kernel.writes {
            let start = write_values.len() as u32;
            write_values.extend_from_slice(&w.values);
            writes.push(WritePlan {
                stream: w.stream,
                cond: w.cond.unwrap_or(NO_COND),
                start,
                len: w.values.len() as u32,
            });
            out_words_per_iter[w.stream as usize] += w.values.len();
        }

        let fast_path = kernel
            .inputs
            .iter()
            .all(|s| s.mode == StreamMode::EveryIteration);

        let mut tape = Self {
            name: kernel.name.clone(),
            num_nodes: kernel.nodes.len(),
            const_inits,
            param_inits,
            reg_reads,
            stream_reads,
            ops,
            cond_reads,
            pop_slots: slot_keys.len(),
            input_record_len: kernel
                .inputs
                .iter()
                .map(|s| s.record_len as usize)
                .collect(),
            input_every_iter: kernel
                .inputs
                .iter()
                .map(|s| s.mode == StreamMode::EveryIteration)
                .collect(),
            num_params: kernel.num_params as usize,
            reg_init: kernel.reg_init.clone(),
            reg_updates: kernel.reg_updates.iter().map(|(r, v)| (*r, *v)).collect(),
            writes,
            write_values,
            out_record_len: kernel
                .outputs
                .iter()
                .map(|s| s.record_len as usize)
                .collect(),
            out_words_per_iter,
            fast_path,
            batch: BatchPlan::default(),
        };
        tape.batch = BatchPlan::analyze(&tape);
        tape
    }

    /// True when the kernel has no conditional input streams, so the
    /// underrun-check-free fast loop runs.
    pub fn is_fast_path(&self) -> bool {
        self.fast_path
    }

    /// Instructions executed per iteration (prologue reads plus the
    /// arithmetic tape).
    pub fn ops_per_iteration(&self) -> usize {
        self.reg_reads.len()
            + self
                .stream_reads
                .iter()
                .map(|g| g.reads.len())
                .sum::<usize>()
            + self.ops.len()
    }

    /// Worst-case records popped from input stream `s` in one
    /// iteration: exactly one for every-iteration streams, one per
    /// distinct `(stream, predicate)` pop slot for conditional streams
    /// (each slot pops at most once per iteration; the lower bound for
    /// a conditional stream is zero).
    pub fn max_pops_per_iter(&self, s: usize) -> usize {
        if self.input_every_iter[s] {
            1
        } else {
            let mut slots: Vec<u32> = self
                .cond_reads
                .iter()
                .filter(|cr| cr.stream as usize == s)
                .map(|cr| cr.slot)
                .collect();
            slots.sort_unstable();
            slots.dedup();
            slots.len()
        }
    }

    /// Guaranteed words appended to each output stream per iteration —
    /// unconditional writes only (conditional writes may append zero
    /// words). The upper bound is `out_words_per_iter`.
    pub fn min_out_words_per_iter(&self) -> Vec<usize> {
        let mut min = vec![0usize; self.out_record_len.len()];
        for w in &self.writes {
            if w.cond == NO_COND {
                min[w.stream as usize] += w.len as usize;
            }
        }
        min
    }

    /// Worst-case words appended to each output stream per iteration —
    /// every write counted, conditional or not. The lower bound is
    /// [`CompiledTape::min_out_words_per_iter`].
    pub fn max_out_words_per_iter(&self) -> Vec<usize> {
        let mut max = vec![0usize; self.out_record_len.len()];
        for w in &self.writes {
            max[w.stream as usize] += w.len as usize;
        }
        max
    }

    /// Statically prove a launch of `iterations` over streams holding
    /// `records[s]` records cannot underrun: every stream must cover
    /// its worst-case consumption (`iterations × max pops/iter`).
    /// Returns `None` when the worst case is not covered — which for a
    /// conditional stream does *not* mean the launch fails, only that
    /// safety cannot be guaranteed without the runtime checks.
    pub fn prove_underrun_free(
        &self,
        records: &[usize],
        iterations: usize,
    ) -> Option<UnderrunProof> {
        if records.len() != self.input_record_len.len() {
            return None;
        }
        let needed: Vec<usize> = (0..records.len())
            .map(|s| iterations.saturating_mul(self.max_pops_per_iter(s)))
            .collect();
        if needed.iter().zip(records).all(|(n, r)| r >= n) {
            Some(UnderrunProof {
                iterations,
                needed_records: needed,
            })
        } else {
            None
        }
    }

    /// [`CompiledTape::run`] with a static underrun proof: after the
    /// O(streams) [`UnderrunProof::covers`] revalidation, the loop runs
    /// with no underrun decision up front and no per-pop depth checks.
    /// Bitwise-identical to the checked path (the skipped checks
    /// provably never fire); a proof that does not cover the launch
    /// falls back to the checked path.
    pub fn run_proven(
        &self,
        inputs: &[StreamData],
        params: &[f64],
        iterations: usize,
        proof: &UnderrunProof,
    ) -> Result<InterpOutput, InterpError> {
        if !proof.covers(inputs, iterations) {
            return self.run(inputs, params, iterations);
        }
        self.validate_signature(inputs, params)?;
        let mut outputs = self.make_outputs(iterations);
        let mut regs = self.reg_init.clone();
        let mut vals = self.init_vals(params);
        let records_consumed = if self.fast_path {
            let mut row_base = vec![0usize; inputs.len()];
            self.run_fast_range(inputs, &mut vals, &mut regs, &mut outputs, &mut row_base, iterations);
            vec![iterations; inputs.len()]
        } else {
            let mut st = ScalarState::new(self, inputs.len());
            self.run_general_range_unchecked(
                inputs,
                &mut vals,
                &mut regs,
                &mut outputs,
                &mut st,
                0,
                iterations,
            );
            st.cursors
        };
        Ok(InterpOutput {
            outputs,
            records_consumed,
            iterations,
            final_regs: regs,
        })
    }

    /// Copy the iteration's register and stream-record reads into their
    /// value slots. Sources only — no dependence on tape results — so
    /// the whole batch legally runs before the arithmetic ops.
    #[inline(always)]
    fn read_prologue(
        &self,
        inputs: &[StreamData],
        row_base: &[usize],
        regs: &[f64],
        vals: &mut [f64],
    ) {
        for &(dst, r) in &self.reg_reads {
            vals[dst as usize] = regs[r as usize];
        }
        for g in &self.stream_reads {
            let s = g.stream as usize;
            let base = row_base[s];
            let row = &inputs[s].data[base..base + self.input_record_len[s]];
            for &(dst, f) in &g.reads {
                vals[dst as usize] = row[f as usize];
            }
        }
    }

    /// Execute `iterations` loop iterations over `inputs` with launch
    /// `params`. Semantically identical to
    /// [`crate::interp::Interpreter::run`] on the same kernel, including
    /// error values.
    pub fn run(
        &self,
        inputs: &[StreamData],
        params: &[f64],
        iterations: usize,
    ) -> Result<InterpOutput, InterpError> {
        self.validate_signature(inputs, params)?;
        let mut outputs = self.make_outputs(iterations);
        let mut regs = self.reg_init.clone();
        let mut vals = self.init_vals(params);

        let records_consumed = if self.fast_path {
            self.run_fast(inputs, &mut vals, &mut regs, &mut outputs, iterations)?
        } else {
            self.run_general(inputs, &mut vals, &mut regs, &mut outputs, iterations)?
        };

        Ok(InterpOutput {
            outputs,
            records_consumed,
            iterations,
            final_regs: regs,
        })
    }

    /// Check the launch signature: stream count, per-stream record
    /// length and param count. Shared by every engine that executes
    /// this tape so mismatch messages are identical.
    pub(crate) fn validate_signature(
        &self,
        inputs: &[StreamData],
        params: &[f64],
    ) -> Result<(), InterpError> {
        if inputs.len() != self.input_record_len.len() {
            return Err(InterpError::SignatureMismatch(format!(
                "kernel {} expects {} input streams, got {}",
                self.name,
                self.input_record_len.len(),
                inputs.len()
            )));
        }
        for (i, (rl, data)) in self.input_record_len.iter().zip(inputs).enumerate() {
            if *rl != data.record_len {
                return Err(InterpError::SignatureMismatch(format!(
                    "input {i} record length {} != kernel {}",
                    data.record_len, rl
                )));
            }
        }
        if params.len() != self.num_params {
            return Err(InterpError::SignatureMismatch(format!(
                "kernel {} expects {} params, got {}",
                self.name,
                self.num_params,
                params.len()
            )));
        }
        Ok(())
    }

    /// Output streams with exact per-launch capacity reservation
    /// (`iterations × worst-case words appended per iteration`).
    pub(crate) fn make_outputs(&self, iterations: usize) -> Vec<StreamData> {
        self.out_record_len
            .iter()
            .zip(&self.out_words_per_iter)
            .map(|(rl, w)| {
                let mut s = StreamData::empty(*rl);
                s.data.reserve_exact(iterations * w);
                s
            })
            .collect()
    }

    /// Value-slot array with the once-per-launch init plan applied
    /// (constants and params hoisted out of the iteration loop).
    pub(crate) fn init_vals(&self, params: &[f64]) -> Vec<f64> {
        let mut vals = vec![0.0f64; self.num_nodes];
        for &(slot, c) in &self.const_inits {
            vals[slot as usize] = c;
        }
        for &(slot, p) in &self.param_inits {
            vals[slot as usize] = params[p as usize];
        }
        vals
    }

    /// Fast path: every input stream pops exactly once per iteration,
    /// so underrun is decidable before the loop and the body runs with
    /// no per-iteration availability checks.
    fn run_fast(
        &self,
        inputs: &[StreamData],
        vals: &mut [f64],
        regs: &mut [f64],
        outputs: &mut [StreamData],
        iterations: usize,
    ) -> Result<Vec<usize>, InterpError> {
        self.prove_fast_underrun(inputs, iterations)?;
        let mut row_base = vec![0usize; inputs.len()];
        self.run_fast_range(inputs, vals, regs, outputs, &mut row_base, iterations);
        Ok(vec![iterations; inputs.len()])
    }

    /// Decide fast-path underrun before any iteration runs: the first
    /// stream (in index order) to run dry loses — matching the
    /// interpreter's per-iteration check order.
    pub(crate) fn prove_fast_underrun(
        &self,
        inputs: &[StreamData],
        iterations: usize,
    ) -> Result<(), InterpError> {
        let mut limit = iterations;
        let mut bad = None;
        for (s, d) in inputs.iter().enumerate() {
            let n = d.num_records();
            if n < limit {
                limit = n;
                bad = Some(s);
            }
        }
        if let Some(stream) = bad {
            return Err(InterpError::StreamUnderrun {
                stream,
                iteration: limit,
            });
        }
        Ok(())
    }

    /// `count` fast-path iterations resuming at `row_base` (advanced in
    /// place). Underrun must already be proven impossible for the whole
    /// launch ([`Self::prove_fast_underrun`]).
    pub(crate) fn run_fast_range(
        &self,
        inputs: &[StreamData],
        vals: &mut [f64],
        regs: &mut [f64],
        outputs: &mut [StreamData],
        row_base: &mut [usize],
        count: usize,
    ) {
        for _ in 0..count {
            self.read_prologue(inputs, row_base, regs, vals);
            // Arithmetic only (conditional reads cannot occur on the
            // fast path; plain reads live in the prologue).
            for op in &self.ops {
                vals[op.dst as usize] = eval_arith(op, vals);
            }
            self.apply_writes(vals, outputs);
            for &(r, v) in &self.reg_updates {
                regs[r as usize] = vals[v as usize];
            }
            for (base, rl) in row_base.iter_mut().zip(&self.input_record_len) {
                *base += rl;
            }
        }
    }

    /// General path: conditional streams pop on demand through the flat
    /// pop table, reset per iteration by a generation counter.
    fn run_general(
        &self,
        inputs: &[StreamData],
        vals: &mut [f64],
        regs: &mut [f64],
        outputs: &mut [StreamData],
        iterations: usize,
    ) -> Result<Vec<usize>, InterpError> {
        let mut st = ScalarState::new(self, inputs.len());
        self.run_general_range(inputs, vals, regs, outputs, &mut st, 0, iterations)?;
        Ok(st.cursors)
    }

    /// General-path iterations `start..end`, resuming from (and
    /// advancing) `st`. Iteration indices in underrun errors are
    /// absolute, so a caller that ran `start` iterations by other means
    /// (the batched engine) reports the same error values as a scalar
    /// run from zero.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_general_range(
        &self,
        inputs: &[StreamData],
        vals: &mut [f64],
        regs: &mut [f64],
        outputs: &mut [StreamData],
        st: &mut ScalarState,
        start: usize,
        end: usize,
    ) -> Result<(), InterpError> {
        self.run_general_range_impl::<true>(inputs, vals, regs, outputs, st, start, end)
    }

    /// The check-elided general path: identical iteration bodies with
    /// the per-iteration availability checks and per-pop depth checks
    /// compiled out. Only reachable behind a validated
    /// [`UnderrunProof`], which guarantees the elided checks could
    /// never have fired.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_general_range_unchecked(
        &self,
        inputs: &[StreamData],
        vals: &mut [f64],
        regs: &mut [f64],
        outputs: &mut [StreamData],
        st: &mut ScalarState,
        start: usize,
        end: usize,
    ) {
        self.run_general_range_impl::<false>(inputs, vals, regs, outputs, st, start, end)
            .expect("unchecked general range is infallible");
    }

    #[allow(clippy::too_many_arguments)]
    fn run_general_range_impl<const CHECKED: bool>(
        &self,
        inputs: &[StreamData],
        vals: &mut [f64],
        regs: &mut [f64],
        outputs: &mut [StreamData],
        st: &mut ScalarState,
        start: usize,
        end: usize,
    ) -> Result<(), InterpError> {
        let num_records: Vec<usize> = inputs.iter().map(|d| d.num_records()).collect();
        for iter in start..end {
            st.generation += 1;
            if CHECKED {
                for (s, every) in self.input_every_iter.iter().enumerate() {
                    if *every && st.cursors[s] >= num_records[s] {
                        return Err(InterpError::StreamUnderrun {
                            stream: s,
                            iteration: iter,
                        });
                    }
                }
            }
            self.read_prologue(inputs, &st.row_base, regs, vals);
            for op in &self.ops {
                vals[op.dst as usize] = match op.code {
                    Code::CondRead => {
                        let cr = &self.cond_reads[op.a as usize];
                        if vals[cr.pred as usize] != 0.0 {
                            let s = cr.stream as usize;
                            let slot = cr.slot as usize;
                            if st.pop_gen[slot] != st.generation {
                                if CHECKED && st.cursors[s] >= num_records[s] {
                                    return Err(InterpError::StreamUnderrun {
                                        stream: s,
                                        iteration: iter,
                                    });
                                }
                                st.pop_gen[slot] = st.generation;
                                st.pop_base[slot] = st.row_base[s];
                                st.cursors[s] += 1;
                                st.row_base[s] += self.input_record_len[s];
                            }
                            inputs[s].data[st.pop_base[slot] + cr.field as usize]
                        } else {
                            vals[cr.fallback as usize]
                        }
                    }
                    _ => eval_arith(op, vals),
                };
            }
            self.apply_writes(vals, outputs);
            for &(r, v) in &self.reg_updates {
                regs[r as usize] = vals[v as usize];
            }
            for (s, every) in self.input_every_iter.iter().enumerate() {
                if *every {
                    st.cursors[s] += 1;
                    st.row_base[s] += self.input_record_len[s];
                }
            }
        }
        Ok(())
    }

    /// Run the write plan for one iteration, preserving the kernel's
    /// write order (appends to the same output stream interleave exactly
    /// as the interpreter's).
    #[inline]
    fn apply_writes(&self, vals: &[f64], outputs: &mut [StreamData]) {
        for w in &self.writes {
            if w.cond != NO_COND && vals[w.cond as usize] == 0.0 {
                continue;
            }
            let out = &mut outputs[w.stream as usize].data;
            let range = w.start as usize..(w.start + w.len) as usize;
            out.extend(self.write_values[range].iter().map(|&v| vals[v as usize]));
        }
    }
}

/// Resumable mutable state of the general scalar path: stream cursors
/// and conditional-pop bookkeeping. The batched engine
/// ([`crate::batch`]) carries one of these across its vector batches
/// and hands it to [`CompiledTape::run_general_range`] for the scalar
/// remainder, so both paths share one implementation of pop and
/// underrun semantics instead of duplicating them.
#[derive(Debug)]
pub(crate) struct ScalarState {
    /// Records consumed so far per input stream.
    pub(crate) cursors: Vec<usize>,
    /// Word offset of each stream's next record.
    pub(crate) row_base: Vec<usize>,
    /// Generation stamp of each pop slot's last pop.
    pub(crate) pop_gen: Vec<u64>,
    /// Word offset of each pop slot's current record.
    pub(crate) pop_base: Vec<usize>,
    /// Iterations started so far — the pop-slot reset generation.
    pub(crate) generation: u64,
}

impl ScalarState {
    pub(crate) fn new(tape: &CompiledTape, num_inputs: usize) -> Self {
        Self {
            cursors: vec![0; num_inputs],
            row_base: vec![0; num_inputs],
            pop_gen: vec![0; tape.pop_slots],
            pop_base: vec![0; tape.pop_slots],
            generation: 0,
        }
    }
}

/// Evaluate an arithmetic/logical tape op. Bit-for-bit the same `f64`
/// expressions as the interpreter's `Node::Op` arm.
#[inline(always)]
fn eval_arith(op: &TapeOp, vals: &[f64]) -> f64 {
    let a = vals[op.a as usize];
    match op.code {
        Code::Add => a + vals[op.b as usize],
        Code::Sub => a - vals[op.b as usize],
        Code::Mul => a * vals[op.b as usize],
        Code::Madd => a * vals[op.b as usize] + vals[op.c as usize],
        Code::Nmsub => vals[op.c as usize] - a * vals[op.b as usize],
        Code::Div => a / vals[op.b as usize],
        Code::Sqrt => a.sqrt(),
        Code::Rsqrt => 1.0 / a.sqrt(),
        Code::SeedRecip => (1.0 / a) as f32 as f64,
        Code::SeedRsqrt => (1.0 / a.sqrt()) as f32 as f64,
        Code::CmpEq => mask(a == vals[op.b as usize]),
        Code::CmpLt => mask(a < vals[op.b as usize]),
        Code::CmpLe => mask(a <= vals[op.b as usize]),
        Code::Sel => {
            if a != 0.0 {
                vals[op.b as usize]
            } else {
                vals[op.c as usize]
            }
        }
        Code::And => mask(a != 0.0 && vals[op.b as usize] != 0.0),
        Code::Or => mask(a != 0.0 || vals[op.b as usize] != 0.0),
        Code::Not => mask(a == 0.0),
        Code::Min => a.min(vals[op.b as usize]),
        Code::Max => a.max(vals[op.b as usize]),
        Code::Mov => a,
        Code::CondRead => unreachable!("conditional read in eval_arith"),
    }
}

#[inline]
pub(crate) fn mask(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::interp::Interpreter;

    fn assert_matches_interp(k: &Kernel, inputs: &[StreamData], params: &[f64], iterations: usize) {
        let tape = CompiledTape::compile(k);
        let t = tape.run(inputs, params, iterations);
        let i = Interpreter::new(k).run(inputs, params, iterations);
        assert_eq!(t, i, "tape vs interpreter diverged on kernel '{}'", k.name);
    }

    #[test]
    fn scaling_kernel_matches() {
        let mut b = KernelBuilder::new("scale");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let p = b.param();
        let x = b.read(s, 0);
        let y = b.mul(x, p);
        b.write(o, &[y]);
        let k = b.build();
        let tape = CompiledTape::compile(&k);
        assert!(tape.is_fast_path());
        let out = tape
            .run(&[StreamData::new(1, vec![1.0, 2.0, 3.0])], &[10.0], 3)
            .unwrap();
        assert_eq!(out.outputs[0].data, vec![10.0, 20.0, 30.0]);
        assert_eq!(out.records_consumed, vec![3]);
        assert_matches_interp(&k, &[StreamData::new(1, vec![1.0, 2.0, 3.0])], &[10.0], 3);
    }

    #[test]
    fn loop_carried_accumulator_matches() {
        let mut b = KernelBuilder::new("sum");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("running", 1);
        let r = b.reg(0.0);
        let acc = b.read_reg(r);
        let x = b.read(s, 0);
        let sum = b.add(acc, x);
        b.set_reg(r, sum);
        b.write(o, &[sum]);
        let k = b.build();
        let out = CompiledTape::compile(&k)
            .run(&[StreamData::new(1, vec![1.0, 2.0, 3.0, 4.0])], &[], 4)
            .unwrap();
        assert_eq!(out.outputs[0].data, vec![1.0, 3.0, 6.0, 10.0]);
        assert_eq!(out.final_regs, vec![10.0]);
        assert_matches_interp(&k, &[StreamData::new(1, vec![1.0, 2.0, 3.0, 4.0])], &[], 4);
    }

    #[test]
    fn conditional_stream_pops_on_demand() {
        let mut b = KernelBuilder::new("cond");
        let s = b.input("vals", 1, StreamMode::Conditional);
        let o = b.output("out", 1);
        let parity = b.reg(1.0);
        let cur = b.reg(0.0);
        let want = b.read_reg(parity);
        let prev = b.read_reg(cur);
        let v = b.cond_read(s, 0, want, prev);
        let flip = b.not(want);
        b.set_reg(parity, flip);
        b.set_reg(cur, v);
        b.write(o, &[v]);
        let k = b.build();
        let tape = CompiledTape::compile(&k);
        assert!(!tape.is_fast_path());
        let out = tape
            .run(&[StreamData::new(1, vec![10.0, 20.0, 30.0])], &[], 6)
            .unwrap();
        assert_eq!(
            out.outputs[0].data,
            vec![10.0, 10.0, 20.0, 20.0, 30.0, 30.0]
        );
        assert_eq!(out.records_consumed, vec![3]);
        assert_matches_interp(&k, &[StreamData::new(1, vec![10.0, 20.0, 30.0])], &[], 6);
    }

    #[test]
    fn shared_predicate_pops_once_distinct_preds_pop_independently() {
        // Two CondReads with the same predicate share one pop; a third
        // with a distinct (but equal-valued) predicate pops separately.
        let mut b = KernelBuilder::new("pops");
        let s = b.input("v", 2, StreamMode::Conditional);
        let o = b.output("out", 3);
        let one = b.constant(1.0);
        let one2 = b.mov(one); // distinct node, same value
        let zero = b.constant(0.0);
        let a = b.cond_read(s, 0, one, zero);
        let c = b.cond_read(s, 1, one, zero); // shares the pop with `a`
        let d = b.cond_read(s, 0, one2, zero); // independent pop
        b.write(o, &[a, c, d]);
        let k = b.build();
        let data = StreamData::new(2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let out = CompiledTape::compile(&k)
            .run(std::slice::from_ref(&data), &[], 2)
            .unwrap();
        // iter 0: `a`/`c` pop record 0, `d` pops record 1;
        // iter 1: `a`/`c` pop record 2, `d` pops record 3.
        assert_eq!(out.outputs[0].data, vec![1.0, 2.0, 3.0, 5.0, 6.0, 7.0]);
        assert_eq!(out.records_consumed, vec![4]);
        assert_matches_interp(&k, &[data], &[], 2);
    }

    #[test]
    fn conditional_write_filters_records() {
        let mut b = KernelBuilder::new("filter");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("big", 1);
        let x = b.read(s, 0);
        let t = b.constant(5.0);
        let big = b.cmp_lt(t, x);
        b.write_if(o, big, &[x]);
        let k = b.build();
        let out = CompiledTape::compile(&k)
            .run(&[StreamData::new(1, vec![3.0, 7.0, 4.0, 9.0])], &[], 4)
            .unwrap();
        assert_eq!(out.outputs[0].data, vec![7.0, 9.0]);
        assert_matches_interp(&k, &[StreamData::new(1, vec![3.0, 7.0, 4.0, 9.0])], &[], 4);
    }

    #[test]
    fn underrun_error_matches_interpreter() {
        let mut b = KernelBuilder::new("u");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let x = b.read(s, 0);
        b.write(o, &[x]);
        let k = b.build();
        let err = CompiledTape::compile(&k)
            .run(&[StreamData::new(1, vec![1.0])], &[], 2)
            .unwrap_err();
        assert_eq!(
            err,
            InterpError::StreamUnderrun {
                stream: 0,
                iteration: 1
            }
        );
        assert_matches_interp(&k, &[StreamData::new(1, vec![1.0])], &[], 2);
    }

    #[test]
    fn signature_mismatch_matches_interpreter() {
        let mut b = KernelBuilder::new("sig");
        let _s = b.input("x", 2, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let c = b.constant(1.0);
        b.write(o, &[c]);
        let k = b.build();
        let bad = [StreamData::new(1, vec![1.0])];
        let t = CompiledTape::compile(&k).run(&bad, &[], 1);
        let i = Interpreter::new(&k).run(&bad, &[], 1);
        assert_eq!(t, i);
        assert!(matches!(t.unwrap_err(), InterpError::SignatureMismatch(_)));
    }

    #[test]
    fn seed_ops_are_f32_precision() {
        let mut b = KernelBuilder::new("seed");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let x = b.read(s, 0);
        let y = b.seed_recip(x);
        b.write(o, &[y]);
        let k = b.build();
        let out = CompiledTape::compile(&k)
            .run(&[StreamData::new(1, vec![3.0])], &[], 1)
            .unwrap();
        assert_eq!(out.outputs[0].data[0], (1.0f64 / 3.0) as f32 as f64);
    }

    #[test]
    fn output_capacity_is_reserved_exactly_for_unconditional_writes() {
        let mut b = KernelBuilder::new("cap");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 2);
        let x = b.read(s, 0);
        b.write(o, &[x, x]);
        let k = b.build();
        let n = 1000usize;
        let out = CompiledTape::compile(&k)
            .run(
                &[StreamData::new(1, (0..n).map(|i| i as f64).collect())],
                &[],
                n,
            )
            .unwrap();
        assert_eq!(out.outputs[0].data.len(), 2 * n);
        // reserve_exact(iterations × words/iter) means no re-allocation
        // ever grew the vector past the exact requirement.
        assert_eq!(out.outputs[0].data.capacity(), 2 * n);
    }
}

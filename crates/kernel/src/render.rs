//! ASCII rendering of kernel schedules in the style of the paper's
//! Figure 10: one row per cycle, one column per FPU slot, a mnemonic in
//! each occupied cell.

use crate::ir::{Kernel, Node, NodeId, OpKind};
use crate::pipeline::PipelinedSchedule;
use crate::schedule::Schedule;

fn mnemonic(kernel: &Kernel, id: NodeId) -> &'static str {
    match &kernel.nodes[id as usize] {
        Node::CondRead { .. } => "COND",
        Node::Op { op, .. } => match op {
            OpKind::Add => "ADD",
            OpKind::Sub => "SUB",
            OpKind::Mul => "MUL",
            OpKind::Madd => "MADD",
            OpKind::Nmsub => "NMSB",
            OpKind::Div => "DIV",
            OpKind::Sqrt => "SQRT",
            OpKind::Rsqrt => "RSQT",
            OpKind::SeedRecip | OpKind::SeedRsqrt => "SEED",
            OpKind::CmpEq | OpKind::CmpLt | OpKind::CmpLe => "CMP",
            OpKind::Sel => "SEL",
            OpKind::And | OpKind::Or | OpKind::Not => "LOG",
            OpKind::Min | OpKind::Max => "MNMX",
            OpKind::Mov => "MOV",
        },
        _ => "?",
    }
}

fn render_rows(kernel: &Kernel, rows: &[Vec<Option<NodeId>>], header: &str) -> String {
    let mut out = String::new();
    out.push_str(header);
    out.push('\n');
    let slots = rows.first().map_or(4, |r| r.len());
    out.push_str("cycle ");
    for s in 0..slots {
        out.push_str(&format!("| FPU{s}  "));
    }
    out.push('\n');
    out.push_str(&format!("------{}\n", "+-------".repeat(slots)));
    for (t, row) in rows.iter().enumerate() {
        out.push_str(&format!("{t:>5} "));
        for cell in row {
            match cell {
                Some(id) => out.push_str(&format!("| {:<5} ", mnemonic(kernel, *id))),
                None => out.push_str("|   .   "),
            }
        }
        out.push('\n');
    }
    out
}

/// Render a non-pipelined schedule (Figure 10a style).
pub fn render_schedule(kernel: &Kernel, schedule: &Schedule) -> String {
    let header = format!(
        "kernel `{}` — list schedule: {} ops, {} cycles, occupancy {:.0}%, issue rate {:.0}%",
        kernel.name,
        schedule.issued_ops(),
        schedule.length,
        schedule.occupancy() * 100.0,
        schedule.issue_rate() * 100.0,
    );
    render_rows(kernel, &schedule.slots, &header)
}

/// Render the steady-state modulo reservation table (Figure 10b style).
pub fn render_pipelined(kernel: &Kernel, p: &PipelinedSchedule) -> String {
    let header = format!(
        "kernel `{}` — software pipelined: II {}, {} stages, occupancy {:.0}%, issue rate {:.0}%",
        kernel.name,
        p.ii,
        p.stages(),
        p.occupancy() * 100.0,
        p.issue_rate() * 100.0,
    );
    render_rows(kernel, &p.rows, &header)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::StreamMode;
    use crate::lower::lower_kernel;
    use crate::pipeline::modulo_schedule;
    use crate::schedule::list_schedule;
    use merrimac_arch::OpCosts;

    fn kernel() -> Kernel {
        let mut b = KernelBuilder::new("demo");
        let s = b.input("x", 2, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let x = b.read(s, 0);
        let y = b.read(s, 1);
        let r = b.rsqrt(x);
        let m = b.madd(r, y, x);
        b.write(o, &[m]);
        b.build()
    }

    #[test]
    fn renders_both_schedule_kinds() {
        let costs = OpCosts::default();
        let k = lower_kernel(&kernel(), &costs);
        let s = list_schedule(&k, &costs, 4);
        let text = render_schedule(&k, &s);
        assert!(text.contains("FPU0"));
        assert!(text.contains("SEED"));
        assert!(text.contains("list schedule"));

        let p = modulo_schedule(&k, &costs, 4);
        let text = render_pipelined(&k, &p);
        assert!(text.contains("II"));
        assert!(text.lines().count() >= p.ii as usize + 3);
    }

    #[test]
    fn cell_width_is_stable() {
        let costs = OpCosts::default();
        let k = lower_kernel(&kernel(), &costs);
        let s = list_schedule(&k, &costs, 4);
        let text = render_schedule(&k, &s);
        let widths: std::collections::HashSet<usize> =
            text.lines().skip(1).map(|l| l.len()).collect();
        // Header divider and rows all align.
        assert!(widths.len() <= 3, "ragged render: {widths:?}\n{text}");
    }
}

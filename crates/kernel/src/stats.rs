//! Static kernel statistics: flop accounting and word traffic.
//!
//! Two flop conventions coexist in the paper and therefore here:
//!
//! * *solution flops* — programmer-visible operations counted on the
//!   **unlowered** kernel (div and sqrt count once); Figure 9's "Solution
//!   GFLOPS" uses these.
//! * *hardware flops* — operations counted on the **lowered** kernel
//!   (madd = 2, seeds/compares/selects = 0); Figure 9's "All GFLOPS" uses
//!   these.

use std::collections::HashMap;

use merrimac_arch::FpuOpClass;

use crate::ir::{Kernel, StreamMode};
use crate::schedule::live_set;

/// Per-iteration statistics of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel these stats describe.
    pub name: String,
    /// Floating point ops in the paper's solution accounting.
    pub solution_flops: u64,
    /// Flops after lowering (madd = 2).
    pub hardware_flops: u64,
    /// Issued ops after lowering (slots consumed).
    pub hardware_ops: u64,
    /// Count of divides (before lowering).
    pub divides: u64,
    /// Count of square roots, including reciprocal square roots.
    pub square_roots: u64,
    /// Issued-op histogram by functional class (lowered kernel).
    pub by_class: HashMap<FpuOpClass, u64>,
    /// Local-register-file references per iteration: operand reads plus
    /// the result write of every issued op (Figure 8's LRF count).
    pub lrf_refs: u64,
    /// Words read per iteration from unconditional input streams.
    pub words_in_unconditional: u64,
    /// Words read per conditional-stream pop (cost when the pop fires).
    pub words_in_conditional: u64,
    /// Words written per iteration by unconditional writes.
    pub words_out_unconditional: u64,
    /// Words written per fired conditional write.
    pub words_out_conditional: u64,
}

impl KernelStats {
    /// Analyze `kernel` (unlowered) together with its lowered form.
    pub fn analyze(kernel: &Kernel, lowered: &Kernel) -> Self {
        assert!(lowered.is_lowered());
        let live_hi = live_set(kernel);
        let mut solution_flops = 0;
        let mut divides = 0;
        let mut square_roots = 0;
        for (i, node) in kernel.nodes.iter().enumerate() {
            if !live_hi[i] {
                continue;
            }
            if let Some(class) = node.fpu_class() {
                solution_flops += class.solution_flops();
                match class {
                    FpuOpClass::Div => divides += 1,
                    FpuOpClass::Sqrt | FpuOpClass::Rsqrt => square_roots += 1,
                    _ => {}
                }
            }
        }

        let live_lo = live_set(lowered);
        let mut hardware_flops = 0;
        let mut hardware_ops = 0;
        let mut lrf_refs = 0;
        let mut by_class: HashMap<FpuOpClass, u64> = HashMap::new();
        for (i, node) in lowered.nodes.iter().enumerate() {
            if !live_lo[i] || !node.issues() {
                continue;
            }
            let class = node.fpu_class().expect("issuing node has a class");
            hardware_ops += 1;
            hardware_flops += class.solution_flops();
            lrf_refs += node.deps().len() as u64 + 1;
            *by_class.entry(class).or_insert(0) += 1;
        }

        let mut words_in_unconditional = 0;
        let mut words_in_conditional = 0;
        for s in &kernel.inputs {
            match s.mode {
                StreamMode::EveryIteration => words_in_unconditional += s.record_len as u64,
                StreamMode::Conditional => words_in_conditional += s.record_len as u64,
            }
        }
        let mut words_out_unconditional = 0;
        let mut words_out_conditional = 0;
        for w in &kernel.writes {
            let len = w.values.len() as u64;
            if w.cond.is_some() {
                words_out_conditional += len;
            } else {
                words_out_unconditional += len;
            }
        }

        Self {
            name: kernel.name.clone(),
            solution_flops,
            lrf_refs,
            hardware_flops,
            hardware_ops,
            divides,
            square_roots,
            by_class,
            words_in_unconditional,
            words_in_conditional,
            words_out_unconditional,
            words_out_conditional,
        }
    }

    /// Static arithmetic intensity assuming every conditional access fires
    /// once every `cond_period` iterations.
    pub fn arithmetic_intensity(&self, cond_period: f64) -> f64 {
        let words = self.words_in_unconditional as f64
            + self.words_out_unconditional as f64
            + (self.words_in_conditional + self.words_out_conditional) as f64 / cond_period;
        if words == 0.0 {
            return 0.0;
        }
        self.solution_flops as f64 / words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::lower::lower_kernel;
    use merrimac_arch::OpCosts;

    fn sample() -> (Kernel, Kernel) {
        let mut b = KernelBuilder::new("s");
        let s = b.input("x", 2, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let x = b.read(s, 0);
        let y = b.read(s, 1);
        let d = b.div(x, y);
        let r = b.rsqrt(d);
        let m = b.madd(r, x, y);
        b.write(o, &[m]);
        let k = b.build();
        let l = lower_kernel(&k, &OpCosts::default());
        (k, l)
    }

    #[test]
    fn solution_flop_convention() {
        let (k, l) = sample();
        let st = KernelStats::analyze(&k, &l);
        // div (1) + rsqrt (1) + madd (2) = 4.
        assert_eq!(st.solution_flops, 4);
        assert_eq!(st.divides, 1);
        assert_eq!(st.square_roots, 1);
    }

    #[test]
    fn hardware_ops_exceed_solution_ops() {
        let (k, l) = sample();
        let st = KernelStats::analyze(&k, &l);
        assert!(st.hardware_ops > 10, "ops = {}", st.hardware_ops);
        assert!(st.hardware_flops > st.solution_flops);
    }

    #[test]
    fn word_traffic() {
        let (k, l) = sample();
        let st = KernelStats::analyze(&k, &l);
        assert_eq!(st.words_in_unconditional, 2);
        assert_eq!(st.words_out_unconditional, 1);
        assert_eq!(st.words_in_conditional, 0);
        assert!((st.arithmetic_intensity(1.0) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn class_histogram_sums_to_ops() {
        let (k, l) = sample();
        let st = KernelStats::analyze(&k, &l);
        let total: u64 = st.by_class.values().sum();
        assert_eq!(total, st.hardware_ops);
    }
}

//! Kernel intermediate representation and VLIW compilation for Merrimac
//! arithmetic clusters.
//!
//! A Merrimac *kernel* is a loop body applied to stream records: each
//! cluster executes the same VLIW instruction word (4 FPU slots) every
//! cycle, reading record fields from its SRF bank through stream buffers
//! and writing output records back. This crate models the whole path the
//! paper's compiler takes:
//!
//! 1. [`ir`]/[`builder`] — kernels are built as SSA dataflow graphs over
//!    stream reads, loop-carried registers and conditional-stream
//!    accesses.
//! 2. [`lower`] — divides and square roots are expanded into
//!    seed + Newton–Raphson sequences of MADD-class operations ("divides
//!    and square-roots are computed iteratively and require several
//!    operations", Section 5.1).
//! 3. [`schedule`] — critical-path list scheduling onto the 4 FPU slots
//!    with full latency modelling (the "communication scheduling" result
//!    the paper relies on).
//! 4. [`unroll`] + [`pipeline`] — loop unrolling and modulo software
//!    pipelining, the two optimizations Figure 10 shows improving the
//!    `variable` interaction kernel's issue rate by 28%.
//! 5. [`interp`] — a functional interpreter that executes kernels over
//!    real stream data; [`validate`] proves a schedule preserves the
//!    dataflow semantics.
//! 6. [`render`] — ASCII rendering of schedules in the style of
//!    Figure 10.

pub mod batch;
pub mod builder;
pub mod interp;
pub mod ir;
pub mod lower;
pub mod opt;
pub mod pipeline;
pub mod render;
pub mod schedule;
pub mod stats;
pub mod tape;
pub mod unroll;
pub mod validate;

pub use batch::{BatchPlanViolation, BatchWidth};
pub use builder::KernelBuilder;
pub use interp::{InterpOutput, Interpreter, StreamData};
pub use ir::{Kernel, Node, NodeId, OpKind, StreamMode};
pub use pipeline::{modulo_schedule, PipelinedSchedule};
pub use schedule::{list_schedule, Schedule};
pub use stats::KernelStats;
pub use tape::{CompiledTape, UnderrunProof};

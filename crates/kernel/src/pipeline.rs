//! Modulo software pipelining.
//!
//! The optimized half of Figure 10: the loop body is scheduled into an
//! initiation interval (II) so a new iteration starts every II cycles,
//! overlapping the latency shadows of earlier iterations. We implement a
//! simplified iterative modulo scheduler:
//!
//! 1. MII = max(resource MII, recurrence MII);
//! 2. schedule nodes in priority (critical-path) order with a modulo
//!    resource table;
//! 3. verify loop-carried recurrences fit within II; otherwise retry with
//!    II + 1.

use merrimac_arch::OpCosts;

use crate::ir::{Kernel, Node, NodeId};
use crate::schedule::{heights, live_set};

/// A modulo-scheduled loop.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelinedSchedule {
    /// Initiation interval in cycles.
    pub ii: u64,
    /// Flat issue time of each node within one iteration's schedule
    /// (the modulo row is `time % ii`).
    pub issue_time: Vec<Option<u64>>,
    /// Value-availability time per node.
    pub value_ready: Vec<Option<u64>>,
    /// Modulo reservation table: `rows[time % ii][slot]`.
    pub rows: Vec<Vec<Option<NodeId>>>,
    pub num_slots: usize,
    /// Depth of one iteration's schedule (prologue length).
    pub depth: u64,
}

impl PipelinedSchedule {
    /// Number of pipeline stages.
    pub fn stages(&self) -> u64 {
        self.depth.div_ceil(self.ii)
    }

    /// Ops issued per iteration.
    pub fn issued_ops(&self) -> usize {
        self.issue_time.iter().flatten().count()
    }

    /// Steady-state slot occupancy.
    pub fn occupancy(&self) -> f64 {
        self.issued_ops() as f64 / (self.ii as usize * self.num_slots) as f64
    }

    /// Fraction of steady-state cycles issuing at least one op.
    pub fn issue_rate(&self) -> f64 {
        let busy = self
            .rows
            .iter()
            .filter(|r| r.iter().any(|s| s.is_some()))
            .count();
        busy as f64 / self.ii as f64
    }

    /// Total cycles for `n` iterations including pipeline fill/drain.
    pub fn cycles_for(&self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            (n - 1) * self.ii + self.depth
        }
    }
}

fn latency_of(node: &Node, costs: &OpCosts) -> u64 {
    node.fpu_class().map_or(0, |c| costs.latency(c))
}

/// Resource-constrained minimum II.
pub fn res_mii(kernel: &Kernel, num_slots: usize) -> u64 {
    let live = live_set(kernel);
    let ops = kernel
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, n)| live[*i] && n.issues())
        .count() as u64;
    ops.div_ceil(num_slots as u64).max(1)
}

/// Recurrence-constrained minimum II: for every loop-carried register,
/// the latency of the path from its `ReadReg` to its update value must
/// fit in one II (dependence distance 1).
pub fn rec_mii(kernel: &Kernel, costs: &OpCosts) -> u64 {
    // Longest path from each ReadReg(r) node to the update node of r.
    // Computed by DP over SSA order: dist[n] = max latency path from any
    // ReadReg of interest to n's *value availability*.
    let n = kernel.nodes.len();
    let mut best = 1u64;
    for (reg, update) in &kernel.reg_updates {
        let mut dist: Vec<Option<u64>> = vec![None; n];
        for (i, node) in kernel.nodes.iter().enumerate() {
            if matches!(node, Node::ReadReg(r) if r == reg) {
                dist[i] = Some(0);
            } else {
                let mut d = None;
                for dep in node.deps() {
                    if let Some(x) = dist[dep as usize] {
                        d = Some(d.unwrap_or(0).max(x));
                    }
                }
                if let Some(base) = d {
                    dist[i] = Some(base + latency_of(node, costs));
                }
            }
        }
        if let Some(Some(d)) = dist.get(*update as usize) {
            best = best.max(*d);
        }
    }
    best
}

/// Modulo-schedule `kernel` onto `num_slots` slots. Panics on unlowered
/// kernels; always succeeds (II grows until the schedule fits).
pub fn modulo_schedule(kernel: &Kernel, costs: &OpCosts, num_slots: usize) -> PipelinedSchedule {
    assert!(
        kernel.is_lowered(),
        "kernel {} must be lowered before pipelining",
        kernel.name
    );
    let serial = crate::schedule::list_schedule(kernel, costs, num_slots);
    let mii = res_mii(kernel, num_slots).max(rec_mii(kernel, costs));
    let mut ii = mii;
    // Pipelining can never be useful past the serial schedule length; if
    // the simple placement heuristic cannot fit a smaller II (pathological
    // recurrence shapes), degrade gracefully to the serial schedule
    // expressed as a modulo schedule with II = serial length.
    while ii < serial.length {
        if let Some(s) = try_schedule(kernel, costs, num_slots, ii, serial.length) {
            return s;
        }
        ii += 1;
    }
    from_serial(kernel, &serial)
}

/// Express a serial list schedule as a (degenerate) modulo schedule with
/// II equal to the schedule length.
fn from_serial(kernel: &Kernel, serial: &crate::schedule::Schedule) -> PipelinedSchedule {
    let ii = serial.length.max(1);
    let mut rows: Vec<Vec<Option<NodeId>>> = vec![vec![None; serial.num_slots]; ii as usize];
    for (t, row) in serial.slots.iter().enumerate() {
        for (s, op) in row.iter().enumerate() {
            rows[t][s] = *op;
        }
    }
    let _ = kernel;
    PipelinedSchedule {
        ii,
        issue_time: serial.issue_cycle.clone(),
        value_ready: serial.value_ready.clone(),
        rows,
        num_slots: serial.num_slots,
        depth: serial.length,
    }
}

fn try_schedule(
    kernel: &Kernel,
    costs: &OpCosts,
    num_slots: usize,
    ii: u64,
    depth_target: u64,
) -> Option<PipelinedSchedule> {
    let n = kernel.nodes.len();
    let live = live_set(kernel);
    let height = heights(kernel, costs, &live);

    // Nodes are placed in SSA (topological) order so dependencies are
    // resolved first. Placement is ALAP-biased: a node starts its slot
    // search at `depth_target − height`, i.e. as late as its remaining
    // critical path allows. Critical-path nodes therefore place ASAP,
    // while shallow side chains — in particular the consumers of
    // loop-carried registers (conditional-write guards, accumulator
    // select/add chains) — drift to the end of the schedule, which keeps
    // the cross-iteration recurrence margin `ready(update) ≤ t_use + II`
    // satisfiable at the resource-bound II.
    let mut issue_time: Vec<Option<u64>> = vec![None; n];
    let mut value_ready: Vec<Option<u64>> = vec![None; n];
    let mut rows: Vec<Vec<Option<NodeId>>> = vec![vec![None; num_slots]; ii as usize];
    let mut used: Vec<usize> = vec![0; ii as usize];

    for i in 0..n {
        if !live[i] {
            continue;
        }
        let node = &kernel.nodes[i];
        let mut earliest = 0u64;
        for d in node.deps() {
            // Deps are earlier in SSA order, already resolved.
            earliest = earliest.max(value_ready[d as usize].unwrap_or(0));
        }
        if !node.issues() {
            value_ready[i] = Some(earliest);
            continue;
        }
        let alap_start = depth_target.saturating_sub(height[i]);
        let earliest = earliest.max(alap_start);
        // Find the first cycle >= earliest with a free modulo slot,
        // searching at most II consecutive cycles (after that the pattern
        // repeats and the row set is full).
        let mut placed = false;
        for t in earliest..earliest + ii {
            let row = (t % ii) as usize;
            if used[row] < num_slots {
                let slot = rows[row].iter().position(|s| s.is_none()).unwrap();
                rows[row][slot] = Some(i as NodeId);
                used[row] += 1;
                issue_time[i] = Some(t);
                value_ready[i] = Some(t + latency_of(node, costs));
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }

    // Verify recurrences: update value of register r (iteration k) must be
    // ready by the time iteration k+1 needs it. A ReadReg consumer at
    // flat time t in iteration k+1 executes at absolute time t + II
    // relative to iteration k, so we need ready(update) <= t_use + II for
    // every use.
    for (reg, update) in &kernel.reg_updates {
        let ready = match value_ready[*update as usize] {
            Some(r) => r,
            None => continue,
        };
        for (i, node) in kernel.nodes.iter().enumerate() {
            if !live[i] || !matches!(node, Node::ReadReg(r) if r == reg) {
                continue;
            }
            // Consumers of this ReadReg node.
            for (j, user) in kernel.nodes.iter().enumerate() {
                if !live[j] || !user.deps().contains(&(i as NodeId)) {
                    continue;
                }
                let t_use = issue_time[j].or(value_ready[j]).unwrap_or(0);
                if ready > t_use + ii {
                    return None;
                }
            }
        }
    }

    let depth = (0..n)
        .filter(|&i| live[i])
        .filter_map(|i| value_ready[i])
        .max()
        .unwrap_or(0)
        .max(ii);

    Some(PipelinedSchedule {
        ii,
        issue_time,
        value_ready,
        rows,
        num_slots,
        depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::StreamMode;
    use crate::lower::lower_kernel;
    use crate::schedule::list_schedule;

    fn body(ops: usize) -> Kernel {
        // `ops` independent multiplies per iteration.
        let mut b = KernelBuilder::new("body");
        let s = b.input("x", ops as u32, StreamMode::EveryIteration);
        let o = b.output("y", ops as u32);
        let vals: Vec<_> = (0..ops)
            .map(|i| {
                let x = b.read(s, i as u32);
                b.mul(x, x)
            })
            .collect();
        b.write(o, &vals);
        b.build()
    }

    #[test]
    fn ii_is_resource_bound_for_parallel_body() {
        let costs = OpCosts::default();
        let k = lower_kernel(&body(13), &costs);
        let p = modulo_schedule(&k, &costs, 4);
        assert_eq!(p.ii, 4); // ceil(13/4)
        assert_eq!(p.issued_ops(), 13);
    }

    #[test]
    fn pipelining_beats_list_schedule_throughput() {
        let costs = OpCosts::default();
        // A body with both width and a latency chain.
        let mut b = KernelBuilder::new("mix");
        let s = b.input("x", 4, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let x0 = b.read(s, 0);
        let x1 = b.read(s, 1);
        let x2 = b.read(s, 2);
        let x3 = b.read(s, 3);
        let m0 = b.mul(x0, x1);
        let m1 = b.mul(x2, x3);
        let a = b.add(m0, m1);
        let c = b.mul(a, a);
        let d = b.add(c, m0);
        b.write(o, &[d]);
        let k = lower_kernel(&b.build(), &costs);
        let sch = list_schedule(&k, &costs, 4);
        let pipe = modulo_schedule(&k, &costs, 4);
        // Per-iteration cost in steady state must be strictly better than
        // the serial schedule length.
        assert!(
            pipe.ii < sch.length,
            "II {} !< length {}",
            pipe.ii,
            sch.length
        );
    }

    #[test]
    fn recurrence_limits_ii() {
        let costs = OpCosts::default();
        // acc = acc * x + 1: recurrence through a madd (latency 4).
        let mut b = KernelBuilder::new("rec");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let r = b.reg(0.0);
        let acc = b.read_reg(r);
        let x = b.read(s, 0);
        let one = b.constant(1.0);
        let upd = b.madd(acc, x, one);
        b.set_reg(r, upd);
        b.write(o, &[upd]);
        let k = lower_kernel(&b.build(), &costs);
        assert_eq!(rec_mii(&k, &costs), costs.madd_latency);
        let p = modulo_schedule(&k, &costs, 4);
        assert!(p.ii >= costs.madd_latency);
    }

    #[test]
    fn cycles_for_accounts_fill_and_drain() {
        let costs = OpCosts::default();
        let k = lower_kernel(&body(8), &costs);
        let p = modulo_schedule(&k, &costs, 4);
        assert_eq!(p.cycles_for(0), 0);
        assert_eq!(p.cycles_for(1), p.depth);
        assert_eq!(p.cycles_for(10), 9 * p.ii + p.depth);
    }

    #[test]
    fn modulo_rows_have_no_conflicts() {
        let costs = OpCosts::default();
        let k = lower_kernel(&body(10), &costs);
        let p = modulo_schedule(&k, &costs, 4);
        // Each row holds at most num_slots ops and every issued op appears
        // exactly once.
        let mut seen = std::collections::HashSet::new();
        for row in &p.rows {
            assert!(row.len() == 4);
            for op in row.iter().flatten() {
                assert!(seen.insert(*op));
            }
        }
        assert_eq!(seen.len(), p.issued_ops());
    }

    #[test]
    fn res_mii_matches_op_count() {
        let k = body(9);
        let costs = OpCosts::default();
        let k = lower_kernel(&k, &costs);
        assert_eq!(res_mii(&k, 4), 3);
        assert_eq!(res_mii(&k, 1), 9);
    }
}

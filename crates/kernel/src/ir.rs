//! Kernel IR: an SSA dataflow graph over stream I/O and loop-carried
//! registers.
//!
//! One [`Kernel`] describes the *loop body* a cluster runs once per
//! iteration. Everything the four StreamMD variants need is expressible:
//!
//! * plain stream reads (`Read`) — the stream buffer pops one record per
//!   iteration;
//! * conditional stream reads (`CondRead`) — Merrimac's conditional
//!   streams: the pop happens only when a predicate is true, otherwise a
//!   fallback value (usually a loop-carried register) is produced;
//! * loop-carried registers (`ReadReg` + [`Kernel::reg_updates`]) — force
//!   accumulators and the "current centre molecule" state;
//! * conditional output writes — partial-force records appended only when
//!   a condition holds.

use serde::{Deserialize, Serialize};

use merrimac_arch::FpuOpClass;

/// Index of a node in [`Kernel::nodes`].
pub type NodeId = u32;

/// Index of a loop-carried register.
pub type RegId = u32;

/// Arithmetic/logical operation kinds at the IR level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a * b + c`
    Madd,
    /// `c - a * b` (negated multiply-subtract, used by Newton steps)
    Nmsub,
    /// `a / b` — must be lowered before scheduling.
    Div,
    /// `sqrt(a)` — must be lowered before scheduling.
    Sqrt,
    /// `1/sqrt(a)` — must be lowered before scheduling.
    Rsqrt,
    /// Hardware reciprocal seed (low-precision table lookup).
    SeedRecip,
    /// Hardware reciprocal-square-root seed.
    SeedRsqrt,
    /// `a == b` as a 0.0/1.0 mask.
    CmpEq,
    /// `a < b` as a mask.
    CmpLt,
    /// `a <= b` as a mask.
    CmpLe,
    /// `mask != 0 ? a : b` — args (mask, a, b).
    Sel,
    /// Logical AND of masks.
    And,
    /// Logical OR of masks.
    Or,
    /// `1 - mask`.
    Not,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// Register move (copy).
    Mov,
}

impl OpKind {
    /// Number of arguments the op takes.
    pub fn arity(self) -> usize {
        match self {
            OpKind::Sqrt
            | OpKind::Rsqrt
            | OpKind::SeedRecip
            | OpKind::SeedRsqrt
            | OpKind::Not
            | OpKind::Mov => 1,
            OpKind::Madd | OpKind::Nmsub | OpKind::Sel => 3,
            _ => 2,
        }
    }

    /// The functional-unit class used for scheduling and flop counting.
    pub fn fpu_class(self) -> FpuOpClass {
        match self {
            OpKind::Add | OpKind::Sub => FpuOpClass::Add,
            OpKind::Mul => FpuOpClass::Mul,
            OpKind::Madd | OpKind::Nmsub => FpuOpClass::Madd,
            OpKind::Div => FpuOpClass::Div,
            OpKind::Sqrt => FpuOpClass::Sqrt,
            OpKind::Rsqrt => FpuOpClass::Rsqrt,
            OpKind::SeedRecip | OpKind::SeedRsqrt => FpuOpClass::Seed,
            OpKind::CmpEq | OpKind::CmpLt | OpKind::CmpLe => FpuOpClass::Cmp,
            OpKind::Sel => FpuOpClass::Sel,
            OpKind::And | OpKind::Or | OpKind::Not => FpuOpClass::Logic,
            OpKind::Min | OpKind::Max => FpuOpClass::Cmp,
            OpKind::Mov => FpuOpClass::Mov,
        }
    }

    /// True for ops that must be expanded by the lowering pass.
    pub fn is_iterative(self) -> bool {
        matches!(self, OpKind::Div | OpKind::Sqrt | OpKind::Rsqrt)
    }
}

/// A node of the dataflow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// A compile-time constant.
    Const(f64),
    /// A kernel scalar parameter (set at launch from the microcontroller,
    /// e.g. the qq charge table and LJ coefficients).
    Param(u32),
    /// Value of loop-carried register `0` at the top of the iteration.
    ReadReg(RegId),
    /// Read field `field` of the record popped this iteration from input
    /// stream `stream`. The stream must have [`StreamMode::EveryIteration`].
    Read { stream: u32, field: u32 },
    /// Conditional-stream read: when `pred` is non-zero the stream pops a
    /// record (once per iteration regardless of how many fields are read)
    /// and the field value is produced; otherwise `fallback` is produced.
    /// The stream must have [`StreamMode::Conditional`].
    CondRead {
        stream: u32,
        field: u32,
        pred: NodeId,
        fallback: NodeId,
    },
    /// An arithmetic/logical operation.
    Op { op: OpKind, args: Vec<NodeId> },
}

impl Node {
    /// Data dependencies of this node.
    pub fn deps(&self) -> Vec<NodeId> {
        match self {
            Node::Const(_) | Node::Param(_) | Node::ReadReg(_) | Node::Read { .. } => vec![],
            Node::CondRead { pred, fallback, .. } => vec![*pred, *fallback],
            Node::Op { args, .. } => args.clone(),
        }
    }

    /// Does this node occupy a VLIW issue slot? Reads — including
    /// conditional-stream reads — constants, parameters and register
    /// reads are serviced by the stream buffers / LRF and are free;
    /// arithmetic issues. The paper notes the conditional-stream
    /// bookkeeping has "little detrimental effect on the overall kernel
    /// efficiency"; kernels that want to model conditional-write
    /// instruction overhead insert explicit `Mov` guards (see the
    /// `variable` StreamMD kernel).
    pub fn issues(&self) -> bool {
        matches!(self, Node::Op { .. })
    }

    /// Functional-unit class for scheduling (`None` for non-issuing nodes).
    pub fn fpu_class(&self) -> Option<FpuOpClass> {
        match self {
            Node::Op { op, .. } => Some(op.fpu_class()),
            _ => None,
        }
    }
}

/// How an input stream's cursor advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamMode {
    /// One record popped every iteration.
    EveryIteration,
    /// Records popped only when the predicate of the stream's `CondRead`
    /// nodes fires (Merrimac conditional streams).
    Conditional,
}

/// Signature of an input or output stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSig {
    /// Descriptive name ("n_positions", "partial_forces", ...).
    pub name: String,
    /// Words per record.
    pub record_len: u32,
    pub mode: StreamMode,
}

/// One output write performed each iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WriteSpec {
    /// Output stream index.
    pub stream: u32,
    /// Values written, one per record field.
    pub values: Vec<NodeId>,
    /// When present, the record is appended only if the condition is
    /// non-zero (conditional output stream).
    pub cond: Option<NodeId>,
}

/// A complete kernel loop body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    pub name: String,
    pub inputs: Vec<StreamSig>,
    pub outputs: Vec<StreamSig>,
    /// Initial values of the loop-carried registers.
    pub reg_init: Vec<f64>,
    /// Scalar parameter count (values supplied at launch).
    pub num_params: u32,
    /// Dataflow nodes in SSA order: a node may only reference earlier
    /// nodes (checked by [`Kernel::validate_ssa`]).
    pub nodes: Vec<Node>,
    /// Register updates applied at the end of every iteration.
    pub reg_updates: Vec<(RegId, NodeId)>,
    /// Output writes performed every iteration.
    pub writes: Vec<WriteSpec>,
}

impl Kernel {
    /// Check SSA ordering, arities and index bounds; panics with a
    /// description on malformed kernels. Returns `&self` for chaining.
    pub fn validate_ssa(&self) -> &Self {
        for (i, n) in self.nodes.iter().enumerate() {
            for d in n.deps() {
                assert!(
                    (d as usize) < i,
                    "kernel {}: node {i} depends on later/own node {d}",
                    self.name
                );
            }
            match n {
                Node::Op { op, args } => {
                    assert_eq!(
                        args.len(),
                        op.arity(),
                        "kernel {}: node {i} op {op:?} arity mismatch",
                        self.name
                    );
                }
                Node::Read { stream, field } => {
                    let s = &self.inputs[*stream as usize];
                    assert_eq!(s.mode, StreamMode::EveryIteration);
                    assert!(*field < s.record_len);
                }
                Node::CondRead { stream, field, .. } => {
                    let s = &self.inputs[*stream as usize];
                    assert_eq!(s.mode, StreamMode::Conditional);
                    assert!(*field < s.record_len);
                }
                Node::ReadReg(r) => {
                    assert!((*r as usize) < self.reg_init.len());
                }
                Node::Param(p) => assert!(*p < self.num_params),
                Node::Const(_) => {}
            }
        }
        for (r, v) in &self.reg_updates {
            assert!((*r as usize) < self.reg_init.len());
            assert!((*v as usize) < self.nodes.len());
        }
        for w in &self.writes {
            let s = &self.outputs[w.stream as usize];
            assert_eq!(w.values.len() as u32, s.record_len);
            for v in &w.values {
                assert!((*v as usize) < self.nodes.len());
            }
            if let Some(c) = w.cond {
                assert!((c as usize) < self.nodes.len());
            }
        }
        self
    }

    /// True if no iterative (div/sqrt/rsqrt) nodes remain.
    pub fn is_lowered(&self) -> bool {
        !self
            .nodes
            .iter()
            .any(|n| matches!(n, Node::Op { op, .. } if op.is_iterative()))
    }

    /// Nodes that occupy VLIW issue slots.
    pub fn issuing_nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.issues())
            .map(|(i, n)| (i as NodeId, n))
    }

    /// All nodes whose values are observable (written, or feeding a
    /// register update) — the roots for dead-code analysis.
    pub fn live_roots(&self) -> Vec<NodeId> {
        let mut roots: Vec<NodeId> = self
            .writes
            .iter()
            .flat_map(|w| w.values.iter().copied().chain(w.cond))
            .chain(self.reg_updates.iter().map(|(_, v)| *v))
            .collect();
        // Conditional reads have the side effect of advancing the stream,
        // so their predicates are live too.
        for (i, n) in self.nodes.iter().enumerate() {
            if matches!(n, Node::CondRead { .. }) {
                roots.push(i as NodeId);
            }
        }
        roots.sort_unstable();
        roots.dedup();
        roots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_kernel() -> Kernel {
        // out[0] = in[0] * in[1] + reg; reg' = out value
        Kernel {
            name: "tiny".into(),
            inputs: vec![StreamSig {
                name: "a".into(),
                record_len: 2,
                mode: StreamMode::EveryIteration,
            }],
            outputs: vec![StreamSig {
                name: "o".into(),
                record_len: 1,
                mode: StreamMode::EveryIteration,
            }],
            reg_init: vec![0.0],
            num_params: 0,
            nodes: vec![
                Node::Read {
                    stream: 0,
                    field: 0,
                },
                Node::Read {
                    stream: 0,
                    field: 1,
                },
                Node::ReadReg(0),
                Node::Op {
                    op: OpKind::Madd,
                    args: vec![0, 1, 2],
                },
            ],
            reg_updates: vec![(0, 3)],
            writes: vec![WriteSpec {
                stream: 0,
                values: vec![3],
                cond: None,
            }],
        }
    }

    #[test]
    fn tiny_kernel_validates() {
        tiny_kernel().validate_ssa();
    }

    #[test]
    fn ssa_violation_detected() {
        let mut k = tiny_kernel();
        k.nodes[0] = Node::Op {
            op: OpKind::Mov,
            args: vec![3],
        };
        assert!(std::panic::catch_unwind(move || {
            k.validate_ssa();
        })
        .is_err());
    }

    #[test]
    fn arity_violation_detected() {
        let mut k = tiny_kernel();
        k.nodes[3] = Node::Op {
            op: OpKind::Madd,
            args: vec![0, 1],
        };
        assert!(std::panic::catch_unwind(move || {
            k.validate_ssa();
        })
        .is_err());
    }

    #[test]
    fn issuing_nodes_excludes_reads() {
        let k = tiny_kernel();
        let issuing: Vec<NodeId> = k.issuing_nodes().map(|(i, _)| i).collect();
        assert_eq!(issuing, vec![3]);
    }

    #[test]
    fn live_roots_cover_writes_and_regs() {
        let k = tiny_kernel();
        assert_eq!(k.live_roots(), vec![3]);
    }

    #[test]
    fn op_arities() {
        assert_eq!(OpKind::Madd.arity(), 3);
        assert_eq!(OpKind::Sel.arity(), 3);
        assert_eq!(OpKind::Sqrt.arity(), 1);
        assert_eq!(OpKind::Add.arity(), 2);
    }

    #[test]
    fn iterative_flags() {
        assert!(OpKind::Div.is_iterative());
        assert!(OpKind::Rsqrt.is_iterative());
        assert!(!OpKind::Madd.is_iterative());
    }

    #[test]
    fn is_lowered_detects_iterative_nodes() {
        let mut k = tiny_kernel();
        assert!(k.is_lowered());
        k.nodes.push(Node::Op {
            op: OpKind::Rsqrt,
            args: vec![3],
        });
        assert!(!k.is_lowered());
    }
}

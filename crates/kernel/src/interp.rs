//! Functional interpreter for kernel dataflow graphs.
//!
//! Executes a kernel's loop body over real stream data, with exact
//! conditional-stream semantics: a conditional input stream pops at most
//! one record per iteration (when any of its `CondRead` predicates fires),
//! and conditional writes append only when their condition holds. The
//! interpreter is the functional half of the simulator — the timing half
//! (`merrimac-sim`) consumes the same kernels but only counts cycles.
//!
//! Seed operations model the hardware's low-precision lookup as a value
//! rounded to `f32`, so Newton–Raphson refinement converges exactly as it
//! would on the machine.

use crate::ir::{Kernel, Node, OpKind, StreamMode};

/// A flat stream of fixed-length records.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamData {
    pub record_len: usize,
    pub data: Vec<f64>,
}

impl StreamData {
    pub fn new(record_len: usize, data: Vec<f64>) -> Self {
        assert!(record_len > 0);
        assert_eq!(
            data.len() % record_len,
            0,
            "data not a whole number of records"
        );
        Self { record_len, data }
    }

    pub fn empty(record_len: usize) -> Self {
        Self {
            record_len,
            data: Vec::new(),
        }
    }

    pub fn num_records(&self) -> usize {
        self.data.len() / self.record_len
    }

    pub fn record(&self, i: usize) -> &[f64] {
        &self.data[i * self.record_len..(i + 1) * self.record_len]
    }
}

/// Errors the interpreter can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// An input stream ran out of records at the given iteration.
    StreamUnderrun { stream: usize, iteration: usize },
    /// Input stream count/shape does not match the kernel signature.
    SignatureMismatch(String),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::StreamUnderrun { stream, iteration } => {
                write!(f, "input stream {stream} underran at iteration {iteration}")
            }
            InterpError::SignatureMismatch(s) => write!(f, "signature mismatch: {s}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Result of running a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpOutput {
    /// One stream per kernel output.
    pub outputs: Vec<StreamData>,
    /// Records consumed from each input stream.
    pub records_consumed: Vec<usize>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final register values.
    pub final_regs: Vec<f64>,
}

/// Kernel interpreter.
#[derive(Debug, Clone)]
pub struct Interpreter<'k> {
    kernel: &'k Kernel,
}

impl<'k> Interpreter<'k> {
    pub fn new(kernel: &'k Kernel) -> Self {
        kernel.validate_ssa();
        Self { kernel }
    }

    /// Run `iterations` loop iterations over `inputs` with launch
    /// `params`.
    pub fn run(
        &self,
        inputs: &[StreamData],
        params: &[f64],
        iterations: usize,
    ) -> Result<InterpOutput, InterpError> {
        let k = self.kernel;
        if inputs.len() != k.inputs.len() {
            return Err(InterpError::SignatureMismatch(format!(
                "kernel {} expects {} input streams, got {}",
                k.name,
                k.inputs.len(),
                inputs.len()
            )));
        }
        for (i, (sig, data)) in k.inputs.iter().zip(inputs).enumerate() {
            if sig.record_len as usize != data.record_len {
                return Err(InterpError::SignatureMismatch(format!(
                    "input {i} record length {} != kernel {}",
                    data.record_len, sig.record_len
                )));
            }
        }
        if params.len() != k.num_params as usize {
            return Err(InterpError::SignatureMismatch(format!(
                "kernel {} expects {} params, got {}",
                k.name,
                k.num_params,
                params.len()
            )));
        }

        let mut outputs: Vec<StreamData> = k
            .outputs
            .iter()
            .map(|s| StreamData::empty(s.record_len as usize))
            .collect();
        // Worst-case words appended per iteration per output (exact for
        // unconditional writes), so the loop never re-grows a vector.
        let mut words_per_iter = vec![0usize; k.outputs.len()];
        for w in &k.writes {
            words_per_iter[w.stream as usize] += w.values.len();
        }
        for (o, w) in outputs.iter_mut().zip(&words_per_iter) {
            o.data.reserve(iterations * w);
        }
        let mut regs = k.reg_init.clone();
        let mut cursors = vec![0usize; inputs.len()];
        let mut vals = vec![0.0f64; k.nodes.len()];
        // Conditional streams pop at most once per iteration *per
        // predicate node*: all `CondRead`s guarded by the same predicate
        // share one popped record (they are the fields of a single
        // conditional record access), while distinct predicates — e.g.
        // the copies introduced by loop unrolling — pop independently.
        // Allocated once and cleared per iteration.
        let mut popped: Vec<std::collections::HashMap<u32, usize>> =
            vec![std::collections::HashMap::new(); inputs.len()];

        for iter in 0..iterations {
            for p in popped.iter_mut() {
                p.clear();
            }
            // Check unconditional stream availability up front.
            for (s, sig) in k.inputs.iter().enumerate() {
                if sig.mode == StreamMode::EveryIteration && cursors[s] >= inputs[s].num_records() {
                    return Err(InterpError::StreamUnderrun {
                        stream: s,
                        iteration: iter,
                    });
                }
            }

            for (i, node) in k.nodes.iter().enumerate() {
                vals[i] = match node {
                    Node::Const(c) => *c,
                    Node::Param(p) => params[*p as usize],
                    Node::ReadReg(r) => regs[*r as usize],
                    Node::Read { stream, field } => {
                        let s = *stream as usize;
                        inputs[s].record(cursors[s])[*field as usize]
                    }
                    Node::CondRead {
                        stream,
                        field,
                        pred,
                        fallback,
                    } => {
                        let s = *stream as usize;
                        if vals[*pred as usize] != 0.0 {
                            let rec = match popped[s].get(pred) {
                                Some(&rec) => rec,
                                None => {
                                    let rec = cursors[s];
                                    if rec >= inputs[s].num_records() {
                                        return Err(InterpError::StreamUnderrun {
                                            stream: s,
                                            iteration: iter,
                                        });
                                    }
                                    popped[s].insert(*pred, rec);
                                    cursors[s] += 1;
                                    rec
                                }
                            };
                            inputs[s].record(rec)[*field as usize]
                        } else {
                            vals[*fallback as usize]
                        }
                    }
                    Node::Op { op, args } => {
                        let a = |j: usize| vals[args[j] as usize];
                        match op {
                            OpKind::Add => a(0) + a(1),
                            OpKind::Sub => a(0) - a(1),
                            OpKind::Mul => a(0) * a(1),
                            OpKind::Madd => a(0) * a(1) + a(2),
                            OpKind::Nmsub => a(2) - a(0) * a(1),
                            OpKind::Div => a(0) / a(1),
                            OpKind::Sqrt => a(0).sqrt(),
                            OpKind::Rsqrt => 1.0 / a(0).sqrt(),
                            OpKind::SeedRecip => (1.0 / a(0)) as f32 as f64,
                            OpKind::SeedRsqrt => (1.0 / a(0).sqrt()) as f32 as f64,
                            OpKind::CmpEq => mask(a(0) == a(1)),
                            OpKind::CmpLt => mask(a(0) < a(1)),
                            OpKind::CmpLe => mask(a(0) <= a(1)),
                            OpKind::Sel => {
                                if a(0) != 0.0 {
                                    a(1)
                                } else {
                                    a(2)
                                }
                            }
                            OpKind::And => mask(a(0) != 0.0 && a(1) != 0.0),
                            OpKind::Or => mask(a(0) != 0.0 || a(1) != 0.0),
                            OpKind::Not => mask(a(0) == 0.0),
                            OpKind::Min => a(0).min(a(1)),
                            OpKind::Max => a(0).max(a(1)),
                            OpKind::Mov => a(0),
                        }
                    }
                };
            }

            // Writes.
            for w in &k.writes {
                let fire = w.cond.is_none_or(|c| vals[c as usize] != 0.0);
                if fire {
                    let out = &mut outputs[w.stream as usize];
                    for v in &w.values {
                        out.data.push(vals[*v as usize]);
                    }
                }
            }

            // Register updates (all based on this iteration's values).
            for (r, v) in &k.reg_updates {
                regs[*r as usize] = vals[*v as usize];
            }

            // Cursor advances (conditional streams advanced at pop time).
            for (s, sig) in k.inputs.iter().enumerate() {
                if sig.mode == StreamMode::EveryIteration {
                    cursors[s] += 1;
                }
            }
        }

        Ok(InterpOutput {
            outputs,
            records_consumed: cursors,
            iterations,
            final_regs: regs,
        })
    }
}

#[inline]
fn mask(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    #[test]
    fn runs_a_scaling_kernel() {
        let mut b = KernelBuilder::new("scale");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let p = b.param();
        let x = b.read(s, 0);
        let y = b.mul(x, p);
        b.write(o, &[y]);
        let k = b.build();
        let out = Interpreter::new(&k)
            .run(&[StreamData::new(1, vec![1.0, 2.0, 3.0])], &[10.0], 3)
            .unwrap();
        assert_eq!(out.outputs[0].data, vec![10.0, 20.0, 30.0]);
        assert_eq!(out.records_consumed, vec![3]);
    }

    #[test]
    fn loop_carried_accumulator() {
        let mut b = KernelBuilder::new("sum");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("running", 1);
        let r = b.reg(0.0);
        let acc = b.read_reg(r);
        let x = b.read(s, 0);
        let sum = b.add(acc, x);
        b.set_reg(r, sum);
        b.write(o, &[sum]);
        let k = b.build();
        let out = Interpreter::new(&k)
            .run(&[StreamData::new(1, vec![1.0, 2.0, 3.0, 4.0])], &[], 4)
            .unwrap();
        assert_eq!(out.outputs[0].data, vec![1.0, 3.0, 6.0, 10.0]);
        assert_eq!(out.final_regs, vec![10.0]);
    }

    #[test]
    fn conditional_stream_pops_on_demand() {
        // Pop a new value from the conditional stream every 2nd iteration.
        let mut b = KernelBuilder::new("cond");
        let s = b.input("vals", 1, StreamMode::Conditional);
        let o = b.output("out", 1);
        let parity = b.reg(1.0); // 1 on iterations that pop
        let cur = b.reg(0.0);
        let want = b.read_reg(parity);
        let prev = b.read_reg(cur);
        let v = b.cond_read(s, 0, want, prev);
        let flip = b.not(want);
        b.set_reg(parity, flip);
        b.set_reg(cur, v);
        b.write(o, &[v]);
        let k = b.build();
        let out = Interpreter::new(&k)
            .run(&[StreamData::new(1, vec![10.0, 20.0, 30.0])], &[], 6)
            .unwrap();
        assert_eq!(
            out.outputs[0].data,
            vec![10.0, 10.0, 20.0, 20.0, 30.0, 30.0]
        );
        assert_eq!(out.records_consumed, vec![3]);
    }

    #[test]
    fn conditional_write_filters_records() {
        // Emit only values above a threshold.
        let mut b = KernelBuilder::new("filter");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("big", 1);
        let x = b.read(s, 0);
        let t = b.constant(5.0);
        let big = b.cmp_lt(t, x);
        b.write_if(o, big, &[x]);
        let k = b.build();
        let out = Interpreter::new(&k)
            .run(&[StreamData::new(1, vec![3.0, 7.0, 4.0, 9.0])], &[], 4)
            .unwrap();
        assert_eq!(out.outputs[0].data, vec![7.0, 9.0]);
    }

    #[test]
    fn underrun_detected() {
        let mut b = KernelBuilder::new("u");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let x = b.read(s, 0);
        b.write(o, &[x]);
        let k = b.build();
        let err = Interpreter::new(&k)
            .run(&[StreamData::new(1, vec![1.0])], &[], 2)
            .unwrap_err();
        assert_eq!(
            err,
            InterpError::StreamUnderrun {
                stream: 0,
                iteration: 1
            }
        );
    }

    #[test]
    fn signature_mismatch_detected() {
        let mut b = KernelBuilder::new("sig");
        let _s = b.input("x", 2, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let c = b.constant(1.0);
        b.write(o, &[c]);
        let k = b.build();
        let err = Interpreter::new(&k)
            .run(&[StreamData::new(1, vec![1.0])], &[], 1)
            .unwrap_err();
        assert!(matches!(err, InterpError::SignatureMismatch(_)));
    }

    #[test]
    fn select_and_masks() {
        let mut b = KernelBuilder::new("sel");
        let s = b.input("xy", 2, StreamMode::EveryIteration);
        let o = b.output("max", 1);
        let x = b.read(s, 0);
        let y = b.read(s, 1);
        let m = b.cmp_lt(x, y);
        let r = b.sel(m, y, x);
        b.write(o, &[r]);
        let k = b.build();
        let out = Interpreter::new(&k)
            .run(&[StreamData::new(2, vec![1.0, 2.0, 5.0, 3.0])], &[], 2)
            .unwrap();
        assert_eq!(out.outputs[0].data, vec![2.0, 5.0]);
    }

    #[test]
    fn seed_ops_are_f32_precision() {
        let mut b = KernelBuilder::new("seed");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let x = b.read(s, 0);
        let y = b.seed_recip(x);
        b.write(o, &[y]);
        let k = b.build();
        let out = Interpreter::new(&k)
            .run(&[StreamData::new(1, vec![3.0])], &[], 1)
            .unwrap();
        let want = (1.0f64 / 3.0) as f32 as f64;
        assert_eq!(out.outputs[0].data[0], want);
    }
}

//! Loop unrolling.
//!
//! Unrolling by U turns one kernel iteration into U consecutive original
//! iterations: per-iteration input streams are re-packed as U-records
//! (the flat SRF data is unchanged), loop-carried registers are chained
//! through the copies, and conditional streams keep independent pop
//! predicates per copy. Figure 10's optimized `variable` kernel is
//! "unrolled twice and software pipelined".

use crate::ir::{Kernel, Node, NodeId, StreamMode, StreamSig, WriteSpec};

/// Unroll `kernel` by `factor`. The resulting kernel performs `factor`
/// original iterations per loop iteration; callers must divide their
/// iteration counts accordingly (and pad streams when the trip count is
/// not a multiple of the factor).
pub fn unroll(kernel: &Kernel, factor: u32) -> Kernel {
    assert!(factor >= 1, "unroll factor must be at least 1");
    kernel.validate_ssa();
    if factor == 1 {
        return kernel.clone();
    }

    let inputs: Vec<StreamSig> = kernel
        .inputs
        .iter()
        .map(|s| match s.mode {
            StreamMode::EveryIteration => StreamSig {
                name: s.name.clone(),
                record_len: s.record_len * factor,
                mode: s.mode,
            },
            StreamMode::Conditional => s.clone(),
        })
        .collect();
    let outputs = kernel.outputs.clone();

    let mut out = Kernel {
        name: format!("{}_x{}", kernel.name, factor),
        inputs,
        outputs,
        reg_init: kernel.reg_init.clone(),
        num_params: kernel.num_params,
        nodes: Vec::with_capacity(kernel.nodes.len() * factor as usize),
        reg_updates: Vec::new(),
        writes: Vec::new(),
    };

    // Current SSA value of each register inside the unrolled body; None
    // means "still the iteration-entry register value".
    let mut reg_val: Vec<Option<NodeId>> = vec![None; kernel.reg_init.len()];

    for u in 0..factor {
        let mut remap: Vec<NodeId> = Vec::with_capacity(kernel.nodes.len());
        for node in &kernel.nodes {
            let mapped: NodeId = match node {
                Node::ReadReg(r) => {
                    if let Some(v) = reg_val[*r as usize] {
                        // Alias straight to the previous copy's update.
                        remap.push(v);
                        continue;
                    }
                    out.nodes.push(Node::ReadReg(*r));
                    (out.nodes.len() - 1) as NodeId
                }
                Node::Read { stream, field } => {
                    let base = kernel.inputs[*stream as usize].record_len;
                    out.nodes.push(Node::Read {
                        stream: *stream,
                        field: u * base + field,
                    });
                    (out.nodes.len() - 1) as NodeId
                }
                Node::CondRead {
                    stream,
                    field,
                    pred,
                    fallback,
                } => {
                    out.nodes.push(Node::CondRead {
                        stream: *stream,
                        field: *field,
                        pred: remap[*pred as usize],
                        fallback: remap[*fallback as usize],
                    });
                    (out.nodes.len() - 1) as NodeId
                }
                Node::Op { op, args } => {
                    out.nodes.push(Node::Op {
                        op: *op,
                        args: args.iter().map(|a| remap[*a as usize]).collect(),
                    });
                    (out.nodes.len() - 1) as NodeId
                }
                other => {
                    out.nodes.push(other.clone());
                    (out.nodes.len() - 1) as NodeId
                }
            };
            remap.push(mapped);
        }
        // Writes of this copy, in original order.
        for w in &kernel.writes {
            out.writes.push(WriteSpec {
                stream: w.stream,
                values: w.values.iter().map(|v| remap[*v as usize]).collect(),
                cond: w.cond.map(|c| remap[c as usize]),
            });
        }
        // Register chain for the next copy.
        for (r, v) in &kernel.reg_updates {
            reg_val[*r as usize] = Some(remap[*v as usize]);
        }
    }

    for (r, v) in reg_val.iter().enumerate() {
        if let Some(v) = v {
            out.reg_updates.push((r as u32, *v));
        }
    }
    out.validate_ssa();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::interp::{Interpreter, StreamData};
    use crate::ir::StreamMode;

    /// sum += x; out <- sum — a kernel with a recurrence.
    fn acc_kernel() -> Kernel {
        let mut b = KernelBuilder::new("acc");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("sum", 1);
        let r = b.reg(0.0);
        let a = b.read_reg(r);
        let x = b.read(s, 0);
        let sum = b.add(a, x);
        b.set_reg(r, sum);
        b.write(o, &[sum]);
        b.build()
    }

    #[test]
    fn unroll_by_one_is_identity() {
        let k = acc_kernel();
        let u = unroll(&k, 1);
        assert_eq!(k, u);
    }

    #[test]
    fn unrolled_kernel_matches_original_semantics() {
        let k = acc_kernel();
        let u = unroll(&k, 2);
        let data: Vec<f64> = (1..=8).map(|x| x as f64).collect();
        let base = Interpreter::new(&k)
            .run(&[StreamData::new(1, data.clone())], &[], 8)
            .unwrap();
        let unrolled = Interpreter::new(&u)
            .run(&[StreamData::new(2, data)], &[], 4)
            .unwrap();
        assert_eq!(base.outputs[0].data, unrolled.outputs[0].data);
        assert_eq!(base.final_regs, unrolled.final_regs);
    }

    #[test]
    fn unrolled_input_records_are_wider() {
        let k = acc_kernel();
        let u = unroll(&k, 4);
        assert_eq!(u.inputs[0].record_len, 4);
        assert_eq!(u.outputs[0].record_len, 1);
        assert_eq!(u.writes.len(), 4);
    }

    #[test]
    fn conditional_streams_unroll_with_independent_pops() {
        // Pop a record when the every-iteration control value is > 0.
        let mut b = KernelBuilder::new("cpop");
        let ctl = b.input("ctl", 1, StreamMode::EveryIteration);
        let s = b.input("vals", 1, StreamMode::Conditional);
        let o = b.output("out", 1);
        let r = b.reg(-1.0);
        let prev = b.read_reg(r);
        let c = b.read(ctl, 0);
        let zero = b.constant(0.0);
        let want = b.cmp_lt(zero, c);
        let v = b.cond_read(s, 0, want, prev);
        b.set_reg(r, v);
        b.write(o, &[v]);
        let k = b.build();
        let u = unroll(&k, 2);

        let ctl_data = vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let vals = vec![10.0, 20.0, 30.0];
        let base = Interpreter::new(&k)
            .run(
                &[
                    StreamData::new(1, ctl_data.clone()),
                    StreamData::new(1, vals.clone()),
                ],
                &[],
                6,
            )
            .unwrap();
        let unrolled = Interpreter::new(&u)
            .run(
                &[StreamData::new(2, ctl_data), StreamData::new(1, vals)],
                &[],
                3,
            )
            .unwrap();
        assert_eq!(base.outputs[0].data, unrolled.outputs[0].data);
        assert_eq!(base.records_consumed[1], unrolled.records_consumed[1]);
    }

    #[test]
    fn unrolled_kernel_has_scaled_op_count() {
        let k = acc_kernel();
        let u3 = unroll(&k, 3);
        let base_ops = k.issuing_nodes().count();
        assert_eq!(u3.issuing_nodes().count(), base_ops * 3);
    }
}

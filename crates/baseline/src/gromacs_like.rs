//! A Rust port of the GROMACS 3.x water-water inner loop structure.
//!
//! GROMACS's `inl1130` SSE loop processes one central water molecule
//! against its neighbour list in packed single precision: for each of
//! the 9 atom pairs it computes `1/r` with `rsqrtps` plus one
//! Newton–Raphson step, the Coulomb interaction for all pairs, and
//! Lennard-Jones for the O-O pair. This port keeps that numerical
//! profile — `f32` arithmetic, approximate rsqrt with one refinement —
//! so its accuracy/performance relationship to the double-precision
//! Merrimac path mirrors the paper's comparison.

use md_sim::force::ForceField;
use md_sim::neighbor::NeighborList;
use md_sim::system::WaterBox;
use md_sim::vec3::Vec3;

/// Result of the single-precision baseline evaluation.
#[derive(Debug, Clone)]
pub struct SingleForceResult {
    /// Per-site forces in f32 precision (stored widened).
    pub forces: Vec<Vec3>,
    pub coulomb_energy: f64,
    pub lj_energy: f64,
    pub interactions: u64,
}

/// `rsqrtps` + one Newton–Raphson step, the GROMACS SSE idiom
/// (~22-bit accuracy).
#[inline]
fn rsqrt_nr(x: f32) -> f32 {
    // Software model of the hardware estimate: ~12-bit seed.
    let seed = {
        let i = 0x5f37_59dfu32.wrapping_sub(x.to_bits() >> 1);
        f32::from_bits(i)
    };
    let y = seed * (1.5 - 0.5 * x * seed * seed);
    // GROMACS performs exactly one refinement after the estimate;
    // the bit-hack seed is a bit coarser than rsqrtps, so refine twice
    // to land at the same ~22-bit accuracy.
    y * (1.5 - 0.5 * x * y * y)
}

/// Evaluate all interactions in `list` with the GROMACS-like
/// single-precision loop.
pub fn water_water_forces_sse_like(system: &WaterBox, list: &NeighborList) -> SingleForceResult {
    let ff = ForceField::from_model(system.model());
    let qq: [[f32; 3]; 3] = {
        let mut q = [[0.0f32; 3]; 3];
        for (qa, fa) in q.iter_mut().zip(&ff.qq) {
            for (qb, &fb) in qa.iter_mut().zip(fa) {
                *qb = fb as f32;
            }
        }
        q
    };
    let c6 = ff.c6 as f32;
    let c12 = ff.c12 as f32;
    let pbc = system.pbc();
    let n = system.num_molecules();

    // f32 working arrays (the SSE loop's layout: xyz per site).
    let mut fx = vec![0.0f32; n * 3];
    let mut fy = vec![0.0f32; n * 3];
    let mut fz = vec![0.0f32; n * 3];
    let mut vctot = 0.0f32;
    let mut vnbtot = 0.0f32;
    let mut interactions = 0u64;

    // Canonical (wrapped, rigidly reconstructed) coordinates.
    let canon: Vec<[f32; 3]> = (0..n * 3)
        .map(|site| {
            let m = site / 3;
            let mol = system.molecule(m);
            let o = pbc.wrap(mol[0]);
            let p = match site % 3 {
                0 => o,
                k => o + pbc.min_image(mol[k], mol[0]),
            };
            [p.x as f32, p.y as f32, p.z as f32]
        })
        .collect();

    for l in &list.lists {
        let shift = pbc.shift_vector(l.shift_index as usize);
        let (sx, sy, sz) = (shift.x as f32, shift.y as f32, shift.z as f32);
        let c = l.center as usize;
        // Shifted central molecule coordinates, kept in registers in the
        // assembly loop.
        let mut cx = [0.0f32; 3];
        let mut cy = [0.0f32; 3];
        let mut cz = [0.0f32; 3];
        for s in 0..3 {
            cx[s] = canon[c * 3 + s][0] + sx;
            cy[s] = canon[c * 3 + s][1] + sy;
            cz[s] = canon[c * 3 + s][2] + sz;
        }
        let mut fix = [0.0f32; 3];
        let mut fiy = [0.0f32; 3];
        let mut fiz = [0.0f32; 3];

        for &jn in &l.neighbors {
            let j = jn as usize;
            interactions += 1;
            for a in 0..3 {
                for b in 0..3 {
                    let dx = cx[a] - canon[j * 3 + b][0];
                    let dy = cy[a] - canon[j * 3 + b][1];
                    let dz = cz[a] - canon[j * 3 + b][2];
                    let rsq = dx * dx + dy * dy + dz * dz;
                    let rinv = rsqrt_nr(rsq);
                    let rinvsq = rinv * rinv;
                    let vcoul = qq[a][b] * rinv;
                    vctot += vcoul;
                    let mut fs = vcoul * rinvsq;
                    if a == 0 && b == 0 {
                        let rinv6 = rinvsq * rinvsq * rinvsq;
                        let vnb6 = c6 * rinv6;
                        let vnb12 = c12 * rinv6 * rinv6;
                        vnbtot += vnb12 - vnb6;
                        fs += (12.0 * vnb12 - 6.0 * vnb6) * rinvsq;
                    }
                    let (tx, ty, tz) = (fs * dx, fs * dy, fs * dz);
                    fix[a] += tx;
                    fiy[a] += ty;
                    fiz[a] += tz;
                    fx[j * 3 + b] -= tx;
                    fy[j * 3 + b] -= ty;
                    fz[j * 3 + b] -= tz;
                }
            }
        }
        for s in 0..3 {
            fx[c * 3 + s] += fix[s];
            fy[c * 3 + s] += fiy[s];
            fz[c * 3 + s] += fiz[s];
        }
    }

    let forces = (0..n * 3)
        .map(|i| Vec3::new(fx[i] as f64, fy[i] as f64, fz[i] as f64))
        .collect();
    SingleForceResult {
        forces,
        coulomb_energy: vctot as f64,
        lj_energy: vnbtot as f64,
        interactions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_sim::force::compute_forces;
    use md_sim::neighbor::NeighborListParams;

    fn setup() -> (WaterBox, NeighborList) {
        let s = WaterBox::builder().molecules(64).seed(5).build();
        let params = NeighborListParams {
            cutoff: (0.45 * s.pbc().side()).min(1.0),
            skin: 0.0,
            rebuild_interval: 1,
        };
        let nl = NeighborList::build(&s, params);
        (s, nl)
    }

    #[test]
    fn rsqrt_nr_accuracy() {
        for x in [0.01f32, 0.5, 1.0, 7.3, 1234.5] {
            let got = rsqrt_nr(x);
            let want = 1.0 / x.sqrt();
            let rel = ((got - want) / want).abs();
            // ~22-bit accuracy: the rsqrtps + one-NR idiom.
            assert!(rel < 1e-5, "rsqrt({x}) rel err {rel}");
        }
    }

    #[test]
    fn matches_double_precision_reference_loosely() {
        let (s, nl) = setup();
        let single = water_water_forces_sse_like(&s, &nl);
        let double = compute_forces(&s, &nl);
        assert_eq!(single.interactions, double.interactions);
        let scale = double
            .forces
            .iter()
            .map(|f| f.norm())
            .fold(0.0f64, f64::max);
        for (a, b) in single.forces.iter().zip(&double.forces) {
            let err = (*a - *b).max_abs();
            // Single precision with approximate rsqrt: ~1e-5 relative.
            assert!(err < 1e-4 * scale, "f32 force error {err} vs scale {scale}");
        }
        let rel_e = ((single.coulomb_energy - double.coulomb_energy)
            / double.coulomb_energy.abs().max(1.0))
        .abs();
        assert!(rel_e < 1e-3, "energy error {rel_e}");
    }

    #[test]
    fn single_precision_differs_from_double() {
        // The whole point of the paper's precision caveat: the baseline
        // is *not* bit-identical to the double-precision path.
        let (s, nl) = setup();
        let single = water_water_forces_sse_like(&s, &nl);
        let double = compute_forces(&s, &nl);
        let any_diff = single
            .forces
            .iter()
            .zip(&double.forces)
            .any(|(a, b)| (*a - *b).max_abs() > 0.0);
        assert!(any_diff);
    }

    #[test]
    fn net_force_is_small() {
        let (s, nl) = setup();
        let single = water_water_forces_sse_like(&s, &nl);
        let net: Vec3 = single.forces.iter().copied().sum();
        // f32 accumulation leaves a rounding residue only.
        let scale: f64 = single.forces.iter().map(|f| f.norm()).sum();
        assert!(net.max_abs() < 1e-4 * scale.max(1.0), "net {net:?}");
    }
}

//! Pentium 4 performance estimate for the Figure 9 comparison.
//!
//! The paper estimates the baseline from wall-clock time of GROMACS on
//! the same dataset. We combine the published characteristics of the
//! GROMACS 3.x SSE water loop (~130 cycles per molecule-pair
//! interaction on a Northwood P4, including list traversal and memory
//! stalls) with an optional calibration against the host running our own
//! port, and report the same solution-GFLOPS metric as the Merrimac
//! rows.

use std::time::Instant;

use md_sim::force::FLOPS_PER_INTERACTION;
use md_sim::neighbor::NeighborList;
use md_sim::system::WaterBox;
use merrimac_arch::P4Config;

use crate::gromacs_like::water_water_forces_sse_like;

/// Baseline estimate for one force step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P4Estimate {
    /// Molecule-pair interactions evaluated.
    pub interactions: u64,
    /// Modelled P4 force-phase time (seconds).
    pub seconds: f64,
    /// Solution GFLOPS under the paper's 234-flop accounting.
    pub solution_gflops: f64,
    /// Host wall-clock seconds for our own port (for sanity
    /// cross-checks; not the reported number).
    pub host_seconds: f64,
}

/// Estimate the baseline on `system`/`list`.
///
/// Also runs the actual single-precision loop once, both to keep the
/// estimate honest (the interaction count is taken from real execution)
/// and to measure host wall-clock for cross-checking.
pub fn estimate(cfg: &P4Config, system: &WaterBox, list: &NeighborList) -> P4Estimate {
    let t0 = Instant::now();
    let result = water_water_forces_sse_like(system, list);
    let host_seconds = t0.elapsed().as_secs_f64();
    let seconds = cfg.force_time_seconds(result.interactions);
    P4Estimate {
        interactions: result.interactions,
        seconds,
        solution_gflops: cfg.solution_gflops(result.interactions, FLOPS_PER_INTERACTION),
        host_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_sim::neighbor::NeighborListParams;

    #[test]
    fn estimate_scales_with_interactions() {
        let cfg = P4Config::default();
        let sys = WaterBox::builder().molecules(64).seed(8).build();
        let params = NeighborListParams {
            cutoff: (0.45 * sys.pbc().side()).min(1.0),
            skin: 0.0,
            rebuild_interval: 1,
        };
        let list = NeighborList::build(&sys, params);
        let est = estimate(&cfg, &sys, &list);
        assert_eq!(est.interactions as usize, list.num_pairs());
        assert!(est.seconds > 0.0);
        assert!(est.solution_gflops > 0.5 && est.solution_gflops < 10.0);
    }

    #[test]
    fn paper_dataset_single_digit_gflops() {
        // Figure 9's P4 bar: a few solution GFLOPS at ~62k interactions.
        let cfg = P4Config::default();
        let g = cfg.solution_gflops(61_680, FLOPS_PER_INTERACTION);
        assert!(g > 2.0 && g < 8.0, "P4 = {g} GFLOPS");
    }
}

//! The paper's baseline: hand-optimized GROMACS on a 2.4 GHz Pentium 4.
//!
//! Two halves:
//!
//! * [`gromacs_like`] — a faithful Rust port of the structure of the
//!   GROMACS 3.x water-water inner loop (`inl1130`): single-precision
//!   arithmetic, per-pair `rsqrt` with one Newton–Raphson refinement
//!   step (the `rsqrtps` idiom), Lennard-Jones on the oxygen pair only,
//!   shift-vector PBC. It is used both to cross-check the reference
//!   engine and as a host-measurable workload.
//! * [`model`] — the Pentium 4 cycle model that converts interaction
//!   counts into the wall-clock estimate the paper's Figure 9 uses
//!   ("we only estimate the performance on a conventional processor
//!   based on the wall-clock time of simulating the same data set").

pub mod gromacs_like;
pub mod model;

pub use gromacs_like::{water_water_forces_sse_like, SingleForceResult};
pub use model::P4Estimate;

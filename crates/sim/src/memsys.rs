//! Memory-system timing: address generators, stream cache, DRDRAM
//! channels and the scatter-add pipeline.
//!
//! Every stream memory operation is costed from first principles:
//!
//! * the two address generators produce up to 8 single-word addresses per
//!   cycle (Table 1), bounding any gather/scatter to 8 words/cycle;
//! * the stream cache sustains 8 words per cycle across its banks; the
//!   actual address trace is run through the [`StreamCache`] model to
//!   split hits from misses;
//! * misses and writebacks move whole lines over the DRDRAM interface at
//!   the random-access rate for gathers/scatters (2 words/cycle) or the
//!   streaming rate for unit-stride transfers (4.8 words/cycle);
//! * scatter-add funnels through one functional unit per cache bank, with
//!   a combining store that merges adds to the same word within a sliding
//!   window (Section 2.2), relieving both bank pressure and read-modify-
//!   write traffic.
//!
//! The returned cost is the max of the bottleneck terms — the standard
//! throughput composition for decoupled stream memory systems.

use merrimac_arch::MachineConfig;

use crate::cache::{CacheAccessStats, StreamCache};
use crate::program::{Memory, RegionId};

/// Cost and traffic of one stream memory operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemOpCost {
    /// Occupancy of the memory pipeline in cycles (excluding the fixed
    /// stream start-up the machine model adds).
    pub cycles: u64,
    /// Words transferred between SRF and the memory system.
    pub words: u64,
    /// Single-word addresses generated.
    pub addresses: u64,
    /// Cache behaviour of the trace.
    pub cache: CacheAccessStats,
    /// Words moved on the DRAM pins (line fills + writebacks).
    pub dram_words: u64,
}

/// The node memory system (shared cache state across operations).
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: MachineConfig,
    cache: StreamCache,
    /// Cumulative cache behaviour over every op costed so far.
    stats: CacheAccessStats,
}

impl MemSystem {
    pub fn new(cfg: &MachineConfig) -> Self {
        Self {
            cfg: cfg.clone(),
            cache: StreamCache::new(cfg),
            stats: CacheAccessStats::default(),
        }
    }

    /// A per-strip shard of the memory system for the parallel timing
    /// pass: a cold cache whose state is private to one strip.
    ///
    /// Sharding contract: each strip's memory ops are costed against its
    /// own shard in op-index order, so a strip's costs depend only on
    /// that strip's address trace — never on which thread ran it or when.
    /// The shards' [`CacheAccessStats`] are merged in ascending strip
    /// order with [`CacheAccessStats::merge`] (plain `u64` sums plus a
    /// max, both order-insensitive), making the aggregate bitwise-
    /// identical at every host thread count.
    pub fn strip_shard(cfg: &MachineConfig) -> Self {
        Self::new(cfg)
    }

    /// Cumulative cache behaviour over every op costed so far.
    pub fn stats(&self) -> CacheAccessStats {
        self.stats
    }

    /// Reset cache contents.
    pub fn flush_cache(&mut self) {
        self.cache.flush();
    }

    fn line_words(&self) -> u64 {
        self.cfg.cache_line_words as u64
    }

    fn throughput_cycles(&self, words: u64, addresses: u64, dram_words: u64, random: bool) -> u64 {
        let ag = addresses.div_ceil(self.cfg.addresses_per_cycle as u64);
        let cache = words.div_ceil(self.cfg.cache_words_per_cycle as u64);
        let dram_rate = if random {
            self.cfg.dram_random_words_per_cycle
        } else {
            self.cfg.dram_peak_words_per_cycle
        };
        let dram = (dram_words as f64 / dram_rate).ceil() as u64;
        ag.max(cache).max(dram)
    }

    /// Cost an indexed gather of `indices.len()` records of `record_len`
    /// words.
    ///
    /// By default gathers are *non-allocating*: bulk position streams
    /// have no short-term reuse inside one stream memory operation, so
    /// they bypass the stream cache and pay the DRDRAM random-access
    /// bandwidth. This matches the paper's measurement that memory and
    /// SRF reference counts are nearly equal (Figure 8) — the hierarchy
    /// captures no long-term producer-consumer locality for StreamMD.
    /// Set [`MachineConfig::cache_allocates_gathers`] for the cached
    /// ablation.
    pub fn gather_cost(
        &mut self,
        mem: &Memory,
        region: RegionId,
        record_len: usize,
        indices: &[u32],
        write: bool,
    ) -> MemOpCost {
        let words = (indices.len() * record_len) as u64;
        if self.cfg.cache_allocates_gathers {
            let addrs = indices.iter().flat_map(|&i| {
                let base = i as u64 * record_len as u64;
                (0..record_len as u64).map(move |f| base + f)
            });
            let trace = addrs.map(|w| mem.word_address(region, w));
            let cache = self.cache.access_trace(trace, write);
            self.stats.merge(&cache);
            let dram_words = (cache.misses + cache.writebacks) * self.line_words();
            let cycles = self.throughput_cycles(words, words, dram_words, true);
            return MemOpCost {
                cycles,
                words,
                addresses: words,
                cache,
                dram_words,
            };
        }
        let cache = crate::cache::CacheAccessStats {
            accesses: words,
            misses: words / self.line_words().max(1),
            ..Default::default()
        };
        self.stats.merge(&cache);
        let cycles = self.throughput_cycles(words, words, words, true);
        MemOpCost {
            cycles,
            words,
            addresses: words,
            cache,
            dram_words: words,
        }
    }

    /// Cost a unit-stride load/store of `records` records starting at
    /// record `start`.
    pub fn sequential_cost(
        &mut self,
        mem: &Memory,
        region: RegionId,
        record_len: usize,
        start: usize,
        records: usize,
        write: bool,
    ) -> MemOpCost {
        let words = (records * record_len) as u64;
        let base = (start * record_len) as u64;
        let trace = (base..base + words).map(|w| mem.word_address(region, w));
        let cache = self.cache.access_trace(trace, write);
        self.stats.merge(&cache);
        let dram_words = (cache.misses + cache.writebacks) * self.line_words();
        // Strided transfers need one address per record, not per word.
        let addresses = records as u64;
        let cycles = self.throughput_cycles(words, addresses, dram_words, false);
        MemOpCost {
            cycles,
            words,
            addresses,
            cache,
            dram_words,
        }
    }

    /// Cost a scatter-add of `indices.len()` records. Bank pressure and
    /// combining are modelled per word address.
    pub fn scatter_add_cost(
        &mut self,
        mem: &Memory,
        region: RegionId,
        record_len: usize,
        indices: &[u32],
    ) -> MemOpCost {
        let words = (indices.len() * record_len) as u64;
        // Cache trace (read-modify-write marks lines dirty).
        let addrs: Vec<u64> = indices
            .iter()
            .flat_map(|&i| {
                let base = i as u64 * record_len as u64;
                (0..record_len as u64).map(move |f| base + f)
            })
            .map(|w| mem.word_address(region, w))
            .collect();
        let cache = self.cache.access_trace(addrs.iter().copied(), true);
        self.stats.merge(&cache);
        let dram_words = (cache.misses + cache.writebacks) * self.line_words();

        // Per-bank scatter-add pressure with a combining window: an add
        // matching an address already in the bank's combining store merges
        // for free.
        let banks = self.cfg.cache_banks;
        let window = self.cfg.combining_store_entries;
        let units = self.cfg.scatter_add_units_per_bank.max(1) as u64;
        let mut bank_load = vec![0u64; banks];
        let mut windows: Vec<std::collections::VecDeque<u64>> =
            vec![std::collections::VecDeque::with_capacity(window); banks];
        for &a in &addrs {
            let b = ((a / self.line_words()) % banks as u64) as usize;
            if window > 0 && windows[b].contains(&a) {
                continue; // combined
            }
            if window > 0 {
                if windows[b].len() == window {
                    windows[b].pop_front();
                }
                windows[b].push_back(a);
            }
            bank_load[b] += 1;
        }
        let bank_cycles = bank_load
            .iter()
            .map(|&l| l.div_ceil(units))
            .max()
            .unwrap_or(0);
        let base = self.throughput_cycles(words, words, dram_words, true);
        let cycles = base.max(bank_cycles) + self.cfg.scatter_add_latency;
        MemOpCost {
            cycles,
            words,
            addresses: words,
            cache,
            dram_words,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(words: usize) -> (MemSystem, Memory, RegionId) {
        let cfg = MachineConfig::default();
        let mut mem = Memory::new();
        let r = mem.region("r", vec![0.0; words]);
        (MemSystem::new(&cfg), mem, r)
    }

    #[test]
    fn gather_bounded_by_address_rate_when_cached() {
        // With the cached-gather ablation enabled, a warm gather runs at
        // the 8 words/cycle cache rate.
        let cfg = MachineConfig {
            cache_allocates_gathers: true,
            ..MachineConfig::default()
        };
        let mut ms = MemSystem::new(&cfg);
        let mut mem = Memory::new();
        let r = mem.region("r", vec![0.0; 8192]);
        let idx: Vec<u32> = (0..512u32).collect();
        ms.gather_cost(&mem, r, 9, &idx, false);
        let cost = ms.gather_cost(&mem, r, 9, &idx, false);
        assert_eq!(cost.cache.misses, 0);
        assert_eq!(cost.cycles, cost.words.div_ceil(8));
    }

    #[test]
    fn default_gather_pays_dram_random_bandwidth() {
        // Non-allocating default: every gathered word crosses the DRAM
        // pins at 2 words/cycle regardless of reuse.
        let (mut ms, mem, r) = setup(8192);
        let idx: Vec<u32> = (0..512u32).collect();
        ms.gather_cost(&mem, r, 9, &idx, false);
        let cost = ms.gather_cost(&mem, r, 9, &idx, false);
        assert_eq!(cost.dram_words, cost.words);
        assert_eq!(cost.cycles, (cost.words as f64 / 2.0).ceil() as u64);
    }

    #[test]
    fn cold_gather_bounded_by_dram() {
        let (mut ms, mem, r) = setup(100_000);
        let idx: Vec<u32> = (0..10_000u32).collect();
        let cost = ms.gather_cost(&mem, r, 9, &idx, false);
        assert!(cost.cache.misses > 0);
        // DRAM term must exceed the pure cache term.
        assert!(cost.cycles > cost.words.div_ceil(8));
    }

    #[test]
    fn sequential_uses_peak_dram_rate() {
        let (mut ms, mem, r) = setup(100_000);
        let seq = ms.sequential_cost(&mem, r, 8, 0, 12_500, false);
        ms.flush_cache();
        let idx: Vec<u32> = (0..12_500u32).collect();
        let gat = ms.gather_cost(&mem, r, 8, &idx, false);
        assert_eq!(seq.words, gat.words);
        assert!(
            seq.cycles < gat.cycles,
            "sequential {} should beat random {}",
            seq.cycles,
            gat.cycles
        );
    }

    #[test]
    fn scatter_add_combining_reduces_hot_spot_cost() {
        let cfg = MachineConfig::default();
        let mut mem = Memory::new();
        let r = mem.region("f", vec![0.0; 1024]);
        // All adds to the same record: combining should collapse them.
        let hot: Vec<u32> = vec![7; 4096];
        let mut with = MemSystem::new(&cfg);
        let c_with = with.scatter_add_cost(&mem, r, 1, &hot);

        let mut cfg_no = cfg.clone();
        cfg_no.combining_store_entries = 0;
        let mut without = MemSystem::new(&cfg_no);
        let c_without = without.scatter_add_cost(&mem, r, 1, &hot);
        assert!(
            c_with.cycles * 4 < c_without.cycles,
            "combining {} vs none {}",
            c_with.cycles,
            c_without.cycles
        );
    }

    #[test]
    fn scatter_add_includes_unit_latency() {
        let (mut ms, mem, r) = setup(64);
        let cost = ms.scatter_add_cost(&mem, r, 1, &[0]);
        assert!(cost.cycles >= MachineConfig::default().scatter_add_latency);
    }

    #[test]
    fn cumulative_stats_sum_per_op_cache_behaviour() {
        let (mut ms, mem, r) = setup(65_536);
        let a = ms.sequential_cost(&mem, r, 8, 0, 512, false);
        let b = ms.sequential_cost(&mem, r, 8, 512, 512, true);
        let mut expect = CacheAccessStats::default();
        expect.merge(&a.cache);
        expect.merge(&b.cache);
        assert_eq!(ms.stats(), expect);
        // A fresh strip shard starts with zeroed stats and a cold cache.
        let shard = MemSystem::strip_shard(&MachineConfig::default());
        assert_eq!(shard.stats(), CacheAccessStats::default());
    }

    #[test]
    fn costs_scale_with_words() {
        let (mut ms, mem, r) = setup(65_536);
        let small: Vec<u32> = (0..64u32).collect();
        let large: Vec<u32> = (0..4096u32).collect();
        let cs = ms.gather_cost(&mem, r, 9, &small, false);
        ms.flush_cache();
        let cl = ms.gather_cost(&mem, r, 9, &large, false);
        assert!(cl.cycles > cs.cycles * 16);
        assert_eq!(cl.words, 4096 * 9);
    }
}

//! Stream descriptor registers (SDRs/MARs).
//!
//! A hardware register holds the mapping between an active stream in the
//! SRF and its memory address while a stream memory operation runs.
//! Section 4.2 of the paper reports that the original allocator for this
//! register file kept registers busy too long, preventing the memory
//! system from running ahead of the kernels (Figure 7a); releasing the
//! register as soon as the transfer completes restores perfect overlap
//! (Figure 7b). Both policies are implemented here and selected per run.

use serde::{Deserialize, Serialize};

/// When is a stream descriptor register returned to the free pool?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SdrPolicy {
    /// The flawed allocator: the register is held until the SRF stream it
    /// maps is dead — for an input gather, until the consuming kernel has
    /// finished with the buffer.
    Naive,
    /// The fixed allocator: released as soon as the memory operation
    /// completes.
    Eager,
}

/// A pool of stream descriptor registers.
#[derive(Debug, Clone)]
pub struct SdrFile {
    total: usize,
    in_use: usize,
    /// High-water mark for reporting.
    peak: usize,
}

impl SdrFile {
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "need at least one stream descriptor register");
        Self {
            total,
            in_use: 0,
            peak: 0,
        }
    }

    /// Try to allocate one register.
    pub fn try_alloc(&mut self) -> bool {
        if self.in_use < self.total {
            self.in_use += 1;
            self.peak = self.peak.max(self.in_use);
            true
        } else {
            false
        }
    }

    /// Release one register.
    pub fn release(&mut self) {
        assert!(self.in_use > 0, "SDR release without allocation");
        self.in_use -= 1;
    }

    pub fn available(&self) -> usize {
        self.total - self.in_use
    }

    pub fn peak(&self) -> usize {
        self.peak
    }

    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_exhausted() {
        let mut f = SdrFile::new(2);
        assert!(f.try_alloc());
        assert!(f.try_alloc());
        assert!(!f.try_alloc());
        assert_eq!(f.available(), 0);
        f.release();
        assert!(f.try_alloc());
        assert_eq!(f.peak(), 2);
    }

    #[test]
    #[should_panic(expected = "release without allocation")]
    fn release_underflow_panics() {
        SdrFile::new(1).release();
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_registers_rejected() {
        SdrFile::new(0);
    }
}

//! The node's stream cache: 64 KWords, 8 line-interleaved banks,
//! set-associative with LRU replacement.
//!
//! The cache sits between the address generators and the external DRDRAM
//! (Section 2.2). Gathers whose indices revisit recently-touched
//! molecules hit in the cache and avoid DRAM traffic; the simulator runs
//! every stream memory operation's word addresses through this model to
//! obtain hit/miss counts and per-bank pressure.

use merrimac_arch::MachineConfig;

/// Statistics of one address-trace pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheAccessStats {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
    /// Dirty lines written back to DRAM.
    pub writebacks: u64,
    /// Largest number of accesses landing on a single bank (for the bank
    /// conflict bound).
    pub max_bank_load: u64,
}

impl CacheAccessStats {
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    pub fn merge(&mut self, o: &CacheAccessStats) {
        self.accesses += o.accesses;
        self.hits += o.hits;
        self.misses += o.misses;
        self.writebacks += o.writebacks;
        self.max_bank_load = self.max_bank_load.max(o.max_bank_load);
    }
}

/// Line state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp.
    used: u64,
}

/// A set-associative, line-interleaved cache model.
#[derive(Debug, Clone)]
pub struct StreamCache {
    line_words: u64,
    ways: usize,
    sets: usize,
    banks: usize,
    lines: Vec<Line>,
    clock: u64,
}

impl StreamCache {
    pub fn new(cfg: &MachineConfig) -> Self {
        let sets = cfg.cache_sets();
        assert!(sets > 0 && sets.is_power_of_two());
        Self {
            line_words: cfg.cache_line_words as u64,
            ways: cfg.cache_ways,
            sets,
            banks: cfg.cache_banks,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    used: 0
                };
                sets * cfg.cache_ways
            ],
            clock: 0,
        }
    }

    /// Total capacity in words.
    pub fn capacity_words(&self) -> u64 {
        (self.sets * self.ways) as u64 * self.line_words
    }

    /// Run a word-address trace through the cache. `write` marks lines
    /// dirty (stores and scatter-adds).
    pub fn access_trace(
        &mut self,
        addrs: impl Iterator<Item = u64>,
        write: bool,
    ) -> CacheAccessStats {
        let mut st = CacheAccessStats::default();
        let mut bank_load = vec![0u64; self.banks];
        for addr in addrs {
            self.clock += 1;
            st.accesses += 1;
            let line_addr = addr / self.line_words;
            bank_load[(line_addr % self.banks as u64) as usize] += 1;
            let set = line_addr as usize % self.sets;
            let tag = line_addr;
            let base = set * self.ways;
            let ways = &mut self.lines[base..base + self.ways];
            if let Some(l) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
                st.hits += 1;
                l.used = self.clock;
                l.dirty |= write;
                continue;
            }
            st.misses += 1;
            // LRU victim.
            let victim = ways
                .iter_mut()
                .min_by_key(|l| if l.valid { l.used } else { 0 })
                .expect("at least one way");
            if victim.valid && victim.dirty {
                st.writebacks += 1;
            }
            *victim = Line {
                tag,
                valid: true,
                dirty: write,
                used: self.clock,
            };
        }
        st.max_bank_load = bank_load.iter().copied().max().unwrap_or(0);
        st
    }

    /// Forget all contents (e.g. between independent experiments).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
            l.dirty = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> StreamCache {
        StreamCache::new(&MachineConfig::default())
    }

    #[test]
    fn capacity_matches_config() {
        let cfg = MachineConfig::default();
        assert_eq!(cache().capacity_words(), cfg.cache_words as u64);
    }

    #[test]
    fn sequential_trace_hits_within_lines() {
        let mut c = cache();
        let st = c.access_trace(0..64, false);
        // 64 words over 8-word lines: 8 misses, 56 hits.
        assert_eq!(st.misses, 8);
        assert_eq!(st.hits, 56);
        assert_eq!(st.hit_rate(), 56.0 / 64.0);
    }

    #[test]
    fn repeat_trace_hits_fully() {
        let mut c = cache();
        c.access_trace(0..1024, false);
        let st = c.access_trace(0..1024, false);
        assert_eq!(st.misses, 0);
        assert_eq!(st.hits, 1024);
    }

    #[test]
    fn capacity_eviction() {
        let mut c = cache();
        let cap = c.capacity_words();
        // Touch 2x capacity sequentially, then re-touch the first half:
        // every *line* was evicted, so only intra-line locality hits.
        c.access_trace(0..(2 * cap), false);
        let st = c.access_trace(0..cap / 2, false);
        assert_eq!(st.misses, cap / 2 / 8, "expected every line evicted");
        assert_eq!(st.hits, cap / 2 - cap / 2 / 8);
    }

    #[test]
    fn writebacks_counted() {
        let mut c = cache();
        let cap = c.capacity_words();
        c.access_trace((0..cap).step_by(8), true); // dirty every line
        let st = c.access_trace((cap..2 * cap).step_by(8), false);
        assert_eq!(st.writebacks, (cap / 8), "every victim was dirty");
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = cache();
        c.access_trace(0..256, false);
        c.flush();
        let st = c.access_trace(0..256, false);
        assert_eq!(st.hits, 256 - 32);
        assert_eq!(st.misses, 32);
    }

    #[test]
    fn bank_load_balanced_for_sequential_lines() {
        let mut c = cache();
        let st = c.access_trace((0..512).step_by(8), false);
        // 64 lines over 8 banks: 8 per bank.
        assert_eq!(st.max_bank_load, 8);
    }

    #[test]
    fn single_line_hammer_loads_one_bank() {
        let mut c = cache();
        let st = c.access_trace(std::iter::repeat_n(3, 100), false);
        assert_eq!(st.max_bank_load, 100);
        assert_eq!(st.misses, 1);
    }
}

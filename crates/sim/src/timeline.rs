//! Execution timelines: the data behind Figure 7's two-column
//! kernel/memory occupancy plot and Figure 5's software-pipelining
//! illustration.

use serde::{Deserialize, Serialize};

/// Which unit an interval occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Unit {
    Kernel,
    Memory,
}

/// One busy interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    pub unit: Unit,
    pub start: u64,
    pub end: u64,
    pub label: String,
    pub strip: usize,
}

/// A whole-run timeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    pub intervals: Vec<Interval>,
}

impl Timeline {
    pub fn record(&mut self, unit: Unit, start: u64, end: u64, label: &str, strip: usize) {
        debug_assert!(end >= start);
        self.intervals.push(Interval {
            unit,
            start,
            end,
            label: label.into(),
            strip,
        });
    }

    /// Total busy cycles of one unit (intervals on a unit never overlap —
    /// the machine model serializes each unit).
    pub fn busy(&self, unit: Unit) -> u64 {
        self.intervals
            .iter()
            .filter(|i| i.unit == unit)
            .map(|i| i.end - i.start)
            .sum()
    }

    /// End of the last interval.
    pub fn makespan(&self) -> u64 {
        self.intervals.iter().map(|i| i.end).max().unwrap_or(0)
    }

    /// Cycles during which *both* units are busy — the overlap the SDR
    /// fix of Figure 7 restores.
    pub fn overlap(&self) -> u64 {
        let mut events: Vec<(u64, i32, i32)> = Vec::new();
        for i in &self.intervals {
            let (dk, dm) = match i.unit {
                Unit::Kernel => (1, 0),
                Unit::Memory => (0, 1),
            };
            events.push((i.start, dk, dm));
            events.push((i.end, -dk, -dm));
        }
        events.sort_unstable();
        let (mut k, mut m) = (0i32, 0i32);
        let mut last = 0u64;
        let mut overlap = 0u64;
        for (t, dk, dm) in events {
            if k > 0 && m > 0 {
                overlap += t - last;
            }
            k += dk;
            m += dm;
            last = t;
        }
        overlap
    }

    /// Overlap as a fraction of the smaller unit's busy time (1.0 means
    /// the cheaper side is perfectly hidden).
    pub fn overlap_fraction(&self) -> f64 {
        let min_busy = self.busy(Unit::Kernel).min(self.busy(Unit::Memory));
        if min_busy == 0 {
            return 0.0;
        }
        self.overlap() as f64 / min_busy as f64
    }

    /// Render an ASCII two-column occupancy chart like Figure 7:
    /// `rows` lines, left column = kernel, right column = memory.
    pub fn render(&self, rows: usize) -> String {
        let span = self.makespan().max(1);
        let rows = rows.max(1);
        let mut out = String::new();
        out.push_str("   cycle | kernel  | memory\n");
        out.push_str("---------+---------+---------\n");
        for r in 0..rows {
            let t0 = span * r as u64 / rows as u64;
            let t1 = (span * (r as u64 + 1) / rows as u64).max(t0 + 1);
            let busy_in = |unit: Unit| -> bool {
                self.intervals
                    .iter()
                    .any(|i| i.unit == unit && i.start < t1 && i.end > t0)
            };
            let k = if busy_in(Unit::Kernel) {
                "███████"
            } else {
                "       "
            };
            let m = if busy_in(Unit::Memory) {
                "███████"
            } else {
                "       "
            };
            out.push_str(&format!("{t0:>8} | {k} | {m}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_and_makespan() {
        let mut t = Timeline::default();
        t.record(Unit::Kernel, 0, 10, "k0", 0);
        t.record(Unit::Memory, 5, 20, "m0", 1);
        assert_eq!(t.busy(Unit::Kernel), 10);
        assert_eq!(t.busy(Unit::Memory), 15);
        assert_eq!(t.makespan(), 20);
    }

    #[test]
    fn overlap_simple() {
        let mut t = Timeline::default();
        t.record(Unit::Kernel, 0, 10, "k", 0);
        t.record(Unit::Memory, 5, 20, "m", 0);
        assert_eq!(t.overlap(), 5);
        assert!((t.overlap_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_overlap_when_serialized() {
        let mut t = Timeline::default();
        t.record(Unit::Kernel, 0, 10, "k", 0);
        t.record(Unit::Memory, 10, 20, "m", 0);
        assert_eq!(t.overlap(), 0);
        assert_eq!(t.overlap_fraction(), 0.0);
    }

    #[test]
    fn full_overlap() {
        let mut t = Timeline::default();
        t.record(Unit::Kernel, 0, 100, "k", 0);
        t.record(Unit::Memory, 20, 60, "m", 0);
        assert_eq!(t.overlap(), 40);
        assert!((t.overlap_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_intervals_accumulate_overlap() {
        let mut t = Timeline::default();
        t.record(Unit::Kernel, 0, 10, "k0", 0);
        t.record(Unit::Kernel, 20, 30, "k1", 1);
        t.record(Unit::Memory, 5, 25, "m", 0);
        assert_eq!(t.overlap(), 5 + 5);
    }

    #[test]
    fn render_shape() {
        let mut t = Timeline::default();
        t.record(Unit::Kernel, 0, 50, "k", 0);
        t.record(Unit::Memory, 25, 75, "m", 0);
        let s = t.render(10);
        assert_eq!(s.lines().count(), 12);
        assert!(s.contains("kernel"));
        assert!(s.contains("███████"));
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::default();
        assert_eq!(t.makespan(), 0);
        assert_eq!(t.overlap(), 0);
        assert_eq!(t.overlap_fraction(), 0.0);
    }
}

//! Stream register file accounting.
//!
//! The SRF is software-managed (Section 2.1): the compiler assigns every
//! strip buffer a region of each cluster's bank and double-buffers so the
//! memory system can fill strip *i+1* while the clusters consume strip
//! *i*. The simulator does not need placement addresses — buffers carry
//! their own data — but it must enforce the capacity that makes
//! strip-mining necessary in the first place, and report the high-water
//! mark so the application layer can size its strips.

use merrimac_arch::MachineConfig;

/// Tracks live SRF bytes per cluster bank.
#[derive(Debug, Clone)]
pub struct SrfAllocator {
    capacity_words_per_cluster: usize,
    clusters: usize,
    live_words_per_cluster: usize,
    peak_words_per_cluster: usize,
    /// Live allocation sizes by buffer id for release bookkeeping.
    live: std::collections::HashMap<usize, usize>,
}

/// Error when a strip does not fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrfOverflow {
    pub requested_words_per_cluster: usize,
    pub live_words_per_cluster: usize,
    pub capacity_words_per_cluster: usize,
}

impl std::fmt::Display for SrfOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SRF overflow: {} + {} words/cluster exceeds capacity {}",
            self.live_words_per_cluster,
            self.requested_words_per_cluster,
            self.capacity_words_per_cluster
        )
    }
}

impl std::error::Error for SrfOverflow {}

impl SrfAllocator {
    pub fn new(cfg: &MachineConfig) -> Self {
        Self {
            capacity_words_per_cluster: cfg.srf_words_per_cluster,
            clusters: cfg.clusters,
            live_words_per_cluster: 0,
            peak_words_per_cluster: 0,
            live: Default::default(),
        }
    }

    /// Allocate a buffer of `total_words` spread across clusters
    /// (rounded up to equal per-cluster shares).
    pub fn alloc(&mut self, buffer_id: usize, total_words: usize) -> Result<(), SrfOverflow> {
        let per_cluster = total_words.div_ceil(self.clusters);
        if self.live_words_per_cluster + per_cluster > self.capacity_words_per_cluster {
            return Err(SrfOverflow {
                requested_words_per_cluster: per_cluster,
                live_words_per_cluster: self.live_words_per_cluster,
                capacity_words_per_cluster: self.capacity_words_per_cluster,
            });
        }
        let prev = self.live.insert(buffer_id, per_cluster);
        assert!(prev.is_none(), "buffer {buffer_id} double-allocated");
        self.live_words_per_cluster += per_cluster;
        self.peak_words_per_cluster = self.peak_words_per_cluster.max(self.live_words_per_cluster);
        Ok(())
    }

    /// Release a buffer (no-op if it was never allocated — e.g. an empty
    /// strip).
    pub fn release(&mut self, buffer_id: usize) {
        if let Some(w) = self.live.remove(&buffer_id) {
            self.live_words_per_cluster -= w;
        }
    }

    pub fn live_words_per_cluster(&self) -> usize {
        self.live_words_per_cluster
    }

    pub fn peak_words_per_cluster(&self) -> usize {
        self.peak_words_per_cluster
    }

    pub fn capacity_words_per_cluster(&self) -> usize {
        self.capacity_words_per_cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> SrfAllocator {
        SrfAllocator::new(&MachineConfig::default())
    }

    #[test]
    fn capacity_from_config() {
        let a = alloc();
        assert_eq!(a.capacity_words_per_cluster(), 8192);
    }

    #[test]
    fn alloc_release_cycle() {
        let mut a = alloc();
        a.alloc(0, 16 * 1024).unwrap(); // 1024 words/cluster
        assert_eq!(a.live_words_per_cluster(), 1024);
        a.release(0);
        assert_eq!(a.live_words_per_cluster(), 0);
        assert_eq!(a.peak_words_per_cluster(), 1024);
    }

    #[test]
    fn overflow_detected() {
        let mut a = alloc();
        a.alloc(0, 16 * 8000).unwrap();
        let err = a.alloc(1, 16 * 300).unwrap_err();
        assert_eq!(err.live_words_per_cluster, 8000);
        assert_eq!(err.requested_words_per_cluster, 300);
    }

    #[test]
    #[should_panic(expected = "double-allocated")]
    fn double_alloc_panics() {
        let mut a = alloc();
        a.alloc(0, 100).unwrap();
        a.alloc(0, 100).unwrap();
    }

    #[test]
    fn release_unknown_is_noop() {
        let mut a = alloc();
        a.release(42);
        assert_eq!(a.live_words_per_cluster(), 0);
    }
}

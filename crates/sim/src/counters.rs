//! Register-hierarchy reference counters and flop accounting — the
//! measurement layer behind Figure 8 ("percentage of references made to
//! each level of the register hierarchy"), Table 4 (measured arithmetic
//! intensity), and Figure 9 (GFLOPS and memory reference counts).
//!
//! Conventions:
//!
//! * **LRF references** — operand reads plus the result write of every
//!   issued cluster op (`arity + 1` per op).
//! * **SRF references** — words crossing the SRF: kernel stream reads and
//!   writes, plus the SRF side of every memory transfer (the SRF is the
//!   staging area for all stream memory operations).
//! * **MEM references** — words moved by stream memory operations
//!   (gathers, loads, scatter-adds, stores), counted at the memory-system
//!   side.

use serde::{Deserialize, Serialize};

/// Busy cycles of the machine broken down by stream-operation class —
/// the per-phase view behind the trend harness: a locality regression
/// shows up as gather/scatter growth, a schedule regression as kernel
/// growth, an SDR-policy regression as scoreboard stall growth.
///
/// Phase cycles count *occupancy* of the issuing unit, so `gather +
/// load + scatter_add + store` equals the memory unit's busy time and
/// `kernel` the cluster array's; because the two units overlap, the sum
/// of all phases normally exceeds the makespan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCycles {
    pub gather: u64,
    pub load: u64,
    pub kernel: u64,
    pub scatter_add: u64,
    pub store: u64,
}

impl PhaseCycles {
    pub fn add(&mut self, o: &PhaseCycles) {
        self.gather += o.gather;
        self.load += o.load;
        self.kernel += o.kernel;
        self.scatter_add += o.scatter_add;
        self.store += o.store;
    }

    /// Memory-unit busy cycles (all stream memory op classes).
    pub fn memory(&self) -> u64 {
        self.gather + self.load + self.scatter_add + self.store
    }
}

/// Aggregated counters of one program run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    pub lrf_refs: u64,
    pub srf_refs: u64,
    pub mem_refs: u64,
    /// Hardware flops executed (madd = 2), including dummy/overhead work.
    pub hardware_flops: u64,
    /// Issued cluster ops.
    pub hardware_ops: u64,
    /// Kernel loop iterations executed.
    pub kernel_iterations: u64,
    /// Words moved on the DRAM pins.
    pub dram_words: u64,
    /// Cache hits/misses across all memory ops.
    pub cache_hits: u64,
    pub cache_misses: u64,
}

impl Counters {
    pub fn add(&mut self, o: &Counters) {
        self.lrf_refs += o.lrf_refs;
        self.srf_refs += o.srf_refs;
        self.mem_refs += o.mem_refs;
        self.hardware_flops += o.hardware_flops;
        self.hardware_ops += o.hardware_ops;
        self.kernel_iterations += o.kernel_iterations;
        self.dram_words += o.dram_words;
        self.cache_hits += o.cache_hits;
        self.cache_misses += o.cache_misses;
    }

    /// Total register-hierarchy references.
    pub fn total_refs(&self) -> u64 {
        self.lrf_refs + self.srf_refs + self.mem_refs
    }

    /// Figure 8 splits (fractions of total references).
    pub fn locality_split(&self) -> (f64, f64, f64) {
        let t = self.total_refs() as f64;
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.lrf_refs as f64 / t,
            self.srf_refs as f64 / t,
            self.mem_refs as f64 / t,
        )
    }

    /// Measured arithmetic intensity: `flops / memory words`. The caller
    /// chooses solution or hardware flops.
    pub fn arithmetic_intensity(&self, flops: u64) -> f64 {
        if self.mem_refs == 0 {
            0.0
        } else {
            flops as f64 / self.mem_refs as f64
        }
    }

    pub fn cache_hit_rate(&self) -> f64 {
        let t = self.cache_hits + self.cache_misses;
        if t == 0 {
            0.0
        } else {
            self.cache_hits as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_split_sums_to_one() {
        let c = Counters {
            lrf_refs: 900,
            srf_refs: 60,
            mem_refs: 40,
            ..Default::default()
        };
        let (l, s, m) = c.locality_split();
        assert!((l + s + m - 1.0).abs() < 1e-12);
        assert!((l - 0.9).abs() < 1e-12);
        assert!((m - 0.04).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_are_safe() {
        let c = Counters::default();
        assert_eq!(c.locality_split(), (0.0, 0.0, 0.0));
        assert_eq!(c.arithmetic_intensity(100), 0.0);
        assert_eq!(c.cache_hit_rate(), 0.0);
    }

    #[test]
    fn add_accumulates() {
        let mut a = Counters {
            lrf_refs: 1,
            mem_refs: 2,
            hardware_flops: 3,
            ..Default::default()
        };
        let b = Counters {
            lrf_refs: 10,
            mem_refs: 20,
            hardware_flops: 30,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.lrf_refs, 11);
        assert_eq!(a.mem_refs, 22);
        assert_eq!(a.hardware_flops, 33);
    }

    #[test]
    fn phase_cycles_accumulate_and_split_by_unit() {
        let mut p = PhaseCycles {
            gather: 10,
            load: 5,
            kernel: 100,
            scatter_add: 7,
            store: 3,
        };
        p.add(&PhaseCycles {
            gather: 1,
            ..Default::default()
        });
        assert_eq!(p.gather, 11);
        assert_eq!(p.memory(), 11 + 5 + 7 + 3);
        assert_eq!(p.kernel, 100);
    }

    #[test]
    fn arithmetic_intensity_uses_mem_words() {
        let c = Counters {
            mem_refs: 48,
            ..Default::default()
        };
        assert!((c.arithmetic_intensity(234) - 4.875).abs() < 1e-12);
    }
}

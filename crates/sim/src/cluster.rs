//! Cluster-array timing for kernel launches.
//!
//! All 16 clusters run the same VLIW program in SIMD; a launch finishes
//! when the busiest cluster drains its share of the stream. With
//! conditional streams the per-cluster iteration counts differ (each
//! cluster consumes its own centre molecules), which is exactly the
//! load-imbalance knob the `variable` variant trades against bandwidth.

use merrimac_arch::MachineConfig;

use crate::kernelc::CompiledKernel;

/// Timing of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCost {
    /// Total cluster-array occupancy in cycles, including start-up.
    pub cycles: u64,
    /// Iterations executed by the busiest cluster.
    pub max_cluster_iterations: u64,
    /// Total iterations across clusters.
    pub iterations: u64,
}

/// Cost a kernel launch.
///
/// `iterations` is the total loop-iteration count across the whole
/// stream; `max_cluster_iterations` the share of the busiest cluster
/// (for a perfectly balanced stream this is `ceil(iterations/16)`).
pub fn kernel_cost(
    cfg: &MachineConfig,
    kernel: &CompiledKernel,
    iterations: u64,
    max_cluster_iterations: u64,
) -> KernelCost {
    assert!(
        max_cluster_iterations * cfg.clusters as u64 >= iterations,
        "max cluster share {max_cluster_iterations} cannot cover {iterations} iterations"
    );
    let cycles = if iterations == 0 {
        0
    } else {
        cfg.kernel_startup + kernel.cluster_cycles(max_cluster_iterations)
    };
    KernelCost {
        cycles,
        max_cluster_iterations,
        iterations,
    }
}

/// Balanced per-cluster share.
pub fn balanced_share(cfg: &MachineConfig, iterations: u64) -> u64 {
    iterations.div_ceil(cfg.clusters as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernelc::KernelOpt;
    use merrimac_arch::OpCosts;
    use merrimac_kernel::ir::StreamMode;
    use merrimac_kernel::KernelBuilder;

    fn compiled() -> CompiledKernel {
        let mut b = KernelBuilder::new("k");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let x = b.read(s, 0);
        let y = b.mul(x, x);
        b.write(o, &[y]);
        CompiledKernel::compile(
            b.build(),
            &MachineConfig::default(),
            &OpCosts::default(),
            KernelOpt::default(),
        )
    }

    #[test]
    fn balanced_share_rounds_up() {
        let cfg = MachineConfig::default();
        assert_eq!(balanced_share(&cfg, 16), 1);
        assert_eq!(balanced_share(&cfg, 17), 2);
        assert_eq!(balanced_share(&cfg, 0), 0);
    }

    #[test]
    fn cost_includes_startup() {
        let cfg = MachineConfig::default();
        let k = compiled();
        let c = kernel_cost(&cfg, &k, 160, 10);
        assert!(c.cycles >= cfg.kernel_startup);
    }

    #[test]
    fn imbalance_costs_more() {
        let cfg = MachineConfig::default();
        let k = compiled();
        let balanced = kernel_cost(&cfg, &k, 160, 10);
        let skewed = kernel_cost(&cfg, &k, 160, 40);
        assert!(skewed.cycles > balanced.cycles);
    }

    #[test]
    fn zero_iterations_free() {
        let cfg = MachineConfig::default();
        let k = compiled();
        assert_eq!(kernel_cost(&cfg, &k, 0, 0).cycles, 0);
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn undersized_share_rejected() {
        let cfg = MachineConfig::default();
        let k = compiled();
        kernel_cost(&cfg, &k, 1000, 10);
    }
}

//! The stream processor scoreboard: issues stream operations onto the
//! memory system and the cluster array, enforcing data dependencies,
//! SRF capacity and stream-descriptor-register availability.
//!
//! The model has one memory pipeline and one cluster array (matching the
//! two-column execution plots of Figure 7); software pipelining across
//! strips emerges from the dependence structure: while the clusters run
//! strip *i*'s kernel, the memory unit gathers strip *i+1* and scatters
//! strip *i−1*, exactly as in Figure 5 — provided enough stream
//! descriptor registers are free, which is where [`SdrPolicy`] bites.

use merrimac_arch::{MachineConfig, OpCosts};
use merrimac_kernel::interp::{InterpError, Interpreter, StreamData};
use merrimac_kernel::BatchWidth;

use crate::cache::CacheAccessStats;
use crate::counters::{Counters, PhaseCycles};
use crate::memsys::{MemOpCost, MemSystem};
use crate::parallel::PartitionSummary;
use crate::program::{BufferId, Memory, StreamOp, StreamProgram};
use crate::sdr::{SdrFile, SdrPolicy};
use crate::srf::SrfAllocator;
use crate::timeline::{Timeline, Unit};

/// Simulation failure.
#[derive(Debug)]
pub enum SimError {
    Interp(InterpError),
    /// A single buffer exceeds SRF capacity — no schedule can run it.
    SrfImpossible(String),
    /// A strip's kernel working set (its live input streams plus the
    /// output streams that must be allocated to issue the kernel) cannot
    /// fit in the SRF, so the scoreboard would wedge at kernel issue.
    /// Detected up front so callers get a diagnostic naming the strip
    /// size instead of a deadlock.
    StripSrfOverflow {
        /// Label of the kernel op that can never issue.
        label: String,
        /// Strip size (kernel iterations) that produced the working set.
        strip_iterations: u64,
        /// SRF words per cluster the working set needs.
        needed_words_per_cluster: usize,
        /// SRF words per cluster the machine has.
        capacity_words_per_cluster: usize,
    },
    /// Invalid configuration rejected before any simulation ran.
    Config(String),
    /// A multi-node configuration outside the modeled network, rejected
    /// at build time like the other preflight errors.
    NodesOutOfRange {
        nodes: usize,
        total: usize,
    },
    /// The scoreboard wedged (a bug or an impossible program).
    Deadlock(String),
    /// Program shape error (e.g. iterations not divisible by unroll).
    Program(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Interp(e) => write!(f, "kernel execution failed: {e}"),
            SimError::SrfImpossible(s) => write!(f, "SRF cannot hold buffer: {s}"),
            SimError::StripSrfOverflow {
                label,
                strip_iterations,
                needed_words_per_cluster,
                capacity_words_per_cluster,
            } => write!(
                f,
                "strip size {strip_iterations} is un-runnable: kernel '{label}' needs \
                 {needed_words_per_cluster} SRF words/cluster for its live streams but the \
                 machine has {capacity_words_per_cluster}; reduce strip_iterations"
            ),
            SimError::Config(s) => write!(f, "invalid configuration: {s}"),
            SimError::NodesOutOfRange { nodes, total } => write!(
                f,
                "multi-node preflight: {nodes} node(s) requested but the modeled network \
                 supports 1..={total}"
            ),
            SimError::Deadlock(s) => write!(f, "scoreboard deadlock: {s}"),
            SimError::Program(s) => write!(f, "malformed program: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<InterpError> for SimError {
    fn from(e: InterpError) -> Self {
        SimError::Interp(e)
    }
}

/// Report of one program run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total run time in cycles.
    pub cycles: u64,
    pub timeline: Timeline,
    pub counters: Counters,
    /// Busy cycles by stream-operation class (gather/load/kernel/
    /// scatter-add/store).
    pub phases: PhaseCycles,
    /// Peak stream descriptor registers in use.
    pub sdr_peak: usize,
    /// Peak SRF words per cluster.
    pub srf_peak_words_per_cluster: usize,
    /// Cycles the memory unit sat idle with work ready but no SDR free.
    pub sdr_stall_cycles: u64,
    /// How the strip partitioner classified this program (parallelized
    /// vs serial fallback, with a typed reason).
    pub partition: PartitionSummary,
    /// Aggregate stream-cache behaviour over the whole run. For
    /// partitioned runs this is the deterministic strip-order merge of
    /// the per-strip shard stats.
    pub cache_stats: CacheAccessStats,
}

impl RunReport {
    /// Seconds at the configured clock.
    pub fn seconds(&self, cfg: &MachineConfig) -> f64 {
        cfg.cycles_to_seconds(self.cycles)
    }
}

/// Per-op functional results captured by the parallel phase-A pass
/// ([`StreamProcessor::run_parallel`]): the few facts the timing
/// scoreboard needs that come from *executing* an op rather than from
/// its static description.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct OpRecord {
    /// SRF words a kernel op moved (records consumed + outputs written).
    pub kernel_srf_words: u64,
    /// Memory-system cost of this op, computed in phase A against the
    /// op's strip shard. `Some` for every memory op of a partitioned
    /// program; the timing pass consumes it instead of re-running the
    /// (stateful, serial) cache model.
    pub mem_cost: Option<MemOpCost>,
}

/// How the scoreboard obtains functional results while scheduling.
#[derive(Clone, Copy)]
pub(crate) enum ExecMode<'a> {
    /// Execute each op functionally as it issues (the classic path).
    Inline,
    /// Functional execution already happened (parallel per-strip pass);
    /// compute only costs and timing. Region data must already be in
    /// its final state — every cost function is address-based, so the
    /// schedule and cycle counts are bitwise-identical to [`Inline`].
    Precomputed(&'a [OpRecord]),
}

/// Which functional engine executes kernel dataflow graphs.
///
/// The batched SoA engine ([`merrimac_kernel::batch`], executing the
/// compiled tape in vectorizable lanes of 8/16 iterations) is the
/// default. The scalar bytecode tape and the graph-walking
/// [`Interpreter`] remain as bisection oracles behind
/// `MERRIMAC_KERNEL_ENGINE=tape|interp`. All three produce
/// bitwise-identical outputs, consumed counts and final registers —
/// proven differentially by `tests/tape_equivalence.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelEngine {
    /// Batched SoA execution of the compiled tape, 8/16 lanes per
    /// batch ([`BatchWidth`]).
    #[default]
    Batch,
    /// Flat bytecode tape, one scalar iteration at a time.
    Tape,
    /// Reference graph-walking interpreter.
    Interp,
}

impl KernelEngine {
    /// The engine a value of `MERRIMAC_KERNEL_ENGINE` names, if any.
    /// This is the single place the value grammar lives; typed rejection
    /// of malformed values happens in `merrimac_bench`'s
    /// `RunSpec::from_env_overrides`, which calls this.
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "batch" => Some(KernelEngine::Batch),
            "tape" => Some(KernelEngine::Tape),
            "interp" => Some(KernelEngine::Interp),
            _ => None,
        }
    }

    /// Resolve from the `MERRIMAC_KERNEL_ENGINE` environment variable
    /// (`batch`, `tape` or `interp`; anything else, including unset,
    /// means batch). Lenient legacy default for a raw
    /// [`StreamProcessor`]; the validated front doors
    /// (`SimConfigBuilder::engine`, `RunSpec::from_env_overrides`)
    /// reject malformed values instead.
    pub fn from_env() -> Self {
        std::env::var("MERRIMAC_KERNEL_ENGINE")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    pub fn name(self) -> &'static str {
        match self {
            KernelEngine::Batch => "batch",
            KernelEngine::Tape => "tape",
            KernelEngine::Interp => "interp",
        }
    }
}

impl std::fmt::Display for KernelEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Run a kernel op's dataflow graph: unroll check, input reshape,
/// execution on the selected engine. Returns the output streams and the
/// SRF words moved (inputs consumed + outputs written). Shared between
/// the inline scoreboard and the parallel per-strip executor so the two
/// paths cannot drift.
#[allow(clippy::too_many_arguments)]
pub(crate) fn kernel_functional(
    label: &str,
    kernel: &crate::kernelc::CompiledKernel,
    input_data: Vec<StreamData>,
    params: &[f64],
    iterations: u64,
    engine: KernelEngine,
    batch: BatchWidth,
    proof: Option<&merrimac_kernel::UnderrunProof>,
) -> Result<(Vec<StreamData>, u64), SimError> {
    let unroll = kernel.opt.unroll as u64;
    if !iterations.is_multiple_of(unroll) {
        return Err(SimError::Program(format!(
            "kernel '{label}': {iterations} iterations not divisible by unroll {unroll}"
        )));
    }
    // Reshape every-iteration inputs to the unrolled record length —
    // skipped entirely when every input already matches the unrolled
    // signature (unroll = 1, or pre-shaped buffers), so the common case
    // moves no stream and re-validates nothing.
    let all_match = input_data
        .iter()
        .zip(&kernel.ir.inputs)
        .all(|(d, sig)| sig.record_len as usize == d.record_len);
    let shaped = if all_match {
        input_data
    } else {
        let mut shaped = Vec::with_capacity(input_data.len());
        for (d, sig) in input_data.into_iter().zip(&kernel.ir.inputs) {
            if sig.record_len as usize != d.record_len {
                if d.data.len() % sig.record_len as usize != 0 {
                    return Err(SimError::Program(format!(
                        "kernel '{label}': input not reshapeable to {} words",
                        sig.record_len
                    )));
                }
                shaped.push(StreamData::new(sig.record_len as usize, d.data));
            } else {
                shaped.push(d);
            }
        }
        shaped
    };
    let unrolled_iters = iterations / unroll;
    // A static underrun proof routes the tape engines through their
    // check-elided entry points; a stale proof falls back to the
    // checked path inside those entry points, so results (and errors)
    // are bitwise-identical either way.
    let out = match (engine, proof) {
        (KernelEngine::Batch, Some(p)) => {
            kernel
                .tape
                .run_batched_proven(&shaped, params, unrolled_iters as usize, batch, p)?
        }
        (KernelEngine::Batch, None) => {
            kernel
                .tape
                .run_batched(&shaped, params, unrolled_iters as usize, batch)?
        }
        (KernelEngine::Tape, Some(p)) => {
            kernel
                .tape
                .run_proven(&shaped, params, unrolled_iters as usize, p)?
        }
        (KernelEngine::Tape, None) => kernel.tape.run(&shaped, params, unrolled_iters as usize)?,
        (KernelEngine::Interp, _) => {
            Interpreter::new(&kernel.ir).run(&shaped, params, unrolled_iters as usize)?
        }
    };
    let mut srf_words = 0u64;
    for (s, d) in out.records_consumed.iter().zip(&shaped) {
        srf_words += (*s * d.record_len) as u64;
    }
    for o in &out.outputs {
        srf_words += o.data.len() as u64;
    }
    Ok((out.outputs, srf_words))
}

/// A Merrimac node ready to execute stream programs.
#[derive(Debug, Clone)]
pub struct StreamProcessor {
    pub cfg: MachineConfig,
    pub costs: OpCosts,
    pub policy: SdrPolicy,
    /// How many strips ahead of the oldest incomplete strip the memory
    /// unit may prefetch. One strip of lookahead is the double-buffering
    /// discipline of the paper's stream scheduler (Figure 5); unbounded
    /// lookahead can deadlock the SRF allocator, exactly the hazard
    /// static stream scheduling exists to prevent.
    pub strip_lookahead: usize,
    /// Print the strip partitioner's report (read-shared/owned/reduce
    /// regions, or the typed fallback reason) to stderr before each run.
    /// Defaults from the `MERRIMAC_PARTITION_VERBOSE` environment
    /// variable.
    pub partition_verbose: bool,
    /// Which functional engine executes kernel dataflow graphs.
    /// Defaults from the `MERRIMAC_KERNEL_ENGINE` environment variable
    /// (batch unless set to `tape` or `interp`). Simulated results are
    /// bitwise-identical under all three; only host wall-clock differs.
    pub kernel_engine: KernelEngine,
    /// Lane width of the batched engine ([`KernelEngine::Batch`]).
    /// Defaults from the `MERRIMAC_TAPE_BATCH` environment variable
    /// (8 unless set to `16`). Results are bitwise-identical at either
    /// width.
    pub tape_batch: BatchWidth,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpState {
    Waiting,
    Running { end: u64 },
    Done { end: u64 },
}

impl StreamProcessor {
    pub fn new(cfg: MachineConfig) -> Self {
        Self {
            cfg,
            costs: OpCosts::default(),
            policy: SdrPolicy::Eager,
            strip_lookahead: 1,
            partition_verbose: std::env::var("MERRIMAC_PARTITION_VERBOSE")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false),
            kernel_engine: KernelEngine::from_env(),
            tape_batch: BatchWidth::from_env(),
        }
    }

    pub fn with_policy(mut self, policy: SdrPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Select the functional kernel-execution engine (batch, tape or
    /// the reference interpreter) regardless of the environment default.
    pub fn with_engine(mut self, engine: KernelEngine) -> Self {
        self.kernel_engine = engine;
        self
    }

    /// Select the lane width of the batched engine regardless of the
    /// environment default.
    pub fn with_batch_width(mut self, width: BatchWidth) -> Self {
        self.tape_batch = width;
        self
    }

    pub fn with_costs(mut self, costs: OpCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Execute `program` against `memory`, mutating regions written by
    /// scatter-add/store ops.
    ///
    /// Routes through the same partition-aware engine as
    /// [`StreamProcessor::run_parallel`] with one host thread, so a
    /// program's cycles and counters depend only on whether it is
    /// partitionable — never on which entry point ran it.
    pub fn run(&self, memory: &mut Memory, program: &StreamProgram) -> Result<RunReport, SimError> {
        self.run_with_threads(memory, program, 1)
    }

    /// Preflight: reject programs the scoreboard can never complete.
    ///
    /// A kernel op can only issue once every input stream is live in the
    /// SRF and every output stream has been allocated, so the sum of the
    /// per-cluster shares of its inputs and outputs is a hard floor on
    /// SRF occupancy at issue time. If that floor exceeds the per-cluster
    /// capacity the kernel can never issue and the scoreboard would
    /// deadlock — the classic symptom of a strip sized past what the SRF
    /// can double-buffer. Detecting it here turns an opaque
    /// [`SimError::Deadlock`] into a [`SimError::StripSrfOverflow`]
    /// naming the offending strip size.
    pub fn validate_program(&self, program: &StreamProgram) -> Result<(), SimError> {
        // Declared access intents must cover every op touching the
        // region: an op of a kind the intent forbids is a contract
        // violation, not a partitioner fallback.
        for lop in &program.ops {
            if let Some((region, kind)) = lop.op.region_use() {
                if let Some(intent) = program.declared_intent(region) {
                    if !intent.permits(kind) {
                        return Err(SimError::Program(format!(
                            "op '{}' performs a {kind} on region {} declared {intent}",
                            lop.label, region.0
                        )));
                    }
                }
            }
        }
        // Per-buffer allocation shares, from each buffer's producer op
        // (allocation happens when the producer issues and uses the
        // worst-case capacity, spread across clusters).
        let mut share = vec![0usize; program.buffers.len()];
        for lop in &program.ops {
            for b in produced_buffers(&lop.op) {
                let words = buffer_capacity_words(program, &lop.op, b);
                share[b.0] = words.div_ceil(self.cfg.clusters);
            }
        }
        for lop in &program.ops {
            if let StreamOp::Kernel {
                inputs,
                outputs,
                iterations,
                ..
            } = &lop.op
            {
                let mut seen: Vec<usize> = Vec::new();
                let mut needed = 0usize;
                for b in inputs.iter().chain(outputs) {
                    if !seen.contains(&b.0) {
                        seen.push(b.0);
                        needed += share[b.0];
                    }
                }
                if needed > self.cfg.srf_words_per_cluster {
                    return Err(SimError::StripSrfOverflow {
                        label: lop.label.clone(),
                        strip_iterations: *iterations,
                        needed_words_per_cluster: needed,
                        capacity_words_per_cluster: self.cfg.srf_words_per_cluster,
                    });
                }
            }
        }
        Ok(())
    }

    /// The scoreboard: schedules ops onto the memory pipeline and the
    /// cluster array. In [`ExecMode::Inline`] it also executes each op
    /// functionally as it issues; in [`ExecMode::Precomputed`] the data
    /// movement already happened and only costs/timing are computed.
    pub(crate) fn schedule(
        &self,
        memory: &mut Memory,
        program: &StreamProgram,
        mode: ExecMode,
    ) -> Result<RunReport, SimError> {
        self.validate_program(program)?;
        let n_ops = program.ops.len();
        let n_bufs = program.buffers.len();

        // ---- static dependence analysis --------------------------------
        // Producer of each buffer; consumers of each buffer.
        let mut producer: Vec<Option<usize>> = vec![None; n_bufs];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n_bufs];
        for (i, lop) in program.ops.iter().enumerate() {
            for b in produced_buffers(&lop.op) {
                if producer[b.0].is_some() {
                    return Err(SimError::Program(format!(
                        "buffer {} has two producers",
                        program.buffers[b.0].name
                    )));
                }
                producer[b.0] = Some(i);
            }
            for b in consumed_buffers(&lop.op) {
                consumers[b.0].push(i);
            }
        }
        // Op-level dependencies: buffer producers, plus region hazards
        // (any earlier op that writes a region this op touches, and any
        // earlier op that reads a region this op writes).
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n_ops];
        for (i, lop) in program.ops.iter().enumerate() {
            for b in consumed_buffers(&lop.op) {
                match producer[b.0] {
                    Some(p) => deps[i].push(p),
                    None => {
                        return Err(SimError::Program(format!(
                            "buffer {} consumed but never produced",
                            program.buffers[b.0].name
                        )))
                    }
                }
            }
            let (reads, writes) = region_access(&lop.op);
            for (j, other) in program.ops.iter().enumerate().take(i) {
                let (oreads, owrites) = region_access(&other.op);
                let raw = reads.iter().any(|r| owrites.contains(r));
                let war = writes.iter().any(|w| oreads.contains(w));
                let waw = writes.iter().any(|w| owrites.contains(w));
                if raw || war || waw {
                    deps[i].push(j);
                }
            }
        }

        // ---- dynamic state ----------------------------------------------
        let mut state = vec![OpState::Waiting; n_ops];
        let mut buffers: Vec<Option<StreamData>> = vec![None; n_bufs];
        let mut buffer_released = vec![false; n_bufs];
        let mut consumers_left: Vec<usize> = consumers.iter().map(|c| c.len()).collect();
        let mut srf = SrfAllocator::new(&self.cfg);
        let mut sdr = SdrFile::new(self.cfg.stream_descriptor_registers);
        // SDRs held by memory op i awaiting a late (naive-policy) release:
        // maps buffer -> count of SDRs released when that buffer dies.
        let mut sdr_held_on_buffer: Vec<usize> = vec![0; n_bufs];
        let mut releases_at_completion: Vec<bool> = vec![false; n_ops];
        let mut memsys = MemSystem::new(&self.cfg);
        let mut timeline = Timeline::default();
        let mut counters = Counters::default();
        let mut phases = PhaseCycles::default();
        let mut mem_free_at: u64 = 0;
        let mut kernel_free_at: u64 = 0;
        let mut now: u64 = 0;
        let mut done_count = 0usize;
        let mut sdr_stall_cycles = 0u64;

        // Release a buffer's SRF space and any naive-policy SDRs parked
        // on it.
        macro_rules! release_buffer {
            ($b:expr, $sdr:ident) => {{
                let b: usize = $b;
                if !buffer_released[b] {
                    buffer_released[b] = true;
                    srf.release(b);
                    for _ in 0..sdr_held_on_buffer[b] {
                        $sdr.release();
                    }
                    sdr_held_on_buffer[b] = 0;
                }
            }};
        }

        // Mark op completion effects.
        macro_rules! complete_op {
            ($i:expr, $end:expr) => {{
                let i: usize = $i;
                state[i] = OpState::Done { end: $end };
                done_count += 1;
                // Consumption bookkeeping: each buffer this op consumed
                // loses one consumer; at zero the buffer dies.
                for b in consumed_buffers(&program.ops[i].op) {
                    consumers_left[b.0] -= 1;
                    if consumers_left[b.0] == 0 {
                        release_buffer!(b.0, sdr);
                    }
                }
                // Buffers produced but never consumed die immediately.
                for b in produced_buffers(&program.ops[i].op) {
                    if consumers[b.0].is_empty() {
                        release_buffer!(b.0, sdr);
                    }
                }
            }};
        }

        while done_count < n_ops {
            // Finish anything that completed by `now`.
            // (Completion is processed when time advances; see below.)

            let mut started_something = false;
            let mut mem_blocked_on_sdr = false;

            // Oldest strip that still has unfinished work bounds the
            // prefetch window.
            let min_incomplete_strip = program
                .ops
                .iter()
                .zip(&state)
                .filter(|(_, st)| !matches!(st, OpState::Done { .. }))
                .map(|(op, _)| op.strip)
                .min()
                .unwrap_or(usize::MAX);

            for i in 0..n_ops {
                if state[i] != OpState::Waiting {
                    continue;
                }
                let lop = &program.ops[i];
                if lop.strip > min_incomplete_strip.saturating_add(self.strip_lookahead) {
                    continue;
                }
                let is_mem = lop.op.is_memory();
                let unit_free = if is_mem {
                    mem_free_at <= now
                } else {
                    kernel_free_at <= now
                };
                if !unit_free {
                    continue;
                }
                let ready = deps[i].iter().all(|&d| match state[d] {
                    OpState::Done { end } => end <= now,
                    _ => false,
                });
                if !ready {
                    continue;
                }
                // Resources: SRF for produced buffers.
                let mut allocated: Vec<usize> = Vec::new();
                let mut srf_ok = true;
                for b in produced_buffers(&lop.op) {
                    let words = buffer_capacity_words(program, &lop.op, b);
                    if words > srf.capacity_words_per_cluster() * self.cfg.clusters {
                        return Err(SimError::SrfImpossible(format!(
                            "buffer {} needs {} words",
                            program.buffers[b.0].name, words
                        )));
                    }
                    match srf.alloc(b.0, words) {
                        Ok(()) => allocated.push(b.0),
                        Err(_) => {
                            srf_ok = false;
                            break;
                        }
                    }
                }
                if !srf_ok {
                    for b in allocated {
                        srf.release(b);
                    }
                    continue;
                }
                // SDR for memory ops.
                if is_mem && !sdr.try_alloc() {
                    for b in &allocated {
                        srf.release(*b);
                    }
                    mem_blocked_on_sdr = true;
                    continue;
                }

                // ---- start the op: functional execution + cost ----------
                let (cost_cycles, unit) = match &lop.op {
                    StreamOp::Gather {
                        region,
                        record_len,
                        indices,
                        dst,
                    } => {
                        let cost = match mode {
                            ExecMode::Inline => {
                                memsys.gather_cost(memory, *region, *record_len, indices, false)
                            }
                            ExecMode::Precomputed(recs) => {
                                recs[i].mem_cost.expect("precomputed gather cost")
                            }
                        };
                        if matches!(mode, ExecMode::Inline) {
                            let mut data = Vec::with_capacity(indices.len() * record_len);
                            let src = memory.data(*region);
                            for &idx in indices.iter() {
                                let s = idx as usize * record_len;
                                data.extend_from_slice(&src[s..s + record_len]);
                            }
                            buffers[dst.0] = Some(StreamData::new(*record_len, data));
                        }
                        counters.mem_refs += cost.words;
                        counters.dram_words += cost.dram_words;
                        counters.cache_hits += cost.cache.hits;
                        counters.cache_misses += cost.cache.misses;
                        (self.cfg.memory_op_startup + cost.cycles, Unit::Memory)
                    }
                    StreamOp::Load {
                        region,
                        record_len,
                        start,
                        records,
                        dst,
                    } => {
                        let cost = match mode {
                            ExecMode::Inline => memsys.sequential_cost(
                                memory,
                                *region,
                                *record_len,
                                *start,
                                *records,
                                false,
                            ),
                            ExecMode::Precomputed(recs) => {
                                recs[i].mem_cost.expect("precomputed load cost")
                            }
                        };
                        if matches!(mode, ExecMode::Inline) {
                            let s = start * record_len;
                            let data = memory.data(*region)[s..s + records * record_len].to_vec();
                            buffers[dst.0] = Some(StreamData::new(*record_len, data));
                        }
                        counters.mem_refs += cost.words;
                        counters.dram_words += cost.dram_words;
                        counters.cache_hits += cost.cache.hits;
                        counters.cache_misses += cost.cache.misses;
                        (self.cfg.memory_op_startup + cost.cycles, Unit::Memory)
                    }
                    StreamOp::ScatterAdd {
                        src,
                        region,
                        record_len,
                        indices,
                    } => {
                        if matches!(mode, ExecMode::Inline) {
                            let data = buffers[src.0]
                                .as_ref()
                                .expect("scatter-add source produced")
                                .clone();
                            if data.num_records() != indices.len() {
                                return Err(SimError::Program(format!(
                                    "scatter-add '{}': {} records vs {} indices",
                                    lop.label,
                                    data.num_records(),
                                    indices.len()
                                )));
                            }
                            let dst = memory.data_mut(*region);
                            for (r, &idx) in indices.iter().enumerate() {
                                let base = idx as usize * *record_len;
                                for f in 0..*record_len {
                                    dst[base + f] += data.record(r)[f];
                                }
                            }
                        }
                        let cost = match mode {
                            ExecMode::Inline => {
                                memsys.scatter_add_cost(memory, *region, *record_len, indices)
                            }
                            ExecMode::Precomputed(recs) => {
                                recs[i].mem_cost.expect("precomputed scatter-add cost")
                            }
                        };
                        counters.mem_refs += cost.words;
                        counters.dram_words += cost.dram_words;
                        counters.cache_hits += cost.cache.hits;
                        counters.cache_misses += cost.cache.misses;
                        (self.cfg.memory_op_startup + cost.cycles, Unit::Memory)
                    }
                    StreamOp::Store {
                        src,
                        region,
                        record_len,
                        start,
                    } => {
                        let cost = match mode {
                            ExecMode::Inline => {
                                let data = buffers[src.0]
                                    .as_ref()
                                    .expect("store source produced")
                                    .clone();
                                let records = data.num_records();
                                let dst = memory.data_mut(*region);
                                let s = start * record_len;
                                dst[s..s + records * record_len].copy_from_slice(&data.data);
                                memsys.sequential_cost(
                                    memory,
                                    *region,
                                    *record_len,
                                    *start,
                                    records,
                                    true,
                                )
                            }
                            ExecMode::Precomputed(recs) => {
                                recs[i].mem_cost.expect("precomputed store cost")
                            }
                        };
                        counters.mem_refs += cost.words;
                        counters.dram_words += cost.dram_words;
                        counters.cache_hits += cost.cache.hits;
                        counters.cache_misses += cost.cache.misses;
                        (self.cfg.memory_op_startup + cost.cycles, Unit::Memory)
                    }
                    StreamOp::Kernel {
                        kernel,
                        inputs,
                        outputs,
                        params,
                        iterations,
                        max_cluster_iterations,
                    } => {
                        let unroll = kernel.opt.unroll as u64;
                        if iterations % unroll != 0 {
                            return Err(SimError::Program(format!(
                                "kernel '{}': {} iterations not divisible by unroll {}",
                                lop.label, iterations, unroll
                            )));
                        }
                        let unrolled_iters = iterations / unroll;
                        let srf_words = match mode {
                            ExecMode::Inline => {
                                let input_data: Vec<StreamData> = inputs
                                    .iter()
                                    .map(|b| {
                                        buffers[b.0]
                                            .as_ref()
                                            .expect("kernel input produced")
                                            .clone()
                                    })
                                    .collect();
                                let (outs, srf_words) = kernel_functional(
                                    &lop.label,
                                    kernel,
                                    input_data,
                                    params,
                                    *iterations,
                                    self.kernel_engine,
                                    self.tape_batch,
                                    program.underrun_proofs.get(&i),
                                )?;
                                for (o, b) in outs.into_iter().zip(outputs) {
                                    buffers[b.0] = Some(o);
                                }
                                srf_words
                            }
                            ExecMode::Precomputed(recs) => recs[i].kernel_srf_words,
                        };
                        counters.srf_refs += srf_words;
                        counters.lrf_refs += kernel.stats.lrf_refs * unrolled_iters;
                        counters.hardware_flops += kernel.stats.hardware_flops * unrolled_iters;
                        counters.hardware_ops += kernel.stats.hardware_ops * unrolled_iters;
                        counters.kernel_iterations += iterations;
                        let c = crate::cluster::kernel_cost(
                            &self.cfg,
                            kernel,
                            *iterations,
                            *max_cluster_iterations,
                        );
                        (c.cycles, Unit::Kernel)
                    }
                };

                let end = now + cost_cycles;
                state[i] = OpState::Running { end };
                match &lop.op {
                    StreamOp::Gather { .. } => phases.gather += cost_cycles,
                    StreamOp::Load { .. } => phases.load += cost_cycles,
                    StreamOp::Kernel { .. } => phases.kernel += cost_cycles,
                    StreamOp::ScatterAdd { .. } => phases.scatter_add += cost_cycles,
                    StreamOp::Store { .. } => phases.store += cost_cycles,
                }
                timeline.record(unit, now, end, &lop.label, lop.strip);
                match unit {
                    Unit::Memory => {
                        mem_free_at = end;
                        // SDR retirement policy: the naive allocator parks
                        // the register on the produced SRF stream and only
                        // frees it when that stream dies; the eager one
                        // (and ops with no produced stream) free it at
                        // operation completion.
                        if self.policy == SdrPolicy::Naive {
                            if let Some(b) = produced_buffers(&lop.op).first() {
                                sdr_held_on_buffer[b.0] += 1;
                            } else {
                                releases_at_completion[i] = true;
                            }
                        } else {
                            releases_at_completion[i] = true;
                        }
                    }
                    Unit::Kernel => kernel_free_at = end,
                }
                started_something = true;
                break; // rescan from the top (unit states changed)
            }

            if started_something {
                continue;
            }

            // Advance time to the next completion.
            let next = state
                .iter()
                .filter_map(|s| match s {
                    OpState::Running { end } => Some(*end),
                    _ => None,
                })
                .min();
            match next {
                Some(t) => {
                    if mem_blocked_on_sdr && mem_free_at <= now {
                        sdr_stall_cycles += t - now;
                    }
                    now = t;
                    // Complete everything ending at or before `now`.
                    for i in 0..n_ops {
                        if let OpState::Running { end } = state[i] {
                            if end <= now {
                                if releases_at_completion[i] {
                                    sdr.release();
                                }
                                complete_op!(i, end);
                            }
                        }
                    }
                }
                None => {
                    return Err(SimError::Deadlock(format!(
                        "{} of {} ops done, nothing running",
                        done_count, n_ops
                    )));
                }
            }
        }

        Ok(RunReport {
            cycles: timeline.makespan(),
            timeline,
            counters,
            phases,
            sdr_peak: sdr.peak(),
            srf_peak_words_per_cluster: srf.peak_words_per_cluster(),
            sdr_stall_cycles,
            // The caller (`run_with_threads`) overwrites these with the
            // partitioner's verdict and, for partitioned runs, the
            // merged per-strip shard stats.
            partition: PartitionSummary::default(),
            cache_stats: memsys.stats(),
        })
    }
}

/// Buffers an op produces.
pub fn produced_buffers(op: &StreamOp) -> Vec<BufferId> {
    match op {
        StreamOp::Gather { dst, .. } | StreamOp::Load { dst, .. } => vec![*dst],
        StreamOp::Kernel { outputs, .. } => outputs.clone(),
        _ => vec![],
    }
}

/// Buffers an op consumes.
fn consumed_buffers(op: &StreamOp) -> Vec<BufferId> {
    match op {
        StreamOp::Kernel { inputs, .. } => inputs.clone(),
        StreamOp::ScatterAdd { src, .. } | StreamOp::Store { src, .. } => vec![*src],
        _ => vec![],
    }
}

/// (regions read, regions written)
fn region_access(op: &StreamOp) -> (Vec<usize>, Vec<usize>) {
    match op {
        StreamOp::Gather { region, .. } | StreamOp::Load { region, .. } => (vec![region.0], vec![]),
        StreamOp::ScatterAdd { region, .. } | StreamOp::Store { region, .. } => {
            (vec![], vec![region.0])
        }
        StreamOp::Kernel { .. } => (vec![], vec![]),
    }
}

/// Worst-case SRF words a produced buffer can hold.
pub fn buffer_capacity_words(program: &StreamProgram, op: &StreamOp, b: BufferId) -> usize {
    match op {
        StreamOp::Gather {
            indices,
            record_len,
            ..
        } => indices.len() * record_len,
        StreamOp::Load {
            records,
            record_len,
            ..
        } => records * record_len,
        StreamOp::Kernel {
            kernel,
            iterations,
            outputs,
            ..
        } => {
            let record_len = program.buffers[b.0].record_len;
            // Writes per unrolled iteration to this output stream.
            let out_idx = outputs
                .iter()
                .position(|o| *o == b)
                .expect("output belongs to kernel");
            let writes = kernel
                .ir
                .writes
                .iter()
                .filter(|w| w.stream as usize == out_idx)
                .count()
                .max(1);
            let unrolled = (*iterations as usize).div_ceil(kernel.opt.unroll as usize);
            unrolled * writes * record_len
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernelc::{CompiledKernel, KernelOpt};
    use crate::program::ProgramBuilder;
    use merrimac_kernel::ir::StreamMode;
    use merrimac_kernel::KernelBuilder;
    use std::sync::Arc;

    /// y = x*x kernel.
    fn square_kernel(cfg: &MachineConfig, opt: KernelOpt) -> Arc<CompiledKernel> {
        let mut b = KernelBuilder::new("square");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let x = b.read(s, 0);
        let y = b.mul(x, x);
        b.write(o, &[y]);
        Arc::new(CompiledKernel::compile(
            b.build(),
            cfg,
            &OpCosts::default(),
            opt,
        ))
    }

    fn run_square(n: usize) -> (Vec<f64>, RunReport) {
        let cfg = MachineConfig::default();
        let mut mem = Memory::new();
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let src = mem.region("xs", xs);
        let out = mem.region("ys", vec![0.0; n]);
        let k = square_kernel(&cfg, KernelOpt::default());
        let mut pb = ProgramBuilder::new();
        let bx = pb.buffer("x", 1);
        let by = pb.buffer("y", 1);
        pb.load("load x", src, 1, 0, n, bx);
        pb.kernel(
            "square",
            k,
            vec![bx],
            vec![by],
            vec![],
            n as u64,
            (n as u64).div_ceil(16),
        );
        pb.store("store y", by, out, 1, 0);
        let program = pb.build();
        let proc = StreamProcessor::new(cfg);
        let report = proc.run(&mut mem, &program).expect("runs");
        (mem.data(out).to_vec(), report)
    }

    #[test]
    fn functional_execution_is_exact() {
        let (ys, _) = run_square(100);
        for (i, y) in ys.iter().enumerate() {
            assert_eq!(*y, (i * i) as f64);
        }
    }

    #[test]
    fn counters_track_traffic() {
        let (_, r) = run_square(64);
        assert_eq!(r.counters.kernel_iterations, 64);
        // load 64 + store 64 words.
        assert_eq!(r.counters.mem_refs, 128);
        // SRF references count the kernel-side stream I/O (64 in + 64
        // out); the memory-transfer side is the MEM count.
        assert_eq!(r.counters.srf_refs, 128);
        assert!(r.counters.lrf_refs > 0);
        assert!(r.cycles > 0);
    }

    #[test]
    fn phase_cycles_partition_unit_busy_time() {
        let (_, r) = run_square(256);
        assert_eq!(
            r.phases.memory(),
            r.timeline.busy(crate::timeline::Unit::Memory),
            "memory phases must sum to the memory unit's busy time"
        );
        assert_eq!(
            r.phases.kernel,
            r.timeline.busy(crate::timeline::Unit::Kernel)
        );
        assert!(r.phases.load > 0 && r.phases.store > 0 && r.phases.kernel > 0);
        assert_eq!(r.phases.gather, 0);
        assert_eq!(r.phases.scatter_add, 0);
    }

    #[test]
    fn oversized_kernel_working_set_is_rejected_up_front() {
        // One kernel whose input + output streams exceed the whole SRF:
        // previously this wedged the scoreboard; now the preflight names
        // the strip size.
        let cfg = MachineConfig::default();
        let capacity = cfg.srf_words_per_cluster * cfg.clusters;
        let n = capacity / 2 + cfg.clusters; // in + out > capacity
        let mut mem = Memory::new();
        let src = mem.region("xs", vec![1.0; n]);
        let out = mem.region("ys", vec![0.0; n]);
        let k = square_kernel(&cfg, KernelOpt::default());
        let mut pb = ProgramBuilder::new();
        let bx = pb.buffer("x", 1);
        let by = pb.buffer("y", 1);
        pb.load("load x", src, 1, 0, n, bx);
        pb.kernel(
            "square huge",
            k,
            vec![bx],
            vec![by],
            vec![],
            n as u64,
            (n as u64).div_ceil(16),
        );
        pb.store("store y", by, out, 1, 0);
        let program = pb.build();
        let err = StreamProcessor::new(cfg)
            .run(&mut mem, &program)
            .expect_err("must be rejected");
        match &err {
            SimError::StripSrfOverflow {
                strip_iterations,
                needed_words_per_cluster,
                capacity_words_per_cluster,
                ..
            } => {
                assert_eq!(*strip_iterations, n as u64);
                assert!(needed_words_per_cluster > capacity_words_per_cluster);
            }
            other => panic!("expected StripSrfOverflow, got {other:?}"),
        }
        // The diagnostic must name the strip size.
        assert!(err.to_string().contains(&n.to_string()), "{err}");
    }

    #[test]
    fn scatter_add_accumulates() {
        let cfg = MachineConfig::default();
        let mut mem = Memory::new();
        let vals = mem.region("vals", vec![1.0, 2.0, 3.0, 4.0]);
        let acc = mem.region("acc", vec![0.0; 2]);
        let mut pb = ProgramBuilder::new();
        let bv = pb.buffer("v", 1);
        pb.load("load", vals, 1, 0, 4, bv);
        pb.scatter_add("scatter", bv, acc, 1, Arc::new(vec![0, 1, 0, 1]));
        let program = pb.build();
        StreamProcessor::new(cfg).run(&mut mem, &program).unwrap();
        assert_eq!(mem.data(acc), &[4.0, 6.0]);
    }

    #[test]
    fn strip_pipelining_overlaps_memory_and_compute() {
        // Two strips: gather(1) should overlap kernel(0).
        let cfg = MachineConfig::default();
        let k = square_kernel(&cfg, KernelOpt::default());
        let n = 4096usize;
        let mut mem = Memory::new();
        let xs = mem.region("xs", (0..2 * n).map(|i| i as f64).collect());
        let out = mem.region("out", vec![0.0; 2 * n]);
        let mut pb = ProgramBuilder::new();
        for strip in 0..2 {
            pb.strip(strip);
            let bx = pb.buffer(&format!("x{strip}"), 1);
            let by = pb.buffer(&format!("y{strip}"), 1);
            let idx: Vec<u32> = (0..n as u32)
                .map(|i| i + (strip as u32) * n as u32)
                .collect();
            pb.gather(format!("gather {strip}"), xs, 1, Arc::new(idx), bx);
            pb.kernel(
                format!("kernel {strip}"),
                k.clone(),
                vec![bx],
                vec![by],
                vec![],
                n as u64,
                (n as u64).div_ceil(16),
            );
            pb.store(format!("store {strip}"), by, out, 1, strip * n);
        }
        let program = pb.build();
        let r = StreamProcessor::new(cfg).run(&mut mem, &program).unwrap();
        assert!(
            r.timeline.overlap() > 0,
            "expected memory/compute overlap, got none:\n{}",
            r.timeline.render(24)
        );
        // Functional correctness across strips.
        assert_eq!(mem.data(out)[2 * n - 1], ((2 * n - 1) * (2 * n - 1)) as f64);
    }

    #[test]
    fn naive_sdr_policy_hurts_overlap_when_registers_scarce() {
        let cfg = MachineConfig {
            stream_descriptor_registers: 2,
            ..MachineConfig::default()
        };
        let k = square_kernel(&cfg, KernelOpt::default());
        let n = 4096usize;
        let strips = 6;
        let build = || {
            let mut mem = Memory::new();
            let xs = mem.region("xs", (0..strips * n).map(|i| i as f64).collect());
            let out = mem.region("out", vec![0.0; strips * n]);
            let mut pb = ProgramBuilder::new();
            for strip in 0..strips {
                pb.strip(strip);
                let bx = pb.buffer(&format!("x{strip}"), 1);
                let by = pb.buffer(&format!("y{strip}"), 1);
                let idx: Vec<u32> = (0..n as u32)
                    .map(|i| i + (strip as u32) * n as u32)
                    .collect();
                pb.gather(format!("gather {strip}"), xs, 1, Arc::new(idx), bx);
                pb.kernel(
                    format!("kernel {strip}"),
                    k.clone(),
                    vec![bx],
                    vec![by],
                    vec![],
                    n as u64,
                    (n as u64).div_ceil(16),
                );
                pb.store(format!("store {strip}"), by, out, 1, strip * n);
            }
            (mem, pb.build())
        };
        let (mut m1, p1) = build();
        let naive = StreamProcessor::new(cfg.clone())
            .with_policy(SdrPolicy::Naive)
            .run(&mut m1, &p1)
            .unwrap();
        let (mut m2, p2) = build();
        let eager = StreamProcessor::new(cfg)
            .with_policy(SdrPolicy::Eager)
            .run(&mut m2, &p2)
            .unwrap();
        assert!(
            eager.cycles <= naive.cycles,
            "eager {} should not exceed naive {}",
            eager.cycles,
            naive.cycles
        );
        // Both policies must compute identical results.
        use crate::program::RegionId;
        assert_eq!(m1.data(RegionId(1)), m2.data(RegionId(1)));
    }
}

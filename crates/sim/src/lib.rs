//! Stream-level simulator of a Merrimac node.
//!
//! The simulator is *timing-first, functionally exact*: every stream
//! memory operation really moves `f64` data between the node memory and
//! SRF buffers, every kernel launch really executes its dataflow graph
//! through the kernel interpreter, and scatter-add really performs the
//! atomic summations — so the forces StreamMD computes here are compared
//! against the reference MD engine to tight tolerances. On top of the
//! functional execution sits a cycle model with the paper's architectural
//! parameters:
//!
//! * [`memsys`] — address generators, the 8-bank line-interleaved stream
//!   cache, DRDRAM channels, and the scatter-add units with their
//!   combining store;
//! * [`cluster`] — SIMD kernel execution timed by the VLIW schedule from
//!   `merrimac-kernel` (pipelined II in steady state, start-up costs);
//! * [`sdr`] — the stream-descriptor-register file whose allocation
//!   policy is the subject of Figure 7;
//! * [`machine`] — the scoreboard that issues stream operations onto the
//!   memory system and cluster array, exposing the software-pipelined
//!   overlap of Figure 5;
//! * [`timeline`]/[`counters`] — the measurement layer behind Figures
//!   7–9 and Table 4.

pub mod cache;
pub mod cluster;
pub mod counters;
pub mod kernelc;
pub mod machine;
pub mod memsys;
pub mod parallel;
pub mod program;
pub mod sdr;
pub mod srf;
pub mod timeline;

pub use cache::CacheAccessStats;
pub use counters::{Counters, PhaseCycles};
pub use kernelc::{CompiledKernel, KernelOpt};
pub use machine::{
    buffer_capacity_words, produced_buffers, KernelEngine, RunReport, SimError, StreamProcessor,
};
pub use memsys::{MemOpCost, MemSystem};
pub use merrimac_kernel::BatchWidth;
pub use parallel::{
    partition_program, read_write_hazards, FallbackKind, FallbackReason, OrderingHazard,
    PartitionReport, PartitionSummary,
};
pub use program::{
    AccessIntent, AccessKind, BufferId, Memory, ProgramBuilder, RegionId, StreamOp, StreamProgram,
};
pub use sdr::SdrPolicy;
pub use timeline::Timeline;

//! Compiled kernels: IR + lowered form + schedules + static statistics,
//! bundled for launch by the stream unit.

use merrimac_arch::{MachineConfig, OpCosts};
use merrimac_kernel::{
    list_schedule, lower::lower_kernel, modulo_schedule, unroll::unroll, CompiledTape, Kernel,
    KernelStats, PipelinedSchedule, Schedule,
};

/// Compilation options — the knobs Figure 10 turns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelOpt {
    /// Loop unroll factor (Figure 10b uses 2).
    pub unroll: u32,
    /// Software pipelining on/off (off = the Figure 10a schedule).
    pub software_pipeline: bool,
}

impl Default for KernelOpt {
    fn default() -> Self {
        Self {
            unroll: 1,
            software_pipeline: true,
        }
    }
}

impl KernelOpt {
    /// The unoptimized configuration of Figure 10a.
    pub fn unoptimized() -> Self {
        Self {
            unroll: 1,
            software_pipeline: false,
        }
    }

    /// The optimized configuration of Figure 10b.
    pub fn optimized() -> Self {
        Self {
            unroll: 2,
            software_pipeline: true,
        }
    }
}

/// A kernel ready to launch: functional IR plus timing schedules.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Original (pre-unroll, pre-lowering) kernel.
    pub source: Kernel,
    /// Unrolled (if requested) high-level kernel — the form the
    /// interpreter executes.
    pub ir: Kernel,
    /// Bytecode tape compiled from [`CompiledKernel::ir`] — the form
    /// the default functional engine executes. Compiled once here and
    /// shared across strips/threads through the `Arc<CompiledKernel>`
    /// every stream program holds.
    pub tape: CompiledTape,
    /// Lowered form the schedules refer to.
    pub lowered: Kernel,
    /// Non-pipelined schedule.
    pub schedule: Schedule,
    /// Modulo schedule (present when software pipelining is enabled).
    pub pipelined: Option<PipelinedSchedule>,
    /// Static statistics of the *unrolled* kernel (per unrolled
    /// iteration).
    pub stats: KernelStats,
    /// Statistics of one source iteration.
    pub source_stats: KernelStats,
    pub opt: KernelOpt,
}

impl CompiledKernel {
    /// Compile `kernel` for the given machine.
    pub fn compile(kernel: Kernel, cfg: &MachineConfig, costs: &OpCosts, opt: KernelOpt) -> Self {
        kernel.validate_ssa();
        let source_lowered = lower_kernel(&kernel, costs);
        let source_stats = KernelStats::analyze(&kernel, &source_lowered);
        let ir = unroll(&kernel, opt.unroll);
        let tape = CompiledTape::compile(&ir);
        let lowered = lower_kernel(&ir, costs);
        let schedule = list_schedule(&lowered, costs, cfg.fpus_per_cluster);
        let pipelined = if opt.software_pipeline {
            Some(modulo_schedule(&lowered, costs, cfg.fpus_per_cluster))
        } else {
            None
        };
        let stats = KernelStats::analyze(&ir, &lowered);
        Self {
            source: kernel,
            ir,
            tape,
            lowered,
            schedule,
            pipelined,
            stats,
            source_stats,
            opt,
        }
    }

    /// Cycles for `source_iterations` original loop iterations on one
    /// cluster (excluding kernel start-up, which the machine model adds).
    pub fn cluster_cycles(&self, source_iterations: u64) -> u64 {
        let unrolled_iters = source_iterations.div_ceil(self.opt.unroll as u64);
        match &self.pipelined {
            Some(p) => p.cycles_for(unrolled_iters),
            None => unrolled_iters * self.schedule.length,
        }
    }

    /// Steady-state cycles per *source* iteration.
    pub fn cycles_per_iteration(&self) -> f64 {
        let per_unrolled = match &self.pipelined {
            Some(p) => p.ii as f64,
            None => self.schedule.length as f64,
        };
        per_unrolled / self.opt.unroll as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merrimac_kernel::ir::StreamMode;
    use merrimac_kernel::KernelBuilder;

    fn demo_kernel() -> Kernel {
        let mut b = KernelBuilder::new("demo");
        let s = b.input("xy", 2, StreamMode::EveryIteration);
        let o = b.output("z", 1);
        let x = b.read(s, 0);
        let y = b.read(s, 1);
        let r = b.rsqrt(x);
        let d = b.div(y, x);
        let m = b.madd(r, d, y);
        b.write(o, &[m]);
        b.build()
    }

    #[test]
    fn optimized_beats_unoptimized_per_iteration() {
        let cfg = MachineConfig::default();
        let costs = OpCosts::default();
        let unopt = CompiledKernel::compile(demo_kernel(), &cfg, &costs, KernelOpt::unoptimized());
        let opt = CompiledKernel::compile(demo_kernel(), &cfg, &costs, KernelOpt::optimized());
        assert!(
            opt.cycles_per_iteration() < unopt.cycles_per_iteration(),
            "optimized {} !< unoptimized {}",
            opt.cycles_per_iteration(),
            unopt.cycles_per_iteration()
        );
    }

    #[test]
    fn cluster_cycles_scale_linearly_in_steady_state() {
        let cfg = MachineConfig::default();
        let costs = OpCosts::default();
        let k = CompiledKernel::compile(demo_kernel(), &cfg, &costs, KernelOpt::default());
        let c100 = k.cluster_cycles(100);
        let c200 = k.cluster_cycles(200);
        let ii = k.pipelined.as_ref().unwrap().ii;
        assert_eq!(c200 - c100, 100 * ii);
    }

    #[test]
    fn unroll_preserves_per_source_stats() {
        let cfg = MachineConfig::default();
        let costs = OpCosts::default();
        let k = CompiledKernel::compile(demo_kernel(), &cfg, &costs, KernelOpt::optimized());
        assert_eq!(k.stats.solution_flops, 2 * k.source_stats.solution_flops);
    }

    #[test]
    fn zero_iterations_cost_nothing_steady() {
        let cfg = MachineConfig::default();
        let costs = OpCosts::default();
        let k = CompiledKernel::compile(demo_kernel(), &cfg, &costs, KernelOpt::default());
        assert_eq!(k.cluster_cycles(0), 0);
    }
}

//! Parallel execution engine: fan per-strip functional work *and*
//! per-strip memory timing across host threads, then replay the
//! (inherently sequential) scoreboard against precomputed results.
//!
//! The split is sound because every cost function in [`crate::memsys`]
//! and [`crate::cluster`] depends only on *addresses, indices and
//! static op shapes* — never on region data values — so the timing
//! pass produces bitwise-identical cycles and counters whether or not
//! it executed the data movement itself.
//!
//! ## The access-intent partition contract
//!
//! [`partition_program`] admits a program to the parallel path when
//! every strip's work is independent under the declared (or safely
//! inferable) per-region access intents:
//!
//! * regions that are only **read** (gather/load) may be shared by any
//!   number of strips — read sharing is always safe;
//! * regions that are only **scatter-added** ([`AccessIntent::ReduceAdd`])
//!   accumulate into per-strip overlays merged by the deterministic
//!   tree reduction;
//! * regions that are **stored** (and, if declared
//!   [`AccessIntent::WriteOwned`], also read) parallelize when each
//!   strip owns a provably disjoint slice and no read *overlaps* an
//!   earlier store's word range in program order
//!   ([`read_write_hazards`]) — the phase-A pass reads pre-state, so a
//!   read that follows an overlapping write would observe stale data.
//!   Reads of ranges disjoint from every earlier store compose freely,
//!   which is what admits software-pipelined in-place update patterns
//!   (strip *k* loads, transforms and stores back its own slice before
//!   strip *k+1* starts).
//!
//! Anything else produces a typed [`FallbackReason`] and the program
//! runs on the serial scoreboard with the shared-cache memory model
//! (still exact, just not parallel).
//!
//! ## Determinism contract
//!
//! For a partitioned program, execution produces bitwise-identical
//! region contents, forces, cycles and counters at **every** thread
//! count (including 1). Four properties guarantee it:
//!
//! 1. the per-strip map is order-preserving and each strip's execution
//!    is pure given the (read-only) input regions;
//! 2. scatter-add contributions are accumulated into per-strip overlay
//!    buffers and merged by a *fixed-shape* pairwise tree over strip
//!    index — the tree's shape depends only on the strip count, never
//!    on the worker count or completion order;
//! 3. each strip's memory ops are costed in op-index order against a
//!    private cold [`MemSystem`] shard ([`MemSystem::strip_shard`]), so
//!    a strip's costs are a pure function of its own address trace;
//!    per-strip [`CacheAccessStats`] merge in ascending strip order;
//! 4. the timing pass is serial and byte-for-byte the same scoreboard
//!    as the fallback path, consuming the precomputed per-op costs.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use merrimac_arch::MachineConfig;
use merrimac_kernel::interp::StreamData;
use merrimac_kernel::BatchWidth;
use rayon::prelude::*;

use crate::cache::CacheAccessStats;
use crate::counters::Counters;
use crate::machine::{
    buffer_capacity_words, kernel_functional, produced_buffers, ExecMode, KernelEngine, OpRecord,
    RunReport, SimError, StreamProcessor,
};
use crate::memsys::MemSystem;
use crate::program::{
    AccessIntent, AccessKind, BufferId, Memory, RegionId, StreamOp, StreamProgram,
};

/// Why a program could not be partitioned across strips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// An SRF buffer is produced in one strip and consumed in another,
    /// so the strips are not independent units of work.
    BufferCrossesStrips {
        buffer: BufferId,
        strips: (usize, usize),
    },
    /// A region is accessed with incompatible kinds (e.g. read in one
    /// strip, stored in another without a `WriteOwned` declaration).
    RegionConflict {
        region: RegionId,
        strips: (usize, usize),
        kinds: (AccessKind, AccessKind),
    },
    /// Two strips store overlapping word ranges of the same region, so
    /// the merge order would be observable.
    WriteWriteOverlap {
        region: RegionId,
        strips: (usize, usize),
    },
    /// A `WriteOwned` region is read *after* an overlapping store in
    /// program order; the phase-A pass reads pre-state and would
    /// observe stale data.
    ReadAfterWrite {
        region: RegionId,
        strips: (usize, usize),
    },
}

impl FallbackReason {
    /// The reason's kind, for compact summaries.
    pub fn kind(&self) -> FallbackKind {
        match self {
            FallbackReason::BufferCrossesStrips { .. } => FallbackKind::BufferCrossesStrips,
            FallbackReason::RegionConflict { .. } => FallbackKind::RegionConflict,
            FallbackReason::WriteWriteOverlap { .. } => FallbackKind::WriteWriteOverlap,
            FallbackReason::ReadAfterWrite { .. } => FallbackKind::ReadAfterWrite,
        }
    }

    /// Human-readable description naming the buffer/region involved.
    pub fn describe(&self, program: &StreamProgram, memory: &Memory) -> String {
        let region_name = |r: &RegionId| {
            if r.0 < memory.num_regions() {
                format!("'{}'", memory.name(*r))
            } else {
                format!("#{}", r.0)
            }
        };
        match self {
            FallbackReason::BufferCrossesStrips { buffer, strips } => {
                let name = program
                    .buffers
                    .get(buffer.0)
                    .map(|b| b.name.clone())
                    .unwrap_or_else(|| format!("#{}", buffer.0));
                format!(
                    "buffer '{name}' is used by strips {} and {}",
                    strips.0, strips.1
                )
            }
            FallbackReason::RegionConflict {
                region,
                strips,
                kinds,
            } => format!(
                "region {} is {} by strip {} and {} by strip {} (no compatible intent)",
                region_name(region),
                kinds.0,
                strips.0,
                kinds.1,
                strips.1
            ),
            FallbackReason::WriteWriteOverlap { region, strips } => format!(
                "strips {} and {} store overlapping ranges of region {}",
                strips.0,
                strips.1,
                region_name(region)
            ),
            FallbackReason::ReadAfterWrite { region, strips } => format!(
                "write-owned region {} is written by strip {} before strip {} reads an overlapping range",
                region_name(region),
                strips.1,
                strips.0
            ),
        }
    }
}

/// Compact classification of [`FallbackReason`], suitable for reports
/// and the benchmark JSON schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FallbackKind {
    BufferCrossesStrips,
    RegionConflict,
    WriteWriteOverlap,
    ReadAfterWrite,
}

impl FallbackKind {
    /// Stable string code used in `BENCH_*.json` (schema 3).
    pub fn code(&self) -> &'static str {
        match self {
            FallbackKind::BufferCrossesStrips => "buffer_crosses_strips",
            FallbackKind::RegionConflict => "region_conflict",
            FallbackKind::WriteWriteOverlap => "write_write_overlap",
            FallbackKind::ReadAfterWrite => "read_after_write",
        }
    }

    /// Inverse of [`FallbackKind::code`].
    pub fn from_code(code: &str) -> Option<Self> {
        match code {
            "buffer_crosses_strips" => Some(FallbackKind::BufferCrossesStrips),
            "region_conflict" => Some(FallbackKind::RegionConflict),
            "write_write_overlap" => Some(FallbackKind::WriteWriteOverlap),
            "read_after_write" => Some(FallbackKind::ReadAfterWrite),
            _ => None,
        }
    }
}

/// Copyable digest of a [`PartitionReport`], carried on every
/// [`RunReport`] and surfaced through `PhaseBreakdown` into the bench
/// schema.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionSummary {
    /// Did the program run on the parallel per-strip engine?
    pub parallelized: bool,
    /// Number of strip groups the partitioner formed.
    pub strips: u32,
    /// Why the program fell back to serial, if it did.
    pub fallback: Option<FallbackKind>,
}

/// The strip partitioner's full verdict on a program.
#[derive(Debug, Clone)]
pub struct PartitionReport {
    /// Op indices grouped by strip, in ascending strip order.
    pub strips: Vec<Vec<usize>>,
    /// Regions read by two or more strips (the read-shared positions
    /// table of StreamMD is the motivating case).
    pub read_shared_regions: Vec<RegionId>,
    /// Scatter-add reduction targets merged across strips.
    pub reduce_regions: Vec<RegionId>,
    /// Regions stored (and possibly read, under `WriteOwned`) in
    /// provably disjoint per-strip slices.
    pub owned_write_regions: Vec<RegionId>,
    /// `None` iff the program parallelizes.
    pub fallback: Option<FallbackReason>,
}

impl PartitionReport {
    /// Did the partitioner admit the program to the parallel path?
    pub fn is_parallel(&self) -> bool {
        self.fallback.is_none()
    }

    /// Copyable digest for reports.
    pub fn summary(&self) -> PartitionSummary {
        PartitionSummary {
            parallelized: self.fallback.is_none(),
            strips: self.strips.len() as u32,
            fallback: self.fallback.as_ref().map(FallbackReason::kind),
        }
    }

    /// Human-readable description, printed under
    /// `MERRIMAC_PARTITION_VERBOSE`.
    pub fn describe(&self, program: &StreamProgram, memory: &Memory) -> String {
        match &self.fallback {
            Some(reason) => format!(
                "partition: serial fallback ({}) — {}",
                reason.kind().code(),
                reason.describe(program, memory)
            ),
            None => {
                let names = |rs: &[RegionId]| {
                    rs.iter()
                        .map(|r| memory.name(*r).to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                format!(
                    "partition: parallel across {} strips; read-shared: [{}]; reduce: [{}]; owned-write: [{}]",
                    self.strips.len(),
                    names(&self.read_shared_regions),
                    names(&self.reduce_regions),
                    names(&self.owned_write_regions)
                )
            }
        }
    }
}

/// One region access seen by the partitioner.
struct RegionAccess {
    strip: usize,
    kind: AccessKind,
    /// Word range a store writes (upper bound via the source buffer's
    /// capacity), for the cross-strip disjointness check.
    store_range: Option<(usize, usize)>,
}

/// A read that follows an overlapping store of the same region in
/// program order — the pair the per-strip ordering analysis flags.
///
/// The phase-A parallel pass reads *pre-state* (stores are buffered and
/// applied after every strip finishes), so such a read would observe
/// stale data under parallel execution even though the serial
/// scoreboard handles it correctly. Word ranges are conservative upper
/// bounds: stores via the source buffer's capacity, gathers via the
/// bounding box of their indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderingHazard {
    pub region: RegionId,
    /// Op index of the earlier store.
    pub write_op: usize,
    pub write_strip: usize,
    /// Word range `[start, end)` the store writes.
    pub write_range: (usize, usize),
    /// Op index of the later, overlapping read.
    pub read_op: usize,
    pub read_strip: usize,
    /// Word range `[start, end)` the read covers.
    pub read_range: (usize, usize),
}

/// Stores seen so far per region: `(op index, strip, word range)`.
type StoresByRegion = BTreeMap<usize, Vec<(usize, usize, (usize, usize))>>;

/// Per-strip read/write ordering analysis: every (store, later
/// overlapping read) pair on the same region, in program order.
///
/// An empty result means the program is free of read-after-write
/// hazards and `WriteOwned` regions are eligible for the parallel
/// path (subject to the cross-strip store-disjointness check). Reads
/// whose ranges are disjoint from every earlier store — the
/// software-pipelined in-place update pattern — produce no hazard.
/// Same-strip pairs count too: phase A buffers stores and reads
/// pre-state even within one strip.
pub fn read_write_hazards(program: &StreamProgram) -> Vec<OrderingHazard> {
    // Producer op of each buffer, bounding store ranges by capacity.
    let mut producer: HashMap<usize, usize> = HashMap::new();
    for (i, lop) in program.ops.iter().enumerate() {
        for b in produced_buffers(&lop.op) {
            producer.entry(b.0).or_insert(i);
        }
    }
    let mut writes: StoresByRegion = BTreeMap::new();
    let mut hazards = Vec::new();
    for (i, lop) in program.ops.iter().enumerate() {
        match &lop.op {
            StreamOp::Load {
                region,
                record_len,
                start,
                records,
                ..
            } => {
                let r = (start * record_len, (start + records) * record_len);
                note_read(&writes, &mut hazards, *region, i, lop.strip, r);
            }
            StreamOp::Gather {
                region,
                record_len,
                indices,
                ..
            } => {
                let (Some(min), Some(max)) = (indices.iter().min(), indices.iter().max()) else {
                    continue; // empty gather reads nothing
                };
                let r = (*min as usize * record_len, (*max as usize + 1) * record_len);
                note_read(&writes, &mut hazards, *region, i, lop.strip, r);
            }
            StreamOp::Store {
                src,
                region,
                record_len,
                start,
            } => {
                let cap = producer
                    .get(&src.0)
                    .map(|&p| buffer_capacity_words(program, &program.ops[p].op, *src))
                    .unwrap_or(0);
                let s = start * record_len;
                writes
                    .entry(region.0)
                    .or_default()
                    .push((i, lop.strip, (s, s + cap)));
            }
            StreamOp::Kernel { .. } | StreamOp::ScatterAdd { .. } => {}
        }
    }
    hazards
}

/// Record hazards for one read against every earlier overlapping store.
fn note_read(
    writes: &StoresByRegion,
    hazards: &mut Vec<OrderingHazard>,
    region: RegionId,
    read_op: usize,
    read_strip: usize,
    read_range: (usize, usize),
) {
    let Some(ws) = writes.get(&region.0) else {
        return;
    };
    for &(write_op, write_strip, write_range) in ws {
        if write_range.0 < read_range.1 && read_range.0 < write_range.1 {
            hazards.push(OrderingHazard {
                region,
                write_op,
                write_strip,
                write_range,
                read_op,
                read_strip,
                read_range,
            });
        }
    }
}

/// Classify `program` for parallel strip execution under the declared
/// access intents. See the module docs for the full contract.
pub fn partition_program(program: &StreamProgram) -> PartitionReport {
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, lop) in program.ops.iter().enumerate() {
        groups.entry(lop.strip).or_default().push(i);
    }
    let strips: Vec<Vec<usize>> = groups.into_values().collect();
    let fail = |fallback: FallbackReason| PartitionReport {
        strips: Vec::new(),
        read_shared_regions: Vec::new(),
        reduce_regions: Vec::new(),
        owned_write_regions: Vec::new(),
        fallback: Some(fallback),
    };

    // Every SRF buffer must live within one strip.
    let mut buffer_strip: HashMap<usize, usize> = HashMap::new();
    for lop in &program.ops {
        let bufs: Vec<usize> = match &lop.op {
            StreamOp::Gather { dst, .. } | StreamOp::Load { dst, .. } => vec![dst.0],
            StreamOp::Kernel {
                inputs, outputs, ..
            } => inputs.iter().chain(outputs).map(|b| b.0).collect(),
            StreamOp::ScatterAdd { src, .. } | StreamOp::Store { src, .. } => vec![src.0],
        };
        for b in bufs {
            let home = *buffer_strip.entry(b).or_insert(lop.strip);
            if home != lop.strip {
                return fail(FallbackReason::BufferCrossesStrips {
                    buffer: BufferId(b),
                    strips: (home, lop.strip),
                });
            }
        }
    }

    // Producer op of each buffer, for bounding store ranges.
    let mut producer: HashMap<usize, usize> = HashMap::new();
    for (i, lop) in program.ops.iter().enumerate() {
        for b in produced_buffers(&lop.op) {
            producer.entry(b.0).or_insert(i);
        }
    }

    // Per-strip ordering analysis, consumed by the `WriteOwned`
    // admission below: only reads that *overlap* an earlier store's
    // range are hazards.
    let hazards = read_write_hazards(program);

    // Per-region access lists, in op-index order.
    let mut accesses: BTreeMap<usize, Vec<RegionAccess>> = BTreeMap::new();
    for lop in program.ops.iter() {
        let Some((region, kind)) = lop.op.region_use() else {
            continue;
        };
        let store_range = match &lop.op {
            StreamOp::Store {
                src,
                record_len,
                start,
                ..
            } => {
                let cap = producer
                    .get(&src.0)
                    .map(|&p| buffer_capacity_words(program, &program.ops[p].op, *src))
                    .unwrap_or(0);
                let s = start * record_len;
                Some((s, s + cap))
            }
            _ => None,
        };
        accesses.entry(region.0).or_default().push(RegionAccess {
            strip: lop.strip,
            kind,
            store_range,
        });
    }

    let mut read_shared_regions = Vec::new();
    let mut reduce_regions = Vec::new();
    let mut owned_write_regions = Vec::new();
    for (region, accs) in &accesses {
        let region = RegionId(*region);
        let first = |k: AccessKind| accs.iter().find(|a| a.kind == k);
        let reads: Vec<&RegionAccess> =
            accs.iter().filter(|a| a.kind == AccessKind::Read).collect();
        let has_reduce = accs.iter().any(|a| a.kind == AccessKind::Reduce);
        let writes: Vec<&RegionAccess> = accs
            .iter()
            .filter(|a| a.kind == AccessKind::Write)
            .collect();

        // Reductions compose with nothing else: a read would observe
        // pre-reduction state, a store would race the merge.
        if has_reduce {
            let reduce = first(AccessKind::Reduce).expect("reduce access present");
            if let Some(r) = reads.first() {
                return fail(FallbackReason::RegionConflict {
                    region,
                    strips: (r.strip, reduce.strip),
                    kinds: (AccessKind::Read, AccessKind::Reduce),
                });
            }
            if let Some(w) = writes.first() {
                return fail(FallbackReason::RegionConflict {
                    region,
                    strips: (reduce.strip, w.strip),
                    kinds: (AccessKind::Reduce, AccessKind::Write),
                });
            }
        }

        // Reads and writes mix only under a declared `WriteOwned`
        // intent, and only when no read overlaps an earlier store's
        // word range (phase A reads pre-state). Disjoint-range reads
        // after a store — the software-pipelined in-place update
        // pattern — are admitted.
        if !reads.is_empty() && !writes.is_empty() {
            if program.declared_intent(region) != Some(AccessIntent::WriteOwned) {
                return fail(FallbackReason::RegionConflict {
                    region,
                    strips: (reads[0].strip, writes[0].strip),
                    kinds: (AccessKind::Read, AccessKind::Write),
                });
            }
            if let Some(h) = hazards.iter().find(|h| h.region == region) {
                return fail(FallbackReason::ReadAfterWrite {
                    region,
                    strips: (h.read_strip, h.write_strip),
                });
            }
        }

        // Stores from different strips must target provably disjoint
        // word ranges (same-strip stores are ordered by the scoreboard's
        // WAW hazard and replayed in op order).
        for (ai, a) in writes.iter().enumerate() {
            for b in writes.iter().skip(ai + 1) {
                if a.strip == b.strip {
                    continue;
                }
                let (a0, a1) = a.store_range.expect("store range");
                let (b0, b1) = b.store_range.expect("store range");
                if a0 < b1 && b0 < a1 {
                    return fail(FallbackReason::WriteWriteOverlap {
                        region,
                        strips: (a.strip, b.strip),
                    });
                }
            }
        }

        if !writes.is_empty() {
            owned_write_regions.push(region);
        } else if has_reduce {
            reduce_regions.push(region);
        } else {
            let strips_reading: BTreeSet<usize> = reads.iter().map(|r| r.strip).collect();
            if strips_reading.len() >= 2 {
                read_shared_regions.push(region);
            }
        }
    }

    PartitionReport {
        strips,
        read_shared_regions,
        reduce_regions,
        owned_write_regions,
        fallback: None,
    }
}

/// Everything one strip's functional execution produced.
struct StripOutcome {
    /// `(op index, record)` for ops the timing pass needs facts about:
    /// kernels, and every memory op (which carries its precomputed
    /// [`crate::memsys::MemOpCost`]).
    records: Vec<(usize, OpRecord)>,
    /// Per-region scatter-add overlays: contributions accumulated into
    /// a zero-initialized image of the region, in op order.
    scatter: Vec<(usize, Vec<f64>)>,
    /// Sequential stores: `(region, start word, data)`, in op order.
    stores: Vec<(usize, usize, Vec<f64>)>,
    /// Kernel-side counters (SRF/LRF traffic, FLOPs, iterations) this
    /// strip contributed — all `u64` sums, so aggregation across
    /// threads is lossless and order-independent.
    kernel_counters: Counters,
    /// Cumulative cache behaviour of this strip's memory shard.
    cache_stats: CacheAccessStats,
}

impl StreamProcessor {
    /// Execute `program` with the functional *and* memory-timing phases
    /// fanned across `threads` worker threads. See the module docs for
    /// the determinism contract; ineligible programs fall back to the
    /// serial scoreboard with a typed [`FallbackReason`].
    pub fn run_parallel(
        &self,
        memory: &mut Memory,
        program: &StreamProgram,
        threads: usize,
    ) -> Result<RunReport, SimError> {
        self.run_with_threads(memory, program, threads)
    }

    /// The single engine behind [`StreamProcessor::run`] and
    /// [`StreamProcessor::run_parallel`]: partition, fan out, merge,
    /// replay. Cycle numbers depend only on whether the program
    /// partitions — never on the entry point or thread count.
    pub(crate) fn run_with_threads(
        &self,
        memory: &mut Memory,
        program: &StreamProgram,
        threads: usize,
    ) -> Result<RunReport, SimError> {
        // Reject un-runnable programs before burning functional work on
        // them (the serial path validates inside `schedule`).
        self.validate_program(program)?;
        let partition = partition_program(program);
        if self.partition_verbose {
            eprintln!("{}", partition.describe(program, memory));
        }
        let summary = partition.summary();
        if !partition.is_parallel() {
            let mut report = self.schedule(memory, program, ExecMode::Inline)?;
            report.partition = summary;
            return Ok(report);
        }
        let strips = partition.strips;

        // ---- phase A: per-strip functional execution + memory costs ----
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .map_err(|e| SimError::Program(format!("thread pool: {e}")))?;
        let shared: &Memory = memory;
        let cfg = &self.cfg;
        let engine = self.kernel_engine;
        let batch = self.tape_batch;
        let outcomes: Result<Vec<StripOutcome>, SimError> = pool.install(|| {
            strips
                .into_par_iter()
                .map(|ops| exec_strip(cfg, shared, program, &ops, engine, batch))
                .collect()
        });
        let outcomes = outcomes?;

        // ---- deterministic merge --------------------------------------
        let mut records: Vec<OpRecord> = vec![OpRecord::default(); program.ops.len()];
        let mut kernel_counters = Counters::default();
        let mut cache_stats = CacheAccessStats::default();
        for o in &outcomes {
            for (i, r) in &o.records {
                records[*i] = *r;
            }
            // Lossless (u64) aggregation of per-strip kernel counters
            // and shard cache stats, in ascending strip order.
            kernel_counters.add(&o.kernel_counters);
            cache_stats.merge(&o.cache_stats);
        }
        // Scatter overlays, grouped by region in strip order, reduced by
        // a fixed-shape pairwise tree, then added into the base region.
        let mut by_region: BTreeMap<usize, Vec<Vec<f64>>> = BTreeMap::new();
        let mut stores: Vec<(usize, usize, Vec<f64>)> = Vec::new();
        for o in outcomes {
            for (region, overlay) in o.scatter {
                by_region.entry(region).or_default().push(overlay);
            }
            stores.extend(o.stores);
        }
        for (region, overlays) in by_region {
            let total = pool.install(|| tree_sum(overlays));
            for (d, v) in memory.data_mut(RegionId(region)).iter_mut().zip(&total) {
                *d += *v;
            }
        }
        for (region, start, data) in stores {
            let dst = memory.data_mut(RegionId(region));
            dst[start..start + data.len()].copy_from_slice(&data);
        }

        // ---- phase B: serial timing against precomputed results -------
        let mut report = self.schedule(memory, program, ExecMode::Precomputed(&records))?;
        debug_assert_eq!(
            (
                kernel_counters.srf_refs,
                kernel_counters.lrf_refs,
                kernel_counters.hardware_flops,
                kernel_counters.hardware_ops,
                kernel_counters.kernel_iterations,
            ),
            (
                report.counters.srf_refs,
                report.counters.lrf_refs,
                report.counters.hardware_flops,
                report.counters.hardware_ops,
                report.counters.kernel_iterations,
            ),
            "phase-A kernel counter aggregation must match the scoreboard"
        );
        report.partition = summary;
        report.cache_stats = cache_stats;
        Ok(report)
    }
}

/// Functionally execute one strip's ops against the (read-only) input
/// regions, accumulating writes into private overlays and costing every
/// memory op in op-index order against a private cold [`MemSystem`]
/// shard.
fn exec_strip(
    cfg: &MachineConfig,
    memory: &Memory,
    program: &StreamProgram,
    ops: &[usize],
    engine: KernelEngine,
    batch: BatchWidth,
) -> Result<StripOutcome, SimError> {
    let mut buffers: HashMap<usize, StreamData> = HashMap::new();
    let mut memsys = MemSystem::strip_shard(cfg);
    let mut out = StripOutcome {
        records: Vec::new(),
        scatter: Vec::new(),
        stores: Vec::new(),
        kernel_counters: Counters::default(),
        cache_stats: CacheAccessStats::default(),
    };
    for &i in ops {
        let lop = &program.ops[i];
        match &lop.op {
            StreamOp::Gather {
                region,
                record_len,
                indices,
                dst,
            } => {
                let cost = memsys.gather_cost(memory, *region, *record_len, indices, false);
                let src = memory.data(*region);
                let mut data = Vec::with_capacity(indices.len() * record_len);
                for &idx in indices.iter() {
                    let s = idx as usize * record_len;
                    data.extend_from_slice(&src[s..s + record_len]);
                }
                buffers.insert(dst.0, StreamData::new(*record_len, data));
                out.records.push((
                    i,
                    OpRecord {
                        mem_cost: Some(cost),
                        ..OpRecord::default()
                    },
                ));
            }
            StreamOp::Load {
                region,
                record_len,
                start,
                records,
                dst,
            } => {
                let cost =
                    memsys.sequential_cost(memory, *region, *record_len, *start, *records, false);
                let s = start * record_len;
                let data = memory.data(*region)[s..s + records * record_len].to_vec();
                buffers.insert(dst.0, StreamData::new(*record_len, data));
                out.records.push((
                    i,
                    OpRecord {
                        mem_cost: Some(cost),
                        ..OpRecord::default()
                    },
                ));
            }
            StreamOp::Kernel {
                kernel,
                inputs,
                outputs,
                params,
                iterations,
                ..
            } => {
                let input_data: Vec<StreamData> = inputs
                    .iter()
                    .map(|b| {
                        buffers
                            .get(&b.0)
                            .ok_or_else(|| {
                                SimError::Program(format!(
                                    "kernel '{}': input buffer never produced",
                                    lop.label
                                ))
                            })
                            .cloned()
                    })
                    .collect::<Result<_, _>>()?;
                let (outs, srf_words) = kernel_functional(
                    &lop.label,
                    kernel,
                    input_data,
                    params,
                    *iterations,
                    engine,
                    batch,
                    program.underrun_proofs.get(&i),
                )?;
                for (o, b) in outs.into_iter().zip(outputs) {
                    buffers.insert(b.0, o);
                }
                let unrolled = *iterations / kernel.opt.unroll as u64;
                out.kernel_counters.srf_refs += srf_words;
                out.kernel_counters.lrf_refs += kernel.stats.lrf_refs * unrolled;
                out.kernel_counters.hardware_flops += kernel.stats.hardware_flops * unrolled;
                out.kernel_counters.hardware_ops += kernel.stats.hardware_ops * unrolled;
                out.kernel_counters.kernel_iterations += *iterations;
                out.records.push((
                    i,
                    OpRecord {
                        kernel_srf_words: srf_words,
                        ..OpRecord::default()
                    },
                ));
            }
            StreamOp::ScatterAdd {
                src,
                region,
                record_len,
                indices,
            } => {
                let data = buffers.get(&src.0).ok_or_else(|| {
                    SimError::Program(format!(
                        "scatter-add '{}': source buffer never produced",
                        lop.label
                    ))
                })?;
                if data.num_records() != indices.len() {
                    return Err(SimError::Program(format!(
                        "scatter-add '{}': {} records vs {} indices",
                        lop.label,
                        data.num_records(),
                        indices.len()
                    )));
                }
                let pos = match out.scatter.iter().position(|(r, _)| *r == region.0) {
                    Some(p) => p,
                    None => {
                        out.scatter
                            .push((region.0, vec![0.0; memory.data(*region).len()]));
                        out.scatter.len() - 1
                    }
                };
                let overlay = &mut out.scatter[pos].1;
                for (r, &idx) in indices.iter().enumerate() {
                    let base = idx as usize * *record_len;
                    for f in 0..*record_len {
                        overlay[base + f] += data.record(r)[f];
                    }
                }
                let cost = memsys.scatter_add_cost(memory, *region, *record_len, indices);
                out.records.push((
                    i,
                    OpRecord {
                        mem_cost: Some(cost),
                        ..OpRecord::default()
                    },
                ));
            }
            StreamOp::Store {
                src,
                region,
                record_len,
                start,
            } => {
                let data = buffers.get(&src.0).ok_or_else(|| {
                    SimError::Program(format!(
                        "store '{}': source buffer never produced",
                        lop.label
                    ))
                })?;
                let records = data.num_records();
                let cost =
                    memsys.sequential_cost(memory, *region, *record_len, *start, records, true);
                out.records.push((
                    i,
                    OpRecord {
                        mem_cost: Some(cost),
                        ..OpRecord::default()
                    },
                ));
                out.stores
                    .push((region.0, start * record_len, data.data.clone()));
            }
        }
    }
    out.cache_stats = memsys.stats();
    Ok(out)
}

/// Pairwise tree reduction of equally-sized accumulators. The tree's
/// shape is a function of `layers.len()` alone, so the result is
/// bitwise-identical at every worker count; each level's pair-sums run
/// in parallel.
fn tree_sum(mut layers: Vec<Vec<f64>>) -> Vec<f64> {
    while layers.len() > 1 {
        let mut pairs: Vec<(Vec<f64>, Option<Vec<f64>>)> = Vec::new();
        let mut it = layers.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        layers = pairs
            .into_par_iter()
            .map(|(mut a, b)| {
                if let Some(b) = b {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += *y;
                    }
                }
                a
            })
            .collect();
    }
    layers.pop().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use merrimac_arch::{MachineConfig, OpCosts};
    use merrimac_kernel::ir::StreamMode;
    use merrimac_kernel::KernelBuilder;

    use super::*;
    use crate::kernelc::{CompiledKernel, KernelOpt};
    use crate::program::ProgramBuilder;

    fn square_kernel(cfg: &MachineConfig) -> Arc<CompiledKernel> {
        let mut b = KernelBuilder::new("square");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let x = b.read(s, 0);
        let y = b.mul(x, x);
        b.write(o, &[y]);
        Arc::new(CompiledKernel::compile(
            b.build(),
            cfg,
            &OpCosts::default(),
            KernelOpt::default(),
        ))
    }

    /// Multi-strip gather→kernel→scatter-add program where several
    /// strips read-share `xs` and accumulate into the same records of
    /// `acc`.
    fn scatter_setup(strips: usize, n: usize) -> (Memory, StreamProgram) {
        let cfg = MachineConfig::default();
        let k = square_kernel(&cfg);
        let mut mem = Memory::new();
        let xs = mem.region("xs", (0..strips * n).map(|i| (i as f64).sin()).collect());
        let acc = mem.region("acc", vec![0.0; n]);
        let mut pb = ProgramBuilder::new();
        pb.intent(xs, AccessIntent::ReadOnly)
            .intent(acc, AccessIntent::ReduceAdd);
        for strip in 0..strips {
            pb.strip(strip);
            let bx = pb.buffer(&format!("x{strip}"), 1);
            let by = pb.buffer(&format!("y{strip}"), 1);
            let idx: Vec<u32> = (0..n as u32).map(|i| i + (strip * n) as u32).collect();
            pb.gather(format!("gather {strip}"), xs, 1, Arc::new(idx), bx);
            pb.kernel(
                format!("kernel {strip}"),
                k.clone(),
                vec![bx],
                vec![by],
                vec![],
                n as u64,
                (n as u64).div_ceil(16),
            );
            // All strips accumulate into the same n records.
            let tgt: Vec<u32> = (0..n as u32).collect();
            pb.scatter_add(format!("scatter {strip}"), by, acc, 1, Arc::new(tgt));
        }
        (mem, pb.build())
    }

    #[test]
    fn parallel_matches_expected_sums() {
        let (mut mem, program) = scatter_setup(4, 257);
        let proc = StreamProcessor::new(MachineConfig::default());
        let r = proc.run_parallel(&mut mem, &program, 4).expect("runs");
        assert!(r.partition.parallelized);
        assert_eq!(r.partition.strips, 4);
        let acc = mem.data(RegionId(1));
        for (i, v) in acc.iter().enumerate() {
            let expect: f64 = (0..4)
                .map(|s| {
                    let x = ((s * 257 + i) as f64).sin();
                    x * x
                })
                .sum::<f64>();
            assert!((v - expect).abs() < 1e-12, "word {i}: {v} vs {expect}");
        }
    }

    #[test]
    fn partitioner_classifies_shared_and_reduce_regions() {
        let (mem, program) = scatter_setup(3, 64);
        let part = partition_program(&program);
        assert!(part.is_parallel());
        assert_eq!(part.strips.len(), 3);
        assert_eq!(part.read_shared_regions, vec![RegionId(0)]);
        assert_eq!(part.reduce_regions, vec![RegionId(1)]);
        assert!(part.owned_write_regions.is_empty());
        let text = part.describe(&program, &mem);
        assert!(text.contains("parallel across 3 strips"), "{text}");
        assert!(text.contains("xs"), "{text}");
        assert!(text.contains("acc"), "{text}");
    }

    #[test]
    fn thread_count_does_not_change_results_or_timing() {
        let run = |threads: usize| {
            let (mut mem, program) = scatter_setup(5, 129);
            let proc = StreamProcessor::new(MachineConfig::default());
            let r = proc
                .run_parallel(&mut mem, &program, threads)
                .expect("runs");
            (mem.data(RegionId(1)).to_vec(), r)
        };
        let (base_data, base) = run(1);
        assert!(base.partition.parallelized);
        for threads in [2, 3, 4, 8] {
            let (data, r) = run(threads);
            assert_eq!(base_data, data, "region data diverged at {threads} threads");
            assert_eq!(base.cycles, r.cycles);
            assert_eq!(base.counters, r.counters);
            assert_eq!(base.sdr_peak, r.sdr_peak);
            assert_eq!(base.sdr_stall_cycles, r.sdr_stall_cycles);
            assert_eq!(base.cache_stats, r.cache_stats);
            assert_eq!(base.partition, r.partition);
        }
    }

    #[test]
    fn timing_identical_to_serial_scoreboard() {
        let (mut m1, p1) = scatter_setup(3, 200);
        let (mut m2, p2) = scatter_setup(3, 200);
        let proc = StreamProcessor::new(MachineConfig::default());
        let serial = proc.run(&mut m1, &p1).expect("serial");
        let parallel = proc.run_parallel(&mut m2, &p2, 4).expect("parallel");
        assert_eq!(serial.cycles, parallel.cycles);
        assert_eq!(serial.counters, parallel.counters);
        assert_eq!(serial.sdr_peak, parallel.sdr_peak);
        assert_eq!(
            serial.srf_peak_words_per_cluster,
            parallel.srf_peak_words_per_cluster
        );
        assert_eq!(serial.cache_stats, parallel.cache_stats);
        // Scatter sums agree to reduction-order rounding.
        for (a, b) in m1.data(RegionId(1)).iter().zip(m2.data(RegionId(1))) {
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
        }
    }

    #[test]
    fn store_programs_round_trip() {
        // load → kernel → store with two strips; results must be exact.
        // The stores target disjoint halves of a shared region with no
        // declared intent: ownership is inferred from the ranges.
        let cfg = MachineConfig::default();
        let k = square_kernel(&cfg);
        let n = 300usize;
        let build = || {
            let mut mem = Memory::new();
            let xs = mem.region("xs", (0..2 * n).map(|i| i as f64).collect());
            let out = mem.region("out", vec![0.0; 2 * n]);
            let mut pb = ProgramBuilder::new();
            for strip in 0..2 {
                pb.strip(strip);
                let bx = pb.buffer(&format!("x{strip}"), 1);
                let by = pb.buffer(&format!("y{strip}"), 1);
                pb.load(format!("load {strip}"), xs, 1, strip * n, n, bx);
                pb.kernel(
                    format!("kernel {strip}"),
                    k.clone(),
                    vec![bx],
                    vec![by],
                    vec![],
                    n as u64,
                    (n as u64).div_ceil(16),
                );
                pb.store(format!("store {strip}"), by, out, 1, strip * n);
            }
            (mem, pb.build())
        };
        let proc = StreamProcessor::new(cfg);
        let (mut m1, p1) = build();
        let part = partition_program(&p1);
        assert!(part.is_parallel(), "disjoint stores must partition");
        assert_eq!(part.owned_write_regions, vec![RegionId(1)]);
        let serial = proc.run(&mut m1, &p1).expect("serial");
        let (mut m2, p2) = build();
        let parallel = proc.run_parallel(&mut m2, &p2, 4).expect("parallel");
        assert_eq!(
            m1.data(RegionId(1)),
            m2.data(RegionId(1)),
            "store-only programs must be bitwise identical"
        );
        assert_eq!(serial.cycles, parallel.cycles);
        assert_eq!(serial.counters, parallel.counters);
        assert!(parallel.partition.parallelized);
    }

    #[test]
    fn overlapping_cross_strip_stores_fall_back() {
        let cfg = MachineConfig::default();
        let k = square_kernel(&cfg);
        let n = 64usize;
        let mut mem = Memory::new();
        let xs = mem.region("xs", (0..2 * n).map(|i| i as f64).collect());
        let out = mem.region("out", vec![0.0; 2 * n]);
        let mut pb = ProgramBuilder::new();
        for strip in 0..2 {
            pb.strip(strip);
            let bx = pb.buffer(&format!("x{strip}"), 1);
            let by = pb.buffer(&format!("y{strip}"), 1);
            pb.load(format!("load {strip}"), xs, 1, strip * n, n, bx);
            pb.kernel(
                format!("kernel {strip}"),
                k.clone(),
                vec![bx],
                vec![by],
                vec![],
                n as u64,
                (n as u64).div_ceil(16),
            );
            // Both strips store to word 0: observable merge order.
            pb.store(format!("store {strip}"), by, out, 1, 0);
        }
        let program = pb.build();
        let part = partition_program(&program);
        assert!(matches!(
            part.fallback,
            Some(FallbackReason::WriteWriteOverlap {
                region: RegionId(1),
                strips: (0, 1),
            })
        ));
        assert_eq!(
            part.summary().fallback,
            Some(FallbackKind::WriteWriteOverlap)
        );
        // Fallback still executes correctly (serial scoreboard).
        let proc = StreamProcessor::new(cfg);
        let r = proc.run_parallel(&mut mem, &program, 4).expect("fallback");
        assert!(!r.partition.parallelized);
    }

    #[test]
    fn write_owned_in_place_update_partitions() {
        // Strips load a shared region and store updated values back to
        // their own slices: read+write of one region, previously an
        // unconditional serial fallback, now parallel under a declared
        // `WriteOwned` intent (reads precede writes, slices disjoint).
        let cfg = MachineConfig::default();
        let k = square_kernel(&cfg);
        let n = 200usize;
        let build = |declare: bool| {
            let mut mem = Memory::new();
            let xs = mem.region("xs", (1..=2 * n).map(|i| i as f64).collect());
            let mut pb = ProgramBuilder::new();
            if declare {
                pb.intent(xs, AccessIntent::WriteOwned);
            }
            // All loads first (so every read precedes every write)…
            let mut bufs = Vec::new();
            for strip in 0..2 {
                pb.strip(strip);
                let bx = pb.buffer(&format!("x{strip}"), 1);
                pb.load(format!("load {strip}"), xs, 1, strip * n, n, bx);
                bufs.push(bx);
            }
            // …then per-strip kernel + store back in place.
            for (strip, &bx) in bufs.iter().enumerate() {
                pb.strip(strip);
                let by = pb.buffer(&format!("y{strip}"), 1);
                pb.kernel(
                    format!("kernel {strip}"),
                    k.clone(),
                    vec![bx],
                    vec![by],
                    vec![],
                    n as u64,
                    (n as u64).div_ceil(16),
                );
                pb.store(format!("store {strip}"), by, xs, 1, strip * n);
            }
            (mem, pb.build())
        };
        // Undeclared: read+write conflict, serial fallback.
        let (_, undeclared) = build(false);
        let part = partition_program(&undeclared);
        assert!(matches!(
            part.fallback,
            Some(FallbackReason::RegionConflict {
                region: RegionId(0),
                kinds: (AccessKind::Read, AccessKind::Write),
                ..
            })
        ));
        // Declared write-owned: partitions, and matches the serial result.
        let (mut m1, p1) = build(true);
        let part = partition_program(&p1);
        assert!(part.is_parallel(), "{:?}", part.fallback);
        assert_eq!(part.owned_write_regions, vec![RegionId(0)]);
        let proc = StreamProcessor::new(cfg);
        let r1 = proc.run_parallel(&mut m1, &p1, 4).expect("parallel");
        assert!(r1.partition.parallelized);
        let (mut m2, _) = build(true);
        let (_, undeclared2) = build(false);
        let r2 = proc
            .run_with_threads(&mut m2, &undeclared2, 1)
            .expect("serial");
        assert!(!r2.partition.parallelized);
        assert_eq!(m1.data(RegionId(0)), m2.data(RegionId(0)));
        for (i, v) in m1.data(RegionId(0)).iter().enumerate() {
            let x = (i + 1) as f64;
            assert_eq!(*v, x * x);
        }
    }

    /// Software-pipelined in-place update: each strip loads, transforms
    /// and stores back its own slice, with strips interleaved in program
    /// order (strip 1's load *follows* strip 0's store). The ranges are
    /// disjoint, so the per-strip ordering analysis finds no hazard and
    /// the program partitions — previously a spurious `read_after_write`
    /// fallback under the program-wide ordering rule.
    fn pipelined_in_place_setup(n: usize) -> (Memory, StreamProgram) {
        let cfg = MachineConfig::default();
        let k = square_kernel(&cfg);
        let mut mem = Memory::new();
        let xs = mem.region("xs", (1..=2 * n).map(|i| i as f64).collect());
        let mut pb = ProgramBuilder::new();
        pb.intent(xs, AccessIntent::WriteOwned);
        for strip in 0..2 {
            pb.strip(strip);
            let bx = pb.buffer(&format!("x{strip}"), 1);
            let by = pb.buffer(&format!("y{strip}"), 1);
            pb.load(format!("load {strip}"), xs, 1, strip * n, n, bx);
            pb.kernel(
                format!("kernel {strip}"),
                k.clone(),
                vec![bx],
                vec![by],
                vec![],
                n as u64,
                (n as u64).div_ceil(16),
            );
            pb.store(format!("store {strip}"), by, xs, 1, strip * n);
        }
        (mem, pb.build())
    }

    #[test]
    fn write_owned_pipelined_in_place_update_partitions() {
        let (mut mem, program) = pipelined_in_place_setup(32);
        assert!(read_write_hazards(&program).is_empty());
        let part = partition_program(&program);
        assert!(part.is_parallel(), "{:?}", part.fallback);
        assert_eq!(part.owned_write_regions, vec![RegionId(0)]);
        let proc = StreamProcessor::new(MachineConfig::default());
        let r = proc.run_parallel(&mut mem, &program, 4).expect("parallel");
        assert!(r.partition.parallelized);
        for (i, v) in mem.data(RegionId(0)).iter().enumerate() {
            let x = (i + 1) as f64;
            assert_eq!(*v, x * x);
        }
    }

    #[test]
    fn write_owned_read_after_write_falls_back() {
        // Declared write-owned, but strip 1 re-reads strip 0's slice
        // *after* strip 0's store in program order: phase A would read
        // stale data.
        let cfg = MachineConfig::default();
        let k = square_kernel(&cfg);
        let n = 32usize;
        let mut mem = Memory::new();
        let xs = mem.region("xs", (0..2 * n).map(|i| i as f64).collect());
        let mut pb = ProgramBuilder::new();
        pb.intent(xs, AccessIntent::WriteOwned);
        for strip in 0..2 {
            pb.strip(strip);
            let bx = pb.buffer(&format!("x{strip}"), 1);
            let by = pb.buffer(&format!("y{strip}"), 1);
            // Every strip reads strip 0's slice, so strip 1's load
            // overlaps strip 0's earlier store.
            pb.load(format!("load {strip}"), xs, 1, 0, n, bx);
            pb.kernel(
                format!("kernel {strip}"),
                k.clone(),
                vec![bx],
                vec![by],
                vec![],
                n as u64,
                (n as u64).div_ceil(16),
            );
            pb.store(format!("store {strip}"), by, xs, 1, strip * n);
        }
        let program = pb.build();
        let hazards = read_write_hazards(&program);
        assert_eq!(hazards.len(), 1);
        assert_eq!(hazards[0].region, RegionId(0));
        assert_eq!(hazards[0].write_strip, 0);
        assert_eq!(hazards[0].read_strip, 1);
        assert!(hazards[0].write_range.0 < hazards[0].read_range.1);
        let part = partition_program(&program);
        assert!(matches!(
            part.fallback,
            Some(FallbackReason::ReadAfterWrite {
                region: RegionId(0),
                strips: (1, 0),
            })
        ));
        // The fallback path still computes the update exactly: strip 1
        // squares strip 0's already-squared slice.
        let proc = StreamProcessor::new(cfg);
        let r = proc.run_parallel(&mut mem, &program, 4).expect("fallback");
        assert!(!r.partition.parallelized);
        assert_eq!(r.partition.fallback, Some(FallbackKind::ReadAfterWrite));
        assert_eq!(mem.data(RegionId(0))[5], 25.0);
        assert_eq!(mem.data(RegionId(0))[n + 5], 25.0 * 25.0);
    }

    #[test]
    fn cross_strip_buffer_falls_back_to_serial() {
        // Producer in strip 0, consumer in strip 1: ineligible, must
        // still execute correctly via the serial path.
        let cfg = MachineConfig::default();
        let k = square_kernel(&cfg);
        let n = 64usize;
        let mut mem = Memory::new();
        let xs = mem.region("xs", (0..n).map(|i| i as f64).collect());
        let out = mem.region("out", vec![0.0; n]);
        let mut pb = ProgramBuilder::new();
        let bx = pb.buffer("x", 1);
        let by = pb.buffer("y", 1);
        pb.strip(0).load("load", xs, 1, 0, n, bx);
        pb.strip(1).kernel(
            "kernel",
            k,
            vec![bx],
            vec![by],
            vec![],
            n as u64,
            (n as u64).div_ceil(16),
        );
        pb.strip(1).store("store", by, out, 1, 0);
        let program = pb.build();
        let part = partition_program(&program);
        assert!(matches!(
            part.fallback,
            Some(FallbackReason::BufferCrossesStrips {
                buffer: BufferId(0),
                strips: (0, 1),
            })
        ));
        let text = part.describe(&program, &mem);
        assert!(text.contains("serial fallback"), "{text}");
        assert!(text.contains("'x'"), "{text}");
        let proc = StreamProcessor::new(cfg);
        let r = proc
            .run_parallel(&mut mem, &program, 4)
            .expect("fallback runs");
        assert!(!r.partition.parallelized);
        assert_eq!(
            r.partition.fallback,
            Some(FallbackKind::BufferCrossesStrips)
        );
        assert_eq!(mem.data(RegionId(1))[5], 25.0);
    }

    #[test]
    fn fallback_kind_codes_round_trip() {
        for kind in [
            FallbackKind::BufferCrossesStrips,
            FallbackKind::RegionConflict,
            FallbackKind::WriteWriteOverlap,
            FallbackKind::ReadAfterWrite,
        ] {
            assert_eq!(FallbackKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(FallbackKind::from_code("nonsense"), None);
    }

    #[test]
    fn tree_sum_shape_is_width_independent() {
        let layers: Vec<Vec<f64>> = (0..7)
            .map(|s| {
                (0..50)
                    .map(|i| ((s * 50 + i) as f64).sin() * 1e-3)
                    .collect()
            })
            .collect();
        let expect = tree_sum(layers.clone());
        for threads in [1usize, 2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got = pool.install(|| tree_sum(layers.clone()));
            assert_eq!(expect, got, "tree_sum diverged at {threads} threads");
        }
    }
}

//! Parallel cluster-execution engine: fan per-strip functional work
//! across host threads, then replay the (inherently sequential) timing
//! scoreboard against precomputed results.
//!
//! The split is sound because every cost function in [`crate::memsys`]
//! and [`crate::cluster`] depends only on *addresses, indices and
//! static op shapes* — never on region data values — so the timing
//! pass produces bitwise-identical cycles and counters whether or not
//! it executed the data movement itself.
//!
//! Determinism contract: for an eligible program, `run_parallel`
//! produces bitwise-identical region contents, forces, cycles and
//! counters at **every** thread count (including 1). Three properties
//! guarantee it:
//!
//! 1. the per-strip map is order-preserving and each strip's execution
//!    is pure given the (read-only) input regions;
//! 2. scatter-add contributions are accumulated into per-strip overlay
//!    buffers and merged by a *fixed-shape* pairwise tree over strip
//!    index — the tree's shape depends only on the strip count, never
//!    on the worker count or completion order;
//! 3. the timing pass is serial and byte-for-byte the same scoreboard
//!    as [`StreamProcessor::run`].
//!
//! Programs whose buffers cross strips, or that read a region they
//! also write, cannot be split this way; those fall back to the serial
//! scoreboard (the engine is then still exact, just not parallel).

use std::collections::{BTreeMap, HashMap, HashSet};

use merrimac_kernel::interp::StreamData;
use rayon::prelude::*;

use crate::counters::Counters;
use crate::machine::{kernel_functional, ExecMode, OpRecord, RunReport, SimError, StreamProcessor};
use crate::program::{Memory, StreamOp, StreamProgram};

/// Everything one strip's functional execution produced.
struct StripOutcome {
    /// `(op index, record)` for ops the timing pass needs facts about.
    records: Vec<(usize, OpRecord)>,
    /// Per-region scatter-add overlays: contributions accumulated into
    /// a zero-initialized image of the region, in op order.
    scatter: Vec<(usize, Vec<f64>)>,
    /// Sequential stores: `(region, start word, data)`, in op order.
    stores: Vec<(usize, usize, Vec<f64>)>,
    /// Kernel-side counters (SRF/LRF traffic, FLOPs, iterations) this
    /// strip contributed — all `u64` sums, so aggregation across
    /// threads is lossless and order-independent.
    kernel_counters: Counters,
}

impl StreamProcessor {
    /// Execute `program` with the functional phase fanned across
    /// `threads` worker threads. See the module docs for the
    /// determinism contract; ineligible programs fall back to the
    /// serial scoreboard.
    pub fn run_parallel(
        &self,
        memory: &mut Memory,
        program: &StreamProgram,
        threads: usize,
    ) -> Result<RunReport, SimError> {
        // Reject un-runnable programs before burning functional work on
        // them (the serial path validates inside `schedule`).
        self.validate_program(program)?;
        let Some(strips) = strip_partition(program) else {
            return self.run(memory, program);
        };

        // ---- phase A: per-strip functional execution ------------------
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .map_err(|e| SimError::Program(format!("thread pool: {e}")))?;
        let shared: &Memory = memory;
        let outcomes: Result<Vec<StripOutcome>, SimError> = pool.install(|| {
            strips
                .into_par_iter()
                .map(|ops| exec_strip(shared, program, &ops))
                .collect()
        });
        let outcomes = outcomes?;

        // ---- deterministic merge --------------------------------------
        let mut records: Vec<OpRecord> = vec![OpRecord::default(); program.ops.len()];
        let mut kernel_counters = Counters::default();
        for o in &outcomes {
            for (i, r) in &o.records {
                records[*i] = *r;
            }
            // Lossless (u64) aggregation of per-strip kernel counters.
            kernel_counters.add(&o.kernel_counters);
        }
        // Scatter overlays, grouped by region in strip order, reduced by
        // a fixed-shape pairwise tree, then added into the base region.
        let mut by_region: BTreeMap<usize, Vec<Vec<f64>>> = BTreeMap::new();
        let mut stores: Vec<(usize, usize, Vec<f64>)> = Vec::new();
        for o in outcomes {
            for (region, overlay) in o.scatter {
                by_region.entry(region).or_default().push(overlay);
            }
            stores.extend(o.stores);
        }
        for (region, overlays) in by_region {
            let total = pool.install(|| tree_sum(overlays));
            for (d, v) in memory
                .data_mut(crate::program::RegionId(region))
                .iter_mut()
                .zip(&total)
            {
                *d += *v;
            }
        }
        for (region, start, data) in stores {
            let dst = memory.data_mut(crate::program::RegionId(region));
            dst[start..start + data.len()].copy_from_slice(&data);
        }

        // ---- phase B: serial timing against precomputed results -------
        let report = self.schedule(memory, program, ExecMode::Precomputed(&records))?;
        debug_assert_eq!(
            (
                kernel_counters.srf_refs,
                kernel_counters.lrf_refs,
                kernel_counters.hardware_flops,
                kernel_counters.hardware_ops,
                kernel_counters.kernel_iterations,
            ),
            (
                report.counters.srf_refs,
                report.counters.lrf_refs,
                report.counters.hardware_flops,
                report.counters.hardware_ops,
                report.counters.kernel_iterations,
            ),
            "phase-A kernel counter aggregation must match the scoreboard"
        );
        Ok(report)
    }
}

/// Group op indices by strip, in ascending strip order, iff the program
/// is strip-isolated: every buffer lives within one strip and no region
/// is both read and written (or scatter-added and stored).
fn strip_partition(program: &StreamProgram) -> Option<Vec<Vec<usize>>> {
    let mut buffer_strip: HashMap<usize, usize> = HashMap::new();
    let mut reads: HashSet<usize> = HashSet::new();
    let mut scatters: HashSet<usize> = HashSet::new();
    let mut stores: HashSet<usize> = HashSet::new();
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, lop) in program.ops.iter().enumerate() {
        groups.entry(lop.strip).or_default().push(i);
        let bufs: Vec<usize> = match &lop.op {
            StreamOp::Gather { dst, .. } | StreamOp::Load { dst, .. } => vec![dst.0],
            StreamOp::Kernel {
                inputs, outputs, ..
            } => inputs.iter().chain(outputs).map(|b| b.0).collect(),
            StreamOp::ScatterAdd { src, .. } | StreamOp::Store { src, .. } => vec![src.0],
        };
        for b in bufs {
            if *buffer_strip.entry(b).or_insert(lop.strip) != lop.strip {
                return None; // buffer crosses strips
            }
        }
        match &lop.op {
            StreamOp::Gather { region, .. } | StreamOp::Load { region, .. } => {
                reads.insert(region.0);
            }
            StreamOp::ScatterAdd { region, .. } => {
                scatters.insert(region.0);
            }
            StreamOp::Store { region, .. } => {
                stores.insert(region.0);
            }
            StreamOp::Kernel { .. } => {}
        }
    }
    let writes_overlap_reads = reads
        .iter()
        .any(|r| scatters.contains(r) || stores.contains(r));
    let scatter_store_mix = scatters.iter().any(|r| stores.contains(r));
    if writes_overlap_reads || scatter_store_mix {
        return None;
    }
    Some(groups.into_values().collect())
}

/// Functionally execute one strip's ops against the (read-only) input
/// regions, accumulating writes into private overlays.
fn exec_strip(
    memory: &Memory,
    program: &StreamProgram,
    ops: &[usize],
) -> Result<StripOutcome, SimError> {
    let mut buffers: HashMap<usize, StreamData> = HashMap::new();
    let mut out = StripOutcome {
        records: Vec::new(),
        scatter: Vec::new(),
        stores: Vec::new(),
        kernel_counters: Counters::default(),
    };
    for &i in ops {
        let lop = &program.ops[i];
        match &lop.op {
            StreamOp::Gather {
                region,
                record_len,
                indices,
                dst,
            } => {
                let src = memory.data(*region);
                let mut data = Vec::with_capacity(indices.len() * record_len);
                for &idx in indices.iter() {
                    let s = idx as usize * record_len;
                    data.extend_from_slice(&src[s..s + record_len]);
                }
                buffers.insert(dst.0, StreamData::new(*record_len, data));
            }
            StreamOp::Load {
                region,
                record_len,
                start,
                records,
                dst,
            } => {
                let s = start * record_len;
                let data = memory.data(*region)[s..s + records * record_len].to_vec();
                buffers.insert(dst.0, StreamData::new(*record_len, data));
            }
            StreamOp::Kernel {
                kernel,
                inputs,
                outputs,
                params,
                iterations,
                ..
            } => {
                let input_data: Vec<StreamData> = inputs
                    .iter()
                    .map(|b| {
                        buffers
                            .get(&b.0)
                            .ok_or_else(|| {
                                SimError::Program(format!(
                                    "kernel '{}': input buffer never produced",
                                    lop.label
                                ))
                            })
                            .cloned()
                    })
                    .collect::<Result<_, _>>()?;
                let (outs, srf_words) =
                    kernel_functional(&lop.label, kernel, input_data, params, *iterations)?;
                for (o, b) in outs.into_iter().zip(outputs) {
                    buffers.insert(b.0, o);
                }
                let unrolled = *iterations / kernel.opt.unroll as u64;
                out.kernel_counters.srf_refs += srf_words;
                out.kernel_counters.lrf_refs += kernel.stats.lrf_refs * unrolled;
                out.kernel_counters.hardware_flops += kernel.stats.hardware_flops * unrolled;
                out.kernel_counters.hardware_ops += kernel.stats.hardware_ops * unrolled;
                out.kernel_counters.kernel_iterations += *iterations;
                out.records.push((
                    i,
                    OpRecord {
                        kernel_srf_words: srf_words,
                        store_records: 0,
                    },
                ));
            }
            StreamOp::ScatterAdd {
                src,
                region,
                record_len,
                indices,
            } => {
                let data = buffers.get(&src.0).ok_or_else(|| {
                    SimError::Program(format!(
                        "scatter-add '{}': source buffer never produced",
                        lop.label
                    ))
                })?;
                if data.num_records() != indices.len() {
                    return Err(SimError::Program(format!(
                        "scatter-add '{}': {} records vs {} indices",
                        lop.label,
                        data.num_records(),
                        indices.len()
                    )));
                }
                let pos = match out.scatter.iter().position(|(r, _)| *r == region.0) {
                    Some(p) => p,
                    None => {
                        out.scatter
                            .push((region.0, vec![0.0; memory.data(*region).len()]));
                        out.scatter.len() - 1
                    }
                };
                let overlay = &mut out.scatter[pos].1;
                for (r, &idx) in indices.iter().enumerate() {
                    let base = idx as usize * *record_len;
                    for f in 0..*record_len {
                        overlay[base + f] += data.record(r)[f];
                    }
                }
            }
            StreamOp::Store {
                src,
                region,
                record_len,
                start,
            } => {
                let data = buffers.get(&src.0).ok_or_else(|| {
                    SimError::Program(format!(
                        "store '{}': source buffer never produced",
                        lop.label
                    ))
                })?;
                out.records.push((
                    i,
                    OpRecord {
                        kernel_srf_words: 0,
                        store_records: data.num_records(),
                    },
                ));
                out.stores
                    .push((region.0, start * record_len, data.data.clone()));
            }
        }
    }
    Ok(out)
}

/// Pairwise tree reduction of equally-sized accumulators. The tree's
/// shape is a function of `layers.len()` alone, so the result is
/// bitwise-identical at every worker count; each level's pair-sums run
/// in parallel.
fn tree_sum(mut layers: Vec<Vec<f64>>) -> Vec<f64> {
    while layers.len() > 1 {
        let mut pairs: Vec<(Vec<f64>, Option<Vec<f64>>)> = Vec::new();
        let mut it = layers.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        layers = pairs
            .into_par_iter()
            .map(|(mut a, b)| {
                if let Some(b) = b {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += *y;
                    }
                }
                a
            })
            .collect();
    }
    layers.pop().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use merrimac_arch::{MachineConfig, OpCosts};
    use merrimac_kernel::ir::StreamMode;
    use merrimac_kernel::KernelBuilder;

    use super::*;
    use crate::kernelc::{CompiledKernel, KernelOpt};
    use crate::program::ProgramBuilder;

    fn square_kernel(cfg: &MachineConfig) -> Arc<CompiledKernel> {
        let mut b = KernelBuilder::new("square");
        let s = b.input("x", 1, StreamMode::EveryIteration);
        let o = b.output("y", 1);
        let x = b.read(s, 0);
        let y = b.mul(x, x);
        b.write(o, &[y]);
        Arc::new(CompiledKernel::compile(
            b.build(),
            cfg,
            &OpCosts::default(),
            KernelOpt::default(),
        ))
    }

    /// Multi-strip gather→kernel→scatter-add program where several
    /// strips hit the same accumulator records.
    fn scatter_setup(strips: usize, n: usize) -> (Memory, StreamProgram) {
        let cfg = MachineConfig::default();
        let k = square_kernel(&cfg);
        let mut mem = Memory::new();
        let xs = mem.region("xs", (0..strips * n).map(|i| (i as f64).sin()).collect());
        let acc = mem.region("acc", vec![0.0; n]);
        let mut pb = ProgramBuilder::new();
        for strip in 0..strips {
            pb.strip(strip);
            let bx = pb.buffer(&format!("x{strip}"), 1);
            let by = pb.buffer(&format!("y{strip}"), 1);
            let idx: Vec<u32> = (0..n as u32).map(|i| i + (strip * n) as u32).collect();
            pb.gather(format!("gather {strip}"), xs, 1, Arc::new(idx), bx);
            pb.kernel(
                format!("kernel {strip}"),
                k.clone(),
                vec![bx],
                vec![by],
                vec![],
                n as u64,
                (n as u64).div_ceil(16),
            );
            // All strips accumulate into the same n records.
            let tgt: Vec<u32> = (0..n as u32).collect();
            pb.scatter_add(format!("scatter {strip}"), by, acc, 1, Arc::new(tgt));
        }
        (mem, pb.build())
    }

    #[test]
    fn parallel_matches_expected_sums() {
        let (mut mem, program) = scatter_setup(4, 257);
        let proc = StreamProcessor::new(MachineConfig::default());
        proc.run_parallel(&mut mem, &program, 4).expect("runs");
        let acc = mem.data(crate::program::RegionId(1));
        for (i, v) in acc.iter().enumerate() {
            let expect: f64 = (0..4)
                .map(|s| {
                    let x = ((s * 257 + i) as f64).sin();
                    x * x
                })
                .sum::<f64>();
            assert!((v - expect).abs() < 1e-12, "word {i}: {v} vs {expect}");
        }
    }

    #[test]
    fn thread_count_does_not_change_results_or_timing() {
        let run = |threads: usize| {
            let (mut mem, program) = scatter_setup(5, 129);
            let proc = StreamProcessor::new(MachineConfig::default());
            let r = proc
                .run_parallel(&mut mem, &program, threads)
                .expect("runs");
            (mem.data(crate::program::RegionId(1)).to_vec(), r)
        };
        let (base_data, base) = run(1);
        for threads in [2, 3, 4, 8] {
            let (data, r) = run(threads);
            assert_eq!(base_data, data, "region data diverged at {threads} threads");
            assert_eq!(base.cycles, r.cycles);
            assert_eq!(base.counters, r.counters);
            assert_eq!(base.sdr_peak, r.sdr_peak);
            assert_eq!(base.sdr_stall_cycles, r.sdr_stall_cycles);
        }
    }

    #[test]
    fn timing_identical_to_serial_scoreboard() {
        let (mut m1, p1) = scatter_setup(3, 200);
        let (mut m2, p2) = scatter_setup(3, 200);
        let proc = StreamProcessor::new(MachineConfig::default());
        let serial = proc.run(&mut m1, &p1).expect("serial");
        let parallel = proc.run_parallel(&mut m2, &p2, 4).expect("parallel");
        assert_eq!(serial.cycles, parallel.cycles);
        assert_eq!(serial.counters, parallel.counters);
        assert_eq!(serial.sdr_peak, parallel.sdr_peak);
        assert_eq!(
            serial.srf_peak_words_per_cluster,
            parallel.srf_peak_words_per_cluster
        );
        // Scatter sums agree to reduction-order rounding.
        for (a, b) in m1
            .data(crate::program::RegionId(1))
            .iter()
            .zip(m2.data(crate::program::RegionId(1)))
        {
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
        }
    }

    #[test]
    fn store_programs_round_trip() {
        // load → kernel → store with two strips; results must be exact.
        let cfg = MachineConfig::default();
        let k = square_kernel(&cfg);
        let n = 300usize;
        let build = || {
            let mut mem = Memory::new();
            let xs = mem.region("xs", (0..2 * n).map(|i| i as f64).collect());
            let out = mem.region("out", vec![0.0; 2 * n]);
            let mut pb = ProgramBuilder::new();
            for strip in 0..2 {
                pb.strip(strip);
                let bx = pb.buffer(&format!("x{strip}"), 1);
                let by = pb.buffer(&format!("y{strip}"), 1);
                pb.load(format!("load {strip}"), xs, 1, strip * n, n, bx);
                pb.kernel(
                    format!("kernel {strip}"),
                    k.clone(),
                    vec![bx],
                    vec![by],
                    vec![],
                    n as u64,
                    (n as u64).div_ceil(16),
                );
                pb.store(format!("store {strip}"), by, out, 1, strip * n);
            }
            (mem, pb.build())
        };
        let proc = StreamProcessor::new(cfg);
        let (mut m1, p1) = build();
        let serial = proc.run(&mut m1, &p1).expect("serial");
        let (mut m2, p2) = build();
        let parallel = proc.run_parallel(&mut m2, &p2, 4).expect("parallel");
        assert_eq!(
            m1.data(crate::program::RegionId(1)),
            m2.data(crate::program::RegionId(1)),
            "store-only programs must be bitwise identical"
        );
        assert_eq!(serial.cycles, parallel.cycles);
        assert_eq!(serial.counters, parallel.counters);
    }

    #[test]
    fn cross_strip_buffer_falls_back_to_serial() {
        // Producer in strip 0, consumer in strip 1: ineligible, must
        // still execute correctly via the serial path.
        let cfg = MachineConfig::default();
        let k = square_kernel(&cfg);
        let n = 64usize;
        let mut mem = Memory::new();
        let xs = mem.region("xs", (0..n).map(|i| i as f64).collect());
        let out = mem.region("out", vec![0.0; n]);
        let mut pb = ProgramBuilder::new();
        let bx = pb.buffer("x", 1);
        let by = pb.buffer("y", 1);
        pb.strip(0).load("load", xs, 1, 0, n, bx);
        pb.strip(1).kernel(
            "kernel",
            k,
            vec![bx],
            vec![by],
            vec![],
            n as u64,
            (n as u64).div_ceil(16),
        );
        pb.strip(1).store("store", by, out, 1, 0);
        let program = pb.build();
        assert!(strip_partition(&program).is_none());
        let proc = StreamProcessor::new(cfg);
        proc.run_parallel(&mut mem, &program, 4)
            .expect("fallback runs");
        assert_eq!(mem.data(crate::program::RegionId(1))[5], 25.0);
    }

    #[test]
    fn tree_sum_shape_is_width_independent() {
        let layers: Vec<Vec<f64>> = (0..7)
            .map(|s| {
                (0..50)
                    .map(|i| ((s * 50 + i) as f64).sin() * 1e-3)
                    .collect()
            })
            .collect();
        let expect = tree_sum(layers.clone());
        for threads in [1usize, 2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got = pool.install(|| tree_sum(layers.clone()));
            assert_eq!(expect, got, "tree_sum diverged at {threads} threads");
        }
    }
}
